//! Umbrella crate for the *non-makespan iterative technique* reproduction
//! (Briceño, Oltikar, Siegel, Maciejewski — IPDPS Workshops 2007).
//!
//! Re-exports the whole workspace under one roof so examples, integration
//! tests and downstream users need a single dependency:
//!
//! * [`core`] — model types and the iterative technique driver.
//! * [`etcgen`] — ETC workload generation (range-based and CVB).
//! * [`heuristics`] — MET, MCT, OLB, KPB, SWA, Min-Min, Max-Min, Duplex,
//!   Sufferage.
//! * [`genitor`] — the Genitor steady-state genetic algorithm.
//! * [`sim`] — discrete-event simulation, Gantt charts, the two-wave
//!   production scenario.
//! * [`analysis`] — metrics, statistics, text tables, Monte-Carlo runner.
//! * [`paper`] — reconstructed paper examples, table and figure renderers.
//!
//! See `README.md` for a guided tour and `DESIGN.md` for the experiment
//! index.

#![deny(deprecated)]

pub mod cli;

pub use hcs_analysis as analysis;
pub use hcs_core as core;
pub use hcs_etcgen as etcgen;
pub use hcs_genitor as genitor;
pub use hcs_paper as paper;
pub use hcs_sim as sim;

/// All greedy and search mapping heuristics plus construction helpers.
pub use hcs_heuristics as heuristics;

/// Flat prelude for examples and quick scripts.
pub mod prelude {
    pub use hcs_core::{
        iterative, EtcMatrix, Heuristic, Instance, IterativeConfig, IterativeOutcome, IterativeRun,
        MachineId, Mapping, Objective, ReadyTimes, Round, Scenario, TaskId, TieBreaker, Time,
    };
    pub use hcs_etcgen::{Consistency, EtcSpec, Heterogeneity, Method};
    pub use hcs_genitor::{Genitor, GenitorConfig};
    pub use hcs_heuristics::{
        all_heuristics, Duplex, Kpb, MaxMin, Mct, Met, MinMin, Olb, Sufferage, Swa, SwaConfig,
    };
}
