//! Implementation of the `nonmakespan` command-line tool.
//!
//! Subcommands:
//!
//! * `generate` — emit a Braun-class ETC matrix as CSV;
//! * `map` — run one heuristic on an ETC CSV and print the mapping;
//! * `iterate` — run the full iterative technique and print each round,
//!   the per-machine deltas and a Gantt chart of the original mapping;
//! * `examples` — summarize (or print in full) the paper's worked
//!   examples;
//! * `trace` — run the iterative technique with structured tracing
//!   attached and emit the event stream as JSONL (one event per line), or
//!   with `--addr` query a running daemon's `TRACE` verb (optionally
//!   filtered to one request id with `--rid`);
//! * `serve` — run the `hcs-service` mapping daemon until it receives a
//!   `SHUTDOWN` request;
//! * `mapc` — map an ETC CSV against a *running* daemon through the
//!   `hcs-client` retry machinery (optionally as a `map_batch` line);
//!   `--rid` stamps a request id that the reply echoes and `trace --addr
//!   --rid` can later look up.
//!
//! The logic lives here (library side) so it is unit-testable; the binary
//! in `src/bin/nonmakespan.rs` is a thin `main`.

use std::fmt::Write as _;

use argflags::{present, value as flag};
use hcs_analysis::TextTable;
use hcs_core::obs::{TraceSink, VecSink};
use hcs_core::{iterative, Heuristic, IterativeConfig, Objective, Scenario, TieBreaker};
use hcs_etcgen::{Consistency, EtcSpec, Heterogeneity};
use hcs_genitor::{Genitor, GenitorConfig, IslandConfig, IslandGenitor};
use hcs_heuristics::{MultiConfig, MultiSa, MultiTabu};
use hcs_sim::Gantt;

/// Parallel-search knobs (`--threads`, `--islands`,
/// `--migration-interval`) for the `genitor-island`, `sa-multi` and
/// `tabu-multi` heuristics; ignored by every other name.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SearchOpts {
    /// Worker threads for the multi-restart engines.
    pub threads: usize,
    /// Island count for the island-model Genitor.
    pub islands: usize,
    /// Steps between island migrations (`0` disables migration).
    pub migration_interval: usize,
}

impl Default for SearchOpts {
    fn default() -> Self {
        SearchOpts {
            threads: 4,
            islands: 4,
            migration_interval: 500,
        }
    }
}

/// A parsed command, ready to execute.
#[derive(Debug)]
pub enum Command {
    /// Emit an ETC matrix as CSV.
    Generate {
        /// Tasks (rows).
        tasks: usize,
        /// Machines (columns).
        machines: usize,
        /// Braun class label, e.g. `i-hihi`.
        class: String,
        /// Generation seed.
        seed: u64,
    },
    /// Map an ETC CSV once and print the result.
    Map {
        /// CSV text of the ETC matrix.
        csv: String,
        /// Heuristic name.
        heuristic: String,
        /// Tie policy: `None` = deterministic, `Some(seed)` = random.
        random_ties: Option<u64>,
        /// Objective the mapping is scored against.
        objective: Objective,
        /// Parallel-search knobs.
        search: SearchOpts,
    },
    /// Run the iterative technique on an ETC CSV.
    Iterate {
        /// CSV text of the ETC matrix.
        csv: String,
        /// Heuristic name.
        heuristic: String,
        /// Tie policy.
        random_ties: Option<u64>,
        /// Apply the seeding guard.
        guard: bool,
        /// Objective the driver freezes against.
        objective: Objective,
        /// Parallel-search knobs.
        search: SearchOpts,
    },
    /// Summarize the paper's worked examples (all, or one by id).
    Examples {
        /// Optional example id.
        only: Option<String>,
    },
    /// Run the iterative technique with tracing and emit JSONL events —
    /// or, with `addr` set, query a running daemon's `TRACE` verb.
    Trace {
        /// Paper example id (`minmin`, `mct`, …) — mutually exclusive
        /// with `csv`.
        example: Option<String>,
        /// CSV text of the ETC matrix (requires `heuristic`).
        csv: Option<String>,
        /// Heuristic name (CSV mode).
        heuristic: Option<String>,
        /// Tie policy (CSV mode; examples replay their scripted ties).
        random_ties: Option<u64>,
        /// Apply the seeding guard (CSV mode).
        guard: bool,
        /// Objective (CSV mode; the paper examples are makespan runs).
        objective: Objective,
        /// Daemon address — switches to querying a running daemon's
        /// `TRACE` verb instead of an offline run.
        addr: Option<String>,
        /// Request id filter for the daemon query (`--rid`): only that
        /// request's events and phase spans come back.
        rid: Option<u64>,
    },
    /// Run the mapping daemon until it is told to shut down.
    Serve {
        /// Daemon configuration (bind address, workers, queue, cache).
        config: hcs_service::ServeConfig,
    },
    /// Spawn a local fleet of daemons on ephemeral ports and run them
    /// until every shard has been told to shut down.
    Fleet {
        /// Number of shards to spawn.
        size: usize,
        /// Worker threads per shard.
        workers: usize,
    },
    /// Map an ETC CSV against a running daemon over TCP.
    Mapc {
        /// Daemon address, `HOST:PORT`.
        addr: String,
        /// Fleet shard addresses (`--fleet a,b,c`); when set, requests
        /// route through the consistent-hash ring instead of `addr`.
        fleet: Option<Vec<String>>,
        /// CSV text of the ETC matrix.
        csv: String,
        /// Heuristic name.
        heuristic: String,
        /// Tie policy.
        random_ties: Option<u64>,
        /// Request the iterative procedure.
        iterative: bool,
        /// Apply the seeding guard.
        guard: bool,
        /// Retry budget after the first attempt.
        retries: u32,
        /// Per-request read deadline, milliseconds.
        timeout_ms: u64,
        /// Send the instance as one `map_batch` line with this many
        /// items instead of a single `map` request.
        batch: Option<usize>,
        /// Objective the daemon scores against.
        objective: Objective,
        /// Request id to stamp onto the request (`--rid`, decimal or
        /// 0x-hex); echoed in the reply and queryable via `trace --addr`.
        rid: Option<u64>,
    },
}

/// CLI-level errors (bad usage, bad input).
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "\
nonmakespan — iterative non-makespan completion-time minimization

USAGE:
  nonmakespan generate --tasks N --machines M [--class i-hihi] [--seed S]
  nonmakespan map      --etc FILE.csv --heuristic NAME [--random-ties SEED]
                       [--objective NAME] [--threads N] [--islands N]
                       [--migration-interval N]
  nonmakespan iterate  --etc FILE.csv --heuristic NAME [--random-ties SEED] [--guard]
                       [--objective NAME] [--threads N] [--islands N]
                       [--migration-interval N]
  nonmakespan examples [ID]
  nonmakespan trace    --example ID | --etc FILE.csv --heuristic NAME
                       [--random-ties SEED] [--guard] [--objective NAME]
                       | --addr HOST:PORT [--rid ID]
  nonmakespan serve    [--addr 127.0.0.1:7077] [--workers 4] [--queue-depth 256]
                       [--cache-capacity 1024] [--trace-capacity 1024]
                       [--fault-rate 0.0] [--fault-seed 0]
                       [--shard-id I --fleet-size N]
                       [--max-line-bytes 8388608] [--idle-timeout-ms 60000]
  nonmakespan fleet    --size N [--workers 4]
  nonmakespan mapc     --etc FILE.csv --heuristic NAME [--addr 127.0.0.1:7077]
                       [--fleet HOST:PORT,HOST:PORT,...]
                       [--iterative] [--guard] [--random-ties SEED]
                       [--retries 3] [--timeout-ms 5000] [--batch K]
                       [--objective NAME] [--rid ID]

HEURISTICS: min-min, mct, met, swa, kpb, sufferage, olb, max-min, duplex,
            segmented-min-min, genitor, sa, tabu, beam,
            genitor-island, sa-multi, tabu-multi
OBJECTIVES: makespan (default), flowtime, weighted-flowtime
CLASSES:    {c,s,i}-{hi,lo}{hi,lo}, e.g. c-hihi, i-lolo
EXAMPLES:   minmin, mct, met, swa, kpb, sufferage
";

/// Parses command-line arguments (without the program name) into a
/// [`Command`], reading any `--etc` file from disk.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let sub = args.first().ok_or_else(|| CliError(USAGE.into()))?;
    let rest = &args[1..];
    let random_ties = flag(rest, "--random-ties")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| CliError("--random-ties takes an integer seed".into()))
        })
        .transpose()?;
    // Unknown objective names fail parsing here — the same exit-2 path as
    // an unknown heuristic, never a silent fall-back to makespan.
    let objective = flag(rest, "--objective")
        .map(|v| {
            Objective::from_name(&v).map_err(|e| CliError(format!("--objective: {e}\n\n{USAGE}")))
        })
        .transpose()?
        .unwrap_or_default();
    match sub.as_str() {
        "generate" => {
            let tasks = flag(rest, "--tasks")
                .ok_or_else(|| CliError("generate requires --tasks".into()))?
                .parse()
                .map_err(|_| CliError("--tasks takes an integer".into()))?;
            let machines = flag(rest, "--machines")
                .ok_or_else(|| CliError("generate requires --machines".into()))?
                .parse()
                .map_err(|_| CliError("--machines takes an integer".into()))?;
            let class = flag(rest, "--class").unwrap_or_else(|| "i-hihi".into());
            let seed = flag(rest, "--seed")
                .map(|v| {
                    v.parse()
                        .map_err(|_| CliError("--seed takes an integer".into()))
                })
                .transpose()?
                .unwrap_or(0);
            Ok(Command::Generate {
                tasks,
                machines,
                class,
                seed,
            })
        }
        "map" | "iterate" => {
            let path = flag(rest, "--etc")
                .ok_or_else(|| CliError(format!("{sub} requires --etc FILE.csv")))?;
            let csv = std::fs::read_to_string(&path)
                .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
            let heuristic = flag(rest, "--heuristic")
                .ok_or_else(|| CliError(format!("{sub} requires --heuristic NAME")))?;
            let search = parse_search_opts(rest)?;
            if sub == "map" {
                Ok(Command::Map {
                    csv,
                    heuristic,
                    random_ties,
                    objective,
                    search,
                })
            } else {
                Ok(Command::Iterate {
                    csv,
                    heuristic,
                    random_ties,
                    guard: present(rest, "--guard"),
                    objective,
                    search,
                })
            }
        }
        "examples" => Ok(Command::Examples {
            only: rest.first().cloned(),
        }),
        "trace" => {
            let addr = flag(rest, "--addr");
            let example = flag(rest, "--example");
            let heuristic = flag(rest, "--heuristic");
            let csv = flag(rest, "--etc")
                .map(|path| {
                    std::fs::read_to_string(&path)
                        .map_err(|e| CliError(format!("cannot read {path}: {e}")))
                })
                .transpose()?;
            // `--heuristic minmin` alone is shorthand for the paper example
            // of that name, when one exists.
            let example = match (&example, &csv, &heuristic) {
                (None, None, Some(name)) if hcs_paper::example_by_id(name).is_some() => {
                    Some(name.clone())
                }
                _ => example,
            };
            if addr.is_none() && example.is_none() && (csv.is_none() || heuristic.is_none()) {
                return Err(CliError(format!(
                    "trace requires --example ID, --etc FILE.csv --heuristic NAME, \
                     or --addr HOST:PORT\n\n{USAGE}"
                )));
            }
            Ok(Command::Trace {
                example,
                csv,
                heuristic,
                random_ties,
                guard: present(rest, "--guard"),
                objective,
                addr,
                rid: rid_flag(rest)?,
            })
        }
        "serve" => {
            // Flag *syntax* (is it an integer?) is checked here; the
            // cross-field *semantics* (ranges, shard pairing) live in
            // `ServeConfigBuilder::build`, whose typed errors render the
            // same flag-speak messages.
            let uint = |name: &str| {
                flag(rest, name)
                    .map(|v| {
                        v.parse::<usize>()
                            .map_err(|_| CliError(format!("{name} takes an integer")))
                    })
                    .transpose()
            };
            let u64_flag = |name: &str| {
                flag(rest, name)
                    .map(|v| {
                        v.parse::<u64>()
                            .map_err(|_| CliError(format!("{name} takes an integer")))
                    })
                    .transpose()
            };
            let mut builder = hcs_service::ServeConfig::builder();
            if let Some(addr) = flag(rest, "--addr") {
                builder = builder.addr(addr);
            }
            if let Some(v) = uint("--workers")? {
                builder = builder.workers(v);
            }
            if let Some(v) = uint("--queue-depth")? {
                builder = builder.queue_depth(v);
            }
            if let Some(v) = uint("--cache-capacity")? {
                builder = builder.cache_capacity(v);
            }
            if let Some(v) = uint("--cache-shards")? {
                builder = builder.cache_shards(v);
            }
            if let Some(v) = uint("--trace-capacity")? {
                builder = builder.trace_capacity(v);
            }
            if let Some(v) = flag(rest, "--fault-rate") {
                let rate = v
                    .parse::<f64>()
                    .map_err(|_| CliError("--fault-rate takes a number in [0, 1]".into()))?;
                builder = builder.fault_rate(rate);
            }
            if let Some(v) = u64_flag("--fault-seed")? {
                builder = builder.fault_seed(v);
            }
            if let Some(v) = u64_flag("--shard-id")? {
                builder = builder.shard_id(v);
            }
            if let Some(v) = u64_flag("--fleet-size")? {
                builder = builder.fleet_size(v);
            }
            if let Some(v) = uint("--max-line-bytes")? {
                builder = builder.max_line_bytes(v);
            }
            if let Some(v) = u64_flag("--idle-timeout-ms")? {
                builder = builder.idle_timeout(std::time::Duration::from_millis(v));
            }
            let config = builder.build().map_err(|e| CliError(e.to_string()))?;
            Ok(Command::Serve { config })
        }
        "fleet" => {
            let size = flag(rest, "--size")
                .ok_or_else(|| CliError("fleet requires --size N".into()))?
                .parse::<usize>()
                .map_err(|_| CliError("--size takes an integer".into()))?;
            if size == 0 {
                return Err(CliError("--size must be at least 1".into()));
            }
            let workers = flag(rest, "--workers")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| CliError("--workers takes an integer".into()))
                })
                .transpose()?
                .unwrap_or(hcs_service::ServeConfig::default().workers);
            Ok(Command::Fleet { size, workers })
        }
        "mapc" => {
            let path = flag(rest, "--etc")
                .ok_or_else(|| CliError("mapc requires --etc FILE.csv".into()))?;
            let csv = std::fs::read_to_string(&path)
                .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
            let heuristic = flag(rest, "--heuristic")
                .ok_or_else(|| CliError("mapc requires --heuristic NAME".into()))?;
            let retries = flag(rest, "--retries")
                .map(|v| {
                    v.parse::<u32>()
                        .map_err(|_| CliError("--retries takes an integer".into()))
                })
                .transpose()?
                .unwrap_or(3);
            let timeout_ms = flag(rest, "--timeout-ms")
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| CliError("--timeout-ms takes an integer".into()))
                })
                .transpose()?
                .unwrap_or(5000);
            let batch = flag(rest, "--batch")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| CliError("--batch takes an integer".into()))
                })
                .transpose()?;
            let fleet = flag(rest, "--fleet").map(|v| {
                v.split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect::<Vec<_>>()
            });
            if matches!(&fleet, Some(addrs) if addrs.is_empty()) {
                return Err(CliError(
                    "--fleet takes a comma-separated list of HOST:PORT addresses".into(),
                ));
            }
            Ok(Command::Mapc {
                addr: flag(rest, "--addr")
                    .unwrap_or_else(|| hcs_service::ServeConfig::default().addr),
                fleet,
                csv,
                heuristic,
                random_ties,
                iterative: present(rest, "--iterative"),
                guard: present(rest, "--guard"),
                retries,
                timeout_ms,
                batch,
                objective,
                rid: rid_flag(rest)?,
            })
        }
        other => Err(CliError(format!("unknown subcommand {other:?}\n\n{USAGE}"))),
    }
}

/// Parses the optional `--rid` flag: a decimal integer or a `0x`-prefixed
/// hex one (the wire spelling is 16 hex digits, so `0x…` is the natural
/// way to paste an id back in).
fn rid_flag(rest: &[String]) -> Result<Option<u64>, CliError> {
    flag(rest, "--rid")
        .map(|v| {
            let v = v.trim();
            let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse::<u64>(),
            };
            parsed.map_err(|_| CliError("--rid takes a decimal or 0x-hex request id".into()))
        })
        .transpose()
}

/// Parses a Braun class label like `i-hihi`.
pub fn parse_class(label: &str) -> Result<(Consistency, Heterogeneity, Heterogeneity), CliError> {
    let err = || {
        CliError(format!(
            "bad class {label:?}; expected e.g. c-hihi, s-lolo, i-hilo"
        ))
    };
    let (c, h) = label.split_once('-').ok_or_else(err)?;
    let consistency = match c {
        "c" => Consistency::Consistent,
        "s" => Consistency::SemiConsistent,
        "i" => Consistency::Inconsistent,
        _ => return Err(err()),
    };
    let hetero = |s: &str| match s {
        "hi" => Ok(Heterogeneity::Hi),
        "lo" => Ok(Heterogeneity::Lo),
        _ => Err(err()),
    };
    if h.len() != 4 {
        return Err(err());
    }
    Ok((consistency, hetero(&h[..2])?, hetero(&h[2..])?))
}

/// Parses and validates the parallel-search flags. Rejecting `--threads 0`
/// and out-of-range `--islands` here puts bad knobs on the same typed
/// exit-2 path as an unknown heuristic or objective — never a panic from
/// deep inside an engine constructor.
fn parse_search_opts(rest: &[String]) -> Result<SearchOpts, CliError> {
    let mut opts = SearchOpts::default();
    if let Some(v) = flag(rest, "--threads") {
        opts.threads = v
            .parse()
            .map_err(|_| CliError("--threads takes an integer".into()))?;
        if opts.threads == 0 {
            return Err(CliError("--threads must be at least 1".into()));
        }
    }
    if let Some(v) = flag(rest, "--islands") {
        opts.islands = v
            .parse()
            .map_err(|_| CliError("--islands takes an integer".into()))?;
        let pop = GenitorConfig::default().pop_size;
        if opts.islands == 0 || opts.islands > pop {
            return Err(CliError(format!(
                "--islands must be in 1..={pop} (the population size), got {}",
                opts.islands
            )));
        }
    }
    if let Some(v) = flag(rest, "--migration-interval") {
        opts.migration_interval = v
            .parse()
            .map_err(|_| CliError("--migration-interval takes an integer".into()))?;
    }
    Ok(opts)
}

/// [`make_heuristic`] extended with the parallel-search names, built from
/// the `--threads`/`--islands`/`--migration-interval` knobs at equal
/// total budget (the default engine's step/hop budget is divided across
/// islands/restarts).
pub fn make_search_heuristic(
    name: &str,
    seed: u64,
    opts: &SearchOpts,
) -> Result<Box<dyn Heuristic>, CliError> {
    if name.eq_ignore_ascii_case("genitor-island") {
        let base = GenitorConfig::default();
        let genitor = GenitorConfig {
            max_steps: (base.max_steps / opts.islands).max(1),
            stall_steps: (base.stall_steps / opts.islands).max(1),
            ..base
        };
        return Ok(Box::new(IslandGenitor::with_config(
            seed,
            IslandConfig {
                islands: opts.islands,
                migration_interval: opts.migration_interval,
                genitor,
            },
        )));
    }
    if name.eq_ignore_ascii_case("sa-multi") {
        let restarts = MultiConfig::restarts_for(opts.threads);
        let base = hcs_heuristics::SaConfig::default();
        let sa = hcs_heuristics::SaConfig {
            max_steps: (base.max_steps / restarts).max(1),
            ..base
        };
        return Ok(Box::new(MultiSa::with_config(
            seed,
            MultiConfig {
                threads: opts.threads,
                restarts,
                adopt: true,
            },
            sa,
        )));
    }
    if name.eq_ignore_ascii_case("tabu-multi") {
        let restarts = MultiConfig::restarts_for(opts.threads);
        let base = hcs_heuristics::TabuConfig::default();
        let tabu = hcs_heuristics::TabuConfig {
            max_hops: (base.max_hops / restarts).max(1),
            ..base
        };
        return Ok(Box::new(MultiTabu::with_config(
            seed,
            MultiConfig {
                threads: opts.threads,
                restarts,
                adopt: true,
            },
            tabu,
        )));
    }
    make_heuristic(name, seed)
}

/// Instantiates a heuristic by CLI name (greedy by name, plus `genitor`
/// and `sa`, which get seeded from the tie seed or 0).
pub fn make_heuristic(name: &str, seed: u64) -> Result<Box<dyn Heuristic>, CliError> {
    if name.eq_ignore_ascii_case("genitor") {
        return Ok(Box::new(Genitor::new(seed)));
    }
    if name.eq_ignore_ascii_case("sa") {
        return Ok(Box::new(hcs_heuristics::Sa::new(seed)));
    }
    if name.eq_ignore_ascii_case("tabu") {
        return Ok(Box::new(hcs_heuristics::Tabu::new(seed)));
    }
    if name.eq_ignore_ascii_case("beam") {
        return Ok(Box::new(hcs_heuristics::BeamSearch::default()));
    }
    hcs_heuristics::by_name(name)
        .ok_or_else(|| CliError(format!("unknown heuristic {name:?}\n\n{USAGE}")))
}

/// Executes a command, returning the text to print.
pub fn execute(cmd: Command) -> Result<String, CliError> {
    match cmd {
        Command::Generate {
            tasks,
            machines,
            class,
            seed,
        } => {
            let (consistency, th, mh) = parse_class(&class)?;
            let spec = EtcSpec::braun(tasks, machines, consistency, th, mh);
            Ok(hcs_etcgen::io::to_csv(&spec.generate(seed)))
        }
        Command::Map {
            csv,
            heuristic,
            random_ties,
            objective,
            search,
        } => {
            let etc = hcs_etcgen::io::parse_csv(&csv)
                .map_err(|e| CliError(format!("bad ETC CSV: {e}")))?;
            let scenario = Scenario::with_zero_ready(etc).with_objective(objective);
            let mut h = make_search_heuristic(&heuristic, random_ties.unwrap_or(0), &search)?;
            let mut tb = tie_breaker(random_ties);
            let owned = scenario.full_instance();
            let mapping = h.map(&owned.as_instance(&scenario), &mut tb);
            let ct =
                mapping.completion_times(&scenario.etc, &scenario.initial_ready, &owned.machines);

            let mut out = String::new();
            let mut table = TextTable::new(vec!["step", "task", "machine"]);
            for (i, &(task, machine)) in mapping.order().iter().enumerate() {
                table.push_row(vec![
                    format!("{}", i + 1),
                    task.to_string(),
                    machine.to_string(),
                ]);
            }
            let _ = writeln!(out, "{table}");
            let mut summary = TextTable::new(vec!["machine", "completion time"]);
            for &(machine, time) in ct.pairs() {
                summary.push_row(vec![machine.to_string(), time.to_string()]);
            }
            let _ = writeln!(out, "{summary}");
            let (mk, ms) = ct.makespan_machine();
            let _ = writeln!(out, "makespan: {ms} on {mk}");
            if !objective.is_makespan() {
                let value = mapping.objective_value(
                    &scenario.etc,
                    &scenario.initial_ready,
                    &owned.machines,
                    objective,
                );
                let _ = writeln!(out, "{}: {value}", objective.name());
            }
            Ok(out)
        }
        Command::Iterate {
            csv,
            heuristic,
            random_ties,
            guard,
            objective,
            search,
        } => {
            let etc = hcs_etcgen::io::parse_csv(&csv)
                .map_err(|e| CliError(format!("bad ETC CSV: {e}")))?;
            let scenario = Scenario::with_zero_ready(etc).with_objective(objective);
            let mut h = make_search_heuristic(&heuristic, random_ties.unwrap_or(0), &search)?;
            let outcome = iterative::IterativeRun::new(&mut *h, &scenario)
                .tie_breaker(tie_breaker(random_ties))
                .config(IterativeConfig {
                    seed_guard: guard,
                    ..IterativeConfig::default()
                })
                .execute()
                .map_err(|e| CliError(format!("heuristic contract violation: {e}")))?;

            let mut out = String::new();
            if !objective.is_makespan() {
                // Under a non-makespan objective the driver freezes the
                // machine with the largest objective *contribution*; the
                // per-round makespan column reports that machine's
                // completion time.
                let _ = writeln!(out, "objective: {}", objective.name());
            }
            for (i, round) in outcome.rounds.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "round {i}: {} machines, {} tasks, makespan {} on {}{}",
                    round.machines.len(),
                    round.tasks.len(),
                    round.makespan,
                    round.makespan_machine,
                    if round.kept_seed { " (kept seed)" } else { "" }
                );
            }
            let mut deltas = TextTable::new(vec!["machine", "original", "final", "verdict"]);
            for (machine, orig, fin) in outcome.deltas() {
                let verdict = if fin < orig {
                    "improved"
                } else if fin > orig {
                    "worsened"
                } else {
                    "unchanged"
                };
                deltas.push_row(vec![
                    machine.to_string(),
                    orig.to_string(),
                    fin.to_string(),
                    verdict.to_string(),
                ]);
            }
            let _ = writeln!(out, "\n{deltas}");
            let _ = writeln!(
                out,
                "makespan: {} -> {} ({})",
                outcome.original_makespan(),
                outcome.final_makespan(),
                if outcome.makespan_increased() {
                    "INCREASED"
                } else {
                    "ok"
                }
            );
            let round0 = &outcome.rounds[0];
            let gantt = Gantt::from_mapping(
                &round0.mapping,
                &scenario.etc,
                &scenario.initial_ready,
                &round0.machines,
            );
            let _ = writeln!(out, "\noriginal mapping:\n{}", gantt.render());
            Ok(out)
        }
        Command::Examples { only } => {
            let examples = match only {
                Some(id) => vec![hcs_paper::example_by_id(&id)
                    .ok_or_else(|| CliError(format!("unknown example {id:?}\n\n{USAGE}")))?],
                None => hcs_paper::all_examples(),
            };
            let mut out = String::new();
            let mut table = TextTable::new(vec![
                "example",
                "original makespan",
                "final makespan",
                "verified",
            ]);
            for example in &examples {
                let outcome = example.run();
                let report = hcs_paper::verify_example(example);
                table.push_row(vec![
                    example.id.to_string(),
                    outcome.original_makespan().to_string(),
                    outcome.final_makespan().to_string(),
                    if report.all_ok() { "yes" } else { "NO" }.to_string(),
                ]);
            }
            let _ = writeln!(out, "{table}");
            let _ = writeln!(
                out,
                "Run `cargo run -p hcs-bench --bin repro` for the full tables and figures."
            );
            Ok(out)
        }
        Command::Trace {
            example,
            csv,
            heuristic,
            random_ties,
            guard,
            objective,
            addr,
            rid,
        } => {
            // Daemon-query mode: fetch the running daemon's trace ring
            // (optionally filtered to one rid's events and phase spans)
            // and print the JSON reply as-is.
            if let Some(addr) = addr {
                let mut client = hcs_client::Client::new(&addr);
                let reply = client
                    .trace(rid)
                    .map_err(|e| CliError(format!("daemon trace failed: {e}")))?;
                return Ok(format!("{reply}\n"));
            }
            // Resolve the run: a paper example replays its scripted ties;
            // CSV mode mirrors `iterate`.
            let (scenario, mut h, mut tb, config) = match example {
                Some(id) => {
                    let ex = hcs_paper::example_by_id(&id)
                        .ok_or_else(|| CliError(format!("unknown example {id:?}\n\n{USAGE}")))?;
                    (
                        ex.scenario(),
                        ex.make_heuristic(),
                        ex.tie_breaker(),
                        IterativeConfig::default(),
                    )
                }
                None => {
                    let csv = csv.expect("parse guaranteed csv in non-example mode");
                    let name = heuristic.expect("parse guaranteed heuristic");
                    let etc = hcs_etcgen::io::parse_csv(&csv)
                        .map_err(|e| CliError(format!("bad ETC CSV: {e}")))?;
                    (
                        Scenario::with_zero_ready(etc).with_objective(objective),
                        make_heuristic(&name, random_ties.unwrap_or(0))?,
                        tie_breaker(random_ties),
                        IterativeConfig {
                            seed_guard: guard,
                            ..IterativeConfig::default()
                        },
                    )
                }
            };
            let sink = std::sync::Arc::new(VecSink::new());
            let dyn_sink: std::sync::Arc<dyn TraceSink> = std::sync::Arc::clone(&sink) as _;
            let mut ws = hcs_core::MapWorkspace::new();
            iterative::IterativeRun::new(&mut *h, &scenario)
                .ties(&mut tb)
                .config(config)
                .workspace(&mut ws)
                .trace(&dyn_sink)
                .execute()
                .map_err(|e| CliError(format!("heuristic contract violation: {e}")))?;
            let mut out = String::new();
            for (seq, event) in sink.take().into_iter().enumerate() {
                let _ = writeln!(out, "{}", event.to_json_line(seq as u64));
            }
            Ok(out)
        }
        Command::Serve { config } => {
            let workers = config.workers;
            let server = hcs_service::Server::start(config)
                .map_err(|e| CliError(format!("cannot start daemon: {e}")))?;
            // Announce readiness immediately (scripts wait for this line);
            // the returned text is the post-shutdown summary.
            println!(
                "listening on {} ({} workers); send {{\"op\":\"shutdown\"}} to stop",
                server.local_addr(),
                workers
            );
            let final_stats = server.join();
            Ok(format!("daemon stopped; final stats: {final_stats}\n"))
        }
        Command::Fleet { size, workers } => {
            let mut servers = Vec::with_capacity(size);
            for i in 0..size {
                let config = hcs_service::ServeConfig::builder()
                    .addr("127.0.0.1:0")
                    .workers(workers)
                    .shard(hcs_service::ShardIdentity {
                        shard_id: i as u64,
                        fleet_size: size as u64,
                    })
                    .build()
                    .map_err(|e| CliError(format!("invalid shard {i} config: {e}")))?;
                let server = hcs_service::Server::start(config)
                    .map_err(|e| CliError(format!("cannot start shard {i}: {e}")))?;
                servers.push(server);
            }
            let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
            // Announce readiness immediately (scripts wait for this line);
            // the returned text is the post-shutdown summary.
            println!(
                "fleet of {size} shards listening: {}\nroute with `mapc --fleet {}`; each shard stops on its own {{\"op\":\"shutdown\"}}",
                addrs.join(" "),
                addrs.join(","),
            );
            let mut out = String::new();
            for (i, server) in servers.into_iter().enumerate() {
                let final_stats = server.join();
                let _ = writeln!(out, "shard {i} stopped; final stats: {final_stats}");
            }
            Ok(out)
        }
        Command::Mapc {
            addr,
            fleet,
            csv,
            heuristic,
            random_ties,
            iterative,
            guard,
            retries,
            timeout_ms,
            batch,
            objective,
            rid,
        } => {
            let etc = hcs_etcgen::io::parse_csv(&csv)
                .map_err(|e| CliError(format!("bad ETC CSV: {e}")))?;
            let request = hcs_service::MapRequest {
                scenario: Scenario::with_zero_ready(etc).with_objective(objective),
                heuristic,
                random_ties,
                iterative,
                guard,
                sleep_ms: 0,
                rid,
            };
            let client_config = hcs_client::ClientConfig {
                read_timeout: std::time::Duration::from_millis(timeout_ms),
                retries,
                ..hcs_client::ClientConfig::default()
            };
            let mut out = String::new();
            let fmt_opt = |v: Option<String>| v.unwrap_or_else(|| "-".into());
            let render_single = |out: &mut String, reply: &hcs_client::MapReply| {
                let _ = writeln!(
                    out,
                    "heuristic: {} (cached: {})",
                    reply.heuristic, reply.cached
                );
                if let Some(rid) = reply.rid {
                    let _ = writeln!(out, "rid: {rid:016x}");
                }
                let _ = writeln!(out, "makespan: {}", reply.makespan);
                if let (Some(name), Some(value)) =
                    (reply.objective.as_deref(), reply.objective_value)
                {
                    let _ = writeln!(out, "{name}: {value}");
                }
                if let (Some(fin), Some(rounds)) = (reply.final_makespan, reply.rounds) {
                    let _ = writeln!(out, "final makespan: {fin} after {rounds} rounds");
                }
            };
            let render_batch = |out: &mut String,
                                rows: &mut dyn Iterator<
                Item = Result<&hcs_client::MapReply, String>,
            >| {
                let mut table =
                    TextTable::new(vec!["item", "cached", "makespan", "final", "rounds"]);
                for (i, result) in rows.enumerate() {
                    match result {
                        Ok(reply) => table.push_row(vec![
                            i.to_string(),
                            reply.cached.to_string(),
                            reply.makespan.to_string(),
                            fmt_opt(reply.final_makespan.map(|v| v.to_string())),
                            fmt_opt(reply.rounds.map(|v| v.to_string())),
                        ]),
                        Err(e) => table.push_row(vec![
                            i.to_string(),
                            "-".into(),
                            format!("error: {e}"),
                            "-".into(),
                            "-".into(),
                        ]),
                    }
                }
                let _ = writeln!(out, "{table}");
            };
            if let Some(addrs) = fleet {
                let mut client = hcs_client::fleet::FleetClient::with_config(
                    &addrs,
                    hcs_client::fleet::FleetConfig {
                        client: client_config,
                        ..hcs_client::fleet::FleetConfig::default()
                    },
                );
                match batch {
                    None => {
                        let _ = writeln!(out, "routed to: {}", client.node_for(&request));
                        let reply = client
                            .map(&request)
                            .map_err(|e| CliError(format!("fleet request failed: {e}")))?;
                        render_single(&mut out, &reply);
                    }
                    Some(k) => {
                        let items = vec![request; k];
                        let results = client.map_batch(&items);
                        render_batch(
                            &mut out,
                            &mut results
                                .iter()
                                .map(|r| r.as_ref().map_err(|e| e.to_string())),
                        );
                    }
                }
            } else {
                let mut client = hcs_client::Client::with_config(&addr, client_config);
                match batch {
                    None => {
                        let reply = client
                            .map(&request)
                            .map_err(|e| CliError(format!("daemon request failed: {e}")))?;
                        render_single(&mut out, &reply);
                    }
                    Some(k) => {
                        let items = vec![request; k];
                        let results = client
                            .map_batch(&items)
                            .map_err(|e| CliError(format!("daemon batch failed: {e}")))?;
                        render_batch(
                            &mut out,
                            &mut results
                                .iter()
                                .map(|r| r.as_ref().map_err(|e| e.to_string())),
                        );
                    }
                }
            }
            Ok(out)
        }
    }
}

fn tie_breaker(random_ties: Option<u64>) -> TieBreaker {
    match random_ties {
        Some(seed) => TieBreaker::random(seed),
        None => TieBreaker::Deterministic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn generate_produces_parseable_csv() {
        let cmd = parse(&strs(&[
            "generate",
            "--tasks",
            "5",
            "--machines",
            "3",
            "--class",
            "c-lolo",
            "--seed",
            "7",
        ]))
        .unwrap();
        let out = execute(cmd).unwrap();
        let etc = hcs_etcgen::io::parse_csv(&out).unwrap();
        assert_eq!(etc.n_tasks(), 5);
        assert_eq!(etc.n_machines(), 3);
    }

    #[test]
    fn map_prints_assignments_and_makespan() {
        let csv = "2,6\n3,4\n8,3\n".to_string();
        let out = execute(Command::Map {
            csv,
            heuristic: "min-min".into(),
            random_ties: None,
            objective: Objective::Makespan,
            search: SearchOpts::default(),
        })
        .unwrap();
        assert!(out.contains("makespan: 5 on m0"), "{out}");
        assert!(out.contains("t0"), "{out}");
        // No objective line in the default (makespan) output.
        assert!(!out.contains("flowtime"), "{out}");
    }

    #[test]
    fn objective_flag_parses_validates_and_prints() {
        let dir = std::env::temp_dir().join("nonmakespan-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("objective.csv");
        std::fs::write(&path, "2,6\n3,4\n8,3\n").unwrap();
        let path = path.to_str().unwrap().to_string();

        let cmd = parse(&strs(&[
            "map",
            "--etc",
            &path,
            "--heuristic",
            "min-min",
            "--objective",
            "flowtime",
        ]))
        .unwrap();
        match &cmd {
            Command::Map { objective, .. } => assert_eq!(*objective, Objective::Flowtime),
            other => panic!("expected map, got {other:?}"),
        }
        let out = execute(cmd).unwrap();
        assert!(out.contains("flowtime:"), "{out}");

        // Unknown names are usage errors (exit 2 through main), exactly
        // like an unknown heuristic — never a silent makespan run.
        let err = parse(&strs(&[
            "map",
            "--etc",
            &path,
            "--heuristic",
            "min-min",
            "--objective",
            "banana",
        ]))
        .unwrap_err();
        assert!(err.0.contains("objective"), "{err}");

        // Omitting the flag means makespan.
        let cmd = parse(&strs(&["iterate", "--etc", &path, "--heuristic", "mct"])).unwrap();
        match cmd {
            Command::Iterate { objective, .. } => assert!(objective.is_makespan()),
            other => panic!("expected iterate, got {other:?}"),
        }
    }

    #[test]
    fn parallel_search_flags_parse_validate_and_run() {
        let dir = std::env::temp_dir().join("nonmakespan-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("parallel.csv");
        std::fs::write(&path, "2,6\n3,4\n8,3\n5,2\n").unwrap();
        let path = path.to_str().unwrap().to_string();

        let cmd = parse(&strs(&[
            "map",
            "--etc",
            &path,
            "--heuristic",
            "genitor-island",
            "--islands",
            "2",
            "--migration-interval",
            "50",
        ]))
        .unwrap();
        match &cmd {
            Command::Map { search, .. } => {
                assert_eq!(search.islands, 2);
                assert_eq!(search.migration_interval, 50);
            }
            other => panic!("expected map, got {other:?}"),
        }
        let out = execute(cmd).unwrap();
        assert!(out.contains("makespan:"), "{out}");

        // sa-multi and tabu-multi run through the iterative driver too.
        let out = execute(
            parse(&strs(&[
                "iterate",
                "--etc",
                &path,
                "--heuristic",
                "sa-multi",
                "--threads",
                "2",
            ]))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("round 0"), "{out}");

        // Invalid knobs are usage errors (exit 2 through main).
        for bad in [
            vec![
                "map",
                "--etc",
                &path,
                "--heuristic",
                "sa-multi",
                "--threads",
                "0",
            ],
            vec![
                "map",
                "--etc",
                &path,
                "--heuristic",
                "genitor-island",
                "--islands",
                "0",
            ],
            vec![
                "map",
                "--etc",
                &path,
                "--heuristic",
                "genitor-island",
                "--islands",
                "101",
            ],
        ] {
            let err = parse(&strs(&bad)).unwrap_err();
            assert!(
                err.0.contains("--threads") || err.0.contains("--islands"),
                "{err}"
            );
        }
    }

    #[test]
    fn iterate_runs_under_flowtime() {
        let out = execute(Command::Iterate {
            csv: "2,6\n3,4\n8,3\n".into(),
            heuristic: "sufferage".into(),
            random_ties: None,
            guard: false,
            objective: Objective::Flowtime,
            search: SearchOpts::default(),
        })
        .unwrap();
        assert!(out.contains("objective: flowtime"), "{out}");
        assert!(out.contains("round 0"), "{out}");
    }

    #[test]
    fn iterate_reports_rounds_and_deltas() {
        let csv = "2,6\n3,4\n8,3\n".to_string();
        let out = execute(Command::Iterate {
            csv,
            heuristic: "sufferage".into(),
            random_ties: None,
            guard: false,
            objective: Objective::Makespan,
            search: SearchOpts::default(),
        })
        .unwrap();
        assert!(out.contains("round 0"), "{out}");
        assert!(out.contains("round 1"), "{out}");
        assert!(out.contains("original mapping:"), "{out}");
        assert!(out.contains("unchanged") || out.contains("improved") || out.contains("worsened"));
    }

    #[test]
    fn examples_summary_verifies() {
        let out = execute(Command::Examples { only: None }).unwrap();
        for id in ["minmin", "mct", "met", "swa", "kpb", "sufferage"] {
            assert!(out.contains(id), "{out}");
        }
        assert!(!out.contains("NO"), "{out}");

        let one = execute(Command::Examples {
            only: Some("swa".into()),
        })
        .unwrap();
        assert!(one.contains("6.5"), "{one}");
    }

    #[test]
    fn class_labels_parse() {
        assert!(parse_class("c-hihi").is_ok());
        assert!(parse_class("s-lolo").is_ok());
        assert!(parse_class("i-hilo").is_ok());
        assert!(parse_class("x-hihi").is_err());
        assert!(parse_class("c-hi").is_err());
        assert!(parse_class("chihi").is_err());
    }

    #[test]
    fn bad_usage_is_reported() {
        assert!(parse(&[]).is_err());
        assert!(parse(&strs(&["bogus"])).is_err());
        assert!(parse(&strs(&["generate"])).is_err()); // missing --tasks
        assert!(parse(&strs(&[
            "map",
            "--etc",
            "/nonexistent.csv",
            "--heuristic",
            "mct"
        ]))
        .is_err());
        assert!(make_heuristic("nope", 0).is_err());
        assert!(make_heuristic("genitor", 0).is_ok());
        assert!(make_heuristic("sa", 0).is_ok());
        assert!(make_heuristic("tabu", 0).is_ok());
        assert!(make_heuristic("beam", 0).is_ok());
    }

    #[test]
    fn trace_jsonl_matches_the_example_outcome() {
        use hcs_service::json::{parse as jparse, Value};
        let out = execute(parse(&strs(&["trace", "--example", "minmin"])).unwrap()).unwrap();
        let ex = hcs_paper::example_by_id("minmin").unwrap();
        let outcome = ex.run();

        let events: Vec<Value> = out
            .lines()
            .map(|l| jparse(l).expect("JSONL line"))
            .collect();
        assert!(!events.is_empty());
        // Sequence numbers count up from zero, one per line.
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.get("seq").and_then(Value::as_u64), Some(i as u64));
        }
        let of_kind = |kind: &str| -> Vec<&Value> {
            events
                .iter()
                .filter(|e| e.get("event").and_then(Value::as_str) == Some(kind))
                .collect()
        };

        // One round_end per driver round, agreeing on machine and makespan.
        let round_ends = of_kind("round_end");
        assert_eq!(round_ends.len(), outcome.rounds.len());
        for (i, e) in round_ends.iter().enumerate() {
            let round = &outcome.rounds[i];
            assert_eq!(e.get("round").and_then(Value::as_u64), Some(i as u64));
            assert_eq!(
                e.get("makespan").and_then(Value::as_f64),
                Some(round.makespan.get())
            );
            assert_eq!(
                e.get("makespan_machine").and_then(Value::as_u64),
                Some(u64::from(round.makespan_machine.0))
            );
        }
        assert_eq!(of_kind("round_start").len(), outcome.rounds.len());
        assert_eq!(of_kind("kernel_phases").len(), outcome.rounds.len());

        // One finish_delta per machine, matching the outcome's deltas.
        let deltas = of_kind("finish_delta");
        let expected: Vec<(u64, f64, f64)> = outcome
            .deltas()
            .into_iter()
            .map(|(m, orig, fin)| (u64::from(m.0), orig.get(), fin.get()))
            .collect();
        assert_eq!(deltas.len(), expected.len());
        for (e, (m, orig, fin)) in deltas.iter().zip(&expected) {
            assert_eq!(e.get("machine").and_then(Value::as_u64), Some(*m));
            assert_eq!(e.get("original").and_then(Value::as_f64), Some(*orig));
            assert_eq!(e.get("final").and_then(Value::as_f64), Some(*fin));
        }
    }

    #[test]
    fn trace_heuristic_shorthand_and_csv_mode() {
        // `--heuristic minmin` alone resolves to the paper example.
        let cmd = parse(&strs(&["trace", "--heuristic", "minmin"])).unwrap();
        match &cmd {
            Command::Trace { example, .. } => assert_eq!(example.as_deref(), Some("minmin")),
            other => panic!("expected trace, got {other:?}"),
        }
        let shorthand = execute(cmd).unwrap();
        let explicit = execute(parse(&strs(&["trace", "--example", "minmin"])).unwrap()).unwrap();
        assert_eq!(shorthand.lines().count(), explicit.lines().count());

        // CSV mode works through Command construction (no temp files).
        let out = execute(Command::Trace {
            example: None,
            csv: Some("2,6\n3,4\n8,3\n".into()),
            heuristic: Some("sufferage".into()),
            random_ties: None,
            guard: false,
            objective: Objective::Makespan,
            addr: None,
            rid: None,
        })
        .unwrap();
        assert!(out.contains("\"event\":\"round_end\""), "{out}");
        assert!(out.contains("\"event\":\"task_committed\""), "{out}");

        // Missing both sources is a usage error (`olb` is a heuristic but
        // not a paper example, so the shorthand cannot resolve it).
        assert!(parse(&strs(&["trace"])).is_err());
        assert!(parse(&strs(&["trace", "--heuristic", "olb"])).is_err());
    }

    #[test]
    fn serve_flags_parse_with_defaults() {
        let cmd = parse(&strs(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--queue-depth",
            "8",
        ]))
        .unwrap();
        match cmd {
            Command::Serve { config } => {
                assert_eq!(config.addr, "127.0.0.1:0");
                assert_eq!(config.workers, 2);
                assert_eq!(config.queue_depth, 8);
                // Unspecified flags fall back to the service defaults.
                let defaults = hcs_service::ServeConfig::default();
                assert_eq!(config.cache_capacity, defaults.cache_capacity);
                assert_eq!(config.cache_shards, defaults.cache_shards);
            }
            other => panic!("expected serve, got {other:?}"),
        }
        assert!(parse(&strs(&["serve", "--workers", "many"])).is_err());
    }

    #[test]
    fn serve_fault_flags_parse_and_validate() {
        let cmd = parse(&strs(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--fault-rate",
            "0.25",
            "--fault-seed",
            "99",
        ]))
        .unwrap();
        match cmd {
            Command::Serve { config } => {
                assert_eq!(config.fault_rate, 0.25);
                assert_eq!(config.fault_seed, 99);
            }
            other => panic!("expected serve, got {other:?}"),
        }
        assert!(parse(&strs(&["serve", "--fault-rate", "1.5"])).is_err());
        assert!(parse(&strs(&["serve", "--fault-rate", "lots"])).is_err());
    }

    #[test]
    fn serve_shard_flags_parse_and_validate() {
        let cmd = parse(&strs(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--shard-id",
            "1",
            "--fleet-size",
            "4",
        ]))
        .unwrap();
        match cmd {
            Command::Serve { config } => {
                assert_eq!(
                    config.shard,
                    Some(hcs_service::ShardIdentity {
                        shard_id: 1,
                        fleet_size: 4
                    })
                );
            }
            other => panic!("expected serve, got {other:?}"),
        }
        // Standalone serve carries no identity.
        match parse(&strs(&["serve"])).unwrap() {
            Command::Serve { config } => assert_eq!(config.shard, None),
            other => panic!("expected serve, got {other:?}"),
        }
        // Half an identity or an out-of-range one is a usage error.
        assert!(parse(&strs(&["serve", "--shard-id", "0"])).is_err());
        assert!(parse(&strs(&["serve", "--fleet-size", "2"])).is_err());
        assert!(parse(&strs(&["serve", "--shard-id", "4", "--fleet-size", "4"])).is_err());
        assert!(parse(&strs(&["serve", "--shard-id", "0", "--fleet-size", "0"])).is_err());
    }

    #[test]
    fn fleet_flags_parse_and_validate() {
        match parse(&strs(&["fleet", "--size", "3", "--workers", "2"])).unwrap() {
            Command::Fleet { size, workers } => {
                assert_eq!(size, 3);
                assert_eq!(workers, 2);
            }
            other => panic!("expected fleet, got {other:?}"),
        }
        assert!(parse(&strs(&["fleet"])).is_err()); // missing --size
        assert!(parse(&strs(&["fleet", "--size", "0"])).is_err());
        assert!(parse(&strs(&["fleet", "--size", "many"])).is_err());
    }

    #[test]
    fn mapc_fleet_flag_parses_a_comma_list() {
        let dir = std::env::temp_dir().join("nonmakespan-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mapc-fleet.csv");
        std::fs::write(&path, "2,6\n3,4\n8,3\n").unwrap();
        let path = path.to_str().unwrap().to_string();

        let cmd = parse(&strs(&[
            "mapc",
            "--etc",
            &path,
            "--heuristic",
            "mct",
            "--fleet",
            "127.0.0.1:7077, 127.0.0.1:7078",
        ]))
        .unwrap();
        match cmd {
            Command::Mapc { fleet, .. } => {
                assert_eq!(
                    fleet,
                    Some(vec![
                        "127.0.0.1:7077".to_string(),
                        "127.0.0.1:7078".to_string()
                    ])
                );
            }
            other => panic!("expected mapc, got {other:?}"),
        }
        assert!(parse(&strs(&[
            "mapc",
            "--etc",
            &path,
            "--heuristic",
            "mct",
            "--fleet",
            ","
        ]))
        .is_err());
    }

    #[test]
    fn mapc_fleet_end_to_end_against_a_two_shard_fleet() {
        let start = |shard_id: u64| {
            let config = hcs_service::ServeConfig::builder()
                .addr("127.0.0.1:0")
                .workers(1)
                .shard(hcs_service::ShardIdentity {
                    shard_id,
                    fleet_size: 2,
                })
                .build()
                .unwrap();
            hcs_service::Server::start(config).unwrap()
        };
        let (a, b) = (start(0), start(1));
        let addrs = format!("{},{}", a.local_addr(), b.local_addr());
        let mapc = |batch: Option<usize>| Command::Mapc {
            addr: "unused:0".into(),
            fleet: Some(addrs.split(',').map(str::to_string).collect()),
            csv: "2,6\n3,4\n8,3\n".into(),
            heuristic: "min-min".into(),
            random_ties: None,
            iterative: true,
            guard: false,
            retries: 2,
            timeout_ms: 5000,
            batch,
            objective: Objective::Makespan,
            rid: None,
        };

        let single = execute(mapc(None)).unwrap();
        assert!(single.contains("routed to: 127.0.0.1:"), "{single}");
        assert!(single.contains("makespan: 5"), "{single}");

        let batched = execute(mapc(Some(3))).unwrap();
        assert!(!batched.contains("error:"), "{batched}");

        for server in [a, b] {
            server.stop();
            server.join();
        }
    }

    #[test]
    fn mapc_fleet_with_unreachable_nodes_fails_with_a_connect_error() {
        // Nothing listens on these ports; the fleet client must exhaust
        // the ring and surface a typed connect error (exit 2 via main).
        let err = execute(Command::Mapc {
            addr: "unused:0".into(),
            fleet: Some(vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()]),
            csv: "2,6\n3,4\n8,3\n".into(),
            heuristic: "min-min".into(),
            random_ties: None,
            iterative: false,
            guard: false,
            retries: 0,
            timeout_ms: 200,
            batch: None,
            objective: Objective::Makespan,
            rid: None,
        })
        .unwrap_err();
        assert!(err.0.contains("Connect"), "{err}");
        assert!(err.0.contains("2 nodes"), "{err}");
    }

    #[test]
    fn mapc_flags_parse() {
        let dir = std::env::temp_dir().join("nonmakespan-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mapc.csv");
        std::fs::write(&path, "2,6\n3,4\n8,3\n").unwrap();
        let path = path.to_str().unwrap().to_string();

        let cmd = parse(&strs(&[
            "mapc",
            "--etc",
            &path,
            "--heuristic",
            "min-min",
            "--iterative",
            "--retries",
            "7",
            "--timeout-ms",
            "250",
            "--batch",
            "4",
        ]))
        .unwrap();
        match cmd {
            Command::Mapc {
                heuristic,
                iterative,
                retries,
                timeout_ms,
                batch,
                ..
            } => {
                assert_eq!(heuristic, "min-min");
                assert!(iterative);
                assert_eq!(retries, 7);
                assert_eq!(timeout_ms, 250);
                assert_eq!(batch, Some(4));
            }
            other => panic!("expected mapc, got {other:?}"),
        }
        assert!(parse(&strs(&["mapc", "--etc", &path])).is_err()); // no heuristic
        assert!(parse(&strs(&["mapc", "--heuristic", "mct"])).is_err()); // no etc
    }

    #[test]
    fn mapc_end_to_end_against_a_faulty_daemon() {
        // A daemon with a 20% injected-fault rate: the client-mode retry
        // budget must absorb the faults for both shapes of request.
        let config = hcs_service::ServeConfig::builder()
            .addr("127.0.0.1:0")
            .workers(2)
            .queue_depth(16)
            .cache_capacity(64)
            .cache_shards(2)
            .trace_capacity(0)
            .fault_rate(0.2)
            .fault_seed(11)
            .build()
            .unwrap();
        let server = hcs_service::Server::start(config).unwrap();
        let addr = server.local_addr().to_string();
        let mapc = |batch: Option<usize>| Command::Mapc {
            addr: addr.clone(),
            fleet: None,
            csv: "2,6\n3,4\n8,3\n".into(),
            heuristic: "min-min".into(),
            random_ties: None,
            iterative: true,
            guard: false,
            retries: 16,
            timeout_ms: 5000,
            batch,
            objective: Objective::Makespan,
            rid: None,
        };

        let single = execute(mapc(None)).unwrap();
        assert!(single.contains("heuristic: Min-Min"), "{single}");
        assert!(single.contains("makespan: 5"), "{single}");
        assert!(single.contains("final makespan:"), "{single}");

        let batched = execute(mapc(Some(3))).unwrap();
        // Identical items: the batch answers every row, none as an error
        // (the first may or may not be the cache miss depending on the
        // single request above — only failure-freeness is asserted).
        assert_eq!(
            batched
                .lines()
                .filter(|l| l.starts_with(char::is_numeric))
                .count(),
            3,
            "{batched}"
        );
        assert!(!batched.contains("error:"), "{batched}");

        server.stop();
        server.join();
    }

    #[test]
    fn rid_flag_parses_decimal_and_hex() {
        let dir = std::env::temp_dir().join("nonmakespan-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rid.csv");
        std::fs::write(&path, "2,6\n3,4\n").unwrap();
        let parse_rid = |spelling: &str| match parse(&strs(&[
            "mapc",
            "--etc",
            path.to_str().unwrap(),
            "--heuristic",
            "mct",
            "--rid",
            spelling,
        ]))
        .unwrap()
        {
            Command::Mapc { rid, .. } => rid,
            other => panic!("expected mapc, got {other:?}"),
        };
        assert_eq!(parse_rid("42"), Some(42));
        assert_eq!(parse_rid("0x2a"), Some(42));
        assert_eq!(parse_rid("0X2A"), Some(42));
        assert!(parse(&strs(&[
            "mapc",
            "--etc",
            path.to_str().unwrap(),
            "--heuristic",
            "mct",
            "--rid",
            "not-a-rid",
        ]))
        .is_err());

        // `trace --addr` alone parses (daemon-query mode needs neither an
        // example nor a CSV); a rid filter rides along.
        match parse(&strs(&[
            "trace",
            "--addr",
            "127.0.0.1:7077",
            "--rid",
            "0x2a",
        ]))
        .unwrap()
        {
            Command::Trace { addr, rid, .. } => {
                assert_eq!(addr.as_deref(), Some("127.0.0.1:7077"));
                assert_eq!(rid, Some(42));
            }
            other => panic!("expected trace, got {other:?}"),
        }
    }

    #[test]
    fn mapc_rid_echoes_and_trace_addr_queries_the_daemon() {
        let config = hcs_service::ServeConfig::builder()
            .addr("127.0.0.1:0")
            .workers(1)
            .queue_depth(16)
            .cache_capacity(16)
            .cache_shards(1)
            .trace_capacity(64)
            .build()
            .unwrap();
        let server = hcs_service::Server::start(config).unwrap();
        let addr = server.local_addr().to_string();

        let out = execute(Command::Mapc {
            addr: addr.clone(),
            fleet: None,
            csv: "2,6\n3,4\n8,3\n".into(),
            heuristic: "min-min".into(),
            random_ties: None,
            iterative: false,
            guard: false,
            retries: 2,
            timeout_ms: 5000,
            batch: None,
            objective: Objective::Makespan,
            rid: Some(0x2a),
        })
        .unwrap();
        assert!(out.contains("rid: 000000000000002a"), "{out}");

        // The daemon-side timeline comes back through `trace --addr`,
        // filtered to exactly that rid.
        let trace = execute(Command::Trace {
            example: None,
            csv: None,
            heuristic: None,
            random_ties: None,
            guard: false,
            objective: Objective::Makespan,
            addr: Some(addr),
            rid: Some(0x2a),
        })
        .unwrap();
        assert!(trace.contains("\"rid\":\"000000000000002a\""), "{trace}");
        for phase in ["cache_probe", "queue_wait", "kernel_map", "serialize"] {
            assert!(trace.contains(phase), "missing {phase}: {trace}");
        }

        server.stop();
        server.join();
    }

    #[test]
    fn random_ties_flag_changes_policy() {
        let csv = "3,3\n3,3\n".to_string();
        // With random ties and enough seeds, at least two distinct first
        // assignments appear.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..16 {
            let out = execute(Command::Map {
                csv: csv.clone(),
                heuristic: "mct".into(),
                random_ties: Some(seed),
                objective: Objective::Makespan,
                search: SearchOpts::default(),
            })
            .unwrap();
            let first_line = out
                .lines()
                .find(|l| l.starts_with('1'))
                .unwrap()
                .to_string();
            seen.insert(first_line);
        }
        assert!(seen.len() > 1, "random ties should vary: {seen:?}");
    }
}
