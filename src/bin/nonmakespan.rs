//! The `nonmakespan` command-line tool. All logic lives in
//! `nonmakespan::cli` (library side, unit-tested); this is the thin shell.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match nonmakespan::cli::parse(&args).and_then(nonmakespan::cli::execute) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
