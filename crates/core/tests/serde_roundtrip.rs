//! JSON round-trips for the core model types — experiment outputs are
//! archived as serialized structures, so every public data type must
//! survive serialize → deserialize unchanged.

use hcs_core::{
    iterative, select, EtcMatrix, Heuristic, Instance, IterativeOutcome, MachineId, Mapping,
    ReadyTimes, Scenario, TaskId, TieBreaker, Time,
};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn time_serializes_transparently() {
    let t = Time::new(6.5);
    assert_eq!(serde_json::to_string(&t).unwrap(), "6.5");
    assert_eq!(roundtrip(&t), t);
}

#[test]
fn ids_round_trip() {
    assert_eq!(roundtrip(&TaskId(7)), TaskId(7));
    assert_eq!(roundtrip(&MachineId(3)), MachineId(3));
}

#[test]
fn etc_matrix_round_trips() {
    let etc = EtcMatrix::from_rows(&[vec![1.0, 2.5], vec![3.0, 4.0]]).unwrap();
    assert_eq!(roundtrip(&etc), etc);
}

#[test]
fn scenario_and_ready_times_round_trip() {
    let etc = EtcMatrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
    let scenario = Scenario::with_ready(etc, ReadyTimes::from_values(&[0.5, 0.0]));
    assert_eq!(roundtrip(&scenario), scenario);
}

#[test]
fn mapping_round_trips_with_order() {
    let mut mapping = Mapping::new(3);
    mapping.assign(TaskId(2), MachineId(1)).unwrap();
    mapping.assign(TaskId(0), MachineId(1)).unwrap();
    let back = roundtrip(&mapping);
    assert_eq!(back, mapping);
    assert_eq!(back.order(), mapping.order());
    assert_eq!(back.tasks_on(MachineId(1)), vec![TaskId(2), TaskId(0)]);
}

#[test]
fn full_iterative_outcome_round_trips() {
    struct MiniMct;
    impl Heuristic for MiniMct {
        fn name(&self) -> &'static str {
            "mini"
        }
        fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
            let mut ready = inst.working_ready();
            let mut map = Mapping::new(inst.etc.n_tasks());
            for &task in inst.tasks {
                let (cands, _) = select::min_candidates(
                    inst.machines.iter().map(|&m| (m, inst.ct(task, m, &ready))),
                );
                let machine = cands[tb.pick(cands.len())];
                ready.advance(machine, inst.etc.get(task, machine));
                map.assign(task, machine).unwrap();
            }
            map
        }
    }
    let scenario = Scenario::with_zero_ready(
        EtcMatrix::from_rows(&[
            vec![2.0, 5.0, 9.0],
            vec![4.0, 1.0, 2.0],
            vec![3.0, 4.0, 3.0],
        ])
        .unwrap(),
    );
    let outcome = iterative::IterativeRun::new(&mut MiniMct, &scenario)
        .execute()
        .unwrap();
    let back: IterativeOutcome = roundtrip(&outcome);
    assert_eq!(back, outcome);
    // Derived quantities survive too.
    assert_eq!(back.final_makespan(), outcome.final_makespan());
    assert_eq!(back.mappings_identical(), outcome.mappings_identical());
}
