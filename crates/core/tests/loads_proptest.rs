//! Property suite for the delta-evaluation kernel: a [`LoadTracker`]
//! driven through a random walk of probes, applies, and undos must agree
//! with a shadow `Vec<Time>` mutated by the identical `Time` operations —
//! loads bitwise, makespan bitwise equal to a linear max scan (max over
//! `total_cmp` is associative, so the tournament tree cannot diverge).

use hcs_core::{LoadTracker, Time};
use proptest::prelude::*;

/// One scripted step of the walk. `from`/`to`/`at` are raw draws, reduced
/// modulo the machine count by the walk (moves with `from == to` are
/// skipped — the kernel's callers never produce them and `probe`/`apply`
/// require distinct machines).
#[derive(Clone, Debug)]
enum Op {
    /// Probe a move and check it against a simulated apply, rejecting it.
    Probe {
        from: usize,
        to: usize,
        sub: f64,
        add: f64,
    },
    /// Apply a move and keep it.
    Apply {
        from: usize,
        to: usize,
        sub: f64,
        add: f64,
    },
    /// Apply a move, check, then undo it.
    ApplyUndo {
        from: usize,
        to: usize,
        sub: f64,
        add: f64,
    },
    /// Overwrite one machine's load.
    Set { at: usize, value: f64 },
}

fn op() -> impl Strategy<Value = Op> {
    let amount = 0.0f64..50.0;
    prop_oneof![
        (0usize..96, 0usize..96, amount.clone(), amount.clone())
            .prop_map(|(from, to, sub, add)| Op::Probe { from, to, sub, add }),
        (0usize..96, 0usize..96, amount.clone(), amount.clone())
            .prop_map(|(from, to, sub, add)| Op::Apply { from, to, sub, add }),
        (0usize..96, 0usize..96, amount.clone(), amount.clone())
            .prop_map(|(from, to, sub, add)| Op::ApplyUndo { from, to, sub, add }),
        (0usize..96, 0.0f64..200.0).prop_map(|(at, value)| Op::Set { at, value }),
    ]
}

fn linear_max(loads: &[Time]) -> Time {
    loads.iter().copied().max().expect("non-empty")
}

/// The exact operations `LoadTracker::apply` performs, on the shadow —
/// binary `-`/`+` rather than the compound operators, matching `apply`
/// token for token.
#[allow(clippy::assign_op_pattern)]
fn shadow_apply(shadow: &mut [Time], from: usize, sub: Time, to: usize, add: Time) {
    shadow[from] = shadow[from] - sub;
    shadow[to] = shadow[to] + add;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_walk_matches_shadow_vector(
        // Up to 96 machines so the walk also meets trees with several
        // levels of `-∞` padding (96 leaves in a 128-leaf tree).
        initial in proptest::collection::vec(0.0f64..100.0, 1..=96),
        ops in proptest::collection::vec(op(), 0..80),
    ) {
        let m = initial.len();
        let start: Vec<Time> = initial.iter().map(|&v| Time::new(v)).collect();
        let mut shadow = start.clone();
        let mut tracker = LoadTracker::new();
        tracker.reset(start);
        prop_assert_eq!(tracker.len(), m);

        for op in ops {
            match op {
                Op::Probe { from, to, sub, add } => {
                    let (from, to) = (from % m, to % m);
                    if from == to {
                        continue;
                    }
                    let (sub, add) = (Time::new(sub), Time::new(add));
                    let mut sim = shadow.clone();
                    shadow_apply(&mut sim, from, sub, to, add);
                    let probed = tracker.probe(from, sub, to, add);
                    prop_assert_eq!(probed, linear_max(&sim), "probe is read-only and exact");
                }
                Op::Apply { from, to, sub, add } => {
                    let (from, to) = (from % m, to % m);
                    if from == to {
                        continue;
                    }
                    let (sub, add) = (Time::new(sub), Time::new(add));
                    shadow_apply(&mut shadow, from, sub, to, add);
                    tracker.apply(from, sub, to, add);
                }
                Op::ApplyUndo { from, to, sub, add } => {
                    let (from, to) = (from % m, to % m);
                    if from == to {
                        continue;
                    }
                    let (sub, add) = (Time::new(sub), Time::new(add));
                    let mut sim = shadow.clone();
                    shadow_apply(&mut sim, from, sub, to, add);
                    let undo = tracker.apply(from, sub, to, add);
                    prop_assert_eq!(tracker.makespan(), linear_max(&sim));
                    tracker.undo(undo);
                }
                Op::Set { at, value } => {
                    let at = at % m;
                    shadow[at] = Time::new(value);
                    tracker.set(at, shadow[at]);
                }
            }
            // After every step: loads bitwise, makespan == linear scan.
            prop_assert_eq!(tracker.loads(), &shadow[..]);
            prop_assert_eq!(tracker.makespan(), linear_max(&shadow));
            prop_assert_eq!(tracker.load(tracker.argmax()), tracker.makespan());
        }
    }

    /// `reset` fully erases prior state, whatever sizes came before.
    #[test]
    fn reset_is_size_polymorphic(
        first in proptest::collection::vec(0.0f64..100.0, 1..=64),
        second in proptest::collection::vec(0.0f64..100.0, 1..=64),
    ) {
        let mut tracker = LoadTracker::new();
        tracker.reset(first.iter().map(|&v| Time::new(v)));
        tracker.reset(second.iter().map(|&v| Time::new(v)));
        let shadow: Vec<Time> = second.iter().map(|&v| Time::new(v)).collect();
        prop_assert_eq!(tracker.len(), shadow.len());
        prop_assert_eq!(tracker.loads(), &shadow[..]);
        prop_assert_eq!(tracker.makespan(), linear_max(&shadow));
    }
}
