//! Golden digests: exact [`InstanceDigest`] values pinned for fixed
//! instances.
//!
//! The digest keys the service's cross-request cache and the fleet tier's
//! consistent-hash routing, so its value for a given request is a *wire
//! contract*: if any of these constants change, every persisted cache
//! entry is invalidated and every fleet key remaps to a new owner. A
//! failure here means the canonical field order, the FNV constants, or a
//! field encoding changed — that must be a deliberate, versioned decision,
//! never an accident.

use hcs_core::{EtcMatrix, InstanceDigest, Objective, Scenario};

/// The paper's worked 3x2 instance, as `mapc --etc` would submit it.
fn paper_scenario() -> Scenario {
    Scenario::with_zero_ready(
        EtcMatrix::from_rows(&[vec![2.0, 6.0], vec![3.0, 4.0], vec![8.0, 3.0]]).unwrap(),
    )
}

#[test]
fn v1_makespan_request_digest_is_pinned() {
    // An iterative Min-Min run with deterministic ties and no guard —
    // the exact shape of a v1 (pre-objective) cache key.
    let digest = InstanceDigest::of_request(&paper_scenario(), "Min-Min", None, true, false);
    assert_eq!(
        digest, 0xab48_7e64_a6a0_932d,
        "v1 request digest drifted: got {digest:#018x}"
    );
}

#[test]
fn non_makespan_request_digest_is_pinned() {
    // The same instance under flowtime: the objective name is appended to
    // the digest stream, so this constant differs from the v1 one — and
    // both are load-bearing for mixed-objective caches.
    let scenario = paper_scenario().with_objective(Objective::Flowtime);
    let digest = InstanceDigest::of_request(&scenario, "Min-Min", None, true, false);
    assert_eq!(
        digest, 0x933c_9f0e_d621_1b34,
        "flowtime request digest drifted: got {digest:#018x}"
    );
}

#[test]
fn incremental_stream_reproduces_the_pinned_v1_digest() {
    // The canonical field order, spelled out by hand through the
    // incremental API: shape, ETC values row-major, ready times,
    // heuristic, tie policy, iterative, guard. Pinning the hand-built
    // stream against the same constant proves `of_request` feeds exactly
    // these fields in exactly this order.
    let mut d = InstanceDigest::new();
    d.write_usize(3).write_usize(2);
    for v in [2.0f64, 6.0, 3.0, 4.0, 8.0, 3.0] {
        d.write_u64(v.to_bits());
    }
    for r in [0.0f64, 0.0] {
        d.write_u64(r.to_bits());
    }
    d.write_str("Min-Min")
        .write_opt_u64(None)
        .write_bool(true)
        .write_bool(false);
    assert_eq!(d.finish(), 0xab48_7e64_a6a0_932d);
}
