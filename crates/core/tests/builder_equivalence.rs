//! Property-based equivalence of the [`IterativeRun`] builder and the
//! deprecated free-function wrappers it replaced.
//!
//! The wrappers delegate to the builder, so equivalence is cheap to state
//! but worth pinning down by property: for random tie-rich instances,
//! random configs and **both** tie policies, every legacy entry point must
//! produce an outcome bit-identical (rounds, mappings, final finishing
//! times) to the equivalent builder chain. This is the compatibility
//! contract that lets callers migrate one site at a time.

#![allow(deprecated)]

use std::sync::Arc;

use hcs_core::obs::{NullSink, TraceSink};
use hcs_core::{
    iterative, select, EtcMatrix, Heuristic, Instance, IterativeConfig, IterativeOutcome,
    IterativeRun, MakespanTie, MapWorkspace, Mapping, Scenario, TieBreaker,
};
use proptest::prelude::*;

/// A tiny MCT-style heuristic: assigns tasks in order to the machine with
/// the minimal completion time, consuming one tie-breaker pick per task —
/// enough to make the two tie policies genuinely diverge on tie-rich
/// integer matrices.
struct MiniMct;

impl Heuristic for MiniMct {
    fn name(&self) -> &'static str {
        "mini-mct"
    }

    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        let mut rt = inst.working_ready();
        let mut map = Mapping::new(inst.etc.n_tasks());
        for &task in inst.tasks {
            let (cands, _) =
                select::min_candidates(inst.machines.iter().map(|&m| (m, inst.ct(task, m, &rt))));
            let chosen = cands[tb.pick(cands.len())];
            rt.advance(chosen, inst.etc.get(task, chosen));
            map.assign(task, chosen).unwrap();
        }
        map
    }
}

/// Tie-rich random instances: small integer costs collide constantly, so
/// the tie-breaker stream (and therefore any divergence in how an entry
/// point threads it) shows up in the outcome.
fn scenarios() -> impl Strategy<Value = Scenario> {
    (2usize..=5, 1usize..=10).prop_flat_map(|(m, t)| {
        proptest::collection::vec(1u32..=4, t * m).prop_map(move |values| {
            let flat: Vec<f64> = values.into_iter().map(f64::from).collect();
            Scenario::with_zero_ready(
                EtcMatrix::new(t, m, &flat).expect("strategy produces valid values"),
            )
        })
    })
}

fn configs() -> impl Strategy<Value = IterativeConfig> {
    (0u8..2, 0u8..3).prop_map(|(guard, tie)| IterativeConfig {
        seed_guard: guard == 1,
        makespan_tie: match tie {
            0 => MakespanTie::LowestIndex,
            1 => MakespanTie::HighestIndex,
            _ => MakespanTie::MostTasks,
        },
    })
}

/// Both tie policies, reconstructed identically for every entry point so
/// each run consumes a fresh but equal stream.
fn tie_policies(seed: u64) -> [TieBreaker; 2] {
    [TieBreaker::Deterministic, TieBreaker::random(seed)]
}

fn builder_outcome(
    scenario: &Scenario,
    config: IterativeConfig,
    mut tb: TieBreaker,
) -> IterativeOutcome {
    IterativeRun::new(&mut MiniMct, scenario)
        .ties(&mut tb)
        .config(config)
        .execute()
        .expect("MiniMct honors the mapping contract")
}

proptest! {
    #[test]
    fn wrappers_match_the_builder(
        scenario in scenarios(),
        config in configs(),
        seed in 0u64..1_000_000,
    ) {
        for tb in tie_policies(seed) {
            // `run` / `run_in` fix the default config; compare against a
            // default-config builder chain.
            let default_cfg = builder_outcome(&scenario, IterativeConfig::default(), tb.clone());
            let configured = builder_outcome(&scenario, config, tb.clone());

            let mut t = tb.clone();
            prop_assert_eq!(
                &iterative::run(&mut MiniMct, &scenario, &mut t),
                &default_cfg
            );

            let mut t = tb.clone();
            prop_assert_eq!(
                &iterative::run_with(&mut MiniMct, &scenario, &mut t, config),
                &configured
            );

            let mut t = tb.clone();
            let mut ws = MapWorkspace::new();
            prop_assert_eq!(
                &iterative::run_in(&mut MiniMct, &scenario, &mut t, &mut ws),
                &default_cfg
            );

            let mut t = tb.clone();
            let mut ws = MapWorkspace::new();
            prop_assert_eq!(
                &iterative::run_with_in(&mut MiniMct, &scenario, &mut t, config, &mut ws),
                &configured
            );

            let mut t = tb.clone();
            let mut ws = MapWorkspace::new();
            let sink: Arc<dyn TraceSink> = Arc::new(NullSink);
            let traced =
                iterative::try_run_in_traced(&mut MiniMct, &scenario, &mut t, config, &mut ws, &sink)
                    .expect("MiniMct honors the mapping contract");
            prop_assert_eq!(&traced, &configured);
        }
    }

    /// The borrowed tie-breaker is threaded, not copied: after equivalent
    /// runs, the builder and the wrapper leave the caller's breaker in the
    /// same state (observable through its next picks).
    #[test]
    fn tie_breaker_state_advances_identically(
        scenario in scenarios(),
        seed in 0u64..1_000_000,
    ) {
        let mut via_builder = TieBreaker::random(seed);
        IterativeRun::new(&mut MiniMct, &scenario)
            .ties(&mut via_builder)
            .execute()
            .expect("MiniMct honors the mapping contract");

        let mut via_wrapper = TieBreaker::random(seed);
        iterative::run(&mut MiniMct, &scenario, &mut via_wrapper);

        for width in 2usize..=7 {
            prop_assert_eq!(via_builder.pick(width), via_wrapper.pick(width));
        }
    }
}
