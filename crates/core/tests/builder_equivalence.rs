//! Property-based equivalence across the [`IterativeRun`] builder's
//! configuration surface.
//!
//! The builder is the only entry point to the iterative driver (the
//! free-function wrappers it replaced are gone), so what needs pinning now
//! is that its knobs are *observationally inert*: for random tie-rich
//! instances, random configs and **both** tie policies, every way of
//! spelling the same run — owned vs borrowed tie-breaker, throwaway vs
//! reused workspace, disabled trace sink vs no sink at all — must produce
//! an outcome bit-identical (rounds, mappings, final finishing times) to
//! the plain chain.

use std::sync::Arc;

use hcs_core::obs::{NullSink, TraceSink};
use hcs_core::{
    select, EtcMatrix, Heuristic, Instance, IterativeConfig, IterativeOutcome, IterativeRun,
    MakespanTie, MapWorkspace, Mapping, Scenario, TieBreaker,
};
use proptest::prelude::*;

/// A tiny MCT-style heuristic: assigns tasks in order to the machine with
/// the minimal completion time, consuming one tie-breaker pick per task —
/// enough to make the two tie policies genuinely diverge on tie-rich
/// integer matrices.
struct MiniMct;

impl Heuristic for MiniMct {
    fn name(&self) -> &'static str {
        "mini-mct"
    }

    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        let mut rt = inst.working_ready();
        let mut map = Mapping::new(inst.etc.n_tasks());
        for &task in inst.tasks {
            let (cands, _) =
                select::min_candidates(inst.machines.iter().map(|&m| (m, inst.ct(task, m, &rt))));
            let chosen = cands[tb.pick(cands.len())];
            rt.advance(chosen, inst.etc.get(task, chosen));
            map.assign(task, chosen).unwrap();
        }
        map
    }
}

/// Tie-rich random instances: small integer costs collide constantly, so
/// the tie-breaker stream (and therefore any divergence in how a builder
/// knob threads it) shows up in the outcome.
fn scenarios() -> impl Strategy<Value = Scenario> {
    (2usize..=5, 1usize..=10).prop_flat_map(|(m, t)| {
        proptest::collection::vec(1u32..=4, t * m).prop_map(move |values| {
            let flat: Vec<f64> = values.into_iter().map(f64::from).collect();
            Scenario::with_zero_ready(
                EtcMatrix::new(t, m, &flat).expect("strategy produces valid values"),
            )
        })
    })
}

fn configs() -> impl Strategy<Value = IterativeConfig> {
    (0u8..2, 0u8..3).prop_map(|(guard, tie)| IterativeConfig {
        seed_guard: guard == 1,
        makespan_tie: match tie {
            0 => MakespanTie::LowestIndex,
            1 => MakespanTie::HighestIndex,
            _ => MakespanTie::MostTasks,
        },
    })
}

/// Both tie policies, reconstructed identically for every spelling so each
/// run consumes a fresh but equal stream.
fn tie_policies(seed: u64) -> [TieBreaker; 2] {
    [TieBreaker::Deterministic, TieBreaker::random(seed)]
}

/// The reference spelling: borrowed ties, throwaway workspace, no sink.
fn baseline(scenario: &Scenario, config: IterativeConfig, mut tb: TieBreaker) -> IterativeOutcome {
    IterativeRun::new(&mut MiniMct, scenario)
        .ties(&mut tb)
        .config(config)
        .execute()
        .expect("MiniMct honors the mapping contract")
}

proptest! {
    #[test]
    fn builder_knobs_are_observationally_inert(
        scenario in scenarios(),
        config in configs(),
        seed in 0u64..1_000_000,
    ) {
        for tb in tie_policies(seed) {
            let reference = baseline(&scenario, config, tb.clone());

            // Owned tie-breaker (`tie_breaker`) vs borrowed (`ties`).
            let owned = IterativeRun::new(&mut MiniMct, &scenario)
                .tie_breaker(tb.clone())
                .config(config)
                .execute()
                .expect("MiniMct honors the mapping contract");
            prop_assert_eq!(&owned, &reference);

            // A caller-owned workspace, reused twice in a row: the reuse
            // path must match the scratch path and leave no state behind.
            let mut ws = MapWorkspace::new();
            for _ in 0..2 {
                let mut t = tb.clone();
                let reused = IterativeRun::new(&mut MiniMct, &scenario)
                    .ties(&mut t)
                    .config(config)
                    .workspace(&mut ws)
                    .execute()
                    .expect("MiniMct honors the mapping contract");
                prop_assert_eq!(&reused, &reference);
            }

            // A disabled sink must short-circuit to the untraced hot path.
            let mut t = tb.clone();
            let mut ws = MapWorkspace::new();
            let sink: Arc<dyn TraceSink> = Arc::new(NullSink);
            let traced = IterativeRun::new(&mut MiniMct, &scenario)
                .ties(&mut t)
                .config(config)
                .workspace(&mut ws)
                .trace(&sink)
                .execute()
                .expect("MiniMct honors the mapping contract");
            prop_assert_eq!(&traced, &reference);
        }
    }

    /// The borrowed tie-breaker is threaded, not copied: two equivalent
    /// spellings leave the caller's breaker in the same state (observable
    /// through its next picks).
    #[test]
    fn tie_breaker_state_advances_identically(
        scenario in scenarios(),
        seed in 0u64..1_000_000,
    ) {
        let mut plain = TieBreaker::random(seed);
        IterativeRun::new(&mut MiniMct, &scenario)
            .ties(&mut plain)
            .execute()
            .expect("MiniMct honors the mapping contract");

        let mut with_workspace = TieBreaker::random(seed);
        let mut ws = MapWorkspace::new();
        IterativeRun::new(&mut MiniMct, &scenario)
            .ties(&mut with_workspace)
            .workspace(&mut ws)
            .execute()
            .expect("MiniMct honors the mapping contract");

        for width in 2usize..=7 {
            prop_assert_eq!(plain.pick(width), with_workspace.pick(width));
        }
    }
}
