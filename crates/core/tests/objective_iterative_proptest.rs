//! Property suite for the iterative driver's freeze/monotonicity guard
//! under every [`Objective`] variant (referenced by the module docs of
//! `hcs_core::iterative`).
//!
//! With [`IterativeConfig::seed_guard`] on, each round keeps the better of
//! the fresh mapping and the previous round's mapping restricted to the
//! surviving tasks, compared by the scenario's objective over the
//! surviving machines. Since every per-machine contribution is
//! non-negative, a restriction to fewer machines can only shrink the
//! objective value (max over a subset for makespan, a partial sum for the
//! sum objectives) — so the per-round objective value must be monotone
//! non-increasing for **every** objective, under **both** tie policies
//! (deterministic and random), every frozen-machine tie rule, and even an
//! adversarial heuristic that actively tries to degrade later rounds.

use hcs_core::iterative::{IterativeConfig, IterativeOutcome, IterativeRun, MakespanTie};
use hcs_core::{EtcMatrix, Heuristic, Instance, Mapping, Objective, Scenario, TieBreaker, Time};
use proptest::prelude::*;

/// Greedy MCT in miniature (task-list order, earliest completion,
/// canonical tie order) — the well-behaved end of the heuristic spectrum.
struct MiniMct;

impl Heuristic for MiniMct {
    fn name(&self) -> &'static str {
        "mini-mct"
    }
    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        let mut rt = inst.working_ready();
        let mut map = Mapping::new(inst.etc.n_tasks());
        for &task in inst.tasks {
            let (cands, _) = hcs_core::select::min_candidates(
                inst.machines.iter().map(|&mm| (mm, inst.ct(task, mm, &rt))),
            );
            let chosen = cands[tb.pick(cands.len())];
            rt.advance(chosen, inst.etc.get(task, chosen));
            map.assign(task, chosen).unwrap();
        }
        map
    }
}

/// Adversarial heuristic: round 0 behaves (greedy MCT), every later round
/// piles all surviving tasks onto one machine — the worst case the seed
/// guard exists to neutralize.
struct Degrading {
    calls: usize,
}

impl Heuristic for Degrading {
    fn name(&self) -> &'static str {
        "degrading"
    }
    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        self.calls += 1;
        if self.calls == 1 {
            MiniMct.map(inst, tb)
        } else {
            let mut map = Mapping::new(inst.etc.n_tasks());
            for &task in inst.tasks {
                map.assign(task, inst.machines[0]).unwrap();
            }
            map
        }
    }
}

/// Objective value of each round's mapping over that round's machines —
/// the sequence the guard promises is non-increasing.
fn round_values(outcome: &IterativeOutcome, scenario: &Scenario) -> Vec<Time> {
    outcome
        .rounds
        .iter()
        .map(|round| {
            round.mapping.objective_value(
                &scenario.etc,
                &scenario.initial_ready,
                &round.machines,
                scenario.objective,
            )
        })
        .collect()
}

fn assert_monotone(values: &[Time], label: &str) {
    for pair in values.windows(2) {
        assert!(
            pair[1] <= pair[0],
            "{label}: round value increased {} -> {} in {values:?}",
            pair[0],
            pair[1],
        );
    }
}

/// Runs one (scenario, heuristic, tie policy, tie rule) cell with the
/// guard on and checks the per-round objective value sequence.
fn check_cell(
    scenario: &Scenario,
    adversarial: bool,
    ties: TieBreaker,
    makespan_tie: MakespanTie,
    label: &str,
) {
    let config = IterativeConfig {
        seed_guard: true,
        makespan_tie,
    };
    let outcome = if adversarial {
        IterativeRun::new(&mut Degrading { calls: 0 }, scenario)
            .tie_breaker(ties)
            .config(config)
            .execute()
            .unwrap()
    } else {
        IterativeRun::new(&mut MiniMct, scenario)
            .tie_breaker(ties)
            .config(config)
            .execute()
            .unwrap()
    };
    assert_monotone(&round_values(&outcome, scenario), label);
    // For the makespan objective, per-round monotonicity is exactly the
    // paper's "never increase makespan" guarantee end to end.
    if scenario.objective.is_makespan() {
        assert!(
            !outcome.makespan_increased(),
            "{label}: guarded run increased the overall makespan"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn guarded_round_values_are_monotone_for_every_objective(
        rows in proptest::collection::vec(
            proptest::collection::vec(1.0f64..100.0, 2..=5),
            1..=10,
        ),
        seed in 0u64..1_000_000,
    ) {
        // Rectangularize: every task row truncated to the shortest row's
        // machine count (proptest draws ragged rows).
        let machines = rows.iter().map(Vec::len).min().unwrap();
        let rows: Vec<Vec<f64>> = rows
            .into_iter()
            .map(|mut r| {
                r.truncate(machines);
                r
            })
            .collect();
        let etc = EtcMatrix::from_rows(&rows).unwrap();

        for objective in Objective::ALL {
            let scenario =
                Scenario::with_zero_ready(etc.clone()).with_objective(objective);
            for adversarial in [false, true] {
                for makespan_tie in [
                    MakespanTie::LowestIndex,
                    MakespanTie::HighestIndex,
                    MakespanTie::MostTasks,
                ] {
                    for (tie_name, ties) in [
                        ("det", TieBreaker::Deterministic),
                        ("rand", TieBreaker::random(seed)),
                    ] {
                        check_cell(
                            &scenario,
                            adversarial,
                            ties,
                            makespan_tie,
                            &format!(
                                "{objective}/{}/{tie_name}/{makespan_tie:?}",
                                if adversarial { "degrading" } else { "mct" },
                            ),
                        );
                    }
                }
            }
        }
    }
}
