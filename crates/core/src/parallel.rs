//! Coordination primitives for the parallel search engines: deterministic
//! per-worker RNG seed streams and the lock-free shared incumbent.
//!
//! Every parallel engine in this workspace (the island-model Genitor in
//! `hcs-genitor`, the multi-restart SA/Tabu in `hcs-heuristics`) is
//! required to be a **pure function of `(seed, thread_count)`** — the OS
//! scheduler must never be able to change a mapping. These primitives are
//! the shared vocabulary that makes the contract checkable:
//!
//! * [`split_stream`] derives the per-island / per-restart seeds. Stream 0
//!   is the base seed itself, so a one-unit parallel run drives *exactly*
//!   the RNG stream of the existing single-threaded engine — that is what
//!   lets the equivalence suites pin `thread_count = 1` bit-identical.
//! * [`Incumbent`] is the lock-free best-so-far slot the restarts publish
//!   into: a single `AtomicU64` CAS-updated with an objective-value-tagged
//!   word, ties broken by seed index. It is **advisory** — engines use it
//!   for cross-thread visibility and the monotonicity property tests, and
//!   compute their final answer from the per-run results (exact values,
//!   deterministic tie-break), never from the slot. That division of labor
//!   is what lets the slot quantize its payload to fit one atomic word
//!   without `unsafe` or a 128-bit CAS.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::time::Time;

/// The splitmix64 finalizer: a cheap, high-quality bijective mixer
/// (Steele, Lea & Flood 2014 — the stream-splitting generator recommended
/// for seeding other PRNGs). Used to decorrelate per-worker seed streams.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The `k`-th seed stream split off `base`.
///
/// Stream 0 **is** the base seed — a parallel engine run with one
/// island/restart therefore seeds its single worker exactly as the plain
/// single-threaded engine would, which is what the `thread_count = 1 ≡
/// single-threaded` equivalence pins rely on. Streams `k ≥ 1` walk the
/// splitmix64 generator sequence seeded at `base` (increment `k` times,
/// finalize), so distinct workers get decorrelated, reproducible seeds.
pub fn split_stream(base: u64, k: usize) -> u64 {
    if k == 0 {
        base
    } else {
        splitmix64(base.wrapping_add((k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

/// Number of low mantissa bits of the objective value the incumbent slot
/// trades for the seed-index tag (see [`Incumbent`]).
const TAG_BITS: u32 = 16;

/// The lock-free shared incumbent: one atomic word holding the best
/// objective value published so far, tagged with the seed index that
/// published it.
///
/// # Packing
///
/// A non-negative IEEE-754 `f64` orders by its raw bit pattern, so the
/// slot packs `(value, seed)` as
///
/// ```text
/// word = (value.to_bits() & !0xFFFF) | seed
/// ```
///
/// — the value's top 48 bits (sign, exponent, 36 mantissa bits) followed
/// by the 16-bit seed index. Integer comparison on the word is then
/// lexicographic comparison on *(quantized value, seed index)*: strictly
/// smaller values always win, and among publishes whose values agree in
/// their top 48 bits the **lower seed index** wins — the deterministic
/// tie-break the parallel engines require. [`Incumbent::publish`] installs
/// a word only when it is strictly smaller than the current one
/// (compare-and-swap loop), so the slot's value is monotone non-increasing
/// over any interleaving, and its final content is the minimum over all
/// published pairs — independent of scheduling.
///
/// # Quantization
///
/// Dropping 16 mantissa bits costs at most a relative error of 2⁻³⁶ in the
/// stored value. The slot is advisory (telemetry, monotonicity tests,
/// "has anyone beaten X yet" reads); the engines keep exact per-run values
/// and pick their final winner by `(exact value, seed index)` outside the
/// slot, so the quantization can never change a returned mapping.
#[derive(Debug, Default)]
pub struct Incumbent {
    /// `u64::MAX` when empty (compares greater than every packed word —
    /// `f64::INFINITY` packs to `0x7FF0…`, well below it).
    word: AtomicU64,
}

impl Incumbent {
    /// An empty incumbent.
    pub fn new() -> Incumbent {
        Incumbent {
            word: AtomicU64::new(u64::MAX),
        }
    }

    fn pack(value: Time, seed: u16) -> u64 {
        let v = value.get();
        debug_assert!(v >= 0.0, "objective values are non-negative times");
        (v.to_bits() >> TAG_BITS << TAG_BITS) | u64::from(seed)
    }

    /// Publishes `(value, seed)`; returns whether the slot moved (the pair
    /// was a strict improvement in the packed order). Lock-free: a failed
    /// CAS re-reads and retries only while the candidate still improves.
    pub fn publish(&self, value: Time, seed: u16) -> bool {
        let packed = Incumbent::pack(value, seed);
        let mut current = self.word.load(Ordering::Relaxed);
        while packed < current {
            match self.word.compare_exchange_weak(
                current,
                packed,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
        false
    }

    /// The current `(quantized value, seed index)`, or `None` while no one
    /// has published.
    pub fn load(&self) -> Option<(Time, u16)> {
        let word = self.word.load(Ordering::Acquire);
        if word == u64::MAX {
            return None;
        }
        let value = f64::from_bits(word >> TAG_BITS << TAG_BITS);
        Some((Time::new(value), (word & 0xFFFF) as u16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_zero_is_the_base_seed() {
        for base in [0u64, 1, 42, u64::MAX] {
            assert_eq!(split_stream(base, 0), base);
        }
    }

    #[test]
    fn streams_are_distinct_and_reproducible() {
        let seeds: Vec<u64> = (0..64).map(|k| split_stream(7, k)).collect();
        let again: Vec<u64> = (0..64).map(|k| split_stream(7, k)).collect();
        assert_eq!(seeds, again);
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "seed streams must not collide");
    }

    #[test]
    fn empty_incumbent_loads_none() {
        assert_eq!(Incumbent::new().load(), None);
    }

    #[test]
    fn publish_keeps_the_minimum_and_breaks_ties_by_seed() {
        let slot = Incumbent::new();
        assert!(slot.publish(Time::new(10.0), 3));
        assert_eq!(slot.load(), Some((Time::new(10.0), 3)));
        // A worse value never displaces the incumbent.
        assert!(!slot.publish(Time::new(11.0), 0));
        assert_eq!(slot.load(), Some((Time::new(10.0), 3)));
        // The same value from a lower seed index wins the tie...
        assert!(slot.publish(Time::new(10.0), 1));
        assert_eq!(slot.load(), Some((Time::new(10.0), 1)));
        // ...and from a higher one does not.
        assert!(!slot.publish(Time::new(10.0), 2));
        // A strictly better value always lands, whatever the seed.
        assert!(slot.publish(Time::new(9.5), 9));
        assert_eq!(slot.load(), Some((Time::new(9.5), 9)));
    }

    #[test]
    fn publishes_are_monotone_under_concurrency() {
        // 8 publisher threads × 200 publishes each; every observed load is
        // <= the one before it (per observer), and the final content is the
        // global minimum with its lowest publishing seed.
        let slot = Incumbent::new();
        std::thread::scope(|s| {
            for t in 0..8u16 {
                let slot = &slot;
                s.spawn(move || {
                    let mut last: Option<(Time, u16)> = None;
                    for i in 0..200u64 {
                        let v =
                            Time::new(((splitmix64(u64::from(t) * 1000 + i) % 10_000) + 1) as f64);
                        slot.publish(v, t);
                        let now = slot.load().expect("published at least once");
                        if let Some(prev) = last {
                            assert!(
                                now.0 <= prev.0,
                                "incumbent regressed: {} -> {}",
                                prev.0,
                                now.0
                            );
                        }
                        last = Some(now);
                    }
                });
            }
        });
        // Recompute the expected winner sequentially.
        let expected = (0..8u16)
            .flat_map(|t| {
                (0..200u64).map(move |i| {
                    (
                        Time::new(((splitmix64(u64::from(t) * 1000 + i) % 10_000) + 1) as f64),
                        t,
                    )
                })
            })
            .min_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)))
            .expect("non-empty");
        assert_eq!(slot.load(), Some(expected));
    }
}
