//! Mappings (resource allocations) and the completion times they induce.
//!
//! A [`Mapping`] records, for each mappable task, the machine it was
//! assigned to, *and* the order in which the heuristic made its assignments
//! (the paper's tables list allocations step by step; several proofs reason
//! about "the n-th task mapped"). Because tasks are independent and each
//! machine executes one task at a time, a machine's completion time is its
//! initial ready time plus the sum of the ETCs of its tasks — the order of
//! tasks *on one machine* does not affect it.

use serde::{Deserialize, Serialize};

use crate::error::Error;
use crate::etc::EtcMatrix;
use crate::id::{MachineId, TaskId};
use crate::objective::Objective;
use crate::ready::ReadyTimes;
use crate::time::Time;

/// A (partial or complete) assignment of tasks to machines, remembering the
/// assignment order.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    /// task idx -> machine, over the full task space.
    assigned: Vec<Option<MachineId>>,
    /// Assignment events in the order the heuristic made them.
    order: Vec<(TaskId, MachineId)>,
}

impl Mapping {
    /// An empty mapping over a task space of `n_tasks_total` tasks.
    pub fn new(n_tasks_total: usize) -> Self {
        Mapping {
            assigned: vec![None; n_tasks_total],
            order: Vec::new(),
        }
    }

    /// Records the assignment of `t` to `m` as the next step.
    pub fn assign(&mut self, t: TaskId, m: MachineId) -> Result<(), Error> {
        let slot = self
            .assigned
            .get_mut(t.idx())
            .ok_or(Error::TaskOutOfRange(t))?;
        if slot.is_some() {
            return Err(Error::DoubleAssignment(t));
        }
        *slot = Some(m);
        self.order.push((t, m));
        Ok(())
    }

    /// The machine `t` is assigned to, if any.
    #[inline]
    pub fn machine_of(&self, t: TaskId) -> Option<MachineId> {
        self.assigned.get(t.idx()).copied().flatten()
    }

    /// The assignment steps in heuristic order.
    #[inline]
    pub fn order(&self) -> &[(TaskId, MachineId)] {
        &self.order
    }

    /// Number of assigned tasks.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when nothing has been assigned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Size of the underlying task space.
    #[inline]
    pub fn task_space(&self) -> usize {
        self.assigned.len()
    }

    /// Tasks assigned to `m`, in assignment order.
    pub fn tasks_on(&self, m: MachineId) -> Vec<TaskId> {
        self.order
            .iter()
            .filter(|&&(_, mm)| mm == m)
            .map(|&(t, _)| t)
            .collect()
    }

    /// Number of tasks assigned to `m` (no allocation).
    pub fn count_on(&self, m: MachineId) -> u32 {
        self.order.iter().filter(|&&(_, mm)| mm == m).count() as u32
    }

    /// Validates that every task in `tasks` is assigned, and only to
    /// machines in `machines`. Heuristic outputs are checked with this by
    /// the iterative driver.
    pub fn validate(&self, tasks: &[TaskId], machines: &[MachineId]) -> Result<(), Error> {
        for &t in tasks {
            match self.machine_of(t) {
                None => return Err(Error::Unassigned(t)),
                Some(m) => {
                    if !machines.contains(&m) {
                        return Err(Error::InactiveMachine(t, m));
                    }
                }
            }
        }
        Ok(())
    }

    /// Completion time of every machine in `machines` under this mapping:
    /// `RT(m) + Σ ETC(t, m)` over the tasks assigned to `m`.
    pub fn completion_times(
        &self,
        etc: &EtcMatrix,
        initial_ready: &ReadyTimes,
        machines: &[MachineId],
    ) -> CompletionTimes {
        let mut pairs: Vec<(MachineId, Time)> = machines
            .iter()
            .map(|&m| (m, initial_ready.get(m)))
            .collect();
        for &(t, m) in &self.order {
            if let Some(entry) = pairs.iter_mut().find(|(mm, _)| *mm == m) {
                entry.1 += etc.get(t, m);
            }
        }
        CompletionTimes { pairs }
    }

    /// Makespan over `machines` — the largest completion time.
    pub fn makespan(
        &self,
        etc: &EtcMatrix,
        initial_ready: &ReadyTimes,
        machines: &[MachineId],
    ) -> Time {
        self.completion_times(etc, initial_ready, machines)
            .makespan()
    }

    /// The objective value of this mapping over `machines`. For
    /// [`Objective::Makespan`] this delegates to [`Mapping::makespan`]
    /// (bit-identical to the pre-refactor path); the sum objectives fold
    /// per-machine contributions left to right in `machines` order (see
    /// [`Objective::value`]).
    pub fn objective_value(
        &self,
        etc: &EtcMatrix,
        initial_ready: &ReadyTimes,
        machines: &[MachineId],
        objective: Objective,
    ) -> Time {
        match objective {
            Objective::Makespan => self.makespan(etc, initial_ready, machines),
            Objective::Flowtime | Objective::WeightedFlowtime => {
                let ct = self.completion_times(etc, initial_ready, machines);
                ct.pairs().iter().fold(Time::ZERO, |acc, &(m, c)| {
                    acc + objective.contribution(c, self.count_on(m))
                })
            }
        }
    }

    /// A copy of this mapping restricted to `tasks` (used by the seeding
    /// guard: the previous round's mapping minus the frozen machine's
    /// tasks). Assignment order is preserved.
    pub fn restricted_to(&self, tasks: &[TaskId]) -> Mapping {
        let keep: Vec<bool> = {
            let mut k = vec![false; self.assigned.len()];
            for &t in tasks {
                if t.idx() < k.len() {
                    k[t.idx()] = true;
                }
            }
            k
        };
        let mut out = Mapping::new(self.assigned.len());
        for &(t, m) in &self.order {
            if keep[t.idx()] {
                out.assign(t, m).expect("restriction preserves uniqueness");
            }
        }
        out
    }
}

impl std::fmt::Display for Mapping {
    /// Renders the assignment steps as `t0->m1, t2->m0, ...` (heuristic
    /// order) — handy in test failure messages and debug logs.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, (task, machine)) in self.order.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{task}->{machine}")?;
        }
        Ok(())
    }
}

/// Completion times of a set of machines under some mapping, in the machine
/// order supplied at construction (ascending index, by convention).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletionTimes {
    pairs: Vec<(MachineId, Time)>,
}

impl CompletionTimes {
    /// The `(machine, completion time)` pairs.
    #[inline]
    pub fn pairs(&self) -> &[(MachineId, Time)] {
        &self.pairs
    }

    /// Completion time of `m`.
    ///
    /// # Panics
    ///
    /// Panics when `m` is not among the covered machines.
    pub fn get(&self, m: MachineId) -> Time {
        self.pairs
            .iter()
            .find(|&&(mm, _)| mm == m)
            .map(|&(_, t)| t)
            .unwrap_or_else(|| panic!("machine {m} not in completion set"))
    }

    /// The makespan (largest completion time).
    ///
    /// # Panics
    ///
    /// Panics on an empty machine set.
    pub fn makespan(&self) -> Time {
        self.makespan_machine().1
    }

    /// The makespan machine and its completion time. When several machines
    /// tie for the largest completion time, the one with the **lowest
    /// index** is reported (the paper does not specify this tie; see
    /// DESIGN.md §4).
    ///
    /// # Panics
    ///
    /// Panics on an empty machine set.
    pub fn makespan_machine(&self) -> (MachineId, Time) {
        let mut best: Option<(MachineId, Time)> = None;
        for &(m, t) in &self.pairs {
            match best {
                None => best = Some((m, t)),
                Some((bm, bt)) => {
                    if t > bt || (t == bt && m < bm) {
                        best = Some((m, t));
                    }
                }
            }
        }
        best.expect("completion set is empty")
    }

    /// Mean completion time over the covered machines.
    pub fn mean(&self) -> Time {
        let total: Time = self.pairs.iter().map(|&(_, t)| t).sum();
        total / (self.pairs.len() as f64)
    }

    /// Number of covered machines.
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when no machines are covered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{m, t};

    fn etc3x3() -> EtcMatrix {
        EtcMatrix::from_rows(&[
            vec![2.0, 5.0, 9.0],
            vec![4.0, 1.0, 2.0],
            vec![3.0, 3.0, 3.0],
        ])
        .unwrap()
    }

    #[test]
    fn assign_and_query() {
        let mut map = Mapping::new(3);
        map.assign(t(1), m(2)).unwrap();
        map.assign(t(0), m(2)).unwrap();
        assert_eq!(map.machine_of(t(1)), Some(m(2)));
        assert_eq!(map.machine_of(t(2)), None);
        assert_eq!(map.order(), &[(t(1), m(2)), (t(0), m(2))]);
        assert_eq!(map.tasks_on(m(2)), vec![t(1), t(0)]);
        assert_eq!(map.len(), 2);
        assert_eq!(map.task_space(), 3);
    }

    #[test]
    fn display_lists_assignment_steps() {
        let mut map = Mapping::new(3);
        map.assign(t(1), m(2)).unwrap();
        map.assign(t(0), m(0)).unwrap();
        assert_eq!(map.to_string(), "t1->m2, t0->m0");
        assert_eq!(Mapping::new(1).to_string(), "");
    }

    #[test]
    fn double_assignment_rejected() {
        let mut map = Mapping::new(2);
        map.assign(t(0), m(0)).unwrap();
        assert_eq!(map.assign(t(0), m(1)), Err(Error::DoubleAssignment(t(0))));
        assert_eq!(map.assign(t(5), m(1)), Err(Error::TaskOutOfRange(t(5))));
    }

    #[test]
    fn completion_times_sum_etcs_plus_ready() {
        let etc = etc3x3();
        let ready = ReadyTimes::from_values(&[1.0, 0.0, 0.0]);
        let mut map = Mapping::new(3);
        map.assign(t(0), m(0)).unwrap(); // 2 on m0
        map.assign(t(2), m(0)).unwrap(); // 3 on m0
        map.assign(t(1), m(1)).unwrap(); // 1 on m1
        let ct = map.completion_times(&etc, &ready, &[m(0), m(1), m(2)]);
        assert_eq!(ct.get(m(0)), Time::new(6.0)); // 1 + 2 + 3
        assert_eq!(ct.get(m(1)), Time::new(1.0));
        assert_eq!(ct.get(m(2)), Time::new(0.0));
        assert_eq!(ct.makespan(), Time::new(6.0));
        assert_eq!(ct.makespan_machine(), (m(0), Time::new(6.0)));
        assert_eq!(ct.mean(), Time::new(7.0 / 3.0));
    }

    #[test]
    fn makespan_tie_resolves_to_lowest_index() {
        let etc = EtcMatrix::from_rows(&[vec![4.0, 4.0], vec![4.0, 4.0]]).unwrap();
        let ready = ReadyTimes::zero(2);
        let mut map = Mapping::new(2);
        map.assign(t(0), m(1)).unwrap();
        map.assign(t(1), m(0)).unwrap();
        let ct = map.completion_times(&etc, &ready, &[m(0), m(1)]);
        assert_eq!(ct.makespan_machine(), (m(0), Time::new(4.0)));
    }

    #[test]
    fn validate_catches_gaps_and_strays() {
        let mut map = Mapping::new(3);
        map.assign(t(0), m(0)).unwrap();
        assert_eq!(
            map.validate(&[t(0), t(1)], &[m(0)]),
            Err(Error::Unassigned(t(1)))
        );
        map.assign(t(1), m(2)).unwrap();
        assert_eq!(
            map.validate(&[t(0), t(1)], &[m(0), m(1)]),
            Err(Error::InactiveMachine(t(1), m(2)))
        );
        assert_eq!(map.validate(&[t(0), t(1)], &[m(0), m(2)]), Ok(()));
    }

    #[test]
    fn restriction_keeps_order_and_drops_tasks() {
        let mut map = Mapping::new(4);
        map.assign(t(3), m(0)).unwrap();
        map.assign(t(1), m(1)).unwrap();
        map.assign(t(0), m(0)).unwrap();
        let r = map.restricted_to(&[t(3), t(0)]);
        assert_eq!(r.order(), &[(t(3), m(0)), (t(0), m(0))]);
        assert_eq!(r.machine_of(t(1)), None);
    }

    #[test]
    fn objective_value_matches_definitions() {
        let etc = etc3x3();
        let ready = ReadyTimes::from_values(&[1.0, 0.0, 0.0]);
        let mut map = Mapping::new(3);
        map.assign(t(0), m(0)).unwrap(); // 2 on m0
        map.assign(t(2), m(0)).unwrap(); // 3 on m0
        map.assign(t(1), m(1)).unwrap(); // 1 on m1
        let machines = [m(0), m(1), m(2)];
        // C = (6, 1, 0); counts = (2, 1, 0).
        assert_eq!(
            map.objective_value(&etc, &ready, &machines, Objective::Makespan),
            map.makespan(&etc, &ready, &machines)
        );
        assert_eq!(
            map.objective_value(&etc, &ready, &machines, Objective::Flowtime),
            Time::new(7.0)
        );
        assert_eq!(
            map.objective_value(&etc, &ready, &machines, Objective::WeightedFlowtime),
            Time::new(13.0)
        );
        assert_eq!(map.count_on(m(0)), 2);
        assert_eq!(map.count_on(m(2)), 0);
    }

    #[test]
    fn completion_ignores_tasks_on_machines_outside_set() {
        // Tasks frozen on a removed machine must not pollute the surviving
        // machines' completion times.
        let etc = etc3x3();
        let ready = ReadyTimes::zero(3);
        let mut map = Mapping::new(3);
        map.assign(t(0), m(0)).unwrap();
        map.assign(t(1), m(1)).unwrap();
        let ct = map.completion_times(&etc, &ready, &[m(1), m(2)]);
        assert_eq!(ct.len(), 2);
        assert_eq!(ct.get(m(1)), Time::new(1.0));
    }
}
