//! The iterative technique for minimizing non-makespan machine completion
//! times (Section 2 of the paper).
//!
//! Procedure:
//!
//! 1. Run the heuristic on all tasks and machines — the **original
//!    mapping**.
//! 2. Identify the makespan machine. Freeze it: its final finishing time is
//!    its completion time in this round, and the tasks assigned to it are
//!    removed from the mappable set.
//! 3. Reset the ready times of all surviving machines to their *initial*
//!    ready times, and re-run the same heuristic on the remaining tasks and
//!    machines — an **iterative mapping**.
//! 4. Repeat until only one machine remains; that machine's finishing time
//!    is its completion time in the last round it participated in.
//!
//! The [`IterativeOutcome`] retains every round so analyses can ask the
//! paper's questions: did any machine finish earlier than in the original
//! mapping? did the makespan *increase* (which the paper proves possible
//! for SWA, KPB and Sufferage even with deterministic ties, and for
//! Min-Min/MCT/MET with random ties)?
//!
//! # Seeding guard
//!
//! The paper's conclusion observes that Genitor never loses ground because
//! the previous round's mapping is *seeded* into its population, and
//! suggests "implementing a form of seeding similar to Genitor's seeding to
//! other heuristics would guarantee that a heuristic can never increase
//! makespan from one iteration to the next". [`IterativeConfig::seed_guard`]
//! implements exactly that: each round, the freshly produced mapping is
//! compared with the previous round's mapping restricted to the surviving
//! tasks, and the one with the smaller objective value (over the surviving
//! machines) is kept; ties keep the previous mapping. With the guard on,
//! the per-round objective value is monotone non-increasing for **every**
//! [`Objective`](crate::Objective) variant and both makespan-tie policies
//! (pinned by proptest in `tests/objective_iterative_proptest.rs`).
//!
//! # Non-makespan machines under other objectives
//!
//! The scenario's [`Objective`](crate::Objective) generalizes the freeze
//! step. Each round the driver freezes the machine with the **largest
//! objective contribution** ([`Objective::contribution`](crate::Objective::contribution)):
//!
//! * makespan and flowtime: the contribution is the completion time, so
//!   the frozen machine is the literal makespan machine and the paper's
//!   wording carries over unchanged — the "non-makespan machines" are
//!   everyone else;
//! * weighted flowtime: the contribution is `n(m) · C(m)`, so the frozen
//!   machine is the one dominating the weighted sum (possibly not the
//!   latest-finishing one). "Non-makespan machine" thus reads
//!   "non-extreme-contribution machine": the machines whose objective
//!   share the next rounds try to shrink.
//!
//! [`Round::makespan_machine`] and [`Round::makespan`] keep their historic
//! names for serialization stability; they record the frozen machine and
//! *its completion time* (which is the round's makespan whenever the
//! contribution is the completion time — i.e. for makespan and flowtime).

use std::sync::{Arc, OnceLock};

use hcs_obs::{NullSink, TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};

use crate::error::Error;
use crate::heuristic::Heuristic;
use crate::id::{MachineId, TaskId};
use crate::instance::{Instance, Scenario};
use crate::mapping::{CompletionTimes, Mapping};
use crate::tiebreak::TieBreaker;
use crate::time::Time;
use crate::workspace::MapWorkspace;

/// How to choose the frozen machine when several tie for the largest
/// completion time. The paper does not specify this; the default matches
/// its "lowest reference number" convention for other ties. The choice is
/// an ablation knob (DESIGN.md §4): with tie-rich workloads it decides
/// *which* machine's tasks disappear, which can change every later round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MakespanTie {
    /// Freeze the tied machine with the lowest index (default).
    #[default]
    LowestIndex,
    /// Freeze the tied machine with the highest index.
    HighestIndex,
    /// Freeze the tied machine with the most assigned tasks (lowest index
    /// on a further tie) — removes the most work per round.
    MostTasks,
}

/// Options controlling the iterative driver.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterativeConfig {
    /// Apply the Genitor-style "keep the previous round's mapping unless
    /// strictly better" guard (see module docs). Off by default — the
    /// paper's main study runs without it.
    pub seed_guard: bool,
    /// Frozen-machine selection among makespan ties.
    pub makespan_tie: MakespanTie,
}

/// One round of the iterative technique.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Round {
    /// Machines considered this round (ascending index).
    pub machines: Vec<MachineId>,
    /// Tasks mapped this round (canonical order).
    pub tasks: Vec<TaskId>,
    /// The mapping produced (possibly the seeded previous mapping when the
    /// guard is active and the fresh mapping was not strictly better).
    pub mapping: Mapping,
    /// Completion time of every considered machine.
    pub completion: CompletionTimes,
    /// The machine frozen at the end of this round: the largest objective
    /// contribution, resolved by the configured [`MakespanTie`] (lowest
    /// index by default). For makespan and flowtime this is the makespan
    /// machine; see the module docs for weighted flowtime.
    pub makespan_machine: MachineId,
    /// The frozen machine's completion time — the round's makespan under
    /// the makespan and flowtime objectives (historic field name kept for
    /// serialization stability).
    pub makespan: Time,
    /// Whether the seed guard rejected the fresh mapping in favour of the
    /// previous round's (always `false` in round 0 or when the guard is
    /// off).
    pub kept_seed: bool,
}

/// Full record of an iterative-technique run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IterativeOutcome {
    /// Every round, in order; `rounds[0]` is the original mapping.
    pub rounds: Vec<Round>,
    /// Final finishing time of every machine of the scenario: the
    /// completion time it had in the round it was frozen (or in the final
    /// round, for the last surviving machine). Ascending machine order.
    pub final_finish: Vec<(MachineId, Time)>,
}

impl IterativeOutcome {
    /// The original (round-0) mapping record.
    pub fn original(&self) -> &Round {
        &self.rounds[0]
    }

    /// Final finishing time of machine `m`.
    ///
    /// # Panics
    ///
    /// Panics when `m` was not part of the scenario.
    pub fn final_finish_of(&self, m: MachineId) -> Time {
        self.final_finish
            .iter()
            .find(|&&(mm, _)| mm == m)
            .map(|&(_, t)| t)
            .unwrap_or_else(|| panic!("machine {m} not in outcome"))
    }

    /// Makespan of the original mapping.
    pub fn original_makespan(&self) -> Time {
        self.rounds[0].makespan
    }

    /// Makespan after the whole procedure: the largest *final* finishing
    /// time over all machines.
    pub fn final_makespan(&self) -> Time {
        self.final_finish
            .iter()
            .map(|&(_, t)| t)
            .max()
            .expect("outcome covers at least one machine")
    }

    /// `true` when the iterative technique made the overall makespan worse
    /// than the original mapping's — the pathology the paper demonstrates
    /// for SWA, KPB, Sufferage (deterministic ties) and for Min-Min, MCT,
    /// MET (random ties).
    pub fn makespan_increased(&self) -> bool {
        self.final_makespan() > self.original_makespan()
    }

    /// Per-machine `(machine, original completion, final finish)` triples,
    /// ascending machine order. `original - final > 0` means the machine
    /// now finishes earlier — the improvement the technique is after.
    pub fn deltas(&self) -> Vec<(MachineId, Time, Time)> {
        self.final_finish
            .iter()
            .map(|&(m, fin)| (m, self.rounds[0].completion.get(m), fin))
            .collect()
    }

    /// Number of machines that strictly improved / strictly worsened.
    pub fn improvement_counts(&self) -> (usize, usize) {
        let mut better = 0;
        let mut worse = 0;
        for (_, orig, fin) in self.deltas() {
            if fin < orig {
                better += 1;
            } else if fin > orig {
                worse += 1;
            }
        }
        (better, worse)
    }

    /// Sum over machines of `max(original - final, 0)` — total finishing
    /// time recovered on machines that improved.
    pub fn total_improvement(&self) -> Time {
        self.deltas()
            .into_iter()
            .filter(|&(_, orig, fin)| fin < orig)
            .map(|(_, orig, fin)| orig - fin)
            .sum()
    }

    /// `true` when every round reproduced the original mapping on the tasks
    /// it considered — the conclusion of the paper's Theorems for Min-Min,
    /// MCT and MET under deterministic ties.
    pub fn mappings_identical(&self) -> bool {
        let original = &self.rounds[0].mapping;
        self.rounds.iter().skip(1).all(|round| {
            round
                .tasks
                .iter()
                .all(|&task| round.mapping.machine_of(task) == original.machine_of(task))
        })
    }
}

/// Builder for one run of the iterative technique — the single entry point
/// the former `run`/`run_with`/`run_in`/`run_with_in`/`try_run_in_traced`
/// family collapsed into.
///
/// Only the heuristic and the scenario are mandatory; everything else has
/// the defaults those wrappers used to hard-code:
///
/// * ties: [`TieBreaker::Deterministic`] (override with [`ties`] to thread
///   a caller-owned breaker, or [`tie_breaker`] to hand one over);
/// * config: [`IterativeConfig::default`] ([`config`]);
/// * workspace: a throwaway [`MapWorkspace`] ([`workspace`] reuses a
///   caller-owned one — the zero-allocation hot path for the studies);
/// * tracing: off ([`trace`] attaches a sink; a disabled sink costs one
///   branch).
///
/// ```
/// # use hcs_core::{iterative::IterativeRun, EtcMatrix, Scenario, TieBreaker};
/// # use hcs_core::{Heuristic, Instance, Mapping};
/// # struct First;
/// # impl Heuristic for First {
/// #     fn name(&self) -> &'static str { "first" }
/// #     fn map(&mut self, inst: &Instance<'_>, _tb: &mut TieBreaker) -> Mapping {
/// #         let mut map = Mapping::new(inst.etc.n_tasks());
/// #         for &t in inst.tasks { map.assign(t, inst.machines[0]).unwrap(); }
/// #         map
/// #     }
/// # }
/// let scenario = Scenario::with_zero_ready(
///     EtcMatrix::from_rows(&[vec![2.0, 6.0], vec![3.0, 4.0]]).unwrap(),
/// );
/// let mut h = First;
/// let outcome = IterativeRun::new(&mut h, &scenario).execute().unwrap();
/// assert_eq!(outcome.final_finish.len(), 2);
/// ```
///
/// [`ties`]: IterativeRun::ties
/// [`tie_breaker`]: IterativeRun::tie_breaker
/// [`config`]: IterativeRun::config
/// [`workspace`]: IterativeRun::workspace
/// [`trace`]: IterativeRun::trace
pub struct IterativeRun<'a, H: Heuristic + ?Sized> {
    heuristic: &'a mut H,
    scenario: &'a Scenario,
    config: IterativeConfig,
    ties: Ties<'a>,
    workspace: Option<&'a mut MapWorkspace>,
    sink: Option<Arc<dyn TraceSink>>,
}

/// Tie-breaker storage: the builder owns its default, but callers that need
/// to observe the breaker's state afterwards (seeded random ties across
/// several runs) lend theirs instead.
enum Ties<'a> {
    Owned(TieBreaker),
    Borrowed(&'a mut TieBreaker),
}

impl<'a, H: Heuristic + ?Sized> IterativeRun<'a, H> {
    /// Starts a run of `heuristic` on `scenario` with every knob at its
    /// default (deterministic ties, default config, throwaway workspace,
    /// no tracing).
    pub fn new(heuristic: &'a mut H, scenario: &'a Scenario) -> Self {
        IterativeRun {
            heuristic,
            scenario,
            config: IterativeConfig::default(),
            ties: Ties::Owned(TieBreaker::Deterministic),
            workspace: None,
            sink: None,
        }
    }

    /// Sets the [`IterativeConfig`] (seeding guard, makespan tie rule).
    pub fn config(mut self, config: IterativeConfig) -> Self {
        self.config = config;
        self
    }

    /// Threads a caller-owned [`TieBreaker`] through every round, so its
    /// state (e.g. a seeded random stream) is shared with the caller.
    pub fn ties(mut self, tb: &'a mut TieBreaker) -> Self {
        self.ties = Ties::Borrowed(tb);
        self
    }

    /// Hands the run an owned [`TieBreaker`] (convenience for callers that
    /// do not need the breaker back).
    pub fn tie_breaker(mut self, tb: TieBreaker) -> Self {
        self.ties = Ties::Owned(tb);
        self
    }

    /// Reuses a caller-owned [`MapWorkspace`] for every round's
    /// [`Heuristic::map_with`] call instead of allocating a throwaway one.
    pub fn workspace(mut self, ws: &'a mut MapWorkspace) -> Self {
        self.workspace = Some(ws);
        self
    }

    /// Attaches a trace sink; see [`TraceEvent`] for the emitted stream
    /// (round trajectory, frozen machines, kernel phases, finish deltas).
    /// A disabled sink short-circuits to the untraced hot path.
    pub fn trace(mut self, sink: &Arc<dyn TraceSink>) -> Self {
        self.sink = Some(Arc::clone(sink));
        self
    }

    /// Runs the procedure, validating every mapping the heuristic produces.
    pub fn execute(self) -> Result<IterativeOutcome, Error> {
        let IterativeRun {
            heuristic,
            scenario,
            config,
            ties,
            workspace,
            sink,
        } = self;
        let mut owned_tb;
        let tb = match ties {
            Ties::Owned(t) => {
                owned_tb = t;
                &mut owned_tb
            }
            Ties::Borrowed(r) => r,
        };
        let mut scratch;
        let ws = match workspace {
            Some(w) => w,
            None => {
                scratch = MapWorkspace::new();
                &mut scratch
            }
        };
        let sink = sink.unwrap_or_else(|| Arc::clone(null_sink()));
        execute_traced(heuristic, scenario, tb, config, ws, &sink)
    }
}

/// The shared always-disabled sink the untraced entry points delegate
/// through (one `enabled()` branch per run, no per-call allocation).
fn null_sink() -> &'static Arc<dyn TraceSink> {
    static NULL: OnceLock<Arc<dyn TraceSink>> = OnceLock::new();
    NULL.get_or_init(|| Arc::new(NullSink))
}

/// min/max over a round's machine completion times — the paper's balance
/// index applied to one round. 1.0 for a zero (or empty) makespan: an
/// all-idle round is perfectly balanced.
fn round_balance_index(completion: &crate::mapping::CompletionTimes) -> f64 {
    let pairs = completion.pairs();
    let max = pairs.iter().map(|&(_, t)| t).max().unwrap_or(Time::ZERO);
    if max <= Time::ZERO {
        return 1.0;
    }
    let min = pairs.iter().map(|&(_, t)| t).min().unwrap_or(Time::ZERO);
    min.get() / max.get()
}

/// The traced driver behind [`IterativeRun::execute`]: emits
/// [`TraceEvent::RoundStart`] before each mapping, [`TraceEvent::RoundEnd`]
/// (makespan machine, makespan, balance index) and
/// [`TraceEvent::MachineFrozen`] after it, one [`TraceEvent::KernelPhases`]
/// per round (kernel timing is switched on for the duration of the run),
/// the heuristic's per-decision [`TraceEvent::TaskCommitted`] stream via
/// the workspace, and one [`TraceEvent::FinishDelta`] per machine at the
/// end.
///
/// A disabled sink short-circuits to the exact untraced hot path: no
/// clocks, no events, one branch.
fn execute_traced<H: Heuristic + ?Sized>(
    heuristic: &mut H,
    scenario: &Scenario,
    tb: &mut TieBreaker,
    config: IterativeConfig,
    ws: &mut MapWorkspace,
    sink: &Arc<dyn TraceSink>,
) -> Result<IterativeOutcome, Error> {
    let traced = sink.enabled();
    if traced {
        ws.set_trace_sink(Arc::clone(sink));
        ws.enable_kernel_timing();
    }
    let result = run_rounds(heuristic, scenario, tb, config, ws, sink, traced);
    if traced {
        ws.clear_trace_sink();
        ws.disable_kernel_timing();
        if let Ok(outcome) = &result {
            for &(machine, fin) in &outcome.final_finish {
                sink.emit(TraceEvent::FinishDelta {
                    machine: machine.0,
                    original: outcome.rounds[0].completion.get(machine).get(),
                    final_finish: fin.get(),
                });
            }
        }
    }
    result
}

/// The driver loop shared by the traced and untraced entry points.
fn run_rounds<H: Heuristic + ?Sized>(
    heuristic: &mut H,
    scenario: &Scenario,
    tb: &mut TieBreaker,
    config: IterativeConfig,
    ws: &mut MapWorkspace,
    sink: &Arc<dyn TraceSink>,
    traced: bool,
) -> Result<IterativeOutcome, Error> {
    let mut tasks = scenario.etc.task_vec();
    let mut machines = scenario.etc.machine_vec();
    let mut rounds: Vec<Round> = Vec::new();
    let mut final_finish: Vec<(MachineId, Time)> = Vec::new();

    loop {
        if traced {
            sink.emit(TraceEvent::RoundStart {
                round: rounds.len() as u32,
                machines: machines.len() as u32,
                tasks: tasks.len() as u32,
            });
        }
        let inst = Instance {
            etc: &scenario.etc,
            tasks: &tasks,
            machines: &machines,
            ready: &scenario.initial_ready,
            objective: scenario.objective,
        };
        let fresh = heuristic.map_with(&inst, tb, ws);
        fresh.validate(&tasks, &machines)?;

        // Seeding guard: compare against the previous round's mapping
        // restricted to the surviving tasks (those tasks were all on
        // surviving machines, by construction of the removal step). The
        // comparison is by the scenario's objective; for makespan this is
        // the exact pre-objective makespan comparison.
        let (mapping, kept_seed) = if config.seed_guard && !rounds.is_empty() {
            let prev = rounds
                .last()
                .expect("guard only runs after round 0")
                .mapping
                .restricted_to(&tasks);
            let fresh_val = fresh.objective_value(
                &scenario.etc,
                &scenario.initial_ready,
                &machines,
                scenario.objective,
            );
            let prev_val = prev.objective_value(
                &scenario.etc,
                &scenario.initial_ready,
                &machines,
                scenario.objective,
            );
            if fresh_val < prev_val {
                (fresh, false)
            } else {
                (prev, true)
            }
        } else {
            (fresh, false)
        };

        let completion =
            mapping.completion_times(&scenario.etc, &scenario.initial_ready, &machines);
        let (mk_machine, mk_time) = pick_frozen_machine(
            &completion,
            &mapping,
            config.makespan_tie,
            scenario.objective,
        );
        rounds.push(Round {
            machines: machines.clone(),
            tasks: tasks.clone(),
            mapping,
            completion,
            makespan_machine: mk_machine,
            makespan: mk_time,
            kept_seed,
        });

        let round_idx = (rounds.len() - 1) as u32;
        if traced {
            if let Some(timers) = ws.take_kernel_timers() {
                sink.emit(TraceEvent::KernelPhases {
                    round: round_idx,
                    scan_us: timers.scan_us,
                    commit_us: timers.commit_us,
                    invalidate_us: timers.invalidate_us,
                });
            }
            sink.emit(TraceEvent::RoundEnd {
                round: round_idx,
                makespan_machine: mk_machine.0,
                makespan: mk_time.get(),
                balance_index: round_balance_index(&rounds.last().expect("just pushed").completion),
            });
        }

        if machines.len() == 1 {
            // The last surviving machine's finish is its completion in this
            // final round.
            final_finish.push((machines[0], mk_time));
            if traced {
                sink.emit(TraceEvent::MachineFrozen {
                    round: round_idx,
                    machine: machines[0].0,
                    finish: mk_time.get(),
                });
            }
            break;
        }

        // Freeze the makespan machine and drop its tasks from the mappable
        // set; all other machines reset to their initial ready times (which
        // happens implicitly — each round maps against
        // `scenario.initial_ready`).
        final_finish.push((mk_machine, mk_time));
        if traced {
            sink.emit(TraceEvent::MachineFrozen {
                round: round_idx,
                machine: mk_machine.0,
                finish: mk_time.get(),
            });
        }
        let frozen_mapping = &rounds.last().expect("just pushed").mapping;
        tasks.retain(|&task| frozen_mapping.machine_of(task) != Some(mk_machine));
        machines.retain(|&machine| machine != mk_machine);
    }

    final_finish.sort_by_key(|&(m, _)| m);
    Ok(IterativeOutcome {
        rounds,
        final_finish,
    })
}

/// Picks the machine to freeze: the largest per-machine objective
/// [contribution](crate::Objective::contribution) — the literal makespan
/// machine for makespan and flowtime, the largest `n(m) · C(m)` for
/// weighted flowtime — with the configured tie rule applied among the tied
/// machines. Returns the chosen machine and its **completion time** (its
/// final finishing time once frozen). For makespan this is bit-identical
/// to the pre-objective `pick_makespan_machine`.
fn pick_frozen_machine(
    completion: &CompletionTimes,
    mapping: &Mapping,
    tie: MakespanTie,
    objective: crate::objective::Objective,
) -> (MachineId, Time) {
    let key = |m: MachineId, t: Time| objective.contribution(t, mapping.count_on(m));
    let mut max_key: Option<Time> = None;
    for &(m, t) in completion.pairs() {
        let k = key(m, t);
        if max_key.is_none_or(|mk| k > mk) {
            max_key = Some(k);
        }
    }
    let max_key = max_key.expect("completion set is empty");
    let tied: Vec<MachineId> = completion
        .pairs()
        .iter()
        .filter(|&&(m, t)| key(m, t) == max_key)
        .map(|&(m, _)| m)
        .collect();
    let chosen = match tie {
        MakespanTie::LowestIndex => tied[0],
        MakespanTie::HighestIndex => *tied.last().expect("at least one tied machine"),
        MakespanTie::MostTasks => {
            let mut best = tied[0];
            let mut best_count = mapping.tasks_on(best).len();
            for &m in &tied[1..] {
                let count = mapping.tasks_on(m).len();
                if count > best_count {
                    best = m;
                    best_count = count;
                }
            }
            best
        }
    };
    (chosen, completion.get(chosen))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etc::EtcMatrix;
    use crate::id::{m, t};
    use crate::mapping::Mapping;

    /// Greedy MCT in miniature (task-list order, earliest completion,
    /// canonical tie order) — enough to exercise the driver without
    /// depending on `hcs-heuristics`.
    struct MiniMct;
    impl Heuristic for MiniMct {
        fn name(&self) -> &'static str {
            "mini-mct"
        }
        fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
            let mut rt = inst.working_ready();
            let mut map = Mapping::new(inst.etc.n_tasks());
            for &task in inst.tasks {
                let (cands, _) = crate::select::min_candidates(
                    inst.machines.iter().map(|&mm| (mm, inst.ct(task, mm, &rt))),
                );
                let chosen = cands[tb.pick(cands.len())];
                rt.advance(chosen, inst.etc.get(task, chosen));
                map.assign(task, chosen).unwrap();
            }
            map
        }
    }

    /// A pathological heuristic: round 0 balances, later rounds pile
    /// everything on the first machine — exercises the seed guard.
    struct Degrading {
        calls: usize,
    }
    impl Heuristic for Degrading {
        fn name(&self) -> &'static str {
            "degrading"
        }
        fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
            self.calls += 1;
            if self.calls == 1 {
                MiniMct.map(inst, tb)
            } else {
                let mut map = Mapping::new(inst.etc.n_tasks());
                for &task in inst.tasks {
                    map.assign(task, inst.machines[0]).unwrap();
                }
                map
            }
        }
    }

    fn scenario_3x3() -> Scenario {
        Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[
                vec![2.0, 5.0, 9.0],
                vec![4.0, 1.0, 2.0],
                vec![3.0, 4.0, 3.0],
                vec![9.0, 2.0, 6.0],
            ])
            .unwrap(),
        )
    }

    /// Default-knob builder run (deterministic ties, scratch workspace).
    fn exec<H: Heuristic + ?Sized>(h: &mut H, s: &Scenario) -> IterativeOutcome {
        IterativeRun::new(h, s).execute().unwrap()
    }

    fn exec_cfg<H: Heuristic + ?Sized>(
        h: &mut H,
        s: &Scenario,
        config: IterativeConfig,
    ) -> IterativeOutcome {
        IterativeRun::new(h, s).config(config).execute().unwrap()
    }

    #[test]
    fn runs_until_one_machine_remains() {
        let s = scenario_3x3();
        let outcome = exec(&mut MiniMct, &s);
        // 3 machines -> 3 rounds (the last round has a single machine only
        // if two removals happen first; with 3 machines rounds = 2 removals
        // + final single-machine round when tasks remain... the driver
        // breaks when |machines| == 1 *after* recording that round).
        assert_eq!(outcome.rounds.last().unwrap().machines.len(), 1);
        assert_eq!(outcome.final_finish.len(), 3);
        // Every machine appears exactly once in final_finish.
        let ms: Vec<MachineId> = outcome.final_finish.iter().map(|&(mm, _)| mm).collect();
        assert_eq!(ms, vec![m(0), m(1), m(2)]);
    }

    #[test]
    fn frozen_machine_keeps_its_round_completion() {
        let s = scenario_3x3();
        let outcome = exec(&mut MiniMct, &s);
        let r0 = &outcome.rounds[0];
        assert_eq!(
            outcome.final_finish_of(r0.makespan_machine),
            r0.completion.get(r0.makespan_machine)
        );
    }

    #[test]
    fn single_machine_scenario_is_one_round() {
        let s = Scenario::with_zero_ready(EtcMatrix::from_rows(&[vec![2.0], vec![3.0]]).unwrap());
        let outcome = exec(&mut MiniMct, &s);
        assert_eq!(outcome.rounds.len(), 1);
        assert_eq!(outcome.final_finish, vec![(m(0), Time::new(5.0))]);
        assert!(!outcome.makespan_increased());
        assert!(outcome.mappings_identical());
    }

    #[test]
    fn more_machines_than_tasks_freezes_idle_machines_gracefully() {
        // After removals exhaust all tasks, remaining rounds map nothing and
        // machines finish at their initial ready times.
        let etc = EtcMatrix::from_rows(&[vec![5.0, 7.0, 9.0]]).unwrap();
        let s = Scenario::with_ready(etc, crate::ReadyTimes::from_values(&[0.0, 1.0, 2.0]));
        let outcome = exec(&mut MiniMct, &s);
        // t0 -> m0 (CT 5). Round 0 makespan machine is m0 (5 > 1 > 2? No:
        // completions are m0=5, m1=1, m2=2, so m0 freezes at 5).
        assert_eq!(outcome.final_finish_of(m(0)), Time::new(5.0));
        // Rounds 1, 2 have no tasks; machines finish at initial ready.
        assert_eq!(outcome.final_finish_of(m(1)), Time::new(1.0));
        assert_eq!(outcome.final_finish_of(m(2)), Time::new(2.0));
        assert_eq!(outcome.rounds.len(), 3);
        assert!(outcome.rounds[1].mapping.is_empty());
    }

    #[test]
    fn deltas_and_counts_are_consistent() {
        let s = scenario_3x3();
        let outcome = exec(&mut MiniMct, &s);
        let deltas = outcome.deltas();
        assert_eq!(deltas.len(), 3);
        let (better, worse) = outcome.improvement_counts();
        assert!(better + worse <= 3);
        let improvement = outcome.total_improvement();
        assert!(improvement >= Time::ZERO);
        // The frozen makespan machine never changes, so it contributes no
        // delta in either direction.
        let mk = outcome.rounds[0].makespan_machine;
        let (_, orig, fin) = deltas.into_iter().find(|&(mm, _, _)| mm == mk).unwrap();
        assert_eq!(orig, fin);
    }

    #[test]
    fn seed_guard_prevents_degradation() {
        let s = scenario_3x3();
        let unguarded = exec(&mut Degrading { calls: 0 }, &s);
        assert!(unguarded.makespan_increased());

        let guarded = exec_cfg(
            &mut Degrading { calls: 0 },
            &s,
            IterativeConfig {
                seed_guard: true,
                ..IterativeConfig::default()
            },
        );
        assert!(!guarded.makespan_increased());
        assert!(guarded.rounds.iter().skip(1).any(|r| r.kept_seed));
    }

    #[test]
    fn makespan_tie_rules_pick_different_machines() {
        // Two machines tie at 4; a third is idle except one small task.
        let etc = EtcMatrix::from_rows(&[
            vec![4.0, 9.0, 9.0],
            vec![9.0, 2.0, 9.0],
            vec![9.0, 2.0, 9.0],
            vec![9.0, 9.0, 4.0],
        ])
        .unwrap();
        let s = Scenario::with_zero_ready(etc);
        // MiniMct: t0->m0 (4), t1->m1 (2), t2->m1 (4), t3->m2 (4): all tie at 4.
        let run_tie = |tie: MakespanTie| {
            let outcome = exec_cfg(
                &mut MiniMct,
                &s,
                IterativeConfig {
                    makespan_tie: tie,
                    ..IterativeConfig::default()
                },
            );
            outcome.rounds[0].makespan_machine
        };
        assert_eq!(run_tie(MakespanTie::LowestIndex), m(0));
        assert_eq!(run_tie(MakespanTie::HighestIndex), m(2));
        // m1 carries two tasks (t1, t2) — MostTasks picks it.
        assert_eq!(run_tie(MakespanTie::MostTasks), m(1));
    }

    #[test]
    fn makespan_tie_rules_agree_without_ties() {
        let s = scenario_3x3();
        let mut results = Vec::new();
        for tie in [
            MakespanTie::LowestIndex,
            MakespanTie::HighestIndex,
            MakespanTie::MostTasks,
        ] {
            let outcome = exec_cfg(
                &mut MiniMct,
                &s,
                IterativeConfig {
                    makespan_tie: tie,
                    ..IterativeConfig::default()
                },
            );
            results.push(outcome.final_finish);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn flowtime_freezes_the_same_machine_as_makespan() {
        // Flowtime's per-machine contribution is the completion time, so
        // the frozen-machine sequence matches the makespan run exactly
        // (MiniMct's naive CT greedy also scores identically: flowtime
        // only changes what the *workspace* kernels rank by).
        let s = scenario_3x3();
        let sf = scenario_3x3().with_objective(crate::Objective::Flowtime);
        let a = exec(&mut MiniMct, &s);
        let b = exec(&mut MiniMct, &sf);
        let frozen = |o: &IterativeOutcome| -> Vec<MachineId> {
            o.rounds.iter().map(|r| r.makespan_machine).collect()
        };
        assert_eq!(frozen(&a), frozen(&b));
    }

    #[test]
    fn weighted_flowtime_freezes_largest_contribution_machine() {
        // MiniMct: t0->m0 (CT 10), t1->m1 (3), t2->m1 (6). Completions:
        // m0 = 10 with 1 task, m1 = 6 with 2 tasks. Makespan freezes m0;
        // weighted flowtime compares contributions 1·10 vs 2·6 and
        // freezes m1 — at m1's own completion time, 6.
        let etc =
            EtcMatrix::from_rows(&[vec![10.0, 100.0], vec![100.0, 3.0], vec![100.0, 3.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc.clone());
        let outcome = exec(&mut MiniMct, &s);
        assert_eq!(outcome.rounds[0].makespan_machine, m(0));
        assert_eq!(outcome.rounds[0].makespan, Time::new(10.0));

        let sw = Scenario::with_zero_ready(etc).with_objective(crate::Objective::WeightedFlowtime);
        let outcome = exec(&mut MiniMct, &sw);
        assert_eq!(outcome.rounds[0].makespan_machine, m(1));
        assert_eq!(outcome.rounds[0].makespan, Time::new(6.0));
    }

    #[test]
    fn execute_surfaces_contract_violations() {
        struct Lazy;
        impl Heuristic for Lazy {
            fn name(&self) -> &'static str {
                "lazy"
            }
            fn map(&mut self, inst: &Instance<'_>, _tb: &mut TieBreaker) -> Mapping {
                Mapping::new(inst.etc.n_tasks()) // assigns nothing
            }
        }
        let err = IterativeRun::new(&mut Lazy, &scenario_3x3())
            .execute()
            .unwrap_err();
        assert_eq!(err, Error::Unassigned(t(0)));
    }

    #[test]
    fn traced_run_matches_untraced_and_events_mirror_the_outcome() {
        use hcs_obs::VecSink;

        let s = scenario_3x3();
        let baseline = exec(&mut MiniMct, &s);

        let vec = Arc::new(VecSink::new());
        let sink: Arc<dyn TraceSink> = Arc::clone(&vec) as Arc<dyn TraceSink>;
        let mut ws = MapWorkspace::new();
        let outcome = IterativeRun::new(&mut MiniMct, &s)
            .workspace(&mut ws)
            .trace(&sink)
            .execute()
            .unwrap();
        assert_eq!(outcome, baseline, "tracing must not perturb the run");

        let events = vec.take();
        let round_starts: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::RoundStart { .. }))
            .collect();
        assert_eq!(round_starts.len(), outcome.rounds.len());

        let round_ends: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::RoundEnd {
                    round,
                    makespan_machine,
                    makespan,
                    balance_index,
                } => Some((*round, *makespan_machine, *makespan, *balance_index)),
                _ => None,
            })
            .collect();
        assert_eq!(round_ends.len(), outcome.rounds.len());
        for (i, round) in outcome.rounds.iter().enumerate() {
            let (r, mk, ms, bal) = round_ends[i];
            assert_eq!(r as usize, i);
            assert_eq!(mk, round.makespan_machine.0);
            assert_eq!(ms, round.makespan.get());
            let min = round
                .completion
                .pairs()
                .iter()
                .map(|&(_, t)| t)
                .min()
                .unwrap();
            assert_eq!(bal, min.get() / round.makespan.get());
            assert!((0.0..=1.0).contains(&bal));
        }

        let frozen: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::MachineFrozen { machine, .. } => Some(*machine),
                _ => None,
            })
            .collect();
        assert_eq!(frozen.len(), outcome.final_finish.len());

        let deltas: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::FinishDelta {
                    machine,
                    original,
                    final_finish,
                } => Some((*machine, *original, *final_finish)),
                _ => None,
            })
            .collect();
        assert_eq!(deltas.len(), outcome.final_finish.len());
        for ((machine, original, fin), (m_out, orig_out, fin_out)) in
            deltas.iter().zip(outcome.deltas())
        {
            assert_eq!(*machine, m_out.0);
            assert_eq!(*original, orig_out.get());
            assert_eq!(*fin, fin_out.get());
        }

        // One kernel-phase record per round (timing was force-enabled).
        let phases = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::KernelPhases { .. }))
            .count();
        assert_eq!(phases, outcome.rounds.len());
    }

    #[test]
    fn traced_run_with_disabled_sink_is_silent_and_restores_workspace() {
        let s = scenario_3x3();
        let sink: Arc<dyn TraceSink> = Arc::new(NullSink);
        let mut ws = MapWorkspace::new();
        let outcome = IterativeRun::new(&mut MiniMct, &s)
            .workspace(&mut ws)
            .trace(&sink)
            .execute()
            .unwrap();
        assert_eq!(outcome, exec(&mut MiniMct, &s));
        // The disabled path must leave kernel timing off.
        assert_eq!(ws.take_kernel_timers(), None);
    }

    #[test]
    fn reusing_one_workspace_matches_the_scratch_path() {
        let s = scenario_3x3();
        let baseline = exec(&mut MiniMct, &s);

        let mut ws = MapWorkspace::new();
        for _ in 0..3 {
            let reused = IterativeRun::new(&mut MiniMct, &s)
                .workspace(&mut ws)
                .execute()
                .unwrap();
            assert_eq!(reused, baseline);
        }
    }

    #[test]
    fn mini_mct_deterministic_is_iteration_invariant() {
        // A smoke-level check of the MCT theorem using the in-module mini
        // implementation; the real theorem tests live in the workspace
        // integration suite.
        let s = scenario_3x3();
        let outcome = exec(&mut MiniMct, &s);
        assert!(outcome.mappings_identical());
        assert!(!outcome.makespan_increased());
    }
}
