//! Strongly-typed identifiers for tasks and machines.
//!
//! Both identifiers are dense indices into the full task / machine space of
//! a [`Scenario`](crate::Scenario). When the iterative technique removes a
//! machine from consideration, the identifier space does not shrink; the
//! *active sets* carried by an [`Instance`](crate::Instance) do.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a task (`t0`, `t1`, …), a dense index into the ETC rows.
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub struct TaskId(pub u32);

/// Identifier of a machine (`m0`, `m1`, …), a dense index into the ETC
/// columns.
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub struct MachineId(pub u32);

impl TaskId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl MachineId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl From<u32> for TaskId {
    fn from(v: u32) -> Self {
        TaskId(v)
    }
}

impl From<u32> for MachineId {
    fn from(v: u32) -> Self {
        MachineId(v)
    }
}

/// Convenience constructor used pervasively in tests and examples.
#[inline]
pub fn t(i: u32) -> TaskId {
    TaskId(i)
}

/// Convenience constructor used pervasively in tests and examples.
#[inline]
pub fn m(i: u32) -> MachineId {
    MachineId(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(t(3).to_string(), "t3");
        assert_eq!(m(0).to_string(), "m0");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(t(1) < t(2));
        assert!(m(0) < m(7));
    }

    #[test]
    fn idx_round_trips() {
        assert_eq!(t(9).idx(), 9);
        assert_eq!(m(4).idx(), 4);
        assert_eq!(TaskId::from(5), t(5));
        assert_eq!(MachineId::from(6), m(6));
    }
}
