//! Problem scenarios and per-round instances.
//!
//! A [`Scenario`] is the full problem: an ETC matrix plus the *initial*
//! ready time of every machine. An [`Instance`] is the view a heuristic
//! sees for one mapping round: the scenario restricted to the currently
//! *mappable tasks* and *considered machines*. The iterative technique
//! shrinks the instance between rounds while the scenario stays fixed.

use serde::{Deserialize, Serialize};

use crate::etc::EtcMatrix;
use crate::id::{MachineId, TaskId};
use crate::ready::ReadyTimes;
use crate::time::Time;

/// A complete problem: tasks, machines, ETC values and initial ready times.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Estimated time to compute each task on each machine.
    pub etc: EtcMatrix,
    /// The time each machine becomes available for its first task.
    pub initial_ready: ReadyTimes,
}

impl Scenario {
    /// A scenario whose machines are all ready at time zero (the setting of
    /// every example in the paper).
    pub fn with_zero_ready(etc: EtcMatrix) -> Self {
        let n = etc.n_machines();
        Scenario {
            etc,
            initial_ready: ReadyTimes::zero(n),
        }
    }

    /// A scenario with explicit initial ready times.
    ///
    /// # Panics
    ///
    /// Panics when `ready` does not cover exactly the matrix's machines.
    pub fn with_ready(etc: EtcMatrix, ready: ReadyTimes) -> Self {
        assert_eq!(
            ready.len(),
            etc.n_machines(),
            "ready times must cover every machine"
        );
        Scenario {
            etc,
            initial_ready: ready,
        }
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.etc.n_tasks()
    }

    /// Number of machines.
    pub fn n_machines(&self) -> usize {
        self.etc.n_machines()
    }

    /// The full instance: all tasks mappable, all machines considered.
    pub fn full_instance(&self) -> InstanceOwned {
        InstanceOwned {
            tasks: self.etc.task_vec(),
            machines: self.etc.machine_vec(),
        }
    }
}

/// Borrowed view of a scenario restricted to active tasks and machines —
/// what a [`Heuristic`](crate::Heuristic) maps in one invocation.
#[derive(Clone, Copy, Debug)]
pub struct Instance<'a> {
    /// The ETC matrix (full space; index with ids from the active sets).
    pub etc: &'a EtcMatrix,
    /// Mappable tasks, in canonical task-list order.
    pub tasks: &'a [TaskId],
    /// Considered machines, ascending index order.
    pub machines: &'a [MachineId],
    /// Initial ready times (full machine space).
    pub ready: &'a ReadyTimes,
}

impl<'a> Instance<'a> {
    /// Completion time of `t` on `m` given *current* ready times `rt`:
    /// `CT(t, m) = ETC(t, m) + RT(m)` (Equation 1 of the paper).
    #[inline]
    pub fn ct(&self, t: TaskId, m: MachineId, rt: &ReadyTimes) -> Time {
        self.etc.get(t, m) + rt.get(m)
    }

    /// A fresh copy of the initial ready times, the mutable working state a
    /// heuristic advances as it assigns tasks.
    pub fn working_ready(&self) -> ReadyTimes {
        self.ready.clone()
    }
}

/// Owned active sets; borrow with [`InstanceOwned::as_instance`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceOwned {
    /// Mappable tasks, canonical order.
    pub tasks: Vec<TaskId>,
    /// Considered machines, ascending.
    pub machines: Vec<MachineId>,
}

impl InstanceOwned {
    /// Borrow as an [`Instance`] against a scenario.
    pub fn as_instance<'a>(&'a self, scenario: &'a Scenario) -> Instance<'a> {
        Instance {
            etc: &scenario.etc,
            tasks: &self.tasks,
            machines: &self.machines,
            ready: &scenario.initial_ready,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{m, t};

    fn scen() -> Scenario {
        Scenario::with_zero_ready(EtcMatrix::from_rows(&[vec![2.0, 4.0], vec![3.0, 1.0]]).unwrap())
    }

    #[test]
    fn full_instance_covers_everything() {
        let s = scen();
        let inst = s.full_instance();
        assert_eq!(inst.tasks, vec![t(0), t(1)]);
        assert_eq!(inst.machines, vec![m(0), m(1)]);
        assert_eq!(s.n_tasks(), 2);
        assert_eq!(s.n_machines(), 2);
    }

    #[test]
    fn ct_is_etc_plus_ready() {
        let etc = EtcMatrix::from_rows(&[vec![2.0, 4.0]]).unwrap();
        let s = Scenario::with_ready(etc, ReadyTimes::from_values(&[1.0, 10.0]));
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let rt = inst.working_ready();
        assert_eq!(inst.ct(t(0), m(0), &rt), Time::new(3.0));
        assert_eq!(inst.ct(t(0), m(1), &rt), Time::new(14.0));
    }

    #[test]
    #[should_panic(expected = "cover every machine")]
    fn mismatched_ready_rejected() {
        let etc = EtcMatrix::from_rows(&[vec![2.0, 4.0]]).unwrap();
        let _ = Scenario::with_ready(etc, ReadyTimes::zero(3));
    }
}
