//! Problem scenarios and per-round instances.
//!
//! A [`Scenario`] is the full problem: an ETC matrix plus the *initial*
//! ready time of every machine. An [`Instance`] is the view a heuristic
//! sees for one mapping round: the scenario restricted to the currently
//! *mappable tasks* and *considered machines*. The iterative technique
//! shrinks the instance between rounds while the scenario stays fixed.

use serde::{Deserialize, Serialize};

use crate::etc::EtcMatrix;
use crate::id::{MachineId, TaskId};
use crate::objective::Objective;
use crate::ready::ReadyTimes;
use crate::time::Time;

/// A complete problem: tasks, machines, ETC values, initial ready times,
/// and the objective the mapping is scored against.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Estimated time to compute each task on each machine.
    pub etc: EtcMatrix,
    /// The time each machine becomes available for its first task.
    pub initial_ready: ReadyTimes,
    /// The optimization objective (defaults to makespan, the paper's
    /// setting; absent in serialized v1 scenarios, which therefore load as
    /// makespan).
    #[serde(default)]
    pub objective: Objective,
}

impl Scenario {
    /// A scenario whose machines are all ready at time zero (the setting of
    /// every example in the paper).
    pub fn with_zero_ready(etc: EtcMatrix) -> Self {
        let n = etc.n_machines();
        Scenario {
            etc,
            initial_ready: ReadyTimes::zero(n),
            objective: Objective::Makespan,
        }
    }

    /// A scenario with explicit initial ready times.
    ///
    /// # Panics
    ///
    /// Panics when `ready` does not cover exactly the matrix's machines.
    pub fn with_ready(etc: EtcMatrix, ready: ReadyTimes) -> Self {
        assert_eq!(
            ready.len(),
            etc.n_machines(),
            "ready times must cover every machine"
        );
        Scenario {
            etc,
            initial_ready: ready,
            objective: Objective::Makespan,
        }
    }

    /// The same scenario scored against `objective` (builder style).
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.etc.n_tasks()
    }

    /// Number of machines.
    pub fn n_machines(&self) -> usize {
        self.etc.n_machines()
    }

    /// The full instance: all tasks mappable, all machines considered.
    pub fn full_instance(&self) -> InstanceOwned {
        InstanceOwned {
            tasks: self.etc.task_vec(),
            machines: self.etc.machine_vec(),
        }
    }
}

/// Borrowed view of a scenario restricted to active tasks and machines —
/// what a [`Heuristic`](crate::Heuristic) maps in one invocation.
#[derive(Clone, Copy, Debug)]
pub struct Instance<'a> {
    /// The ETC matrix (full space; index with ids from the active sets).
    pub etc: &'a EtcMatrix,
    /// Mappable tasks, in canonical task-list order.
    pub tasks: &'a [TaskId],
    /// Considered machines, ascending index order.
    pub machines: &'a [MachineId],
    /// Initial ready times (full machine space).
    pub ready: &'a ReadyTimes,
    /// The objective candidate decisions are scored against.
    pub objective: Objective,
}

impl<'a> Instance<'a> {
    /// Completion time of `t` on `m` given *current* ready times `rt`:
    /// `CT(t, m) = ETC(t, m) + RT(m)` (Equation 1 of the paper).
    #[inline]
    pub fn ct(&self, t: TaskId, m: MachineId, rt: &ReadyTimes) -> Time {
        self.etc.get(t, m) + rt.get(m)
    }

    /// Marginal objective cost of placing `t` on `m`, given `m`'s current
    /// ready time `rt` and the number of tasks it already holds (`count`).
    /// For [`Objective::Makespan`] this is exactly [`Instance::ct`] — the
    /// shared scoring function that keeps the workspace kernel and the
    /// naive reference paths bit-identical (see [`Objective::marginal`]).
    #[inline]
    pub fn score(&self, t: TaskId, m: MachineId, rt: &ReadyTimes, count: u32) -> Time {
        self.objective
            .marginal(self.etc.get(t, m), rt.get(m), count)
    }

    /// A fresh copy of the initial ready times, the mutable working state a
    /// heuristic advances as it assigns tasks.
    pub fn working_ready(&self) -> ReadyTimes {
        self.ready.clone()
    }
}

/// Owned active sets; borrow with [`InstanceOwned::as_instance`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceOwned {
    /// Mappable tasks, canonical order.
    pub tasks: Vec<TaskId>,
    /// Considered machines, ascending.
    pub machines: Vec<MachineId>,
}

impl InstanceOwned {
    /// Borrow as an [`Instance`] against a scenario.
    pub fn as_instance<'a>(&'a self, scenario: &'a Scenario) -> Instance<'a> {
        Instance {
            etc: &scenario.etc,
            tasks: &self.tasks,
            machines: &self.machines,
            ready: &scenario.initial_ready,
            objective: scenario.objective,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{m, t};

    fn scen() -> Scenario {
        Scenario::with_zero_ready(EtcMatrix::from_rows(&[vec![2.0, 4.0], vec![3.0, 1.0]]).unwrap())
    }

    #[test]
    fn full_instance_covers_everything() {
        let s = scen();
        let inst = s.full_instance();
        assert_eq!(inst.tasks, vec![t(0), t(1)]);
        assert_eq!(inst.machines, vec![m(0), m(1)]);
        assert_eq!(s.n_tasks(), 2);
        assert_eq!(s.n_machines(), 2);
    }

    #[test]
    fn ct_is_etc_plus_ready() {
        let etc = EtcMatrix::from_rows(&[vec![2.0, 4.0]]).unwrap();
        let s = Scenario::with_ready(etc, ReadyTimes::from_values(&[1.0, 10.0]));
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let rt = inst.working_ready();
        assert_eq!(inst.ct(t(0), m(0), &rt), Time::new(3.0));
        assert_eq!(inst.ct(t(0), m(1), &rt), Time::new(14.0));
    }

    #[test]
    #[should_panic(expected = "cover every machine")]
    fn mismatched_ready_rejected() {
        let etc = EtcMatrix::from_rows(&[vec![2.0, 4.0]]).unwrap();
        let _ = Scenario::with_ready(etc, ReadyTimes::zero(3));
    }

    #[test]
    fn objective_defaults_to_makespan_and_builds() {
        let s = scen();
        assert_eq!(s.objective, Objective::Makespan);
        let s = s.with_objective(Objective::Flowtime);
        assert_eq!(s.objective, Objective::Flowtime);
        let owned = s.full_instance();
        assert_eq!(owned.as_instance(&s).objective, Objective::Flowtime);
    }

    #[test]
    fn v1_scenario_json_without_objective_loads_as_makespan() {
        // A scenario serialized before the objective field existed must
        // keep deserializing (and mean makespan).
        let s = scen();
        let json = serde_json::to_string(&s).unwrap();
        let v1 = json.replace(",\"objective\":\"makespan\"", "");
        assert_ne!(json, v1, "serialized scenario should carry the field");
        let back: Scenario = serde_json::from_str(&v1).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.objective, Objective::Makespan);
    }

    #[test]
    fn score_is_ct_under_makespan() {
        let etc = EtcMatrix::from_rows(&[vec![2.0, 4.0]]).unwrap();
        let s = Scenario::with_ready(etc, ReadyTimes::from_values(&[1.0, 10.0]));
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let rt = inst.working_ready();
        assert_eq!(inst.score(t(0), m(0), &rt, 3), inst.ct(t(0), m(0), &rt));
    }
}
