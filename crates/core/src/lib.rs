//! Core model for resource allocation in heterogeneous computing (HC)
//! systems, together with the *iterative technique* of Briceño, Oltikar,
//! Siegel and Maciejewski, "Study of an Iterative Technique to Minimize
//! Completion Times of Non-Makespan Machines" (IPDPS Workshops, 2007).
//!
//! # Model
//!
//! A set of independent tasks `T` must be executed on a suite of machines
//! `M`. The *estimated time to compute* (ETC) of every task on every machine
//! is known in advance and stored in an [`EtcMatrix`]. Each machine executes
//! one task at a time, so a machine's *completion time* is its initial ready
//! time plus the sum of the ETCs of the tasks assigned to it. The largest
//! completion time over all machines is the **makespan**, and the machine
//! attaining it is the **makespan machine**.
//!
//! A [`Heuristic`] produces a [`Mapping`] (an assignment of every mappable
//! task to a machine) for an [`Instance`] — a view of the problem restricted
//! to the currently-considered tasks and machines. Where a heuristic must
//! choose between equally good alternatives, the choice is delegated to a
//! [`TieBreaker`], which either resolves ties deterministically (the paper's
//! "oldest task / lowest reference number" rule) or uniformly at random.
//!
//! # The iterative technique
//!
//! [`iterative::IterativeRun`] implements the paper's contribution: run the heuristic
//! to get the *original mapping*, freeze the makespan machine together with
//! the tasks assigned to it, reset every other machine's ready time to its
//! initial value, and re-run the same heuristic on the remaining tasks and
//! machines. Repeat until a single machine remains. The goal is to reduce
//! the finishing times of the *non-makespan* machines; the paper shows the
//! technique is heuristic dependent and can even *increase* the makespan.
//!
//! # Quick example
//!
//! ```
//! use hcs_core::{EtcMatrix, Scenario, TieBreaker, iterative};
//!
//! // Three tasks, two machines.
//! let etc = EtcMatrix::from_rows(&[
//!     vec![2.0, 4.0],
//!     vec![3.0, 1.0],
//!     vec![5.0, 5.0],
//! ]).unwrap();
//! let scenario = Scenario::with_zero_ready(etc);
//!
//! // A trivial heuristic: assign every task to the machine with the
//! // smallest ETC (this is MET; real implementations live in
//! // `hcs-heuristics`).
//! struct Met;
//! impl hcs_core::Heuristic for Met {
//!     fn name(&self) -> &'static str { "MET" }
//!     fn map(&mut self, inst: &hcs_core::Instance<'_>, tb: &mut TieBreaker)
//!         -> hcs_core::Mapping
//!     {
//!         let mut mapping = hcs_core::Mapping::new(inst.etc.n_tasks());
//!         for &t in inst.tasks {
//!             let (cands, _) = hcs_core::select::min_candidates(
//!                 inst.machines.iter().map(|&m| (m, inst.etc.get(t, m))));
//!             let m = cands[tb.pick(cands.len())];
//!             mapping.assign(t, m).unwrap();
//!         }
//!         mapping
//!     }
//! }
//!
//! let outcome = iterative::IterativeRun::new(&mut Met, &scenario)
//!     .execute()
//!     .unwrap();
//! assert_eq!(outcome.rounds.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod digest;
pub mod error;
pub mod etc;
pub mod heuristic;
pub mod id;
pub mod instance;
pub mod iterative;
pub mod loads;
pub mod mapping;
pub mod objective;
pub mod parallel;
pub mod ready;
pub mod select;
pub mod tiebreak;
pub mod time;
pub mod workspace;

/// The shared observability substrate (re-exported so downstream crates
/// reach trace sinks and the metrics registry without a direct dependency).
pub use hcs_obs as obs;

pub use digest::InstanceDigest;
pub use error::Error;
pub use etc::EtcMatrix;
pub use heuristic::Heuristic;
pub use id::{MachineId, TaskId};
pub use instance::{Instance, Scenario};
pub use iterative::{IterativeConfig, IterativeOutcome, IterativeRun, MakespanTie, Round};
pub use loads::{LoadTracker, MoveUndo};
pub use mapping::{CompletionTimes, Mapping};
pub use objective::Objective;
pub use parallel::{split_stream, splitmix64, Incumbent};
pub use ready::ReadyTimes;
pub use tiebreak::TieBreaker;
pub use time::Time;
pub use workspace::{KernelTimers, MapWorkspace};
