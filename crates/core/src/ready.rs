//! Machine ready times.
//!
//! The *initial ready time* of a machine is the time at which it becomes
//! available to begin processing its first task from the considered set
//! (Section 2 of the paper). During mapping the *current* ready time of a
//! machine is its initial ready time plus the ETCs of the tasks already
//! assigned to it; between iterations of the iterative technique the ready
//! times of the surviving machines are **reset to their initial values**.

use serde::{Deserialize, Serialize};

use crate::id::MachineId;
use crate::time::Time;

/// Per-machine ready times, indexed by [`MachineId`] over the *full*
/// machine space of a scenario (inactive machines simply keep their entry).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadyTimes {
    times: Vec<Time>,
}

impl ReadyTimes {
    /// All machines ready at time zero.
    pub fn zero(n_machines: usize) -> Self {
        ReadyTimes {
            times: vec![Time::ZERO; n_machines],
        }
    }

    /// Ready times from explicit values.
    pub fn from_values(values: &[f64]) -> Self {
        ReadyTimes {
            times: values.iter().map(|&v| Time::new(v)).collect(),
        }
    }

    /// Number of machines covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when no machines are covered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Ready time of machine `m`.
    ///
    /// # Panics
    ///
    /// Panics when `m` is out of range.
    #[inline]
    pub fn get(&self, m: MachineId) -> Time {
        self.times[m.idx()]
    }

    /// Sets the ready time of machine `m`.
    #[inline]
    pub fn set(&mut self, m: MachineId, t: Time) {
        self.times[m.idx()] = t;
    }

    /// Adds `dt` to machine `m`'s ready time (a task was placed on it).
    #[inline]
    pub fn advance(&mut self, m: MachineId, dt: Time) {
        self.times[m.idx()] += dt;
    }

    /// Raw slice view (indexed by machine id).
    #[inline]
    pub fn as_slice(&self) -> &[Time] {
        &self.times
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::m;

    #[test]
    fn zero_and_values() {
        let z = ReadyTimes::zero(3);
        assert_eq!(z.len(), 3);
        assert!(!z.is_empty());
        assert_eq!(z.get(m(2)), Time::ZERO);

        let r = ReadyTimes::from_values(&[1.0, 2.5]);
        assert_eq!(r.get(m(1)), Time::new(2.5));
    }

    #[test]
    fn advance_accumulates() {
        let mut r = ReadyTimes::zero(2);
        r.advance(m(0), Time::new(3.0));
        r.advance(m(0), Time::new(1.5));
        assert_eq!(r.get(m(0)), Time::new(4.5));
        assert_eq!(r.get(m(1)), Time::ZERO);
        r.set(m(1), Time::new(9.0));
        assert_eq!(r.as_slice()[1], Time::new(9.0));
    }
}
