//! The mapping-heuristic abstraction.

use crate::instance::Instance;
use crate::mapping::Mapping;
use crate::tiebreak::TieBreaker;
use crate::workspace::MapWorkspace;

/// A resource-allocation heuristic: given an instance (active tasks and
/// machines, ETC, initial ready times) it produces a complete [`Mapping`]
/// of the instance's tasks onto the instance's machines, attempting to
/// minimize makespan.
///
/// # Contract
///
/// * Every task in `inst.tasks` must be assigned to a machine in
///   `inst.machines` (the iterative driver validates this).
/// * All choices between *equally good* alternatives must go through the
///   supplied [`TieBreaker`], with candidates enumerated in canonical order
///   (task-list order for tasks, ascending index for machines). This is
///   what makes the deterministic/random tie-breaking study of the paper
///   possible.
/// * `&mut self` allows stateful heuristics (e.g. the Genitor GA owns its
///   RNG); implementations must nevertheless treat each `map` call as an
///   independent run — the iterative technique re-invokes the *same*
///   heuristic each round.
pub trait Heuristic {
    /// Short display name, e.g. `"Min-Min"`.
    fn name(&self) -> &'static str;

    /// Produce a mapping of `inst.tasks` onto `inst.machines`.
    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping;

    /// Like [`Heuristic::map`], but with a caller-owned [`MapWorkspace`]
    /// whose buffers are reused across calls (the iterative driver and the
    /// Monte-Carlo studies call this in their hot loops).
    ///
    /// The default implementation ignores the workspace and delegates to
    /// `map`, so existing heuristics stay correct without changes; the
    /// greedy heuristics in `hcs-heuristics` override it. Overrides must
    /// produce a `Mapping` bit-identical (assignments *and* order, and tie
    /// breaker consumption) to `map`'s.
    fn map_with(
        &mut self,
        inst: &Instance<'_>,
        tb: &mut TieBreaker,
        ws: &mut MapWorkspace,
    ) -> Mapping {
        let _ = ws;
        self.map(inst, tb)
    }
}

impl<H: Heuristic + ?Sized> Heuristic for &mut H {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        (**self).map(inst, tb)
    }
    fn map_with(
        &mut self,
        inst: &Instance<'_>,
        tb: &mut TieBreaker,
        ws: &mut MapWorkspace,
    ) -> Mapping {
        (**self).map_with(inst, tb, ws)
    }
}

impl<H: Heuristic + ?Sized> Heuristic for Box<H> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        (**self).map(inst, tb)
    }
    fn map_with(
        &mut self,
        inst: &Instance<'_>,
        tb: &mut TieBreaker,
        ws: &mut MapWorkspace,
    ) -> Mapping {
        (**self).map_with(inst, tb, ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etc::EtcMatrix;
    use crate::id::{m, t};
    use crate::instance::Scenario;

    /// Maps every task to the first machine — used to exercise the trait
    /// plumbing (and deliberately terrible at makespan).
    struct AllToFirst;
    impl Heuristic for AllToFirst {
        fn name(&self) -> &'static str {
            "AllToFirst"
        }
        fn map(&mut self, inst: &Instance<'_>, _tb: &mut TieBreaker) -> Mapping {
            let mut map = Mapping::new(inst.etc.n_tasks());
            for &task in inst.tasks {
                map.assign(task, inst.machines[0]).unwrap();
            }
            map
        }
    }

    #[test]
    fn trait_objects_and_wrappers_work() {
        let s = Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[vec![1.0, 2.0], vec![1.0, 2.0]]).unwrap(),
        );
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let mut tb = TieBreaker::Deterministic;

        let mut h: Box<dyn Heuristic> = Box::new(AllToFirst);
        let mapping = h.map(&inst, &mut tb);
        assert_eq!(h.name(), "AllToFirst");
        assert_eq!(mapping.machine_of(t(0)), Some(m(0)));
        assert_eq!(mapping.machine_of(t(1)), Some(m(0)));

        let mut concrete = AllToFirst;
        let by_ref: &mut AllToFirst = &mut concrete;
        let mapping2 = by_ref.map(&inst, &mut tb);
        assert_eq!(mapping2.len(), 2);
        assert_eq!(by_ref.name(), "AllToFirst");
    }

    #[test]
    fn default_map_with_delegates_to_map() {
        let s = Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[vec![1.0, 2.0], vec![1.0, 2.0]]).unwrap(),
        );
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let mut tb = TieBreaker::Deterministic;
        let mut ws = MapWorkspace::new();

        // Through the plain value, a &mut, and a Box: all reach `map`.
        let direct = AllToFirst.map_with(&inst, &mut tb, &mut ws);
        let via_ref =
            <&mut AllToFirst as Heuristic>::map_with(&mut &mut AllToFirst, &inst, &mut tb, &mut ws);
        let via_box = Box::new(AllToFirst).map_with(&inst, &mut tb, &mut ws);
        let plain = AllToFirst.map(&inst, &mut tb);
        assert_eq!(direct, plain);
        assert_eq!(via_ref, plain);
        assert_eq!(via_box, plain);
    }
}
