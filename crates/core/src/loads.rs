//! The delta-evaluation search kernel: per-machine loads with O(1)
//! reassign-move bookkeeping and a cheap objective read.
//!
//! The search heuristics (SA, Tabu, Genitor) explore the space of complete
//! assignments by *reassign moves*: take one task off machine `a`, put it
//! on machine `b`. The loads of `a` and `b` change by one subtraction and
//! one addition — but the naive inner loops still rescanned all `m`
//! machines per candidate move to re-score the assignment. [`LoadTracker`]
//! removes that rescan where the [`Objective`] allows it, and falls back
//! honestly where it does not.
//!
//! # Costing strategy: flat vs tree, per objective
//!
//! The tracker picks its strategy from two inputs — the machine count and
//! the objective — so no configuration is slower than its naive twin:
//!
//! * **Flat mode** (`m <= FLAT_MAX`): just the load vector. A move is two
//!   writes (O(1), no tree maintenance), a probe or objective read is one
//!   O(m) scan. At small `m` the scan is a handful of cache-resident
//!   compares and beats the tree's pointer chasing — BENCH_search.json
//!   before this mode showed the tree-based SA kernel at ~0.6x its naive
//!   twin for m = 8..32 precisely because every probe *and* apply paid
//!   O(log m) tree traffic that the naive scan did not.
//! * **Tree mode** (`m > FLAT_MAX`): the load vector is mirrored into an
//!   implicit perfect binary tree whose internal nodes aggregate their
//!   children — `max` for [`Objective::Makespan`], `+` over per-machine
//!   [contributions](Objective::contribution) for the sum objectives. The
//!   objective read is the root — O(1); applying or undoing a move updates
//!   two leaves and their ancestor paths — O(log m).
//!
//! Probing a move — "what would the objective be?" — is:
//!
//! | objective          | flat mode             | tree mode                          |
//! |--------------------|-----------------------|------------------------------------|
//! | makespan           | O(m) substituted scan | O(log m) sibling walk, read-only   |
//! | flowtime           | O(m) substituted fold | O(log m) apply/read/undo           |
//! | weighted flowtime  | O(m) substituted fold | O(log m) apply/read/undo           |
//!
//! The sum-objective tree probe is the honest fallback the design calls
//! for: a sum tree cannot answer "total excluding two leaves, plus their
//! replacements" read-only any cheaper than applying the move, reading the
//! root, and undoing — so that is exactly what it does (still O(log m),
//! but `&mut` and three tree updates rather than one read-only walk).
//!
//! # Equivalence argument
//!
//! The tracker is semantically invisible to a search that previously kept
//! a plain load vector (DESIGN.md §11):
//!
//! * loads are updated with the *same* [`Time`] operations in the same
//!   order (`old − etc`, `old + etc`; undo restores the saved bits), so
//!   every entry equals the naive vector bit-for-bit in both modes;
//! * for makespan, `max` over a total order is associative and
//!   commutative, so the tree-shaped reduction, the flat scan, and the
//!   naive linear scan all return the same bits (`Time`'s order is
//!   `f64::total_cmp`, and equal elements are bit-identical under it) —
//!   flat and tree mode are **bit-identical** to each other and to the
//!   naive twin;
//! * for the sum objectives, flat mode folds contributions left to right —
//!   the canonical [`Objective::value`] order every naive evaluation site
//!   uses — while tree mode necessarily sums in tree shape. Float addition
//!   is not associative, so *across modes* sum-objective values may differ
//!   in final bits; each tracker is internally consistent (probe equals
//!   apply-then-read bit-for-bit within a mode) and deterministic for a
//!   given `m`, so seeded runs remain reproducible.
//!
//! Internal nodes store raw `f64`s (padding leaves hold the aggregation
//! identity: `-∞` for `max`, `0.0` for `+`, neither of which a [`Time`] is
//! required to hold); the public surface speaks [`Time`] only.

use crate::id::MachineId;
use crate::instance::Instance;
use crate::objective::Objective;
use crate::time::Time;

/// `max` under `total_cmp` — the exact order [`Time`] sorts by, usable on
/// the internal `-∞` padding. Equal elements are bit-identical under
/// `total_cmp`, so either operand may be returned on a tie.
#[inline]
fn fmax(a: f64, b: f64) -> f64 {
    if a.total_cmp(&b) == std::cmp::Ordering::Less {
        b
    } else {
        a
    }
}

/// Saved state of one applied reassign move, for [`LoadTracker::undo`].
/// Holds the *exact* pre-move loads, so undoing restores them bit-for-bit
/// instead of re-deriving them arithmetically (task counts are restored by
/// the inverse integer increments; those are exact by construction).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MoveUndo {
    /// Machine the task was taken from.
    pub from: usize,
    /// Machine the task was moved to.
    pub to: usize,
    /// `from`'s load before the move.
    pub old_from: Time,
    /// `to`'s load before the move.
    pub old_to: Time,
}

/// Per-machine loads and task counts, plus (above [`LoadTracker::FLAT_MAX`]
/// machines) an aggregate tournament tree over them; see the
/// [module docs](self) for the operations and the equivalence argument.
///
/// Machines are addressed by *position* in the instance's active machine
/// list (the same `usize` indices the search heuristics keep in their
/// assignment vectors), not by [`MachineId`].
#[derive(Clone, Debug, Default)]
pub struct LoadTracker {
    /// Leaf values as [`Time`] (the public view).
    loads: Vec<Time>,
    /// Tasks currently on each machine (only *read* by the weighted
    /// objective, but maintained for all of them).
    counts: Vec<u32>,
    /// Implicit binary tree, 1-based: `tree[1]` is the root, leaf `i`
    /// lives at `cap + i`, padding leaves hold the aggregation identity.
    /// Empty in flat mode.
    tree: Vec<f64>,
    /// Leaf capacity: `loads.len().next_power_of_two()` (tree mode only).
    cap: usize,
    /// `true` when `m <= FLAT_MAX`: no tree is kept, every aggregate read
    /// is a flat scan and every move is O(1).
    flat: bool,
    /// The objective the aggregates answer for.
    objective: Objective,
}

impl LoadTracker {
    /// Largest machine count handled in flat mode (no tournament tree).
    /// BENCH_search.json: the tree kernel lost to the naive scan for
    /// m = 8..32 and won from m = 256 up; 128 splits the measured gap.
    pub const FLAT_MAX: usize = 128;

    /// An empty tracker; call [`reset`](Self::reset) or
    /// [`rebuild`](Self::rebuild) before use. Buffers grow on demand and
    /// are reused across resets, so one tracker serves many instances
    /// without reallocating. The objective defaults to makespan; use
    /// [`rebuild`](Self::rebuild) (which adopts the instance's objective)
    /// or [`set_objective`](Self::set_objective).
    pub fn new() -> Self {
        LoadTracker::default()
    }

    /// Number of tracked machines.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// `true` when no machines are tracked.
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// The tracked load vector (machine-position order).
    pub fn loads(&self) -> &[Time] {
        &self.loads
    }

    /// Load of the machine at position `i`.
    pub fn load(&self, i: usize) -> Time {
        self.loads[i]
    }

    /// Per-machine task counts (machine-position order).
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// The objective the tracker aggregates for.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// `true` when the tracker runs without a tree (`m <=`
    /// [`FLAT_MAX`](Self::FLAT_MAX)).
    pub fn is_flat(&self) -> bool {
        self.flat
    }

    /// Switches the objective the aggregates answer for, rebuilding them
    /// from the current loads and counts. Prefer [`rebuild`](Self::rebuild)
    /// on the search hot path (it adopts `inst.objective` automatically).
    pub fn set_objective(&mut self, objective: Objective) {
        self.objective = objective;
        self.build_tree();
    }

    /// Re-initializes the tracker from explicit loads (O(m)), keeping the
    /// current objective. All task counts are reset to zero — exact for
    /// makespan and flowtime; for weighted flowtime use
    /// [`rebuild`](Self::rebuild) (or [`set`](Self::set) plus external
    /// count bookkeeping is *not* supported — counts only change through
    /// `rebuild`, [`apply`](Self::apply) and [`undo`](Self::undo)).
    pub fn reset(&mut self, loads: impl IntoIterator<Item = Time>) {
        self.loads.clear();
        self.loads.extend(loads);
        self.counts.clear();
        self.counts.resize(self.loads.len(), 0);
        self.build_tree();
    }

    /// Sizes `flat`/`cap` for the current machine count and (in tree mode)
    /// rebuilds the whole aggregate tree from loads and counts.
    fn build_tree(&mut self) {
        let n = self.loads.len();
        self.flat = n <= Self::FLAT_MAX;
        if self.flat {
            self.tree.clear();
            self.cap = 0;
            return;
        }
        self.cap = n.next_power_of_two();
        self.tree.clear();
        self.tree.resize(2 * self.cap, self.identity());
        for i in 0..n {
            self.tree[self.cap + i] = self.leaf(i);
        }
        for node in (1..self.cap).rev() {
            self.tree[node] = self.combine(self.tree[2 * node], self.tree[2 * node + 1]);
        }
    }

    /// The aggregation identity padding leaves hold.
    #[inline]
    fn identity(&self) -> f64 {
        match self.objective {
            Objective::Makespan => f64::NEG_INFINITY,
            Objective::Flowtime | Objective::WeightedFlowtime => 0.0,
        }
    }

    /// One internal-node combination step.
    #[inline]
    fn combine(&self, a: f64, b: f64) -> f64 {
        match self.objective {
            Objective::Makespan => fmax(a, b),
            Objective::Flowtime | Objective::WeightedFlowtime => a + b,
        }
    }

    /// Leaf `i`'s aggregate value: the load for makespan/flowtime, the
    /// [contribution](Objective::contribution) `count · load` for weighted
    /// flowtime.
    #[inline]
    fn leaf(&self, i: usize) -> f64 {
        self.objective
            .contribution(self.loads[i], self.counts[i])
            .get()
    }

    /// Re-initializes from an instance and a machine-position assignment
    /// vector (`assign[pos]` = machine position of the `pos`-th instance
    /// task): load of machine `j` is its initial ready time plus its
    /// tasks' ETCs, accumulated in task-position order — the exact
    /// operation order of the naive `loads_of` it replaces. Adopts
    /// `inst.objective` and counts tasks per machine.
    pub fn rebuild(&mut self, inst: &Instance<'_>, assign: &[usize]) {
        self.objective = inst.objective;
        self.reset(inst.machines.iter().map(|&m| inst.ready.get(m)));
        for (pos, &mi) in assign.iter().enumerate() {
            self.counts[mi] += 1;
            let t = self.loads[mi] + inst.etc.get(inst.tasks[pos], inst.machines[mi]);
            self.set(mi, t);
        }
    }

    /// Current makespan: the largest tracked load. Read from the root in
    /// makespan tree mode (O(1)); a flat scan otherwise (flat mode, or a
    /// sum objective whose tree aggregates sums, not maxima) — both return
    /// the same bits as a naive linear scan.
    ///
    /// # Panics
    ///
    /// Panics when the tracker is empty.
    #[inline]
    pub fn makespan(&self) -> Time {
        assert!(!self.loads.is_empty(), "makespan of an empty tracker");
        if !self.flat && self.objective.is_makespan() {
            Time::new(self.tree[1])
        } else {
            self.loads.iter().copied().max().expect("non-empty")
        }
    }

    /// The current objective value: [`makespan`](Self::makespan) for
    /// [`Objective::Makespan`] (bit-identical to the pre-refactor path);
    /// for the sum objectives the canonical left-to-right
    /// [`Objective::value`] fold in flat mode, or the sum-tree root in tree
    /// mode (see the [module docs](self) on cross-mode bits).
    ///
    /// # Panics
    ///
    /// Panics when the tracker is empty.
    #[inline]
    pub fn objective_value(&self) -> Time {
        match self.objective {
            Objective::Makespan => self.makespan(),
            Objective::Flowtime | Objective::WeightedFlowtime => {
                assert!(!self.loads.is_empty(), "objective of an empty tracker");
                if self.flat {
                    self.objective.value(&self.loads, &self.counts)
                } else {
                    Time::new(self.tree[1])
                }
            }
        }
    }

    /// Sets machine `i`'s load and (in tree mode) lifts the change to the
    /// root (O(log m); O(1) flat). Task counts are untouched — this is a
    /// raw load write, not a task move; see [`apply`](Self::apply).
    #[inline]
    pub fn set(&mut self, i: usize, v: Time) {
        self.loads[i] = v;
        if self.flat {
            return;
        }
        let mut node = self.cap + i;
        self.tree[node] = self.leaf(i);
        node >>= 1;
        while node >= 1 {
            let up = self.combine(self.tree[2 * node], self.tree[2 * node + 1]);
            self.tree[node] = up;
            node >>= 1;
        }
    }

    /// Applies a one-task reassign move — `from` loses `sub` and one task,
    /// `to` gains `add` and one task — with the same two [`Time`]
    /// operations the naive load vector performed, and returns the saved
    /// state for [`undo`](Self::undo).
    ///
    /// The count transfer saturates at zero so load-only callers that
    /// initialized via [`reset`](Self::reset) (all counts zero) stay
    /// valid; with counts established by [`rebuild`](Self::rebuild) — as
    /// every weighted-flowtime caller must — `from` always holds a task
    /// and the transfer is exact, so `undo` restores counts exactly.
    #[inline]
    pub fn apply(&mut self, from: usize, sub: Time, to: usize, add: Time) -> MoveUndo {
        let undo = MoveUndo {
            from,
            to,
            old_from: self.loads[from],
            old_to: self.loads[to],
        };
        self.counts[from] = self.counts[from].saturating_sub(1);
        self.counts[to] += 1;
        self.set(from, undo.old_from - sub);
        self.set(to, undo.old_to + add);
        undo
    }

    /// Reverts an applied move, restoring the saved loads bit-for-bit and
    /// the task counts exactly (integer inverse; see
    /// [`apply`](Self::apply) on the saturation caveat for load-only use).
    #[inline]
    pub fn undo(&mut self, undo: MoveUndo) {
        self.counts[undo.from] += 1;
        self.counts[undo.to] = self.counts[undo.to].saturating_sub(1);
        self.set(undo.from, undo.old_from);
        self.set(undo.to, undo.old_to);
    }

    /// Post-move **makespan** without mutating anything: the max of the
    /// two shifted loads and every other machine's current load. `from`
    /// and `to` must differ.
    ///
    /// Tree mode with the makespan objective reads sibling-subtree maxima
    /// along the two leaf-to-root paths (O(log m)); otherwise this is an
    /// O(m) substituted scan over the load vector — the same multiset
    /// either way, so the same bits. For the post-move value of a sum
    /// objective use [`probe_objective`](Self::probe_objective).
    #[inline]
    pub fn probe(&self, from: usize, sub: Time, to: usize, add: Time) -> Time {
        debug_assert_ne!(from, to, "probe needs two distinct machines");
        let new_from = self.loads[from] - sub;
        let new_to = self.loads[to] + add;
        if !self.flat && self.objective.is_makespan() {
            let rest = self.max_excluding2(from, to);
            Time::new(fmax(fmax(rest, new_from.get()), new_to.get()))
        } else {
            let mut best = fmax(new_from.get(), new_to.get());
            for (i, l) in self.loads.iter().enumerate() {
                if i != from && i != to {
                    best = fmax(best, l.get());
                }
            }
            Time::new(best)
        }
    }

    /// Post-move **objective value** for the tracker's objective. `from`
    /// and `to` must differ.
    ///
    /// * Makespan: delegates to [`probe`](Self::probe) — read-only, and
    ///   bit-identical to the pre-refactor probe.
    /// * Sum objectives, flat mode: an O(m) left-to-right fold with the
    ///   two machines' loads (and, for weighted flowtime, counts)
    ///   substituted — bit-identical to apply-then-
    ///   [`objective_value`](Self::objective_value)-then-undo.
    /// * Sum objectives, tree mode: the honest O(log m) fallback —
    ///   apply, read the root, undo (hence `&mut self`; the tracker is
    ///   restored exactly before returning).
    #[inline]
    pub fn probe_objective(&mut self, from: usize, sub: Time, to: usize, add: Time) -> Time {
        debug_assert_ne!(from, to, "probe needs two distinct machines");
        match self.objective {
            // Flat makespan: substitute the two loads in place, take a
            // branch-free max fold over the whole vector, restore. Same
            // multiset as [`probe`](Self::probe)'s skip-two scan, so the
            // same bits — but the fold has no per-element index compares,
            // which is what lets small-m SA match its naive twin.
            Objective::Makespan if self.flat => {
                let old_from = self.loads[from];
                let old_to = self.loads[to];
                self.loads[from] = old_from - sub;
                self.loads[to] = old_to + add;
                let mut best = f64::NEG_INFINITY;
                for l in &self.loads {
                    best = fmax(best, l.get());
                }
                self.loads[from] = old_from;
                self.loads[to] = old_to;
                Time::new(best)
            }
            Objective::Makespan => self.probe(from, sub, to, add),
            Objective::Flowtime | Objective::WeightedFlowtime if self.flat => {
                let new_from = self.loads[from] - sub;
                let new_to = self.loads[to] + add;
                let o = self.objective;
                let mut acc = Time::ZERO;
                for (i, &l) in self.loads.iter().enumerate() {
                    let (load, count) = if i == from {
                        (new_from, self.counts[i].saturating_sub(1))
                    } else if i == to {
                        (new_to, self.counts[i] + 1)
                    } else {
                        (l, self.counts[i])
                    };
                    acc += o.contribution(load, count);
                }
                acc
            }
            Objective::Flowtime | Objective::WeightedFlowtime => {
                let undo = self.apply(from, sub, to, add);
                let value = self.objective_value();
                self.undo(undo);
                value
            }
        }
    }

    /// [`probe_objective`](Self::probe_objective) with the caller's known
    /// current objective value, exploited for an O(1) answer where the
    /// objective allows. `current` **must** equal
    /// [`objective_value()`](Self::objective_value) (search loops carry it
    /// anyway); `from` and `to` must differ.
    ///
    /// Under makespan, when neither endpoint's load attains `current`,
    /// some untouched machine does; untouched loads don't move and `from`
    /// only shrinks, so the post-move makespan is exactly
    /// `max(current, loads[to] + add)` — no scan, no tree walk, in either
    /// mode. Only moves touching a max-attaining machine (~2/m of random
    /// moves) fall back to the full probe. The shortcut picks the larger
    /// of two values the fallback would also produce, so the result is
    /// bit-identical. Sum objectives always delegate: rebuilding their
    /// value from `current` would reassociate the fold and change bits.
    #[inline]
    pub fn probe_objective_hint(
        &mut self,
        from: usize,
        sub: Time,
        to: usize,
        add: Time,
        current: Time,
    ) -> Time {
        debug_assert_eq!(current, self.objective_value(), "stale current value");
        if self.objective.is_makespan() {
            let old_from = self.loads[from];
            let old_to = self.loads[to];
            if old_from != current && old_to != current {
                debug_assert!(old_from < current && old_to < current);
                return current.max(old_to + add);
            }
        }
        self.probe_objective(from, sub, to, add)
    }

    /// Max over every leaf except `a` and `b` (`-∞` when none remain).
    /// Walks both root-to-leaf paths bottom-up in lockstep, taking each
    /// sibling subtree exactly once and skipping the subtrees that contain
    /// the excluded leaves. Only meaningful in makespan tree mode.
    fn max_excluding2(&self, a: usize, b: usize) -> f64 {
        let mut best = f64::NEG_INFINITY;
        let mut ia = self.cap + a;
        let mut ib = self.cap + b;
        while ia != ib {
            let sa = ia ^ 1;
            if sa != ib {
                best = fmax(best, self.tree[sa]);
            }
            let sb = ib ^ 1;
            if sb != ia {
                best = fmax(best, self.tree[sb]);
            }
            ia >>= 1;
            ib >>= 1;
        }
        while ia > 1 {
            best = fmax(best, self.tree[ia ^ 1]);
            ia >>= 1;
        }
        best
    }

    /// The machine position holding the largest load (lowest position on
    /// ties, like a forward linear scan): a root descent preferring the
    /// left child in makespan tree mode, the literal forward scan
    /// otherwise — identical answers either way, because a forward scan
    /// that only replaces on strictly-greater lands on the lowest maximal
    /// position.
    pub fn argmax(&self) -> usize {
        assert!(!self.loads.is_empty(), "argmax of an empty tracker");
        if !self.flat && self.objective.is_makespan() {
            let mut node = 1;
            while node < self.cap {
                node = if self.tree[2 * node].total_cmp(&self.tree[node]).is_eq() {
                    2 * node
                } else {
                    2 * node + 1
                };
            }
            node - self.cap
        } else {
            let mut best = 0;
            for i in 1..self.loads.len() {
                if self.loads[i] > self.loads[best] {
                    best = i;
                }
            }
            best
        }
    }

    /// The corresponding [`MachineId`] under `inst` for [`argmax`](Self::argmax).
    pub fn argmax_machine(&self, inst: &Instance<'_>) -> MachineId {
        inst.machines[self.argmax()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etc::EtcMatrix;
    use crate::instance::Scenario;

    fn t(v: f64) -> Time {
        Time::new(v)
    }

    fn naive_max(loads: &[Time]) -> Time {
        loads.iter().copied().max().expect("non-empty")
    }

    /// A tracker forced into tree mode by size, seeded deterministically.
    fn wide_tracker(m: usize, objective: Objective) -> LoadTracker {
        let mut lt = LoadTracker::new();
        lt.set_objective(objective);
        lt.reset((0..m).map(|i| t(((i * 13 + 5) % 23) as f64 + 0.25)));
        lt
    }

    #[test]
    fn reset_and_makespan_match_linear_scan() {
        let mut lt = LoadTracker::new();
        for n in 1..=9usize {
            let loads: Vec<Time> = (0..n).map(|i| t(((i * 7 + 3) % 5) as f64)).collect();
            lt.reset(loads.iter().copied());
            assert!(lt.is_flat(), "n={n} fits flat mode");
            assert_eq!(lt.makespan(), naive_max(&loads), "n={n}");
            assert_eq!(lt.loads(), &loads[..]);
        }
    }

    #[test]
    fn flat_and_tree_mode_agree_on_makespan_bits() {
        // The same loads, read through both strategies, give identical
        // bits: max is associative/commutative under total_cmp.
        let m = LoadTracker::FLAT_MAX + 72; // tree mode
        let tree = wide_tracker(m, Objective::Makespan);
        assert!(!tree.is_flat());
        let loads: Vec<Time> = tree.loads().to_vec();
        assert_eq!(tree.makespan(), naive_max(&loads));
        let probed = tree.probe(3, t(0.25), m - 1, t(2.5));
        // Naive twin: write the two entries, scan.
        let mut shifted = loads.clone();
        shifted[3] = shifted[3] - t(0.25);
        shifted[m - 1] += t(2.5);
        assert_eq!(probed, naive_max(&shifted));
        assert_eq!(tree.argmax(), {
            let mut best = 0;
            for i in 1..m {
                if loads[i] > loads[best] {
                    best = i;
                }
            }
            best
        });
    }

    #[test]
    fn apply_undo_roundtrips_bitwise() {
        let mut lt = LoadTracker::new();
        let loads = [t(3.5), t(1.25), t(9.0), t(2.0), t(4.75)];
        lt.reset(loads.iter().copied());
        // Give every machine a task so the count transfer stays valid.
        for c in lt.counts.iter_mut() {
            *c = 1;
        }
        let undo = lt.apply(2, t(6.5), 0, t(1.5));
        assert_eq!(lt.load(2), t(2.5));
        assert_eq!(lt.load(0), t(5.0));
        assert_eq!(lt.counts(), &[2, 1, 0, 1, 1]);
        assert_eq!(lt.makespan(), t(5.0));
        lt.undo(undo);
        assert_eq!(lt.loads(), &loads[..]);
        assert_eq!(lt.counts(), &[1, 1, 1, 1, 1]);
        assert_eq!(lt.makespan(), t(9.0));
    }

    #[test]
    fn probe_equals_apply_then_read() {
        let mut lt = LoadTracker::new();
        lt.reset([t(3.0), t(8.0), t(5.0), t(1.0), t(6.0), t(2.0)]);
        for c in lt.counts.iter_mut() {
            *c = 2;
        }
        for from in 0..6 {
            for to in 0..6 {
                if from == to {
                    continue;
                }
                let probed = lt.probe(from, t(0.75), to, t(4.5));
                let undo = lt.apply(from, t(0.75), to, t(4.5));
                assert_eq!(probed, lt.makespan(), "{from}->{to}");
                assert_eq!(probed, naive_max(lt.loads()), "{from}->{to}");
                lt.undo(undo);
            }
        }
    }

    #[test]
    fn probe_matches_apply_on_a_wide_tracker() {
        // Deep enough that the sibling walk crosses several tree levels
        // and meets non-trivial padding (200 leaves in a 256-leaf tree —
        // past FLAT_MAX, so genuinely in tree mode).
        let m = 200;
        let mut lt = wide_tracker(m, Objective::Makespan);
        assert!(!lt.is_flat());
        for c in lt.counts.iter_mut() {
            *c = 1;
        }
        for (from, to) in [(0, m - 1), (m - 1, 0), (3, 4), (40, 170), (170, 40)] {
            let probed = lt.probe(from, t(0.5), to, t(3.75));
            let undo = lt.apply(from, t(0.5), to, t(3.75));
            assert_eq!(probed, lt.makespan(), "{from}->{to}");
            assert_eq!(probed, naive_max(lt.loads()), "{from}->{to}");
            lt.undo(undo);
        }
    }

    #[test]
    fn probe_handles_the_two_makespan_machines() {
        // Moving off the makespan machine must surface the runner-up.
        let mut lt = LoadTracker::new();
        lt.reset([t(10.0), t(7.0), t(4.0)]);
        assert_eq!(lt.probe(0, t(8.0), 2, t(1.0)), t(7.0));
        // Moving onto it must grow it.
        assert_eq!(lt.probe(1, t(1.0), 0, t(2.5)), t(12.5));
    }

    #[test]
    fn single_machine_tracker_works() {
        let mut lt = LoadTracker::new();
        lt.reset([t(4.0)]);
        assert_eq!(lt.makespan(), t(4.0));
        lt.set(0, t(6.0));
        assert_eq!(lt.makespan(), t(6.0));
        assert_eq!(lt.argmax(), 0);
    }

    #[test]
    fn argmax_prefers_lowest_position_on_ties() {
        let mut lt = LoadTracker::new();
        lt.reset([t(2.0), t(7.0), t(7.0), t(1.0)]);
        assert_eq!(lt.argmax(), 1);
        lt.set(0, t(7.0));
        assert_eq!(lt.argmax(), 0);
    }

    #[test]
    fn rebuild_matches_naive_accumulation() {
        let s = Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[vec![2.0, 6.0], vec![3.0, 4.0], vec![8.0, 3.0]]).unwrap(),
        );
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let assign = [1usize, 0, 1];
        let mut lt = LoadTracker::new();
        lt.rebuild(&inst, &assign);
        // Naive twin: ready + etc in position order.
        let mut loads: Vec<Time> = inst.machines.iter().map(|&m| inst.ready.get(m)).collect();
        for (pos, &mi) in assign.iter().enumerate() {
            loads[mi] += inst.etc.get(inst.tasks[pos], inst.machines[mi]);
        }
        assert_eq!(lt.loads(), &loads[..]);
        assert_eq!(lt.counts(), &[1, 2]);
        assert_eq!(lt.makespan(), naive_max(&loads));
        assert_eq!(lt.argmax_machine(&inst), inst.machines[1]);
    }

    #[test]
    fn rebuild_adopts_instance_objective() {
        let s = Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[vec![2.0, 6.0], vec![3.0, 4.0]]).unwrap(),
        )
        .with_objective(Objective::Flowtime);
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let mut lt = LoadTracker::new();
        lt.rebuild(&inst, &[0, 1]);
        assert_eq!(lt.objective(), Objective::Flowtime);
        assert_eq!(lt.objective_value(), t(6.0)); // 2 + 4
        assert_eq!(lt.makespan(), t(4.0)); // still answerable
    }

    #[test]
    fn flowtime_value_and_probe_agree_with_naive_fold() {
        let mut lt = LoadTracker::new();
        lt.set_objective(Objective::Flowtime);
        lt.reset([t(3.0), t(8.0), t(5.0), t(1.0)]);
        for c in lt.counts.iter_mut() {
            *c = 1;
        }
        assert_eq!(lt.objective_value(), t(17.0));
        for from in 0..4 {
            for to in 0..4 {
                if from == to {
                    continue;
                }
                let probed = lt.probe_objective(from, t(0.5), to, t(2.25));
                let undo = lt.apply(from, t(0.5), to, t(2.25));
                assert_eq!(probed, lt.objective_value(), "{from}->{to}");
                lt.undo(undo);
            }
        }
    }

    #[test]
    fn weighted_value_and_probe_agree_with_apply_then_read() {
        let s = Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[
                vec![2.0, 6.0, 1.0],
                vec![3.0, 4.0, 2.0],
                vec![8.0, 3.0, 5.0],
                vec![1.0, 1.0, 9.0],
            ])
            .unwrap(),
        )
        .with_objective(Objective::WeightedFlowtime);
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let mut lt = LoadTracker::new();
        let assign = [0usize, 1, 0, 2];
        lt.rebuild(&inst, &assign);
        // loads = (10, 4, 9), counts = (2, 1, 1): value = 20 + 4 + 9.
        assert_eq!(lt.objective_value(), t(33.0));
        // Move task 2 (pos 2, etc row (8, 3, 5)) from machine 0 to 1.
        let probed = lt.probe_objective(0, t(8.0), 1, t(3.0));
        let undo = lt.apply(0, t(8.0), 1, t(3.0));
        assert_eq!(probed, lt.objective_value());
        assert_eq!(lt.counts(), &[1, 2, 1]);
        lt.undo(undo);
        assert_eq!(lt.objective_value(), t(33.0));
        assert_eq!(lt.counts(), &[2, 1, 1]);
    }

    #[test]
    fn sum_objectives_work_in_tree_mode() {
        // Past FLAT_MAX the sum tree answers objective_value from the
        // root, and probe_objective uses the honest apply/read/undo
        // fallback — internally consistent bit-for-bit.
        for objective in [Objective::Flowtime, Objective::WeightedFlowtime] {
            let m = LoadTracker::FLAT_MAX + 72;
            let mut lt = wide_tracker(m, objective);
            assert!(!lt.is_flat());
            for c in lt.counts.iter_mut() {
                *c = 1;
            }
            lt.set_objective(objective); // rebuild leaves with counts = 1
            let before = lt.objective_value();
            let loads_before: Vec<Time> = lt.loads().to_vec();
            let probed = lt.probe_objective(7, t(0.5), 190, t(2.5));
            // The probe restored everything.
            assert_eq!(lt.loads(), &loads_before[..]);
            assert_eq!(lt.objective_value(), before);
            // And agrees with actually applying the move.
            let undo = lt.apply(7, t(0.5), 190, t(2.5));
            assert_eq!(probed, lt.objective_value(), "{objective}");
            lt.undo(undo);
            assert_eq!(lt.objective_value(), before);
        }
    }

    #[test]
    fn makespan_readable_under_sum_objectives_in_tree_mode() {
        let m = LoadTracker::FLAT_MAX + 10;
        let lt = wide_tracker(m, Objective::Flowtime);
        assert!(!lt.is_flat());
        let loads: Vec<Time> = lt.loads().to_vec();
        assert_eq!(lt.makespan(), naive_max(&loads));
    }

    #[test]
    #[should_panic(expected = "empty tracker")]
    fn empty_makespan_panics() {
        LoadTracker::new().makespan();
    }
}
