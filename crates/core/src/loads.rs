//! The delta-evaluation search kernel: per-machine loads with O(1)
//! reassign-move bookkeeping and an O(log m) makespan read.
//!
//! The search heuristics (SA, Tabu, Genitor) explore the space of complete
//! assignments by *reassign moves*: take one task off machine `a`, put it
//! on machine `b`. The loads of `a` and `b` change by one subtraction and
//! one addition — but the naive inner loops still rescanned all `m`
//! machines per candidate move to find the new makespan. [`LoadTracker`]
//! removes that rescan: it mirrors the load vector into a max tournament
//! tree (an implicit perfect binary tree whose internal nodes hold the max
//! of their children), so
//!
//! * the current makespan is the root — **O(1)**;
//! * applying or undoing a move updates two leaves and their ancestor
//!   paths — **O(log m)**;
//! * *probing* a move — "what would the makespan be?" — combines the two
//!   shifted loads with the tree-max over every *other* machine
//!   (sibling-subtree maxima along the two root-to-leaf paths) —
//!   **O(log m)**, read-only, nothing to undo on rejection.
//!
//! # Equivalence argument
//!
//! The tracker is semantically invisible to a search that previously kept
//! a plain load vector (DESIGN.md §11):
//!
//! * loads are updated with the *same* [`Time`] operations in the same
//!   order (`old − etc`, `old + etc`; undo restores the saved bits), so
//!   every leaf equals the naive vector bit-for-bit;
//! * `max` over a total order is associative and commutative, so the
//!   tree-shaped reduction returns the same bits as the naive linear scan
//!   (`Time`'s order is `f64::total_cmp`, and equal elements are
//!   bit-identical under it);
//! * a probe computes `max(everything else, shifted a, shifted b)` — the
//!   same multiset the naive code scanned after temporarily writing the
//!   two entries.
//!
//! Internal nodes store raw `f64`s (padding leaves are `-∞`, the identity
//! of `max`, which a [`Time`] is not allowed to hold); the public surface
//! speaks [`Time`] only.

use crate::id::MachineId;
use crate::instance::Instance;
use crate::time::Time;

/// `max` under `total_cmp` — the exact order [`Time`] sorts by, usable on
/// the internal `-∞` padding. Equal elements are bit-identical under
/// `total_cmp`, so either operand may be returned on a tie.
#[inline]
fn fmax(a: f64, b: f64) -> f64 {
    if a.total_cmp(&b) == std::cmp::Ordering::Less {
        b
    } else {
        a
    }
}

/// Saved state of one applied reassign move, for [`LoadTracker::undo`].
/// Holds the *exact* pre-move loads, so undoing restores them bit-for-bit
/// instead of re-deriving them arithmetically.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MoveUndo {
    /// Machine the task was taken from.
    pub from: usize,
    /// Machine the task was moved to.
    pub to: usize,
    /// `from`'s load before the move.
    pub old_from: Time,
    /// `to`'s load before the move.
    pub old_to: Time,
}

/// Per-machine loads plus a max tournament tree over them; see the
/// [module docs](self) for the operations and the equivalence argument.
///
/// Machines are addressed by *position* in the instance's active machine
/// list (the same `usize` indices the search heuristics keep in their
/// assignment vectors), not by [`MachineId`].
#[derive(Clone, Debug, Default)]
pub struct LoadTracker {
    /// Leaf values as [`Time`] (the public view).
    loads: Vec<Time>,
    /// Implicit binary tree, 1-based: `tree[1]` is the root, leaf `i`
    /// lives at `cap + i`, padding leaves hold `-∞`.
    tree: Vec<f64>,
    /// Leaf capacity: `loads.len().next_power_of_two()`.
    cap: usize,
}

impl LoadTracker {
    /// An empty tracker; call [`reset`](Self::reset) or
    /// [`rebuild`](Self::rebuild) before use. Buffers grow on demand and
    /// are reused across resets, so one tracker serves many instances
    /// without reallocating.
    pub fn new() -> Self {
        LoadTracker::default()
    }

    /// Number of tracked machines.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// `true` when no machines are tracked.
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// The tracked load vector (machine-position order).
    pub fn loads(&self) -> &[Time] {
        &self.loads
    }

    /// Load of the machine at position `i`.
    pub fn load(&self, i: usize) -> Time {
        self.loads[i]
    }

    /// Re-initializes the tracker from explicit loads (O(m)).
    pub fn reset(&mut self, loads: impl IntoIterator<Item = Time>) {
        self.loads.clear();
        self.loads.extend(loads);
        let n = self.loads.len();
        self.cap = n.next_power_of_two().max(1);
        self.tree.clear();
        self.tree.resize(2 * self.cap, f64::NEG_INFINITY);
        for (i, &v) in self.loads.iter().enumerate() {
            self.tree[self.cap + i] = v.get();
        }
        for node in (1..self.cap).rev() {
            self.tree[node] = fmax(self.tree[2 * node], self.tree[2 * node + 1]);
        }
    }

    /// Re-initializes from an instance and a machine-position assignment
    /// vector (`assign[pos]` = machine position of the `pos`-th instance
    /// task): load of machine `j` is its initial ready time plus its
    /// tasks' ETCs, accumulated in task-position order — the exact
    /// operation order of the naive `loads_of` it replaces.
    pub fn rebuild(&mut self, inst: &Instance<'_>, assign: &[usize]) {
        self.reset(inst.machines.iter().map(|&m| inst.ready.get(m)));
        for (pos, &mi) in assign.iter().enumerate() {
            let t = self.loads[mi] + inst.etc.get(inst.tasks[pos], inst.machines[mi]);
            self.set(mi, t);
        }
    }

    /// Current makespan: the largest tracked load, read from the root.
    ///
    /// # Panics
    ///
    /// Panics when the tracker is empty.
    #[inline]
    pub fn makespan(&self) -> Time {
        assert!(!self.loads.is_empty(), "makespan of an empty tracker");
        Time::new(self.tree[1])
    }

    /// Sets machine `i`'s load and lifts the change to the root
    /// (O(log m)).
    #[inline]
    pub fn set(&mut self, i: usize, v: Time) {
        self.loads[i] = v;
        let mut node = self.cap + i;
        self.tree[node] = v.get();
        node >>= 1;
        while node >= 1 {
            let up = fmax(self.tree[2 * node], self.tree[2 * node + 1]);
            self.tree[node] = up;
            node >>= 1;
        }
    }

    /// Applies a reassign move — `from` loses `sub`, `to` gains `add` —
    /// with the same two [`Time`] operations the naive load vector
    /// performed, and returns the saved state for [`undo`](Self::undo).
    pub fn apply(&mut self, from: usize, sub: Time, to: usize, add: Time) -> MoveUndo {
        let undo = MoveUndo {
            from,
            to,
            old_from: self.loads[from],
            old_to: self.loads[to],
        };
        self.set(from, undo.old_from - sub);
        self.set(to, undo.old_to + add);
        undo
    }

    /// Reverts an applied move, restoring the saved loads bit-for-bit.
    pub fn undo(&mut self, undo: MoveUndo) {
        self.set(undo.from, undo.old_from);
        self.set(undo.to, undo.old_to);
    }

    /// Post-move makespan without mutating anything: the max of the two
    /// shifted loads and every other machine's current load (read from
    /// sibling subtrees along the two leaf-to-root paths). `from` and `to`
    /// must differ.
    ///
    /// The sibling walk stays even at small `m`: measured against a flat
    /// scan of the load vector it was never slower at any bench size
    /// (m = 8..256), so there is no small-`m` special case.
    #[inline]
    pub fn probe(&self, from: usize, sub: Time, to: usize, add: Time) -> Time {
        debug_assert_ne!(from, to, "probe needs two distinct machines");
        let new_from = self.loads[from] - sub;
        let new_to = self.loads[to] + add;
        let rest = self.max_excluding2(from, to);
        Time::new(fmax(fmax(rest, new_from.get()), new_to.get()))
    }

    /// Max over every leaf except `a` and `b` (`-∞` when none remain).
    /// Walks both root-to-leaf paths bottom-up in lockstep, taking each
    /// sibling subtree exactly once and skipping the subtrees that contain
    /// the excluded leaves.
    fn max_excluding2(&self, a: usize, b: usize) -> f64 {
        let mut best = f64::NEG_INFINITY;
        let mut ia = self.cap + a;
        let mut ib = self.cap + b;
        while ia != ib {
            let sa = ia ^ 1;
            if sa != ib {
                best = fmax(best, self.tree[sa]);
            }
            let sb = ib ^ 1;
            if sb != ia {
                best = fmax(best, self.tree[sb]);
            }
            ia >>= 1;
            ib >>= 1;
        }
        while ia > 1 {
            best = fmax(best, self.tree[ia ^ 1]);
            ia >>= 1;
        }
        best
    }

    /// The machine position holding the current makespan (lowest position
    /// on ties, like a forward linear scan): walks the tree from the root
    /// preferring the left child when both subtrees attain the max.
    pub fn argmax(&self) -> usize {
        assert!(!self.loads.is_empty(), "argmax of an empty tracker");
        let mut node = 1;
        while node < self.cap {
            node = if self.tree[2 * node].total_cmp(&self.tree[node]).is_eq() {
                2 * node
            } else {
                2 * node + 1
            };
        }
        node - self.cap
    }

    /// The corresponding [`MachineId`] under `inst` for [`argmax`](Self::argmax).
    pub fn argmax_machine(&self, inst: &Instance<'_>) -> MachineId {
        inst.machines[self.argmax()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etc::EtcMatrix;
    use crate::instance::Scenario;

    fn t(v: f64) -> Time {
        Time::new(v)
    }

    fn naive_max(loads: &[Time]) -> Time {
        loads.iter().copied().max().expect("non-empty")
    }

    #[test]
    fn reset_and_makespan_match_linear_scan() {
        let mut lt = LoadTracker::new();
        for n in 1..=9usize {
            let loads: Vec<Time> = (0..n).map(|i| t(((i * 7 + 3) % 5) as f64)).collect();
            lt.reset(loads.iter().copied());
            assert_eq!(lt.makespan(), naive_max(&loads), "n={n}");
            assert_eq!(lt.loads(), &loads[..]);
        }
    }

    #[test]
    fn apply_undo_roundtrips_bitwise() {
        let mut lt = LoadTracker::new();
        let loads = [t(3.5), t(1.25), t(9.0), t(2.0), t(4.75)];
        lt.reset(loads.iter().copied());
        let undo = lt.apply(2, t(6.5), 0, t(1.5));
        assert_eq!(lt.load(2), t(2.5));
        assert_eq!(lt.load(0), t(5.0));
        assert_eq!(lt.makespan(), t(5.0));
        lt.undo(undo);
        assert_eq!(lt.loads(), &loads[..]);
        assert_eq!(lt.makespan(), t(9.0));
    }

    #[test]
    fn probe_equals_apply_then_read() {
        let mut lt = LoadTracker::new();
        lt.reset([t(3.0), t(8.0), t(5.0), t(1.0), t(6.0), t(2.0)]);
        for from in 0..6 {
            for to in 0..6 {
                if from == to {
                    continue;
                }
                let probed = lt.probe(from, t(0.75), to, t(4.5));
                let undo = lt.apply(from, t(0.75), to, t(4.5));
                assert_eq!(probed, lt.makespan(), "{from}->{to}");
                assert_eq!(probed, naive_max(lt.loads()), "{from}->{to}");
                lt.undo(undo);
            }
        }
    }

    #[test]
    fn probe_matches_apply_on_a_wide_tracker() {
        // Deep enough that the sibling walk crosses several tree levels
        // and meets non-trivial `-∞` padding (81 leaves in a 128-leaf
        // tree).
        let m = 81;
        let mut lt = LoadTracker::new();
        lt.reset((0..m).map(|i| t(((i * 13 + 5) % 23) as f64 + 0.25)));
        for (from, to) in [(0, m - 1), (m - 1, 0), (3, 4), (40, 70), (70, 40)] {
            let probed = lt.probe(from, t(0.5), to, t(3.75));
            let undo = lt.apply(from, t(0.5), to, t(3.75));
            assert_eq!(probed, lt.makespan(), "{from}->{to}");
            assert_eq!(probed, naive_max(lt.loads()), "{from}->{to}");
            lt.undo(undo);
        }
    }

    #[test]
    fn probe_handles_the_two_makespan_machines() {
        // Moving off the makespan machine must surface the runner-up.
        let mut lt = LoadTracker::new();
        lt.reset([t(10.0), t(7.0), t(4.0)]);
        assert_eq!(lt.probe(0, t(8.0), 2, t(1.0)), t(7.0));
        // Moving onto it must grow it.
        assert_eq!(lt.probe(1, t(1.0), 0, t(2.5)), t(12.5));
    }

    #[test]
    fn single_machine_tracker_works() {
        let mut lt = LoadTracker::new();
        lt.reset([t(4.0)]);
        assert_eq!(lt.makespan(), t(4.0));
        lt.set(0, t(6.0));
        assert_eq!(lt.makespan(), t(6.0));
        assert_eq!(lt.argmax(), 0);
    }

    #[test]
    fn argmax_prefers_lowest_position_on_ties() {
        let mut lt = LoadTracker::new();
        lt.reset([t(2.0), t(7.0), t(7.0), t(1.0)]);
        assert_eq!(lt.argmax(), 1);
        lt.set(0, t(7.0));
        assert_eq!(lt.argmax(), 0);
    }

    #[test]
    fn rebuild_matches_naive_accumulation() {
        let s = Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[vec![2.0, 6.0], vec![3.0, 4.0], vec![8.0, 3.0]]).unwrap(),
        );
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let assign = [1usize, 0, 1];
        let mut lt = LoadTracker::new();
        lt.rebuild(&inst, &assign);
        // Naive twin: ready + etc in position order.
        let mut loads: Vec<Time> = inst.machines.iter().map(|&m| inst.ready.get(m)).collect();
        for (pos, &mi) in assign.iter().enumerate() {
            loads[mi] += inst.etc.get(inst.tasks[pos], inst.machines[mi]);
        }
        assert_eq!(lt.loads(), &loads[..]);
        assert_eq!(lt.makespan(), naive_max(&loads));
        assert_eq!(lt.argmax_machine(&inst), inst.machines[1]);
    }

    #[test]
    #[should_panic(expected = "empty tracker")]
    fn empty_makespan_panics() {
        LoadTracker::new().makespan();
    }
}
