//! Error type shared across the workspace's core operations.

use std::fmt;

use crate::id::{MachineId, TaskId};

/// Errors raised by the core model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// An ETC matrix was constructed with a data length that does not match
    /// `n_tasks * n_machines`.
    EtcShape {
        /// Declared number of tasks.
        n_tasks: usize,
        /// Declared number of machines.
        n_machines: usize,
        /// Actual number of values supplied.
        len: usize,
    },
    /// An ETC matrix contained a non-finite or negative value.
    EtcValue {
        /// Offending row.
        task: TaskId,
        /// Offending column.
        machine: MachineId,
    },
    /// An ETC matrix must have at least one task and one machine.
    EtcEmpty,
    /// A task was assigned twice within one mapping.
    DoubleAssignment(TaskId),
    /// A task identifier is out of range for the mapping / matrix.
    TaskOutOfRange(TaskId),
    /// A machine identifier is out of range for the matrix / ready times.
    MachineOutOfRange(MachineId),
    /// A heuristic returned a mapping that left a mappable task unassigned.
    Unassigned(TaskId),
    /// A heuristic assigned a task to a machine outside the active set.
    InactiveMachine(TaskId, MachineId),
    /// An operation that reassigns work (failure recovery, machine drop)
    /// was asked to run with no surviving machine to receive it.
    NoSurvivors,
    /// An objective name did not match any [`Objective`](crate::Objective)
    /// variant (same validation family as unknown heuristic names: callers
    /// reject before doing any work, never fall back silently).
    UnknownObjective(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EtcShape {
                n_tasks,
                n_machines,
                len,
            } => write!(
                f,
                "ETC data length {len} does not match {n_tasks} tasks x {n_machines} machines"
            ),
            Error::EtcValue { task, machine } => {
                write!(
                    f,
                    "ETC({task}, {machine}) is not a finite non-negative value"
                )
            }
            Error::EtcEmpty => write!(f, "ETC matrix needs at least one task and one machine"),
            Error::DoubleAssignment(t) => write!(f, "task {t} assigned twice"),
            Error::TaskOutOfRange(t) => write!(f, "task {t} out of range"),
            Error::MachineOutOfRange(m) => write!(f, "machine {m} out of range"),
            Error::Unassigned(t) => write!(f, "heuristic left task {t} unassigned"),
            Error::InactiveMachine(t, m) => {
                write!(f, "task {t} assigned to inactive machine {m}")
            }
            Error::NoSurvivors => {
                write!(f, "no surviving machine is available to receive work")
            }
            Error::UnknownObjective(name) => {
                write!(
                    f,
                    "unknown objective '{name}' (expected one of: makespan, flowtime, \
                     weighted-flowtime)"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{m, t};

    #[test]
    fn messages_are_informative() {
        let e = Error::EtcShape {
            n_tasks: 2,
            n_machines: 3,
            len: 5,
        };
        assert!(e.to_string().contains("5"));
        assert!(e.to_string().contains("2 tasks x 3 machines"));
        assert!(Error::DoubleAssignment(t(1)).to_string().contains("t1"));
        assert!(Error::InactiveMachine(t(0), m(2))
            .to_string()
            .contains("m2"));
    }
}
