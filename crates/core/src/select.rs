//! Candidate selection helpers shared by all heuristics.
//!
//! The contract with [`TieBreaker`](crate::TieBreaker) is that candidate
//! lists are produced in *canonical order*: the iteration order of the input
//! is preserved, so callers iterate tasks in task-list order and machines in
//! ascending index order. Ties are *exact* [`Time`] equality (see
//! [`crate::time`] for why that is faithful to the paper).

use crate::time::Time;

/// Collects every key achieving the minimum value, preserving input order.
/// Returns the tied keys and the minimum itself.
///
/// # Panics
///
/// Panics on an empty iterator — heuristics never select from nothing.
pub fn min_candidates<K, I>(iter: I) -> (Vec<K>, Time)
where
    I: IntoIterator<Item = (K, Time)>,
{
    let mut keys = Vec::new();
    let best = min_candidates_into(iter, &mut keys);
    (keys, best)
}

/// Collects every key achieving the maximum value, preserving input order.
///
/// # Panics
///
/// Panics on an empty iterator.
pub fn max_candidates<K, I>(iter: I) -> (Vec<K>, Time)
where
    I: IntoIterator<Item = (K, Time)>,
{
    let mut keys = Vec::new();
    let best = max_candidates_into(iter, &mut keys);
    (keys, best)
}

/// Buffer-backed twin of [`min_candidates`]: writes the tied keys into
/// `keys` (cleared first, capacity reused) and returns the minimum. Hot
/// paths call this through a [`MapWorkspace`](crate::MapWorkspace) so no
/// allocation happens after warm-up.
///
/// # Panics
///
/// Panics on an empty iterator.
pub fn min_candidates_into<K, I>(iter: I, keys: &mut Vec<K>) -> Time
where
    I: IntoIterator<Item = (K, Time)>,
{
    extreme_candidates_into(iter, keys, |challenger, best| challenger < best)
}

/// Buffer-backed twin of [`max_candidates`]; see [`min_candidates_into`].
///
/// # Panics
///
/// Panics on an empty iterator.
pub fn max_candidates_into<K, I>(iter: I, keys: &mut Vec<K>) -> Time
where
    I: IntoIterator<Item = (K, Time)>,
{
    extreme_candidates_into(iter, keys, |challenger, best| challenger > best)
}

fn extreme_candidates_into<K, I>(
    iter: I,
    keys: &mut Vec<K>,
    better: impl Fn(Time, Time) -> bool,
) -> Time
where
    I: IntoIterator<Item = (K, Time)>,
{
    let mut it = iter.into_iter();
    let (first_k, first_v) = it
        .next()
        .expect("cannot select a candidate from an empty set");
    keys.clear();
    keys.push(first_k);
    let mut best = first_v;
    for (k, v) in it {
        if better(v, best) {
            best = v;
            keys.clear();
            keys.push(k);
        } else if v == best {
            keys.push(k);
        }
    }
    best
}

/// The two smallest values of an iterator (used by Sufferage: the sufferage
/// value is *second earliest completion time minus earliest completion
/// time*). Returns `(min, second_min)`; when only one element exists the
/// second component is `None`.
pub fn two_smallest<I>(iter: I) -> (Time, Option<Time>)
where
    I: IntoIterator<Item = Time>,
{
    let mut it = iter.into_iter();
    let mut min = it.next().expect("two_smallest needs at least one element");
    let mut second: Option<Time> = None;
    for v in it {
        if v < min {
            second = Some(min);
            min = v;
        } else if second.is_none_or(|s| v < s) {
            second = Some(v);
        }
    }
    (min, second)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: f64) -> Time {
        Time::new(v)
    }

    #[test]
    fn min_candidates_collects_all_ties_in_order() {
        let (keys, best) = min_candidates(vec![("a", t(3.0)), ("b", t(1.0)), ("c", t(1.0))]);
        assert_eq!(keys, vec!["b", "c"]);
        assert_eq!(best, t(1.0));
    }

    #[test]
    fn max_candidates_collects_all_ties_in_order() {
        let (keys, best) = max_candidates(vec![("a", t(3.0)), ("b", t(3.0)), ("c", t(1.0))]);
        assert_eq!(keys, vec!["a", "b"]);
        assert_eq!(best, t(3.0));
    }

    #[test]
    fn single_element() {
        let (keys, best) = min_candidates(vec![(7u32, t(5.0))]);
        assert_eq!(keys, vec![7]);
        assert_eq!(best, t(5.0));
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn empty_input_panics() {
        let _ = min_candidates(Vec::<(u32, Time)>::new());
    }

    #[test]
    fn two_smallest_basic() {
        assert_eq!(
            two_smallest(vec![t(4.0), t(2.0), t(9.0), t(3.0)]),
            (t(2.0), Some(t(3.0)))
        );
        assert_eq!(two_smallest(vec![t(4.0)]), (t(4.0), None));
        // Duplicated minimum: the duplicate is the second smallest, so the
        // sufferage value is zero, matching the intuition that the task
        // would not suffer at all.
        assert_eq!(
            two_smallest(vec![t(2.0), t(2.0), t(5.0)]),
            (t(2.0), Some(t(2.0)))
        );
    }

    #[test]
    fn two_smallest_descending_input() {
        assert_eq!(
            two_smallest(vec![t(9.0), t(7.0), t(5.0)]),
            (t(5.0), Some(t(7.0)))
        );
    }
}
