//! Reusable zero-allocation working state for mapping heuristics.
//!
//! The iterative technique re-runs the same heuristic up to `m − 1` times
//! per scenario, and the Monte-Carlo studies multiply that by classes ×
//! heuristics × trials × tie policies. [`MapWorkspace`] is the shared
//! scratch space that makes those inner `map()` calls cheap: every buffer a
//! greedy heuristic needs — working ready times, the per-task best-machine
//! cache, the unmapped-task set, candidate/pair scratch vectors — lives
//! here and is reused across calls, so after warm-up a mapping run performs
//! no heap allocation.
//!
//! # The invalidation invariant
//!
//! The workspace caches, for each unmapped task `t`, the set of machines
//! tied for the minimum **score** — the
//! [marginal objective cost](crate::Objective::marginal) of placing `t` on
//! `m`, which for the default makespan objective is the completion time
//! `CT(t, m) = ETC(t, m) + RT(m)` — in ascending machine order, together
//! with that minimum. Committing a task to machine `m*` advances only
//! `RT(m*)` by `ETC(task, m*) ≥ 0` and increments only `m*`'s task count:
//!
//! * for a task whose cached tied set does **not** contain `m*`, the score
//!   on every `m ≠ m*` is unchanged and the score on `m*` did not shrink —
//!   makespan grows by the committed ETC, flowtime's score (`ETC(t, m)`
//!   alone) never changes, and weighted flowtime's score
//!   `RT + (count + 1) · ETC` grows in both terms — and it was *strictly*
//!   above the cached minimum (else `m*` would be in the tied set), so
//!   both the minimum and the tied set are exactly what a full rescan
//!   would produce;
//! * a task whose tied set **does** contain `m*` is marked stale and
//!   rescanned on the next [`MapWorkspace::refresh`].
//!
//! This is the classic Min-Min `O(n·m + n²)` trick, generalized: the
//! monotonicity argument holds for every [`Objective`](crate::Objective)
//! variant, so the cache is *semantically invisible* for all of them —
//! candidate sets, tie counts, and therefore the
//! [`TieBreaker`](crate::TieBreaker) random stream are bit-identical to
//! the naive `O(n²·m)` recomputation (and, for makespan, bit-identical to
//! the pre-objective code: the score expression is literally `ETC + RT` in
//! the same operation order).
//!
//! # The canonical-order guarantee
//!
//! The unmapped-task set uses swap-remove storage (O(1) removal) but is
//! never *enumerated* in storage order: every enumeration walks a
//! caller-supplied canonical order slice (the instance task list, or a
//! sorted segment for Segmented Min-Min) and filters by membership. Machine
//! candidates are always produced in ascending machine order. Refactored
//! heuristics therefore present identical candidate lists to the tie
//! breaker as the retained naive references in `hcs-heuristics`.

use std::sync::Arc;
use std::time::Instant;

use hcs_obs::{TraceEvent, TraceSink};

use crate::id::{MachineId, TaskId};
use crate::instance::Instance;
use crate::select;
use crate::time::Time;

/// Sentinel slot value for tasks not currently in the unmapped set.
const NO_SLOT: usize = usize::MAX;

/// Accumulated kernel phase timings, in microseconds (see
/// [`MapWorkspace::enable_kernel_timing`]).
///
/// *Scan* is the candidate-cache rebuild in [`MapWorkspace::refresh`];
/// *commit* is the ready-time advance + unmapped-set removal in
/// [`MapWorkspace::commit`]; *invalidate* is commit's stale-marking sweep
/// over the surviving cache rows.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelTimers {
    /// Time spent rescanning stale candidate caches.
    pub scan_us: u64,
    /// Time spent advancing ready times and removing committed tasks.
    pub commit_us: u64,
    /// Time spent marking dependent cache rows stale.
    pub invalidate_us: u64,
}

/// An optional trace sink held by the workspace; newtype so the workspace
/// can keep deriving `Debug` over a `dyn` sink.
struct TraceHandle(Arc<dyn TraceSink>);

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("enabled", &self.0.enabled())
            .finish()
    }
}

/// Reusable scratch space for mapping heuristics; see the [module
/// docs](self) for the invariants it maintains.
///
/// A workspace is bound to an instance with [`MapWorkspace::begin`], which
/// resizes the internal tables and copies the initial ready times. It can
/// then be reused for any number of subsequent instances of any shape —
/// buffers only ever grow.
#[derive(Debug, Default)]
pub struct MapWorkspace {
    /// Working ready times, full machine space (indexed by machine id).
    ready: Vec<Time>,
    /// Tasks placed on each machine so far, full machine space (read by
    /// the weighted-flowtime score; maintained unconditionally).
    counts: Vec<u32>,
    /// Row stride of `best_machines` (= machine-space size of the instance).
    stride: usize,
    /// Per-task tied-best machines, ascending, `stride` slots per task.
    best_machines: Vec<MachineId>,
    /// Per-task count of valid entries in `best_machines`.
    best_len: Vec<usize>,
    /// Per-task minimum completion time over the instance machines.
    best_time: Vec<Time>,
    /// Per-task "cache needs rescanning" flag.
    stale: Vec<bool>,
    /// Unmapped tasks in swap-remove storage order (never enumerated).
    unmapped: Vec<TaskId>,
    /// task idx -> position in `unmapped`, or `NO_SLOT`.
    slot: Vec<usize>,
    /// Scratch: flattened (task, machine) tie pairs for phase 2.
    pairs: Vec<(TaskId, MachineId)>,
    /// Scratch: machine candidate buffer for immediate-mode selections.
    cand: Vec<MachineId>,
    /// Scratch: machine subset buffer (KPB).
    subset: Vec<MachineId>,
    /// Loanable task buffer (Segmented Min-Min ordering).
    task_buf: Vec<TaskId>,
    /// Loanable (machine, task, value) buffer (Sufferage tentative wins).
    winner_buf: Vec<(MachineId, TaskId, Time)>,
    /// Opt-in decision trace sink (`None` = one branch per commit, nothing
    /// else — the zero-cost-when-disabled contract).
    trace: Option<TraceHandle>,
    /// Opt-in kernel phase timing accumulators (`None` = no clock reads).
    timers: Option<Box<KernelTimers>>,
}

impl MapWorkspace {
    /// An empty workspace; allocates nothing until [`MapWorkspace::begin`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds the workspace to `inst`: sizes every table for the instance's
    /// full task/machine space, copies the initial ready times, and clears
    /// the unmapped set. Call once per `map()` invocation.
    pub fn begin(&mut self, inst: &Instance<'_>) {
        let n_tasks = inst.etc.n_tasks();
        let n_machines = inst.etc.n_machines();
        self.stride = n_machines;
        self.ready.clear();
        self.ready.extend_from_slice(inst.ready.as_slice());
        self.counts.clear();
        self.counts.resize(n_machines, 0);
        self.best_machines
            .resize(n_tasks * n_machines, MachineId(0));
        self.best_len.resize(n_tasks, 0);
        self.best_time.resize(n_tasks, Time::ZERO);
        self.stale.clear();
        self.stale.resize(n_tasks, true);
        self.slot.clear();
        self.slot.resize(n_tasks, NO_SLOT);
        self.unmapped.clear();
    }

    /// Loads `tasks` as the unmapped set (replacing any previous content)
    /// and marks their caches stale. `tasks` is the canonical enumeration
    /// order callers should later pass to [`MapWorkspace::extreme_pairs`].
    pub fn activate(&mut self, tasks: &[TaskId]) {
        for &t in &self.unmapped {
            self.slot[t.idx()] = NO_SLOT;
        }
        self.unmapped.clear();
        for &t in tasks {
            self.slot[t.idx()] = self.unmapped.len();
            self.unmapped.push(t);
            self.stale[t.idx()] = true;
        }
    }

    /// Number of tasks still unmapped.
    #[inline]
    pub fn n_unmapped(&self) -> usize {
        self.unmapped.len()
    }

    /// `true` while any activated task remains unmapped.
    #[inline]
    pub fn has_unmapped(&self) -> bool {
        !self.unmapped.is_empty()
    }

    /// `true` when `t` is in the unmapped set (O(1)).
    #[inline]
    pub fn is_unmapped(&self, t: TaskId) -> bool {
        self.slot[t.idx()] != NO_SLOT
    }

    /// Current working ready time of machine `m`.
    #[inline]
    pub fn ready_of(&self, m: MachineId) -> Time {
        self.ready[m.idx()]
    }

    /// Completion time of `t` on `m` under the current working ready times
    /// (Equation 1: `CT = ETC + RT`).
    #[inline]
    pub fn ct(&self, inst: &Instance<'_>, t: TaskId, m: MachineId) -> Time {
        inst.etc.get(t, m) + self.ready[m.idx()]
    }

    /// Records placing one task on machine `m`: advances its working ready
    /// time by the task's execution time `dt` and bumps its task count.
    /// Every call site is exactly one task placement (immediate-mode
    /// heuristics call it at their assignment site; [`commit`](Self::commit)
    /// calls it once per committed task).
    #[inline]
    pub fn advance(&mut self, m: MachineId, dt: Time) {
        self.ready[m.idx()] += dt;
        self.counts[m.idx()] += 1;
    }

    /// Tasks placed on `m` so far in this mapping run.
    #[inline]
    pub fn count_of(&self, m: MachineId) -> u32 {
        self.counts[m.idx()]
    }

    /// The marginal objective score of placing `t` on `m` under the
    /// current working state ([`Objective::marginal`](crate::Objective::marginal);
    /// equals [`ct`](Self::ct) for makespan).
    #[inline]
    pub fn score(&self, inst: &Instance<'_>, t: TaskId, m: MachineId) -> Time {
        inst.objective.marginal(
            inst.etc.get(t, m),
            self.ready[m.idx()],
            self.counts[m.idx()],
        )
    }

    /// Removes `t` from the unmapped set in O(1) (swap-remove; storage
    /// order changes, enumeration order never depends on storage).
    pub fn remove(&mut self, t: TaskId) {
        let s = self.slot[t.idx()];
        debug_assert_ne!(s, NO_SLOT, "removing a task that is not unmapped");
        self.unmapped.swap_remove(s);
        if s < self.unmapped.len() {
            let moved = self.unmapped[s];
            self.slot[moved.idx()] = s;
        }
        self.slot[t.idx()] = NO_SLOT;
    }

    /// Recomputes the best-machine cache of every stale unmapped task.
    /// After this, [`MapWorkspace::extreme_pairs`] sees a fully fresh cache.
    pub fn refresh(&mut self, inst: &Instance<'_>) {
        let t0 = self.timers.as_ref().map(|_| Instant::now());
        for i in 0..self.unmapped.len() {
            let t = self.unmapped[i];
            if self.stale[t.idx()] {
                self.recompute(inst, t);
            }
        }
        if let Some(t0) = t0 {
            self.timers.as_mut().expect("timers checked above").scan_us += elapsed_us(t0);
        }
    }

    /// Full rescan of one task's minimum-score machines, ascending order —
    /// exactly `select::min_candidates` over the instance machines, scored
    /// by the instance objective's marginal cost (for makespan: `CT`).
    fn recompute(&mut self, inst: &Instance<'_>, t: TaskId) {
        let base = t.idx() * self.stride;
        let mut len = 0usize;
        let mut best = Time::ZERO;
        for (k, &machine) in inst.machines.iter().enumerate() {
            let ct = inst.objective.marginal(
                inst.etc.get(t, machine),
                self.ready[machine.idx()],
                self.counts[machine.idx()],
            );
            if k == 0 || ct < best {
                best = ct;
                self.best_machines[base] = machine;
                len = 1;
            } else if ct == best {
                self.best_machines[base + len] = machine;
                len += 1;
            }
        }
        assert!(len > 0, "instance has no machines");
        self.best_len[t.idx()] = len;
        self.best_time[t.idx()] = best;
        self.stale[t.idx()] = false;
    }

    /// The cached tied-best machines (ascending) and minimum CT of `t`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `t`'s cache is fresh (call
    /// [`MapWorkspace::refresh`] first).
    #[inline]
    pub fn best_of(&self, t: TaskId) -> (&[MachineId], Time) {
        debug_assert!(!self.stale[t.idx()], "best_of on a stale cache entry");
        let base = t.idx() * self.stride;
        (
            &self.best_machines[base..base + self.best_len[t.idx()]],
            self.best_time[t.idx()],
        )
    }

    /// Commits `task` onto `machine`: advances the machine's ready time by
    /// the task's ETC, removes the task from the unmapped set, and marks
    /// stale exactly those unmapped tasks whose cached tied set contains
    /// `machine` (the invalidation invariant — see the module docs for why
    /// all other cache entries remain exact).
    pub fn commit(&mut self, inst: &Instance<'_>, task: TaskId, machine: MachineId) {
        let t0 = self.timers.as_ref().map(|_| Instant::now());
        self.advance(machine, inst.etc.get(task, machine));
        self.remove(task);
        let t1 = t0.map(|start| {
            self.timers
                .as_mut()
                .expect("timers checked above")
                .commit_us += elapsed_us(start);
            Instant::now()
        });
        for i in 0..self.unmapped.len() {
            let t = self.unmapped[i];
            if self.stale[t.idx()] {
                continue;
            }
            let base = t.idx() * self.stride;
            let len = self.best_len[t.idx()];
            if self.best_machines[base..base + len].contains(&machine) {
                self.stale[t.idx()] = true;
            }
        }
        if let Some(t1) = t1 {
            self.timers
                .as_mut()
                .expect("timers checked above")
                .invalidate_us += elapsed_us(t1);
        }
        self.trace_commit(task, machine);
    }

    /// Phase 2 of the two-phase engine: over the unmapped tasks *enumerated
    /// in `order`* (tasks not in the unmapped set are skipped), finds the
    /// extreme (minimum for Min-Min, maximum for Max-Min when `maximize`)
    /// of the cached per-task minimum CTs and returns every `(task,
    /// machine)` pair achieving it — task-major in `order`, machines
    /// ascending — exactly the flattening the naive two-phase code builds.
    ///
    /// Requires a fresh cache ([`MapWorkspace::refresh`]). Returns an empty
    /// slice when no task in `order` is unmapped.
    pub fn extreme_pairs(&mut self, order: &[TaskId], maximize: bool) -> &[(TaskId, MachineId)] {
        let mut found = false;
        let mut extreme = Time::ZERO;
        for &t in order {
            if self.slot[t.idx()] == NO_SLOT {
                continue;
            }
            debug_assert!(!self.stale[t.idx()], "extreme_pairs on a stale cache");
            let b = self.best_time[t.idx()];
            if !found || (maximize && b > extreme) || (!maximize && b < extreme) {
                extreme = b;
                found = true;
            }
        }
        self.pairs.clear();
        if found {
            for &t in order {
                if self.slot[t.idx()] == NO_SLOT || self.best_time[t.idx()] != extreme {
                    continue;
                }
                let base = t.idx() * self.stride;
                for k in 0..self.best_len[t.idx()] {
                    self.pairs.push((t, self.best_machines[base + k]));
                }
            }
        }
        &self.pairs
    }

    /// Machines of `inst` tied for the minimum marginal score of `t`
    /// (ascending) plus that minimum — buffer-backed MCT selection (the
    /// score is the completion time under makespan; see
    /// [`Objective::marginal`](crate::Objective::marginal)).
    pub fn min_ct_candidates(&mut self, inst: &Instance<'_>, t: TaskId) -> (&[MachineId], Time) {
        let ready = &self.ready;
        let counts = &self.counts;
        let best = select::min_candidates_into(
            inst.machines.iter().map(|&m| {
                (
                    m,
                    inst.objective
                        .marginal(inst.etc.get(t, m), ready[m.idx()], counts[m.idx()]),
                )
            }),
            &mut self.cand,
        );
        (&self.cand, best)
    }

    /// Machines tied for the minimum *ETC* of `t` (ready times ignored) —
    /// buffer-backed MET selection.
    pub fn min_etc_candidates(&mut self, inst: &Instance<'_>, t: TaskId) -> (&[MachineId], Time) {
        let best = select::min_candidates_into(
            inst.machines.iter().map(|&m| (m, inst.etc.get(t, m))),
            &mut self.cand,
        );
        (&self.cand, best)
    }

    /// Machines tied for the minimum working ready time (task-oblivious) —
    /// buffer-backed OLB selection.
    pub fn min_ready_candidates(&mut self, inst: &Instance<'_>) -> (&[MachineId], Time) {
        let ready = &self.ready;
        let best = select::min_candidates_into(
            inst.machines.iter().map(|&m| (m, ready[m.idx()])),
            &mut self.cand,
        );
        (&self.cand, best)
    }

    /// KPB's selection: restrict to the `subset_size` machines with the
    /// smallest ETC for `t` (ties broken by machine index, subset kept in
    /// ascending order), then pick the minimum-CT candidates within it.
    pub fn min_ct_among_best_etc(
        &mut self,
        inst: &Instance<'_>,
        t: TaskId,
        subset_size: usize,
    ) -> (&[MachineId], Time) {
        self.subset.clear();
        self.subset.extend_from_slice(inst.machines);
        self.subset
            .sort_unstable_by_key(|&m| (inst.etc.get(t, m), m));
        self.subset.truncate(subset_size.max(1));
        self.subset.sort_unstable();
        let ready = &self.ready;
        let counts = &self.counts;
        let best = select::min_candidates_into(
            self.subset.iter().map(|&m| {
                (
                    m,
                    inst.objective
                        .marginal(inst.etc.get(t, m), ready[m.idx()], counts[m.idx()]),
                )
            }),
            &mut self.cand,
        );
        (&self.cand, best)
    }

    /// The two smallest marginal scores of `t` over the instance machines
    /// — Sufferage's `(min, second_min)` under current working state
    /// (completion times for makespan).
    pub fn two_smallest_ct(&self, inst: &Instance<'_>, t: TaskId) -> (Time, Option<Time>) {
        select::two_smallest(inst.machines.iter().map(|&m| {
            inst.objective.marginal(
                inst.etc.get(t, m),
                self.ready[m.idx()],
                self.counts[m.idx()],
            )
        }))
    }

    /// Loans out the reusable task buffer (cleared). Return it with
    /// [`MapWorkspace::give_task_buf`] so its capacity is kept.
    pub fn take_task_buf(&mut self) -> Vec<TaskId> {
        let mut buf = std::mem::take(&mut self.task_buf);
        buf.clear();
        buf
    }

    /// Returns a buffer loaned by [`MapWorkspace::take_task_buf`].
    pub fn give_task_buf(&mut self, buf: Vec<TaskId>) {
        self.task_buf = buf;
    }

    /// Loans out the reusable `(machine, task, value)` buffer (cleared).
    /// Return it with [`MapWorkspace::give_winner_buf`].
    pub fn take_winner_buf(&mut self) -> Vec<(MachineId, TaskId, Time)> {
        let mut buf = std::mem::take(&mut self.winner_buf);
        buf.clear();
        buf
    }

    /// Returns a buffer loaned by [`MapWorkspace::take_winner_buf`].
    pub fn give_winner_buf(&mut self, buf: Vec<(MachineId, TaskId, Time)>) {
        self.winner_buf = buf;
    }

    /// Attaches a trace sink: every committed `(task, machine)` decision —
    /// via [`MapWorkspace::commit`] or an immediate-mode heuristic's
    /// [`MapWorkspace::trace_commit`] — is emitted as
    /// [`TraceEvent::TaskCommitted`]. Detach with
    /// [`MapWorkspace::clear_trace_sink`]; with no sink attached the cost
    /// is one `Option` branch per commit.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.trace = Some(TraceHandle(sink));
    }

    /// Detaches the trace sink (see [`MapWorkspace::set_trace_sink`]).
    pub fn clear_trace_sink(&mut self) {
        self.trace = None;
    }

    /// Emits [`TraceEvent::TaskCommitted`] for one mapping decision when a
    /// sink is attached and enabled. Immediate-mode heuristics (which
    /// advance ready times directly instead of going through
    /// [`MapWorkspace::commit`]) call this at their assignment site.
    #[inline]
    pub fn trace_commit(&self, task: TaskId, machine: MachineId) {
        if let Some(TraceHandle(sink)) = &self.trace {
            if sink.enabled() {
                sink.emit(TraceEvent::TaskCommitted {
                    task: task.0,
                    machine: machine.0,
                });
            }
        }
    }

    /// Starts accumulating kernel phase timings ([`KernelTimers`]) across
    /// subsequent [`MapWorkspace::refresh`]/[`MapWorkspace::commit`] calls.
    /// Without this, no clocks are read anywhere in the kernel.
    pub fn enable_kernel_timing(&mut self) {
        if self.timers.is_none() {
            self.timers = Some(Box::default());
        }
    }

    /// Stops kernel phase timing and drops any accumulated values.
    pub fn disable_kernel_timing(&mut self) {
        self.timers = None;
    }

    /// Returns the timings accumulated since the last take (resetting them
    /// to zero, timing stays enabled), or `None` when timing is off.
    pub fn take_kernel_timers(&mut self) -> Option<KernelTimers> {
        self.timers.as_mut().map(|t| std::mem::take(&mut **t))
    }
}

/// Microseconds elapsed since `start`, saturating into `u64`.
#[inline]
fn elapsed_us(start: Instant) -> u64 {
    start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etc::EtcMatrix;
    use crate::id::{m, t};
    use crate::instance::Scenario;
    use crate::select::min_candidates;

    fn scen(rows: &[Vec<f64>]) -> Scenario {
        Scenario::with_zero_ready(EtcMatrix::from_rows(rows).unwrap())
    }

    /// The cache after any commit sequence must match a from-scratch
    /// `min_candidates` scan (over the objective's marginal score) for
    /// every unmapped task.
    fn assert_cache_matches_naive(ws: &mut MapWorkspace, inst: &Instance<'_>) {
        ws.refresh(inst);
        for &task in inst.tasks {
            if !ws.is_unmapped(task) {
                continue;
            }
            let (naive, naive_best) = min_candidates(inst.machines.iter().map(|&mm| {
                (
                    mm,
                    inst.objective.marginal(
                        inst.etc.get(task, mm),
                        ws.ready_of(mm),
                        ws.count_of(mm),
                    ),
                )
            }));
            let (cached, cached_best) = ws.best_of(task);
            assert_eq!(cached, naive.as_slice(), "tied set diverged for {task}");
            assert_eq!(cached_best, naive_best, "minimum diverged for {task}");
        }
    }

    #[test]
    fn cache_equals_full_rescan_after_commits() {
        // Tie-rich integer matrix: commits repeatedly hit cached best
        // machines of other tasks.
        let s = scen(&[
            vec![2.0, 2.0, 3.0],
            vec![1.0, 4.0, 1.0],
            vec![3.0, 3.0, 3.0],
            vec![2.0, 1.0, 2.0],
        ]);
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let mut ws = MapWorkspace::new();
        ws.begin(&inst);
        ws.activate(inst.tasks);

        assert_cache_matches_naive(&mut ws, &inst);
        ws.commit(&inst, t(1), m(0));
        assert_cache_matches_naive(&mut ws, &inst);
        ws.commit(&inst, t(3), m(1));
        assert_cache_matches_naive(&mut ws, &inst);
        ws.commit(&inst, t(0), m(2));
        assert_cache_matches_naive(&mut ws, &inst);
        assert_eq!(ws.n_unmapped(), 1);
    }

    #[test]
    fn cache_invariant_holds_for_every_objective() {
        use crate::objective::Objective;
        // Same tie-rich matrix as above, driven to completion under each
        // objective: the invalidation invariant must keep the cache exact
        // (scores on the committed machine may grow or stay put, never
        // shrink — see module docs).
        for objective in Objective::ALL {
            let s = scen(&[
                vec![2.0, 2.0, 3.0],
                vec![1.0, 4.0, 1.0],
                vec![3.0, 3.0, 3.0],
                vec![2.0, 1.0, 2.0],
            ])
            .with_objective(objective);
            let owned = s.full_instance();
            let inst = owned.as_instance(&s);
            let mut ws = MapWorkspace::new();
            ws.begin(&inst);
            ws.activate(inst.tasks);
            assert_cache_matches_naive(&mut ws, &inst);
            while ws.has_unmapped() {
                ws.refresh(&inst);
                let &(task, machine) = &ws.extreme_pairs(inst.tasks, false)[0];
                ws.commit(&inst, task, machine);
                assert_cache_matches_naive(&mut ws, &inst);
            }
        }
    }

    #[test]
    fn advance_tracks_counts_and_score_uses_them() {
        use crate::objective::Objective;
        let s = scen(&[vec![2.0, 5.0], vec![3.0, 1.0]]).with_objective(Objective::WeightedFlowtime);
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let mut ws = MapWorkspace::new();
        ws.begin(&inst);
        assert_eq!(ws.count_of(m(0)), 0);
        ws.advance(m(0), Time::new(2.0));
        assert_eq!(ws.count_of(m(0)), 1);
        // Weighted score of t1 on m0: ready 2 + (1+1)*3 = 8.
        assert_eq!(ws.score(&inst, t(1), m(0)), Time::new(8.0));
        // Flowtime/makespan scores ignore or use count differently.
        assert_eq!(ws.ct(&inst, t(1), m(0)), Time::new(5.0));
    }

    #[test]
    fn swap_remove_never_perturbs_enumeration_order() {
        let s = scen(&[vec![1.0], vec![1.0], vec![1.0], vec![1.0]]);
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let mut ws = MapWorkspace::new();
        ws.begin(&inst);
        ws.activate(inst.tasks);
        ws.refresh(&inst);

        // Remove from the middle: storage swaps t3 into t1's slot, but
        // pair enumeration still follows the canonical order slice.
        ws.remove(t(1));
        assert!(!ws.is_unmapped(t(1)));
        assert!(ws.is_unmapped(t(3)));
        ws.refresh(&inst);
        let pairs: Vec<_> = ws.extreme_pairs(inst.tasks, false).to_vec();
        assert_eq!(pairs, vec![(t(0), m(0)), (t(2), m(0)), (t(3), m(0))]);
    }

    #[test]
    fn extreme_pairs_flattens_task_major_machines_ascending() {
        // Tasks 0 and 2 tie for the global minimum (CT 1 on two machines
        // each); task 1 is worse.
        let s = scen(&[
            vec![1.0, 1.0, 5.0],
            vec![2.0, 9.0, 9.0],
            vec![5.0, 1.0, 1.0],
        ]);
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let mut ws = MapWorkspace::new();
        ws.begin(&inst);
        ws.activate(inst.tasks);
        ws.refresh(&inst);
        assert_eq!(
            ws.extreme_pairs(inst.tasks, false),
            &[(t(0), m(0)), (t(0), m(1)), (t(2), m(1)), (t(2), m(2))]
        );
        // Max-Min flavour: task 1's best (2) is the largest minimum.
        assert_eq!(ws.extreme_pairs(inst.tasks, true), &[(t(1), m(0))]);
    }

    #[test]
    fn commit_invalidates_only_tasks_sharing_the_machine() {
        let s = scen(&[vec![1.0, 9.0], vec![9.0, 1.0], vec![1.0, 9.0]]);
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let mut ws = MapWorkspace::new();
        ws.begin(&inst);
        ws.activate(inst.tasks);
        ws.refresh(&inst);
        ws.commit(&inst, t(0), m(0));
        // t2's best machine was m0 -> stale; t1's best is m1 -> untouched.
        assert!(ws.stale[t(2).idx()]);
        assert!(!ws.stale[t(1).idx()]);
        assert_cache_matches_naive(&mut ws, &inst);
    }

    #[test]
    fn immediate_mode_helpers_match_select() {
        let etc = EtcMatrix::from_rows(&[vec![4.0, 2.0, 2.0]]).unwrap();
        let s = Scenario::with_ready(etc, crate::ready::ReadyTimes::from_values(&[0.0, 0.0, 1.0]));
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let mut ws = MapWorkspace::new();
        ws.begin(&inst);

        let (cands, best) = ws.min_ct_candidates(&inst, t(0));
        assert_eq!((cands, best), (&[m(1)][..], Time::new(2.0)));
        let (cands, best) = ws.min_etc_candidates(&inst, t(0));
        assert_eq!((cands, best), (&[m(1), m(2)][..], Time::new(2.0)));
        let (cands, best) = ws.min_ready_candidates(&inst);
        assert_eq!((cands, best), (&[m(0), m(1)][..], Time::ZERO));
        assert_eq!(
            ws.two_smallest_ct(&inst, t(0)),
            (Time::new(2.0), Some(Time::new(3.0)))
        );
        // KPB subset of 2: machines m1, m2 by ETC; min CT within is m1.
        let (cands, best) = ws.min_ct_among_best_etc(&inst, t(0), 2);
        assert_eq!((cands, best), (&[m(1)][..], Time::new(2.0)));
    }

    #[test]
    fn workspace_reuse_across_instances_of_different_shapes() {
        let mut ws = MapWorkspace::new();
        for rows in [
            vec![vec![1.0, 2.0], vec![2.0, 1.0]],
            vec![vec![3.0], vec![1.0], vec![2.0]],
        ] {
            let s = scen(&rows);
            let owned = s.full_instance();
            let inst = owned.as_instance(&s);
            ws.begin(&inst);
            ws.activate(inst.tasks);
            assert_cache_matches_naive(&mut ws, &inst);
            while ws.has_unmapped() {
                ws.refresh(&inst);
                let &(task, machine) = &ws.extreme_pairs(inst.tasks, false)[0];
                ws.commit(&inst, task, machine);
                assert_cache_matches_naive(&mut ws, &inst);
            }
        }
    }

    #[test]
    fn commit_emits_task_committed_only_while_sink_attached() {
        use hcs_obs::{TraceEvent, VecSink};
        use std::sync::Arc;

        let s = scen(&[vec![1.0, 2.0], vec![2.0, 1.0], vec![1.0, 1.0]]);
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let mut ws = MapWorkspace::new();
        ws.begin(&inst);
        ws.activate(inst.tasks);
        ws.refresh(&inst);

        let sink = Arc::new(VecSink::new());
        ws.set_trace_sink(sink.clone());
        ws.commit(&inst, t(0), m(0));
        ws.trace_commit(t(1), m(1)); // the immediate-mode emission path
        ws.clear_trace_sink();
        ws.refresh(&inst);
        ws.commit(&inst, t(1), m(1)); // after detach: silent

        assert_eq!(
            sink.take(),
            vec![
                TraceEvent::TaskCommitted {
                    task: 0,
                    machine: 0
                },
                TraceEvent::TaskCommitted {
                    task: 1,
                    machine: 1
                },
            ]
        );
    }

    #[test]
    fn kernel_timers_accumulate_and_reset_on_take() {
        let s = scen(&[vec![1.0, 2.0], vec![2.0, 1.0], vec![1.0, 1.0]]);
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let mut ws = MapWorkspace::new();
        assert_eq!(ws.take_kernel_timers(), None, "timing is off by default");

        ws.enable_kernel_timing();
        ws.begin(&inst);
        ws.activate(inst.tasks);
        while ws.has_unmapped() {
            ws.refresh(&inst);
            let &(task, machine) = &ws.extreme_pairs(inst.tasks, false)[0];
            ws.commit(&inst, task, machine);
        }
        let timers = ws.take_kernel_timers().expect("timing enabled");
        // Wall-clock values are environment-dependent; the contract is
        // that take() resets while staying enabled.
        let _ = timers;
        assert_eq!(ws.take_kernel_timers(), Some(KernelTimers::default()));
        ws.disable_kernel_timing();
        assert_eq!(ws.take_kernel_timers(), None);
    }

    #[test]
    fn loaned_buffers_round_trip() {
        let mut ws = MapWorkspace::new();
        let mut buf = ws.take_task_buf();
        buf.push(t(7));
        ws.give_task_buf(buf);
        assert!(ws.take_task_buf().is_empty(), "loaned buffers come cleared");
        let mut wins = ws.take_winner_buf();
        wins.push((m(0), t(0), Time::ZERO));
        ws.give_winner_buf(wins);
        assert!(ws.take_winner_buf().is_empty());
    }
}
