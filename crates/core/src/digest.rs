//! Content digests of mapping-problem instances.
//!
//! A serving layer that answers repeated mapping requests needs a cheap,
//! stable identity for "the same problem asked again": the same ETC matrix,
//! the same initial ready times, the same heuristic and tie policy, run
//! through the same driver. [`InstanceDigest`] computes a 64-bit FNV-1a
//! hash over exactly those inputs, in a fixed canonical field order, so the
//! digest is reproducible across processes and platforms (f64 values are
//! hashed by their IEEE-754 bit patterns, which [`Time`] keeps finite).
//!
//! The digest is *not* cryptographic — it keys an in-process cache, where
//! an adversarial collision merely wastes a cache slot. Field order and the
//! seed/prime constants are part of the stable contract: changing them
//! invalidates every persisted digest.

use crate::instance::Scenario;
use crate::time::Time;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over the content of a mapping request.
///
/// Build one with [`InstanceDigest::new`], feed it the request's fields
/// (order matters — callers must feed fields in one canonical order), and
/// read the digest with [`InstanceDigest::finish`]. The convenience
/// constructor [`InstanceDigest::of_request`] applies the canonical order
/// used by the serving layer.
#[derive(Clone, Debug)]
pub struct InstanceDigest {
    state: u64,
}

impl Default for InstanceDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl InstanceDigest {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        InstanceDigest { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Feeds a length/count.
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Feeds a time value by its IEEE-754 bit pattern.
    pub fn write_time(&mut self, t: Time) -> &mut Self {
        self.write_u64(t.get().to_bits())
    }

    /// Feeds a string, length-prefixed so `("ab", "c")` and `("a", "bc")`
    /// digest differently.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes())
    }

    /// Feeds an optional `u64` (presence tag then value).
    pub fn write_opt_u64(&mut self, v: Option<u64>) -> &mut Self {
        match v {
            Some(x) => self.write_bytes(&[1]).write_u64(x),
            None => self.write_bytes(&[0]),
        }
    }

    /// Feeds a boolean.
    pub fn write_bool(&mut self, v: bool) -> &mut Self {
        self.write_bytes(&[u8::from(v)])
    }

    /// The 64-bit digest of everything fed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// Canonical digest of a mapping request: scenario shape, every ETC
    /// value, every initial ready time, the heuristic name, the tie policy
    /// (`None` = deterministic, `Some(seed)` = random with that seed),
    /// whether the iterative driver (and its seeding guard) is applied,
    /// and — for non-makespan scenarios only — the objective name.
    ///
    /// Two requests share a digest exactly when this function was fed equal
    /// field values — which, all inputs being deterministic given those
    /// fields, means they produce identical mappings. The objective is
    /// appended *only* when it is not [`Objective::Makespan`]: every digest
    /// computed before the objective field existed implicitly meant
    /// makespan, and this keeps those digests (and any cache entries keyed
    /// by them) valid, while requests that differ only in objective can
    /// never collide.
    ///
    /// [`Objective::Makespan`]: crate::Objective::Makespan
    pub fn of_request(
        scenario: &Scenario,
        heuristic: &str,
        random_ties: Option<u64>,
        iterative: bool,
        seed_guard: bool,
    ) -> u64 {
        let mut d = InstanceDigest::new();
        d.write_usize(scenario.n_tasks())
            .write_usize(scenario.n_machines());
        for t in scenario.etc.tasks() {
            for &v in scenario.etc.row(t) {
                d.write_time(v);
            }
        }
        for &r in scenario.initial_ready.as_slice() {
            d.write_time(r);
        }
        d.write_str(heuristic)
            .write_opt_u64(random_ties)
            .write_bool(iterative)
            .write_bool(seed_guard);
        if !scenario.objective.is_makespan() {
            d.write_str(scenario.objective.name());
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etc::EtcMatrix;
    use crate::ready::ReadyTimes;

    fn scen(rows: &[Vec<f64>]) -> Scenario {
        Scenario::with_zero_ready(EtcMatrix::from_rows(rows).unwrap())
    }

    #[test]
    fn identical_requests_share_a_digest() {
        let a = scen(&[vec![2.0, 4.0], vec![3.0, 1.0]]);
        let b = scen(&[vec![2.0, 4.0], vec![3.0, 1.0]]);
        assert_eq!(
            InstanceDigest::of_request(&a, "Min-Min", None, true, false),
            InstanceDigest::of_request(&b, "Min-Min", None, true, false),
        );
    }

    #[test]
    fn every_field_perturbs_the_digest() {
        let base = scen(&[vec![2.0, 4.0], vec![3.0, 1.0]]);
        let d0 = InstanceDigest::of_request(&base, "Min-Min", None, true, false);

        let etc_changed = scen(&[vec![2.0, 4.0], vec![3.0, 1.5]]);
        assert_ne!(
            d0,
            InstanceDigest::of_request(&etc_changed, "Min-Min", None, true, false)
        );

        let ready_changed =
            Scenario::with_ready(base.etc.clone(), ReadyTimes::from_values(&[0.0, 1.0]));
        assert_ne!(
            d0,
            InstanceDigest::of_request(&ready_changed, "Min-Min", None, true, false)
        );

        assert_ne!(
            d0,
            InstanceDigest::of_request(&base, "MCT", None, true, false)
        );
        assert_ne!(
            d0,
            InstanceDigest::of_request(&base, "Min-Min", Some(0), true, false)
        );
        assert_ne!(
            d0,
            InstanceDigest::of_request(&base, "Min-Min", None, false, false)
        );
        assert_ne!(
            d0,
            InstanceDigest::of_request(&base, "Min-Min", None, true, true)
        );
    }

    #[test]
    fn objectives_never_share_a_digest() {
        let base = scen(&[vec![2.0, 4.0], vec![3.0, 1.0]]);
        let digests: Vec<u64> = crate::Objective::ALL
            .iter()
            .map(|&o| {
                let s = base.clone().with_objective(o);
                InstanceDigest::of_request(&s, "Min-Min", None, true, false)
            })
            .collect();
        for i in 0..digests.len() {
            for j in i + 1..digests.len() {
                assert_ne!(digests[i], digests[j], "{i} vs {j}");
            }
        }
        // Makespan scenarios keep the pre-objective digest: the field is
        // only appended when non-default, so v1 cache keys stay valid.
        assert_eq!(
            digests[0],
            InstanceDigest::of_request(&base, "Min-Min", None, true, false)
        );
    }

    #[test]
    fn tie_seeds_digest_distinctly() {
        let s = scen(&[vec![2.0, 4.0]]);
        let d_a = InstanceDigest::of_request(&s, "MCT", Some(1), false, false);
        let d_b = InstanceDigest::of_request(&s, "MCT", Some(2), false, false);
        assert_ne!(d_a, d_b);
    }

    #[test]
    fn shape_is_part_of_identity() {
        // A 1x2 and a 2x1 matrix with the same flat values must differ.
        let wide = scen(&[vec![2.0, 3.0]]);
        let tall = scen(&[vec![2.0], vec![3.0]]);
        assert_ne!(
            InstanceDigest::of_request(&wide, "MCT", None, false, false),
            InstanceDigest::of_request(&tall, "MCT", None, false, false),
        );
    }

    #[test]
    fn incremental_api_matches_manual_fnv() {
        // FNV-1a of the empty input is the offset basis; of b"a" is a known
        // constant.
        assert_eq!(InstanceDigest::new().finish(), FNV_OFFSET);
        let mut d = InstanceDigest::new();
        d.write_bytes(b"a");
        assert_eq!(d.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
