//! A totally-ordered, finite wall-clock quantity.
//!
//! ETC values, ready times, completion times and makespans are all [`Time`]s.
//! The type wraps an `f64` but maintains the invariant that the value is
//! finite, which makes a total order (and therefore `Eq`/`Ord`) sound.
//!
//! # Ties
//!
//! The paper's tie semantics are *exact equality* of completion times
//! ("the heuristic determines both mappings are the best possible
//! mappings"). All quantities in the paper's examples are small dyadic
//! rationals (e.g. `6.5`), for which `f64` addition is exact, so exact
//! comparison is the faithful reproduction. Workload generators in
//! `hcs-etcgen` produce continuous values where exact ties essentially never
//! occur; [`Time::approx_eq`] is available for analyses that want a
//! tolerance.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A finite, non-NaN time value (seconds, abstract units — the model does
/// not care).
#[derive(Copy, Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Time(f64);

impl Time {
    /// The zero time.
    pub const ZERO: Time = Time(0.0);

    /// Creates a new `Time`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not finite (NaN or infinite); the finiteness
    /// invariant is what makes `Ord` sound.
    #[inline]
    pub fn new(v: f64) -> Self {
        assert!(v.is_finite(), "Time must be finite, got {v}");
        Time(v)
    }

    /// Fallible constructor: returns `None` when `v` is not finite.
    #[inline]
    pub fn try_new(v: f64) -> Option<Self> {
        v.is_finite().then_some(Time(v))
    }

    /// The underlying `f64`.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// `true` when `|self - other| <= eps`.
    #[inline]
    pub fn approx_eq(self, other: Time, eps: f64) -> bool {
        (self.0 - other.0).abs() <= eps
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Eq for Time {}

impl Ord for Time {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Finite invariant means total_cmp agrees with the usual order and
        // never has to distinguish NaNs.
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for Time {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time::new(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time::new(self.0 - rhs.0)
    }
}

impl Mul<f64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: f64) -> Time {
        Time::new(self.0 * rhs)
    }
}

impl Div<f64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: f64) -> Time {
        Time::new(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print integers without a trailing ".0" to match the paper's
        // tables ("5", "6.5").
        if self.0.fract() == 0.0 && self.0.abs() < 1e15 {
            write!(f, "{}", self.0 as i64)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl From<Time> for f64 {
    fn from(t: Time) -> f64 {
        t.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_exact_on_dyadic_rationals() {
        let a = Time::new(2.5);
        let b = Time::new(4.0);
        assert_eq!(a + b, Time::new(6.5));
        assert_eq!(b - a, Time::new(1.5));
        assert_eq!((a + b).to_string(), "6.5");
        assert_eq!(b.to_string(), "4");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![Time::new(3.0), Time::new(1.0), Time::new(2.0)];
        v.sort();
        assert_eq!(v, vec![Time::new(1.0), Time::new(2.0), Time::new(3.0)]);
        assert_eq!(Time::new(1.0).max(Time::new(2.0)), Time::new(2.0));
        assert_eq!(Time::new(1.0).min(Time::new(2.0)), Time::new(1.0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = Time::new(f64::NAN);
    }

    #[test]
    fn try_new_filters_non_finite() {
        assert!(Time::try_new(f64::INFINITY).is_none());
        assert_eq!(Time::try_new(1.0), Some(Time::new(1.0)));
    }

    #[test]
    fn sum_accumulates() {
        let s: Time = [1.0, 2.0, 3.5].iter().map(|&v| Time::new(v)).sum();
        assert_eq!(s, Time::new(6.5));
    }

    #[test]
    fn approx_eq_uses_tolerance() {
        assert!(Time::new(1.0).approx_eq(Time::new(1.0 + 1e-12), 1e-9));
        assert!(!Time::new(1.0).approx_eq(Time::new(1.1), 1e-9));
    }

    #[test]
    fn scalar_mul_div() {
        assert_eq!(Time::new(3.0) * 2.0, Time::new(6.0));
        assert_eq!(Time::new(3.0) / 2.0, Time::new(1.5));
    }
}
