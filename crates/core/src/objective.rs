//! Pluggable optimization objectives.
//!
//! The paper studies makespan — the largest machine completion time — but
//! every layer of this codebase that *scores* a candidate decision (the
//! greedy kernel, the delta-evaluation search kernel, the iterative
//! driver, the serving tier) is really parameterized by a scalar objective
//! over the per-machine completion times. [`Objective`] makes that
//! parameter explicit as a closed, `Copy`-cheap enum:
//!
//! * [`Objective::Makespan`] — `max_m C(m)`, the paper's objective and the
//!   default everywhere (all pre-existing behaviour is the makespan path,
//!   bit for bit);
//! * [`Objective::Flowtime`] — `Σ_m C(m)`, the sum of machine completion
//!   times (the flow-time family of Bansal & Kulkarni on the same
//!   unrelated-machines model);
//! * [`Objective::WeightedFlowtime`] — `Σ_m n(m) · C(m)` where `n(m)` is
//!   the number of tasks on `m`. Because every task on a machine finishes
//!   when the machine does (batch delivery), this equals the *task-level*
//!   total completion time `Σ_t C(machine(t))`.
//!
//! Two derived quantities drive the kernels:
//!
//! * [`Objective::marginal`] — the increase in objective value from placing
//!   one more task on a machine, given the machine's current ready time
//!   and task count. Greedy heuristics that ranked machines by completion
//!   time (`ETC + RT`, Equation 1) rank by this instead; for makespan the
//!   expression is *exactly* `ETC + RT`, so the makespan path is unchanged.
//! * [`Objective::contribution`] — one machine's summand (or max-term) in
//!   the objective value: `C(m)` for makespan and flowtime,
//!   `n(m) · C(m)` for weighted flowtime. The iterative driver freezes the
//!   machine with the **largest contribution** each round — which for
//!   makespan and flowtime is the makespan machine, so "non-makespan
//!   machine" generalizes to "non-extreme-contribution machine".
//!
//! Objective values are compared, never mixed across objectives; wire and
//! CLI names are the kebab-case strings `"makespan"`, `"flowtime"` and
//! `"weighted-flowtime"` ([`Objective::from_name`] rejects anything else
//! with a typed [`Error::UnknownObjective`]).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::Error;
use crate::time::Time;

/// A scalar objective over per-machine completion times; see the [module
/// docs](self). `Copy` and two bytes wide — cheap to thread through every
/// hot path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum Objective {
    /// `max_m C(m)` — the paper's objective, and the default.
    #[default]
    Makespan,
    /// `Σ_m C(m)` — sum of machine completion times.
    Flowtime,
    /// `Σ_m n(m) · C(m)` — machine completion times weighted by their task
    /// counts (equivalently, the task-level total completion time under
    /// batch delivery).
    WeightedFlowtime,
}

impl Objective {
    /// Every variant, in canonical order (makespan first).
    pub const ALL: [Objective; 3] = [
        Objective::Makespan,
        Objective::Flowtime,
        Objective::WeightedFlowtime,
    ];

    /// The canonical (wire/CLI) name: `"makespan"`, `"flowtime"` or
    /// `"weighted-flowtime"`.
    pub fn name(self) -> &'static str {
        match self {
            Objective::Makespan => "makespan",
            Objective::Flowtime => "flowtime",
            Objective::WeightedFlowtime => "weighted-flowtime",
        }
    }

    /// Parses a canonical name; unknown names are a typed
    /// [`Error::UnknownObjective`] (callers surface it the same way as an
    /// unknown heuristic name — validation *before* any work happens).
    pub fn from_name(name: &str) -> Result<Objective, Error> {
        Objective::ALL
            .into_iter()
            .find(|o| o.name() == name)
            .ok_or_else(|| Error::UnknownObjective(name.to_string()))
    }

    /// `true` for [`Objective::Makespan`] — the fast path every layer keeps
    /// bit-identical to the pre-refactor code.
    #[inline]
    pub fn is_makespan(self) -> bool {
        matches!(self, Objective::Makespan)
    }

    /// `true` when the objective is a sum over machines (flowtime family)
    /// rather than a max.
    #[inline]
    pub fn is_sum(self) -> bool {
        !self.is_makespan()
    }

    /// Marginal cost of placing one more task (execution time `etc`) on a
    /// machine whose working ready time is `ready` and which currently
    /// holds `count` tasks:
    ///
    /// * makespan: the task's completion time `etc + ready` (Equation 1) —
    ///   the exact expression (and float-operation order) the pre-refactor
    ///   kernels computed;
    /// * flowtime: `etc` — the sum grows by exactly the task's execution
    ///   time, so flowtime-greedy ranks machines by ETC alone;
    /// * weighted flowtime: `ready + (count + 1) · etc` — the machine's
    ///   summand goes from `count · C` to `(count + 1) · (C + etc)`.
    ///
    /// This is *the* scoring function: the workspace kernel and the naive
    /// reference paths both call it, so their candidate sets stay
    /// bit-identical for every objective.
    #[inline]
    pub fn marginal(self, etc: Time, ready: Time, count: u32) -> Time {
        match self {
            Objective::Makespan => etc + ready,
            Objective::Flowtime => etc,
            Objective::WeightedFlowtime => {
                Time::new(ready.get() + (count as f64 + 1.0) * etc.get())
            }
        }
    }

    /// One machine's term in the objective: its completion time `load` for
    /// makespan and flowtime, `count · load` for weighted flowtime.
    #[inline]
    pub fn contribution(self, load: Time, count: u32) -> Time {
        match self {
            Objective::Makespan | Objective::Flowtime => load,
            Objective::WeightedFlowtime => Time::new(count as f64 * load.get()),
        }
    }

    /// The objective value of a completed assignment, from per-machine
    /// loads (completion times) and task counts, combined left to right —
    /// the canonical fold every flat evaluation site uses. `counts` is only
    /// read for [`Objective::WeightedFlowtime`] (it may be empty for the
    /// other variants).
    ///
    /// # Panics
    ///
    /// Panics for [`Objective::Makespan`] on an empty load vector (the max
    /// of nothing), like [`LoadTracker::makespan`](crate::LoadTracker).
    pub fn value(self, loads: &[Time], counts: &[u32]) -> Time {
        match self {
            Objective::Makespan => loads
                .iter()
                .copied()
                .max()
                .expect("makespan of an empty load vector"),
            Objective::Flowtime => loads.iter().fold(Time::ZERO, |acc, &l| acc + l),
            Objective::WeightedFlowtime => loads
                .iter()
                .zip(counts)
                .fold(Time::ZERO, |acc, (&l, &c)| acc + self.contribution(l, c)),
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Objective {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Objective::from_name(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: f64) -> Time {
        Time::new(v)
    }

    #[test]
    fn names_round_trip() {
        for o in Objective::ALL {
            assert_eq!(Objective::from_name(o.name()).unwrap(), o);
            assert_eq!(o.name().parse::<Objective>().unwrap(), o);
            assert_eq!(o.to_string(), o.name());
        }
    }

    #[test]
    fn unknown_name_is_a_typed_error() {
        let err = Objective::from_name("throughput").unwrap_err();
        assert_eq!(err, Error::UnknownObjective("throughput".to_string()));
        assert!(err.to_string().contains("throughput"));
        assert!(err.to_string().contains("weighted-flowtime"));
    }

    #[test]
    fn serde_uses_kebab_case_names() {
        for o in Objective::ALL {
            let json = serde_json::to_string(&o).unwrap();
            assert_eq!(json, format!("\"{}\"", o.name()));
            assert_eq!(serde_json::from_str::<Objective>(&json).unwrap(), o);
        }
        assert!(serde_json::from_str::<Objective>("\"nope\"").is_err());
    }

    #[test]
    fn default_is_makespan() {
        assert_eq!(Objective::default(), Objective::Makespan);
        assert!(Objective::Makespan.is_makespan());
        assert!(!Objective::Flowtime.is_makespan());
        assert!(Objective::Flowtime.is_sum());
        assert!(Objective::WeightedFlowtime.is_sum());
    }

    #[test]
    fn makespan_marginal_is_equation_one() {
        // etc + ready, in that operand order.
        assert_eq!(
            Objective::Makespan.marginal(t(2.5), t(4.0), 7),
            t(2.5) + t(4.0)
        );
    }

    #[test]
    fn flowtime_marginal_ignores_ready_and_count() {
        assert_eq!(Objective::Flowtime.marginal(t(2.5), t(100.0), 9), t(2.5));
    }

    #[test]
    fn weighted_marginal_matches_value_delta() {
        // Placing a task on a machine must change `value` by exactly the
        // marginal (exact in f64 for these dyadic inputs).
        let o = Objective::WeightedFlowtime;
        let loads = [t(4.0), t(6.5)];
        let counts = [2u32, 1];
        let before = o.value(&loads, &counts);
        let etc = t(2.5);
        let after = o.value(&[t(4.0), t(6.5) + etc], &[2, 2]);
        assert_eq!(before + o.marginal(etc, t(6.5), 1), after);
    }

    #[test]
    fn value_folds_left_to_right() {
        let loads = [t(1.0), t(2.0), t(4.0)];
        assert_eq!(Objective::Makespan.value(&loads, &[]), t(4.0));
        assert_eq!(Objective::Flowtime.value(&loads, &[]), t(7.0));
        assert_eq!(
            Objective::WeightedFlowtime.value(&loads, &[0, 2, 1]),
            t(8.0)
        );
    }

    #[test]
    #[should_panic(expected = "empty load vector")]
    fn makespan_value_of_nothing_panics() {
        let _ = Objective::Makespan.value(&[], &[]);
    }
}
