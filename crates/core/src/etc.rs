//! The *estimated time to compute* (ETC) matrix.
//!
//! `ETC(t, m)` is the execution time of task `t` when run on machine `m`,
//! assumed known in advance (from profiling, analytical benchmarking or user
//! estimates — see refs \[1, 6, 7, 10, 13, 20\] of the paper). The matrix is
//! stored row-major by task; rows are tasks, columns are machines, matching
//! the layout of the paper's Tables 1, 4, 9, 12 and 15.

use serde::{Deserialize, Serialize};

use crate::error::Error;
use crate::id::{MachineId, TaskId};
use crate::time::Time;

/// Dense, row-major ETC matrix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EtcMatrix {
    n_tasks: usize,
    n_machines: usize,
    data: Vec<Time>,
}

impl EtcMatrix {
    /// Builds a matrix from a flat row-major `f64` buffer.
    ///
    /// All values must be finite and non-negative; the buffer length must be
    /// `n_tasks * n_machines`, and both dimensions must be non-zero.
    pub fn new(n_tasks: usize, n_machines: usize, values: &[f64]) -> Result<Self, Error> {
        if n_tasks == 0 || n_machines == 0 {
            return Err(Error::EtcEmpty);
        }
        if values.len() != n_tasks * n_machines {
            return Err(Error::EtcShape {
                n_tasks,
                n_machines,
                len: values.len(),
            });
        }
        let mut data = Vec::with_capacity(values.len());
        for (i, &v) in values.iter().enumerate() {
            if !v.is_finite() || v < 0.0 {
                return Err(Error::EtcValue {
                    task: TaskId((i / n_machines) as u32),
                    machine: MachineId((i % n_machines) as u32),
                });
            }
            data.push(Time::new(v));
        }
        Ok(EtcMatrix {
            n_tasks,
            n_machines,
            data,
        })
    }

    /// Builds a matrix from per-task rows. Every row must have the same
    /// length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, Error> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(Error::EtcEmpty);
        }
        let n_machines = rows[0].len();
        let mut flat = Vec::with_capacity(rows.len() * n_machines);
        for row in rows {
            if row.len() != n_machines {
                return Err(Error::EtcShape {
                    n_tasks: rows.len(),
                    n_machines,
                    len: rows.iter().map(Vec::len).sum(),
                });
            }
            flat.extend_from_slice(row);
        }
        Self::new(rows.len(), n_machines, &flat)
    }

    /// Number of tasks (rows).
    #[inline]
    pub fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    /// Number of machines (columns).
    #[inline]
    pub fn n_machines(&self) -> usize {
        self.n_machines
    }

    /// `ETC(t, m)`.
    ///
    /// # Panics
    ///
    /// Panics when `t` or `m` is out of range; ids are internal dense
    /// indices, so an out-of-range id is a logic error, not input error.
    #[inline]
    pub fn get(&self, t: TaskId, m: MachineId) -> Time {
        assert!(t.idx() < self.n_tasks, "task {t} out of range");
        assert!(m.idx() < self.n_machines, "machine {m} out of range");
        self.data[t.idx() * self.n_machines + m.idx()]
    }

    /// The full ETC row of task `t` (indexed by machine).
    #[inline]
    pub fn row(&self, t: TaskId) -> &[Time] {
        assert!(t.idx() < self.n_tasks, "task {t} out of range");
        &self.data[t.idx() * self.n_machines..(t.idx() + 1) * self.n_machines]
    }

    /// Iterator over all task ids `t0..t{n-1}`.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + Clone {
        (0..self.n_tasks as u32).map(TaskId)
    }

    /// Iterator over all machine ids `m0..m{n-1}`.
    pub fn machines(&self) -> impl Iterator<Item = MachineId> + Clone {
        (0..self.n_machines as u32).map(MachineId)
    }

    /// All task ids collected into a `Vec` (canonical "task list" order).
    pub fn task_vec(&self) -> Vec<TaskId> {
        self.tasks().collect()
    }

    /// All machine ids collected into a `Vec` (ascending index order).
    pub fn machine_vec(&self) -> Vec<MachineId> {
        self.machines().collect()
    }

    /// The machine(s) with the smallest ETC for `t`, in ascending machine
    /// order, restricted to `machines`, together with that minimum.
    ///
    /// This is the *minimum execution time* (MET) machine set of the paper.
    pub fn met_machines(&self, t: TaskId, machines: &[MachineId]) -> (Vec<MachineId>, Time) {
        crate::select::min_candidates(machines.iter().map(|&m| (m, self.get(t, m))))
    }

    /// Arithmetic mean of all entries — used by generators and analyses.
    pub fn mean(&self) -> Time {
        let total: Time = self.data.iter().copied().sum();
        total / (self.data.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{m, t};

    fn small() -> EtcMatrix {
        EtcMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![6.0, 5.0, 4.0]]).unwrap()
    }

    #[test]
    fn indexing_is_row_major() {
        let etc = small();
        assert_eq!(etc.get(t(0), m(0)), Time::new(1.0));
        assert_eq!(etc.get(t(0), m(2)), Time::new(3.0));
        assert_eq!(etc.get(t(1), m(1)), Time::new(5.0));
        assert_eq!(
            etc.row(t(1)),
            &[Time::new(6.0), Time::new(5.0), Time::new(4.0)]
        );
    }

    #[test]
    fn shape_validation() {
        assert_eq!(
            EtcMatrix::new(2, 2, &[1.0, 2.0, 3.0]),
            Err(Error::EtcShape {
                n_tasks: 2,
                n_machines: 2,
                len: 3
            })
        );
        assert_eq!(EtcMatrix::new(0, 2, &[]), Err(Error::EtcEmpty));
        assert!(EtcMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn value_validation() {
        let err = EtcMatrix::new(1, 2, &[1.0, -3.0]).unwrap_err();
        assert_eq!(
            err,
            Error::EtcValue {
                task: t(0),
                machine: m(1)
            }
        );
        assert!(EtcMatrix::new(1, 1, &[f64::NAN]).is_err());
    }

    #[test]
    fn met_machines_reports_ties_in_ascending_order() {
        let etc = EtcMatrix::from_rows(&[vec![2.0, 1.0, 1.0]]).unwrap();
        let (cands, best) = etc.met_machines(t(0), &[m(0), m(1), m(2)]);
        assert_eq!(cands, vec![m(1), m(2)]);
        assert_eq!(best, Time::new(1.0));
        // Restriction honours the active set.
        let (cands, best) = etc.met_machines(t(0), &[m(0), m(2)]);
        assert_eq!(cands, vec![m(2)]);
        assert_eq!(best, Time::new(1.0));
    }

    #[test]
    fn iterators_cover_space() {
        let etc = small();
        assert_eq!(etc.task_vec(), vec![t(0), t(1)]);
        assert_eq!(etc.machine_vec(), vec![m(0), m(1), m(2)]);
        assert_eq!(etc.mean(), Time::new(21.0 / 6.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_panics_out_of_range() {
        small().get(t(5), m(0));
    }
}
