//! Tie-breaking policies.
//!
//! A *tie* occurs when a heuristic must choose from two or more equally good
//! alternatives — e.g. two machines give a task the same minimum completion
//! time. The paper studies two policies (Section 2):
//!
//! * **deterministic** — a fixed rule such as "the oldest task" or "the
//!   machine with the lowest reference number";
//! * **random** — each tied alternative is chosen with equal probability.
//!
//! Heuristic implementations are required to present tied candidates in
//! *canonical order* (task-list order for tasks, ascending machine index for
//! machines). [`TieBreaker::Deterministic`] then picks the first candidate,
//! which realizes exactly the paper's deterministic rules, and
//! [`TieBreaker::Random`] picks uniformly.
//!
//! Whether the iterative technique changes a mapping "often depends on how
//! ties are broken within a heuristic" — this type is how the distinction is
//! threaded through every heuristic.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A tie-breaking policy, carried mutably through a heuristic run so that a
/// random policy can draw from its own reproducible RNG stream.
#[derive(Debug, Clone)]
// StdRng makes the Random variant large; tie-breakers are created once per
// run and passed by reference, so inline storage beats boxing here.
#[allow(clippy::large_enum_variant)]
pub enum TieBreaker {
    /// Always pick the first candidate in canonical order.
    Deterministic,
    /// Pick uniformly at random among the candidates.
    Random(StdRng),
    /// Replay a fixed sequence of choices: each *genuine* tie (two or more
    /// candidates) consumes the next scripted index; after the script is
    /// exhausted, behave deterministically. Used to reproduce the exact
    /// tie-break paths of the paper's worked examples.
    Scripted(VecDeque<usize>),
}

impl TieBreaker {
    /// A random tie-breaker seeded for reproducibility.
    pub fn random(seed: u64) -> Self {
        TieBreaker::Random(StdRng::seed_from_u64(seed))
    }

    /// A scripted tie-breaker that replays `choices` (see
    /// [`TieBreaker::Scripted`]).
    pub fn scripted<I: IntoIterator<Item = usize>>(choices: I) -> Self {
        TieBreaker::Scripted(choices.into_iter().collect())
    }

    /// Chooses an index in `0..n` among `n` tied candidates presented in
    /// canonical order.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`; a heuristic must never ask to break an empty
    /// tie.
    pub fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot break a tie among zero candidates");
        match self {
            TieBreaker::Deterministic => 0,
            TieBreaker::Random(rng) => {
                if n == 1 {
                    // Do not consume randomness for trivial "ties": keeps
                    // RNG streams comparable between instances that differ
                    // only in how many singleton choices they make.
                    0
                } else {
                    rng.gen_range(0..n)
                }
            }
            TieBreaker::Scripted(choices) => {
                if n == 1 {
                    0 // like Random: singletons consume nothing
                } else {
                    choices.pop_front().map_or(0, |c| c.min(n - 1))
                }
            }
        }
    }

    /// `true` for the deterministic policy.
    pub fn is_deterministic(&self) -> bool {
        matches!(self, TieBreaker::Deterministic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_always_first() {
        let mut tb = TieBreaker::Deterministic;
        for n in 1..10 {
            assert_eq!(tb.pick(n), 0);
        }
        assert!(tb.is_deterministic());
    }

    #[test]
    fn random_is_reproducible_and_in_range() {
        let mut a = TieBreaker::random(42);
        let mut b = TieBreaker::random(42);
        for n in [2usize, 3, 5, 7] {
            let x = a.pick(n);
            assert_eq!(x, b.pick(n));
            assert!(x < n);
        }
        assert!(!a.is_deterministic());
    }

    #[test]
    fn random_covers_all_candidates_eventually() {
        let mut tb = TieBreaker::random(7);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[tb.pick(3)] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn singleton_choice_consumes_no_randomness() {
        let mut a = TieBreaker::random(5);
        let mut b = TieBreaker::random(5);
        let _ = a.pick(1); // must not advance the stream
        assert_eq!(a.pick(4), b.pick(4));
    }

    #[test]
    #[should_panic(expected = "zero candidates")]
    fn empty_tie_is_a_bug() {
        TieBreaker::Deterministic.pick(0);
    }

    #[test]
    fn scripted_replays_then_falls_back_to_first() {
        let mut tb = TieBreaker::scripted([1, 0, 2]);
        assert_eq!(tb.pick(3), 1);
        assert_eq!(tb.pick(1), 0); // singleton consumes nothing
        assert_eq!(tb.pick(2), 0);
        assert_eq!(tb.pick(4), 2);
        assert_eq!(tb.pick(4), 0); // exhausted -> deterministic
        assert!(!tb.is_deterministic());
    }

    #[test]
    fn scripted_clamps_out_of_range_choices() {
        let mut tb = TieBreaker::scripted([9]);
        assert_eq!(tb.pick(3), 2);
    }
}
