//! Minimal `--flag VALUE` argument parsing shared by every binary in the
//! workspace.
//!
//! Three binaries (`nonmakespan`, `experiments`, `repro`) used to carry
//! their own copies of the same positional scan; this crate is the single
//! home for it. The grammar is deliberately tiny — exactly what the
//! harnesses need and nothing more:
//!
//! * `--flag VALUE` — the token *after* the flag is its value
//!   ([`value`]); `--flag=VALUE` is intentionally not supported;
//! * `--flag` — bare presence ([`present`]);
//! * the first occurrence wins; anything unrecognized is ignored (the
//!   binaries each document their own usage strings).

#![forbid(unsafe_code)]
#![deny(deprecated)]
#![warn(missing_docs)]

/// Returns the value following the first occurrence of `name`, if any.
///
/// A flag sitting at the end of the argument list has no value and yields
/// `None`, just like an absent flag — callers that must distinguish the
/// two can combine this with [`present`].
pub fn value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Returns whether `name` appears anywhere in the argument list.
pub fn present(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn value_returns_the_following_token() {
        let args = strs(&["--tasks", "64", "--seed", "7"]);
        assert_eq!(value(&args, "--tasks").as_deref(), Some("64"));
        assert_eq!(value(&args, "--seed").as_deref(), Some("7"));
        assert_eq!(value(&args, "--machines"), None);
    }

    #[test]
    fn first_occurrence_wins() {
        let args = strs(&["--seed", "1", "--seed", "2"]);
        assert_eq!(value(&args, "--seed").as_deref(), Some("1"));
    }

    #[test]
    fn trailing_flag_has_no_value() {
        let args = strs(&["--guard", "--seed"]);
        assert_eq!(value(&args, "--seed"), None);
        assert!(present(&args, "--seed"));
    }

    #[test]
    fn present_detects_bare_flags() {
        let args = strs(&["iterate", "--guard"]);
        assert!(present(&args, "--guard"));
        assert!(!present(&args, "--json"));
    }

    #[test]
    fn a_flags_value_can_look_like_a_flag() {
        // The scan is positional, not lexical: the token after the flag is
        // taken verbatim even when it starts with `--`.
        let args = strs(&["--per-class", "--seed"]);
        assert_eq!(value(&args, "--per-class").as_deref(), Some("--seed"));
    }

    #[test]
    fn empty_args_yield_nothing() {
        assert_eq!(value(&[], "--x"), None);
        assert!(!present(&[], "--x"));
    }
}
