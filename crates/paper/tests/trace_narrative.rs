//! The trace stream must retell the paper's story: for every reconstructed
//! worked example, the per-round `RoundEnd` events (makespan machine,
//! makespan, balance index) and the final `FinishDelta` events must agree
//! with the narrative tables the example encodes (`expected_original`,
//! `expected_final`).

use std::sync::Arc;

use hcs_core::obs::{TraceEvent, TraceSink, VecSink};
use hcs_core::{iterative, MapWorkspace};
use hcs_paper::all_examples;

/// Runs an example along the paper's tie path with a sink attached.
fn traced_events(example: &hcs_paper::PaperExample) -> Vec<TraceEvent> {
    let mut heuristic = example.make_heuristic();
    let mut tb = example.tie_breaker();
    let mut ws = MapWorkspace::new();
    let sink = Arc::new(VecSink::new());
    let dyn_sink: Arc<dyn TraceSink> = Arc::clone(&sink) as _;
    iterative::IterativeRun::new(&mut *heuristic, &example.scenario())
        .ties(&mut tb)
        .workspace(&mut ws)
        .trace(&dyn_sink)
        .execute()
        .expect("paper example runs cleanly");
    sink.take()
}

#[test]
fn round_zero_trace_matches_the_narrative_tables() {
    for example in all_examples() {
        let events = traced_events(&example);

        // Round 0's RoundEnd must report exactly the original mapping the
        // paper tabulates: its makespan, the machine attaining it, and the
        // balance index min/max of the tabulated completion times.
        let expected_makespan = example
            .expected_original
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let expected_machine = example
            .expected_original
            .iter()
            .position(|&t| t == expected_makespan)
            .expect("makespan machine in table") as u32;
        let expected_balance = example
            .expected_original
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            / expected_makespan;

        let round0 = events
            .iter()
            .find_map(|e| match e {
                TraceEvent::RoundEnd {
                    round: 0,
                    makespan_machine,
                    makespan,
                    balance_index,
                } => Some((*makespan_machine, *makespan, *balance_index)),
                _ => None,
            })
            .expect("round 0 must emit a RoundEnd");
        assert_eq!(
            round0.0, expected_machine,
            "{}: wrong makespan machine in trace",
            example.id
        );
        assert_eq!(
            round0.1, expected_makespan,
            "{}: wrong round-0 makespan in trace",
            example.id
        );
        assert!(
            (round0.2 - expected_balance).abs() < 1e-12,
            "{}: balance index {} != narrative {}",
            example.id,
            round0.2,
            expected_balance
        );
    }
}

#[test]
fn balance_index_sequence_is_well_formed_per_round() {
    for example in all_examples() {
        let events = traced_events(&example);
        let rounds: Vec<(u32, f64)> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::RoundEnd {
                    round,
                    balance_index,
                    ..
                } => Some((*round, *balance_index)),
                _ => None,
            })
            .collect();
        assert!(!rounds.is_empty(), "{}: no rounds traced", example.id);
        for (i, &(round, bi)) in rounds.iter().enumerate() {
            assert_eq!(round as usize, i, "{}: rounds out of order", example.id);
            assert!(
                (0.0..=1.0).contains(&bi),
                "{}: balance index {bi} outside [0, 1]",
                example.id
            );
        }
    }
}

#[test]
fn finish_deltas_match_the_expected_final_table() {
    for example in all_examples() {
        let events = traced_events(&example);
        let deltas: Vec<(u32, f64, f64)> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::FinishDelta {
                    machine,
                    original,
                    final_finish,
                } => Some((*machine, *original, *final_finish)),
                _ => None,
            })
            .collect();
        assert_eq!(
            deltas.len(),
            example.expected_final.len(),
            "{}: one FinishDelta per machine",
            example.id
        );
        for (i, &(machine, original, final_finish)) in deltas.iter().enumerate() {
            assert_eq!(
                machine as usize, i,
                "{}: deltas in machine order",
                example.id
            );
            assert_eq!(
                original, example.expected_original[i],
                "{}: m{i} original finish diverges from the narrative",
                example.id
            );
            assert_eq!(
                final_finish, example.expected_final[i],
                "{}: m{i} final finish diverges from the narrative",
                example.id
            );
        }
    }
}

#[test]
fn every_round_freezes_exactly_one_machine() {
    for example in all_examples() {
        let events = traced_events(&example);
        let frozen: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::MachineFrozen { machine, .. } => Some(*machine),
                _ => None,
            })
            .collect();
        // The driver freezes one machine per round plus the last survivor,
        // so every machine is frozen exactly once overall.
        let mut sorted = frozen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            frozen.len(),
            "{}: a machine was frozen twice",
            example.id
        );
        assert_eq!(
            frozen.len(),
            example.expected_final.len(),
            "{}: every machine ends frozen",
            example.id
        );
    }
}
