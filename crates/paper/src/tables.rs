//! Renderers regenerating the paper's Tables 1–17 from live runs.
//!
//! Table numbering follows the paper:
//!
//! | Paper table | Renderer | Content |
//! |---|---|---|
//! | 1, 4, 9, 12, 15 | [`etc_table`] | example ETC matrices |
//! | 2, 3 (Min-Min), 5, 6 (MCT), 7, 8 (MET) | [`allocation_table`] | step-by-step allocations |
//! | 10, 11 | [`swa_table`] | SWA steps with balance index and heuristic columns |
//! | 13, 14 | [`kpb_table`] | KPB steps with the k-percent subset column |
//! | 16, 17 | [`sufferage_table`] | Sufferage passes with min-CT and sufferage columns |

use hcs_analysis::TextTable;
use hcs_core::{Instance, Round, Time};
use hcs_heuristics::{Kpb, Sufferage, SufferageAction, Swa};

use crate::examples::PaperExample;

/// Renders an example's ETC matrix (paper Tables 1, 4, 9, 12, 15).
pub fn etc_table(example: &PaperExample, title: &str) -> TextTable {
    let etc = &example.etc;
    let mut headers = vec!["task".to_string()];
    headers.extend(etc.machines().map(|m| m.to_string()));
    let mut table = TextTable::new(headers).with_title(title.to_string());
    for t in etc.tasks() {
        let mut row = vec![t.to_string()];
        row.extend(etc.row(t).iter().map(Time::to_string));
        table.push_row(row);
    }
    table
}

/// Renders a round's step-by-step allocation (paper Tables 2, 3, 5–8): one
/// row per assignment in heuristic order, with every active machine's
/// completion time after the step.
pub fn allocation_table(example: &PaperExample, round: &Round, title: &str) -> TextTable {
    let etc = &example.etc;
    let mut headers = vec!["step".to_string(), "assignment".to_string()];
    headers.extend(round.machines.iter().map(|m| format!("{m} CT")));
    let mut table = TextTable::new(headers).with_title(title.to_string());

    let mut ready: Vec<Time> = round.machines.iter().map(|_| Time::ZERO).collect();
    for (i, &(task, machine)) in round.mapping.order().iter().enumerate() {
        let pos = round
            .machines
            .iter()
            .position(|&m| m == machine)
            .expect("assignments stay within the round's machines");
        ready[pos] += etc.get(task, machine);
        let mut row = vec![format!("{}", i + 1), format!("{task} -> {machine}")];
        row.extend(ready.iter().map(Time::to_string));
        table.push_row(row);
    }
    table
}

/// Renders an SWA round (paper Tables 10, 11): balance index before each
/// task, the assignment, per-machine completion times and the MCT/MET
/// column.
pub fn swa_table(example: &PaperExample, round: &Round, title: &str) -> TextTable {
    let scenario = example.scenario();
    let inst = Instance {
        etc: &scenario.etc,
        tasks: &round.tasks,
        machines: &round.machines,
        ready: &scenario.initial_ready,
        objective: scenario.objective,
    };
    let swa = Swa::new(1.0 / 3.0, 0.49);
    let mut tb = example.tie_breaker();
    let (_, trace) = swa.map_traced(&inst, &mut tb);

    let mut headers = vec!["BI".to_string(), "assignment".to_string()];
    headers.extend(round.machines.iter().map(|m| format!("{m} CT")));
    headers.push("heuristic".to_string());
    let mut table = TextTable::new(headers).with_title(title.to_string());
    for step in &trace {
        let bi = step.bi_before.map_or_else(|| "x".to_string(), format_ratio);
        let mut row = vec![bi, format!("{} -> {}", step.task, step.machine)];
        row.extend(step.ready_after.iter().map(|&(_, t)| t.to_string()));
        row.push(step.mode.to_string());
        table.push_row(row);
    }
    table
}

/// Renders a KPB round (paper Tables 13, 14): assignment, per-machine
/// completion times and the k-percent-best machine subset.
pub fn kpb_table(example: &PaperExample, round: &Round, title: &str) -> TextTable {
    let scenario = example.scenario();
    let inst = Instance {
        etc: &scenario.etc,
        tasks: &round.tasks,
        machines: &round.machines,
        ready: &scenario.initial_ready,
        objective: scenario.objective,
    };
    let kpb = Kpb::new(70.0);

    let mut headers = vec!["assignment".to_string()];
    headers.extend(round.machines.iter().map(|m| format!("{m} CT")));
    headers.push("k-% subset".to_string());
    let mut table = TextTable::new(headers).with_title(title.to_string());

    let mut ready: Vec<Time> = round.machines.iter().map(|_| Time::ZERO).collect();
    for &(task, machine) in round.mapping.order() {
        let pos = round
            .machines
            .iter()
            .position(|&m| m == machine)
            .expect("assignments stay within the round's machines");
        ready[pos] += scenario.etc.get(task, machine);
        let subset = kpb
            .subset(&inst, task)
            .iter()
            .map(|m| m.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut row = vec![format!("{task} -> {machine}")];
        row.extend(ready.iter().map(Time::to_string));
        row.push(subset);
        table.push_row(row);
    }
    table
}

/// Renders a Sufferage round (paper Tables 16, 17): one block per pass with
/// each evaluated task's minimum completion time, sufferage value, machine
/// and outcome.
pub fn sufferage_table(example: &PaperExample, round: &Round, title: &str) -> TextTable {
    let scenario = example.scenario();
    let inst = Instance {
        etc: &scenario.etc,
        tasks: &round.tasks,
        machines: &round.machines,
        ready: &scenario.initial_ready,
        objective: scenario.objective,
    };
    let mut tb = example.tie_breaker();
    let (_, passes) = Sufferage.map_traced(&inst, &mut tb);

    let mut table = TextTable::new(vec![
        "pass".to_string(),
        "task".to_string(),
        "min CT".to_string(),
        "sufferage".to_string(),
        "machine".to_string(),
        "outcome".to_string(),
    ])
    .with_title(title.to_string());
    for (p, pass) in passes.iter().enumerate() {
        for eval in &pass.evals {
            let outcome = match eval.action {
                SufferageAction::Assigned => "assigned".to_string(),
                SufferageAction::Displaced(t) => format!("displaces {t}"),
                SufferageAction::Rejected => "waits".to_string(),
            };
            table.push_row(vec![
                format!("{}", p + 1),
                eval.task.to_string(),
                eval.min_ct.to_string(),
                eval.sufferage.to_string(),
                eval.machine.to_string(),
                outcome,
            ]);
        }
    }
    table
}

/// Formats a balance index as the paper does: simple fractions where they
/// are exact (`1/3`, `2/3`, `1/2`, `4/13`), decimals otherwise.
fn format_ratio(v: f64) -> String {
    for den in 2..=16u32 {
        for num in 0..=den {
            if (v - num as f64 / den as f64).abs() < 1e-12 {
                if num == 0 {
                    return "0".to_string();
                }
                if num == den {
                    return "1".to_string();
                }
                return format!("{num}/{den}");
            }
        }
    }
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{
        kpb_example, mct_example, minmin_example, sufferage_example, swa_example,
    };

    #[test]
    fn etc_table_lists_all_tasks() {
        let e = minmin_example();
        let t = etc_table(&e, "Table 1. ETC matrix for Min-Min example");
        let s = t.render();
        assert!(s.contains("t0") && s.contains("t3"), "{s}");
        assert!(s.starts_with("Table 1."));
        assert_eq!(t.n_rows(), 4);
    }

    #[test]
    fn allocation_table_tracks_completion_times() {
        let e = minmin_example();
        let outcome = e.run();
        let t = allocation_table(&e, &outcome.rounds[0], "Table 2.");
        let s = t.render();
        // Final row must show the original CTs 5, 2, 4.
        let last = s.lines().last().unwrap();
        assert!(
            last.contains('5') && last.contains('2') && last.contains('4'),
            "{s}"
        );
        assert_eq!(t.n_rows(), 4);
    }

    #[test]
    fn swa_table_reproduces_bi_trajectory() {
        let e = swa_example();
        let outcome = e.run();
        let s = swa_table(&e, &outcome.rounds[0], "Table 10.").render();
        assert!(s.contains('x'), "{s}");
        assert!(s.contains("1/3"), "{s}");
        assert!(s.contains("2/3"), "{s}");
        assert!(s.contains("MET"), "{s}");
        let s1 = swa_table(&e, &outcome.rounds[1], "Table 11.").render();
        assert!(s1.contains("1/2"), "{s1}");
        assert!(s1.contains("4/13"), "{s1}");
    }

    #[test]
    fn kpb_table_shows_subsets_shrinking() {
        let e = kpb_example();
        let outcome = e.run();
        let s0 = kpb_table(&e, &outcome.rounds[0], "Table 13.").render();
        assert!(s0.contains("m0,m1") || s0.contains("m1,m2"), "{s0}");
        let s1 = kpb_table(&e, &outcome.rounds[1], "Table 14.").render();
        // Two machines left -> singleton subsets.
        assert!(!s1.contains("m1,m2"), "{s1}");
    }

    #[test]
    fn sufferage_table_has_passes_and_values() {
        let e = sufferage_example();
        let outcome = e.run();
        let t = sufferage_table(&e, &outcome.rounds[0], "Table 16.");
        let s = t.render();
        assert!(s.contains("pass"), "{s}");
        assert!(s.contains("assigned"), "{s}");
        assert!(t.n_rows() >= 9, "at least one eval per task: {s}");
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(format_ratio(0.0), "0");
        assert_eq!(format_ratio(1.0), "1");
        assert_eq!(format_ratio(1.0 / 3.0), "1/3");
        assert_eq!(format_ratio(4.0 / 13.0), "4/13");
        assert_eq!(format_ratio(0.123_456), "0.123");
    }

    #[test]
    fn mct_allocation_table_renders_both_rounds() {
        let e = mct_example();
        let outcome = e.run();
        let t0 = allocation_table(&e, &outcome.rounds[0], "Table 5.");
        let t1 = allocation_table(&e, &outcome.rounds[1], "Table 6.");
        assert_eq!(t0.n_rows(), 4);
        assert_eq!(t1.n_rows(), 3);
    }
}
