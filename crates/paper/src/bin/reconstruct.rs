//! Re-derives the reconstructed ETC matrices from scratch.
//!
//! ```text
//! cargo run --release -p hcs-paper --bin reconstruct
//! ```
//!
//! Runs the exhaustive random-tie search (shared MCT/MET Table 4) and the
//! Sufferage hill-climb, printing every solution found. The canonical
//! matrices shipped in `hcs_paper::examples` are among the outputs.

use hcs_paper::search::{
    halve, hillclimb_sufferage, search_random_tie_matrix, sufferage_objective, RandomTieTargets,
    SufferageTargets,
};

fn main() {
    println!("=== Random-tie search: shared MCT/MET matrix (paper Table 4) ===");
    println!("targets: frozen CT 4, original (3, 3), iterative {{1, 5}}\n");
    let values: Vec<f64> = (1..=10).map(|v| v as f64 / 2.0).collect();
    let found = search_random_tie_matrix(&values, &RandomTieTargets::table4(), 10);
    println!("{} solution(s) (capped at 10):", found.len());
    for (i, etc) in found.iter().enumerate() {
        println!("solution {}:", i + 1);
        for t in etc.tasks() {
            let row: Vec<String> = etc.row(t).iter().map(ToString::to_string).collect();
            println!("  {t}: [{}]", row.join(", "));
        }
    }

    println!("\n=== Hill-climb: Sufferage matrix (paper Table 15) ===");
    println!("targets (x2 scale): original (20, 19, 19), iterative (21, 17)\n");
    match hillclimb_sufferage(9, &SufferageTargets::paper_doubled(), 12345, 400, 4000) {
        Some(etc) => {
            assert_eq!(
                sufferage_objective(&etc, &SufferageTargets::paper_doubled()),
                0.0
            );
            let paper_scale = halve(&etc);
            println!("found (halved to paper scale):");
            for t in paper_scale.tasks() {
                let row: Vec<String> = paper_scale.row(t).iter().map(ToString::to_string).collect();
                println!("  {t}: [{}]", row.join(", "));
            }
        }
        None => println!("no solution within budget — increase restarts/steps"),
    }
}
