//! ASCII Gantt charts regenerating the paper's Figures 3–19.
//!
//! Every figure in the paper is a bar chart of one mapping: machines on the
//! vertical axis, time on the horizontal, one bar per task. The paper's
//! figure numbers map onto example rounds as follows:
//!
//! | Figures | Example | Rounds |
//! |---|---|---|
//! | 3, 4 | Min-Min | original, first iterative |
//! | 6, 7 | MCT | original, first iterative |
//! | 9, 10 | MET | original, first iterative |
//! | 11, 12 | SWA | original, first iterative |
//! | 15, 16 | KPB | original, first iterative |
//! | 18, 19 | Sufferage | original, first iterative |
//!
//! (Figures 1, 2, 5, 8, 13, 14, 17 are procedure listings, realized here as
//! the heuristic implementations themselves.)

use hcs_core::Round;
use hcs_sim::Gantt;

use crate::examples::PaperExample;

/// Renders one round of an example as an ASCII Gantt chart with a caption.
pub fn figure(example: &PaperExample, round: &Round, caption: &str) -> String {
    let scenario = example.scenario();
    let gantt = Gantt::from_mapping(
        &round.mapping,
        &scenario.etc,
        &scenario.initial_ready,
        &round.machines,
    );
    format!("{caption}\n{}", gantt.render())
}

/// Renders the example's original mapping and first iterative mapping —
/// the figure pair the paper shows for each example.
pub fn figure_pair(example: &PaperExample) -> (String, String) {
    let outcome = example.run();
    let original = figure(
        example,
        &outcome.rounds[0],
        &format!("Original mapping ({})", example.id),
    );
    let first_iter = if outcome.rounds.len() > 1 {
        figure(
            example,
            &outcome.rounds[1],
            &format!("First iterative mapping ({})", example.id),
        )
    } else {
        String::from("(no iterative round: single machine)")
    };
    (original, first_iter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::all_examples;

    #[test]
    fn every_example_renders_a_figure_pair() {
        for example in all_examples() {
            let (orig, first) = figure_pair(&example);
            assert!(orig.contains("m0"), "{}: {orig}", example.id);
            assert!(
                first.contains("m1") || first.contains("m0"),
                "{}: {first}",
                example.id
            );
            // The frozen machine is absent from the iterative figure.
            let outcome = example.run();
            let frozen = outcome.rounds[0].makespan_machine;
            let frozen_row = format!("\n{:>4} ", frozen);
            assert!(
                !first.contains(&frozen_row),
                "{}: frozen machine {frozen} must not appear:\n{first}",
                example.id
            );
        }
    }

    #[test]
    fn figures_show_all_tasks_of_the_round() {
        let example = crate::examples::sufferage_example();
        let outcome = example.run();
        let fig = figure(&example, &outcome.rounds[0], "Figure 18.");
        for i in 0..9 {
            assert!(
                fig.contains(&format!("t{i}")) || fig.contains('|'),
                "figure too narrow to label t{i}:\n{fig}"
            );
        }
        assert!(fig.starts_with("Figure 18."));
    }
}
