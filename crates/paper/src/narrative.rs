//! Machine-checkable verification of the reconstructed examples.
//!
//! Each [`PaperExample`] claims to satisfy the numeric constraints that
//! survived in the paper's text. [`verify_example`] re-runs the example and
//! reports each constraint individually — the `repro` binary prints the
//! resulting checklist, and EXPERIMENTS.md embeds it.

use hcs_core::Time;

use crate::examples::PaperExample;

/// Result of checking one example against its narrative constraints.
#[derive(Clone, Debug)]
pub struct ExampleReport {
    /// The example's identifier.
    pub id: &'static str,
    /// Each `(constraint description, satisfied)` pair.
    pub checks: Vec<(String, bool)>,
}

impl ExampleReport {
    /// `true` when every constraint holds.
    pub fn all_ok(&self) -> bool {
        self.checks.iter().all(|&(_, ok)| ok)
    }
}

/// Re-runs `example` and checks every narrative constraint.
pub fn verify_example(example: &PaperExample) -> ExampleReport {
    let mut checks = Vec::new();
    let outcome = example.run();

    // 1. Original completion times.
    let original: Vec<f64> = outcome
        .original()
        .completion
        .pairs()
        .iter()
        .map(|&(_, t)| t.get())
        .collect();
    checks.push((
        format!(
            "original completion times are {:?} (paper: {:?})",
            original, example.expected_original
        ),
        original == example.expected_original,
    ));

    // 2. Final finishing times after the full iterative procedure.
    let finals: Vec<f64> = outcome.final_finish.iter().map(|&(_, t)| t.get()).collect();
    checks.push((
        format!(
            "final finishing times are {:?} (paper: {:?})",
            finals, example.expected_final
        ),
        finals == example.expected_final,
    ));

    // 3. The makespan increases along the paper's path.
    checks.push((
        format!(
            "makespan increases: {} -> {}",
            outcome.original_makespan(),
            outcome.final_makespan()
        ),
        outcome.makespan_increased(),
    ));

    // 4. Tie-policy-specific behaviour.
    if example.deterministic_increase {
        let det = example.run_deterministic();
        checks.push((
            "increase occurs with deterministic ties".to_string(),
            det.makespan_increased(),
        ));
    } else {
        let det = example.run_deterministic();
        checks.push((
            "deterministic ties keep all iteration mappings identical (theorem)".to_string(),
            det.mappings_identical(),
        ));
        checks.push((
            "deterministic ties never increase the makespan (theorem)".to_string(),
            !det.makespan_increased(),
        ));
    }

    // 5. The frozen makespan machine keeps its original completion time.
    let (mk, mk_time) = outcome.original().completion.makespan_machine();
    checks.push((
        format!("frozen makespan machine {mk} keeps completion time {mk_time}"),
        outcome.final_finish_of(mk) == mk_time && mk_time > Time::ZERO,
    ));

    ExampleReport {
        id: example.id,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::all_examples;

    #[test]
    fn every_canonical_example_passes_verification() {
        for example in all_examples() {
            let report = verify_example(&example);
            for (desc, ok) in &report.checks {
                assert!(*ok, "{}: failed constraint: {desc}", report.id);
            }
            assert!(report.all_ok());
        }
    }

    #[test]
    fn verifier_catches_a_wrong_reconstruction() {
        // Perturb one ETC entry of the SWA example: the completion-time
        // constraints must fail loudly, proving the checks have teeth.
        let mut example = crate::examples::swa_example();
        let mut rows: Vec<Vec<f64>> = example
            .etc
            .tasks()
            .map(|t| example.etc.row(t).iter().map(|v| v.get()).collect())
            .collect();
        rows[1][1] += 1.0; // t1's ETC on m1: 2 -> 3
        example.etc = hcs_core::EtcMatrix::from_rows(&rows).unwrap();
        let report = verify_example(&example);
        assert!(
            !report.all_ok(),
            "a perturbed matrix must not pass verification"
        );
        assert!(report.checks.iter().any(|(_, ok)| !ok));
    }

    #[test]
    fn report_counts_constraints() {
        let report = verify_example(&crate::examples::swa_example());
        // Deterministic examples have 5 checks; random-tie ones have 6.
        assert_eq!(report.checks.len(), 5);
        let report = verify_example(&crate::examples::minmin_example());
        assert_eq!(report.checks.len(), 6);
    }
}
