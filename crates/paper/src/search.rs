//! Constraint search used to reconstruct the paper's lost ETC matrices.
//!
//! Two procedures, matching the two kinds of examples:
//!
//! * [`search_random_tie_matrix`] — exhaustive enumeration for the
//!   Min-Min / MCT / MET examples. The structure is fixed by the
//!   narrative: a first task that lands alone on the frozen machine (row
//!   `(frozen_ct, big, big)`), and three more tasks that never touch that
//!   machine (rows `(big, x, y)`). The search enumerates `(x, y)` values
//!   and keeps matrices for which *some* tie-break path of the heuristic
//!   reaches the paper's original completion times **and** some path of
//!   the iterative round reaches the paper's iterative completion times.
//! * [`hillclimb_sufferage`] — randomized hill-climbing for the Sufferage
//!   example (9 tasks × 3 machines is far beyond exhaustive reach). The
//!   objective is the L1 distance between the achieved and target
//!   completion-time multisets of the original and first iterative
//!   mappings; single-entry mutations are accepted when they do not
//!   worsen the objective.
//!
//! The `reconstruct` binary runs both and prints what it finds; the
//! canonical matrices in [`crate::examples`] came from exactly these
//! procedures (the Sufferage one at integer scale ×2, halved for the
//! paper's `.5` values).

use hcs_core::{iterative, EtcMatrix, Scenario, Time};
use hcs_heuristics::Sufferage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Targets for the random-tie (Min-Min / MCT / MET) search.
#[derive(Clone, Debug)]
pub struct RandomTieTargets {
    /// Completion time of the frozen machine (its single task's ETC).
    pub frozen_ct: f64,
    /// Target original completion times of the two surviving machines,
    /// as a multiset.
    pub original_rest: [f64; 2],
    /// Target iterative completion times, as a multiset.
    pub iterative_rest: [f64; 2],
}

impl RandomTieTargets {
    /// The paper's MCT/MET targets: frozen 4, original (3, 3), iterative
    /// {1, 5}.
    pub fn table4() -> Self {
        RandomTieTargets {
            frozen_ct: 4.0,
            original_rest: [3.0, 3.0],
            iterative_rest: [1.0, 5.0],
        }
    }
}

/// Whether the sequential-MCT tie-break tree over `rows` (each row = per
/// machine ETC) starting from `ready0` can reach exactly `target` loads.
fn mct_reachable(rows: &[Vec<f64>], ready0: &[f64], target: &[f64]) -> bool {
    fn step(rows: &[Vec<f64>], i: usize, ready: &mut Vec<f64>, target: &[f64]) -> bool {
        if i == rows.len() {
            return ready.iter().zip(target).all(|(a, b)| (a - b).abs() < 1e-9);
        }
        let cts: Vec<f64> = ready.iter().zip(&rows[i]).map(|(r, e)| r + e).collect();
        let best = cts.iter().copied().fold(f64::INFINITY, f64::min);
        for j in 0..ready.len() {
            if (cts[j] - best).abs() < 1e-9 {
                ready[j] += rows[i][j];
                if step(rows, i + 1, ready, target) {
                    return true;
                }
                ready[j] -= rows[i][j];
            }
        }
        false
    }
    let mut ready = ready0.to_vec();
    step(rows, 0, &mut ready, target)
}

/// Whether the MET tie-break tree over `rows` can reach exactly `target`
/// loads (MET ignores ready times: each task goes to a row-minimum
/// machine).
fn met_reachable(rows: &[Vec<f64>], target: &[f64]) -> bool {
    fn step(rows: &[Vec<f64>], i: usize, loads: &mut Vec<f64>, target: &[f64]) -> bool {
        if i == rows.len() {
            return loads.iter().zip(target).all(|(a, b)| (a - b).abs() < 1e-9);
        }
        let best = rows[i].iter().copied().fold(f64::INFINITY, f64::min);
        for j in 0..loads.len() {
            if (rows[i][j] - best).abs() < 1e-9 {
                loads[j] += rows[i][j];
                if step(rows, i + 1, loads, target) {
                    return true;
                }
                loads[j] -= rows[i][j];
            }
        }
        false
    }
    let mut loads = vec![0.0; target.len()];
    step(rows, 0, &mut loads, target)
}

/// Exhaustively searches 4-task × 3-machine matrices of the narrative
/// structure for ones satisfying the MCT **and** MET example constraints
/// simultaneously (the paper's shared Table 4). `values` is the candidate
/// ETC value set for the six free entries; at most `limit` matrices are
/// returned.
pub fn search_random_tie_matrix(
    values: &[f64],
    targets: &RandomTieTargets,
    limit: usize,
) -> Vec<EtcMatrix> {
    const BIG: f64 = 9.0;
    let t = targets;
    let orig_full = [t.frozen_ct, t.original_rest[0], t.original_rest[1]];
    let mut iter_perms = vec![
        [t.iterative_rest[0], t.iterative_rest[1]],
        [t.iterative_rest[1], t.iterative_rest[0]],
    ];
    iter_perms.dedup();
    let orig_perms = [
        [t.original_rest[0], t.original_rest[1]],
        [t.original_rest[1], t.original_rest[0]],
    ];

    let mut found = Vec::new();
    let idx = |i: usize| values[i];
    let n = values.len();
    'outer: for c in 0..n.pow(6) {
        let mut code = c;
        let mut free = [0.0; 6];
        for slot in &mut free {
            *slot = idx(code % n);
            code /= n;
        }
        let [x1, y1, x2, y2, x3, y3] = free;
        let rows_full = vec![vec![BIG, x1, y1], vec![BIG, x2, y2], vec![BIG, x3, y3]];
        let rows_sub = vec![vec![x1, y1], vec![x2, y2], vec![x3, y3]];

        // MET: original multiset + iterative multiset both reachable.
        let met_ok = orig_perms.iter().any(|p| met_reachable(&rows_sub, p))
            && iter_perms.iter().any(|p| met_reachable(&rows_sub, p));
        if !met_ok {
            continue;
        }
        // MCT: original (after the first task fills the frozen machine)...
        let mct_orig = mct_reachable(&rows_full, &[t.frozen_ct, 0.0, 0.0], &orig_full);
        if !mct_orig {
            continue;
        }
        let mct_iter = iter_perms
            .iter()
            .any(|p| mct_reachable(&rows_sub, &[0.0, 0.0], p));
        if !mct_iter {
            continue;
        }

        let matrix = EtcMatrix::from_rows(&[
            vec![t.frozen_ct, BIG, BIG],
            vec![BIG, x1, y1],
            vec![BIG, x2, y2],
            vec![BIG, x3, y3],
        ])
        .expect("search values are valid ETCs");
        found.push(matrix);
        if found.len() >= limit {
            break 'outer;
        }
    }
    found
}

/// Targets for the Sufferage hill-climb, as completion-time vectors sorted
/// descending.
#[derive(Clone, Debug)]
pub struct SufferageTargets {
    /// Original mapping completion times, sorted descending. The first
    /// entry must be the unique maximum (the frozen machine).
    pub original_desc: Vec<f64>,
    /// First iterative mapping completion times, sorted descending.
    pub iterative_desc: Vec<f64>,
}

impl SufferageTargets {
    /// The paper's targets at integer scale ×2: original (20, 19, 19),
    /// iterative (21, 17) — halve the found matrix for the published
    /// (10, 9.5, 9.5) / (10.5, 8.5).
    pub fn paper_doubled() -> Self {
        SufferageTargets {
            original_desc: vec![20.0, 19.0, 19.0],
            iterative_desc: vec![21.0, 17.0],
        }
    }
}

/// L1 distance between the outcome of running Sufferage iteratively on
/// `etc` (deterministic ties) and the targets; 0 means every constraint is
/// met. A penalty of 5 is added when the original makespan machine is not
/// a unique maximum.
pub fn sufferage_objective(etc: &EtcMatrix, targets: &SufferageTargets) -> f64 {
    let scenario = Scenario::with_zero_ready(etc.clone());
    let outcome = iterative::IterativeRun::new(&mut Sufferage, &scenario)
        .execute()
        .expect("Sufferage upholds the mapping contract");

    let mut orig: Vec<f64> = outcome.rounds[0]
        .completion
        .pairs()
        .iter()
        .map(|&(_, t)| t.get())
        .collect();
    orig.sort_by(|a, b| b.total_cmp(a));
    let d1: f64 = orig
        .iter()
        .zip(&targets.original_desc)
        .map(|(a, b)| (a - b).abs())
        .sum();
    let unique_penalty = if orig.len() >= 2 && orig[0] > orig[1] {
        0.0
    } else {
        5.0
    };

    let d2 = if outcome.rounds.len() > 1 {
        let mut iter_cts: Vec<f64> = outcome.rounds[1]
            .completion
            .pairs()
            .iter()
            .map(|&(_, t)| t.get())
            .collect();
        iter_cts.sort_by(|a, b| b.total_cmp(a));
        iter_cts
            .iter()
            .zip(&targets.iterative_desc)
            .map(|(a, b)| (a - b).abs())
            .sum()
    } else {
        f64::from(u16::MAX)
    };
    d1 + d2 + unique_penalty
}

/// Randomized hill-climbing over integer-valued `n_tasks × 3` matrices
/// (entries 1..=9). Returns the first matrix with objective 0, or `None`
/// within the budget.
pub fn hillclimb_sufferage(
    n_tasks: usize,
    targets: &SufferageTargets,
    seed: u64,
    restarts: usize,
    steps_per_restart: usize,
) -> Option<EtcMatrix> {
    const NM: usize = 3;
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..restarts {
        let mut values: Vec<f64> = (0..n_tasks * NM)
            .map(|_| rng.gen_range(1..=9) as f64)
            .collect();
        let mut etc = EtcMatrix::new(n_tasks, NM, &values).expect("valid entries");
        let mut score = sufferage_objective(&etc, targets);
        for _ in 0..steps_per_restart {
            if score == 0.0 {
                return Some(etc);
            }
            let slot = rng.gen_range(0..values.len());
            let old = values[slot];
            values[slot] = rng.gen_range(1..=9) as f64;
            let candidate = EtcMatrix::new(n_tasks, NM, &values).expect("valid entries");
            let s2 = sufferage_objective(&candidate, targets);
            if s2 <= score {
                score = s2;
                etc = candidate;
            } else {
                values[slot] = old;
            }
        }
        if score == 0.0 {
            return Some(etc);
        }
    }
    None
}

/// Halves every entry of a matrix (integer-scale search result → the
/// paper's half-unit values).
pub fn halve(etc: &EtcMatrix) -> EtcMatrix {
    let rows: Vec<Vec<f64>> = etc
        .tasks()
        .map(|t| etc.row(t).iter().map(|v| v.get() / 2.0).collect())
        .collect();
    EtcMatrix::from_rows(&rows).expect("halving preserves validity")
}

/// Doubles every entry (inverse of [`halve`], for tests).
pub fn double(etc: &EtcMatrix) -> EtcMatrix {
    let rows: Vec<Vec<f64>> = etc
        .tasks()
        .map(|t| etc.row(t).iter().map(|v| v.get() * 2.0).collect())
        .collect();
    EtcMatrix::from_rows(&rows).expect("doubling preserves validity")
}

/// Convenience: largest ETC entry (used by the `reconstruct` binary's
/// report).
pub fn max_entry(etc: &EtcMatrix) -> Time {
    etc.tasks()
        .flat_map(|t| etc.row(t).iter().copied())
        .max()
        .expect("matrix is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{mct_example, sufferage_example};

    #[test]
    fn canonical_table4_is_found_by_the_search() {
        let found =
            search_random_tie_matrix(&[1.0, 2.0, 3.0, 4.0, 5.0], &RandomTieTargets::table4(), 50);
        assert!(!found.is_empty(), "search space contains solutions");
        let canonical = mct_example().etc;
        assert!(
            found.contains(&canonical),
            "the canonical Table 4 must be among the solutions"
        );
    }

    #[test]
    fn canonical_sufferage_matrix_scores_zero() {
        let doubled = double(&sufferage_example().etc);
        let score = sufferage_objective(&doubled, &SufferageTargets::paper_doubled());
        assert_eq!(score, 0.0, "the shipped matrix satisfies all constraints");
        // And halving round-trips.
        assert_eq!(halve(&doubled), sufferage_example().etc);
    }

    #[test]
    fn objective_is_positive_for_a_wrong_matrix() {
        let wrong = EtcMatrix::new(9, 3, &[1.0; 27]).unwrap();
        assert!(sufferage_objective(&wrong, &SufferageTargets::paper_doubled()) > 0.0);
    }

    #[test]
    fn reachability_helpers_agree_with_hand_runs() {
        // rows over 2 machines: t1 (1,1) tie, t2 (3,3) tie, t3 (2,4).
        let rows = vec![vec![1.0, 1.0], vec![3.0, 3.0], vec![2.0, 4.0]];
        // MET: {3,3} reachable (t1->a, t2->b, t3->a); {1,5} reachable
        // (t1->b, t2->a, t3->a); [6,0] reachable (both ties to a, t3
        // forced to a); [0,6] unreachable (t3's row minimum is machine a).
        assert!(met_reachable(&rows, &[3.0, 3.0]));
        assert!(met_reachable(&rows, &[5.0, 1.0]));
        assert!(met_reachable(&rows, &[6.0, 0.0]));
        assert!(!met_reachable(&rows, &[0.0, 6.0]));
        // MCT from zero: [5,1] reachable (t1->b tie, t2->a forced, t3->a
        // on the 5-vs-5 tie); [0,6] unreachable (t2 would have to pile on
        // the machine t1 took, then t3's CTs are 2 vs 8).
        assert!(mct_reachable(&rows, &[0.0, 0.0], &[5.0, 1.0]));
        assert!(!mct_reachable(&rows, &[0.0, 0.0], &[0.0, 6.0]));
    }

    #[test]
    fn hillclimb_smoke() {
        // Tiny budget: just exercise the machinery end to end.
        let result = hillclimb_sufferage(9, &SufferageTargets::paper_doubled(), 42, 1, 50);
        // Finding a solution this fast is unlikely but legal either way.
        if let Some(etc) = result {
            assert_eq!(
                sufferage_objective(&etc, &SufferageTargets::paper_doubled()),
                0.0
            );
        }
    }

    #[test]
    #[ignore = "full reconstruction search; run with --ignored (or the reconstruct binary)"]
    fn hillclimb_finds_a_sufferage_matrix() {
        let found = hillclimb_sufferage(9, &SufferageTargets::paper_doubled(), 12345, 200, 4000)
            .expect("search should find a matrix within budget");
        assert_eq!(
            sufferage_objective(&found, &SufferageTargets::paper_doubled()),
            0.0
        );
    }

    #[test]
    fn max_entry_reports_largest() {
        let etc = EtcMatrix::from_rows(&[vec![1.0, 7.5], vec![3.0, 2.0]]).unwrap();
        assert_eq!(max_entry(&etc), Time::new(7.5));
    }
}
