//! The six canonical worked examples, reconstructed by constraint search.
//!
//! Machine indices here are `m0, m1, m2` (ascending); the paper's task
//! numbering (`t1..` for most examples, `t0..` for Sufferage) maps to our
//! zero-based `t0..`. Each example carries the tie-break *scripts* that
//! replay the paper's exact original and iterative mapping paths (the
//! random-tie examples), or uses plain deterministic ties (SWA, KPB,
//! Sufferage — the paper's point being that those increase makespan even
//! deterministically).

use hcs_core::{EtcMatrix, Heuristic, IterativeOutcome, Scenario, TieBreaker};
use hcs_genitor::Genitor;
use hcs_heuristics::{Kpb, Mct, Met, MinMin, Sufferage, Swa};

/// Which heuristic an example exercises.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ExampleHeuristic {
    /// Min-Min (§3.2).
    MinMin,
    /// Minimum Completion Time (§3.3).
    Mct,
    /// Minimum Execution Time (§3.4).
    Met,
    /// Switching Algorithm with the example's thresholds (§3.5).
    Swa,
    /// K-Percent Best with k = 70% (§3.6).
    Kpb,
    /// Sufferage (§3.7).
    Sufferage,
}

/// A reconstructed worked example.
#[derive(Clone, Debug)]
pub struct PaperExample {
    /// Short identifier (`"minmin"`, `"mct"`, …).
    pub id: &'static str,
    /// Human title citing the paper's tables and figures.
    pub title: &'static str,
    /// The heuristic under study.
    pub heuristic: ExampleHeuristic,
    /// The reconstructed ETC matrix.
    pub etc: EtcMatrix,
    /// Tie-break script replaying the paper's full iterative run (original
    /// round first). Empty for the deterministic-tie examples.
    pub script: &'static [usize],
    /// `true` when the makespan increase occurs with deterministic ties
    /// (SWA, KPB, Sufferage); `false` when it needs random ties.
    pub deterministic_increase: bool,
    /// Expected completion time per machine (ascending) of the original
    /// mapping.
    pub expected_original: &'static [f64],
    /// Expected final finishing time per machine (ascending) after the
    /// full iterative procedure.
    pub expected_final: &'static [f64],
    /// What the reconstruction matched (for EXPERIMENTS.md).
    pub notes: &'static str,
}

impl PaperExample {
    /// A fresh boxed instance of the example's heuristic.
    pub fn make_heuristic(&self) -> Box<dyn Heuristic> {
        match self.heuristic {
            ExampleHeuristic::MinMin => Box::new(MinMin),
            ExampleHeuristic::Mct => Box::new(Mct),
            ExampleHeuristic::Met => Box::new(Met),
            // hi = 0.49 is stated in the text; lo = 1/3 is recovered from
            // the example's BI trajectory (1/3 keeps MCT, 4/13 switches).
            ExampleHeuristic::Swa => Box::new(Swa::new(1.0 / 3.0, 0.49)),
            ExampleHeuristic::Kpb => Box::new(Kpb::new(70.0)),
            ExampleHeuristic::Sufferage => Box::new(Sufferage),
        }
    }

    /// The example's scenario (zero initial ready times, as in the paper).
    pub fn scenario(&self) -> Scenario {
        Scenario::with_zero_ready(self.etc.clone())
    }

    /// The tie-breaker replaying the paper's path: scripted for the
    /// random-tie examples, deterministic otherwise.
    pub fn tie_breaker(&self) -> TieBreaker {
        if self.script.is_empty() {
            TieBreaker::Deterministic
        } else {
            TieBreaker::scripted(self.script.iter().copied())
        }
    }

    /// Runs the full iterative procedure along the paper's path.
    pub fn run(&self) -> IterativeOutcome {
        let mut heuristic = self.make_heuristic();
        let mut tb = self.tie_breaker();
        hcs_core::iterative::IterativeRun::new(&mut *heuristic, &self.scenario())
            .ties(&mut tb)
            .execute()
            .expect("paper examples uphold the mapping contract")
    }

    /// Runs the procedure with purely deterministic ties (the theorems'
    /// setting for Min-Min / MCT / MET).
    pub fn run_deterministic(&self) -> IterativeOutcome {
        let mut heuristic = self.make_heuristic();
        hcs_core::iterative::IterativeRun::new(&mut *heuristic, &self.scenario())
            .execute()
            .expect("paper examples uphold the mapping contract")
    }
}

/// Min-Min example — paper Tables 1–3, Figures 3–4.
pub fn minmin_example() -> PaperExample {
    PaperExample {
        id: "minmin",
        title: "Min-Min increasing makespan via a random tie (Tables 1-3, Figs 3-4)",
        heuristic: ExampleHeuristic::MinMin,
        etc: EtcMatrix::from_rows(&[
            vec![5.0, 6.0, 7.0],
            vec![9.0, 1.0, 3.0],
            vec![9.0, 1.0, 2.0],
            vec![9.0, 8.0, 4.0],
        ])
        .expect("static example matrix is valid"),
        // Round 0: pair tie (t1,m1)/(t2,m1) -> t1; t2's CT tie m1/m2 -> m1.
        // Round 1: pair tie -> t1; t2's tie -> m2 (the paper's random flip).
        script: &[0, 0, 0, 1],
        deterministic_increase: false,
        expected_original: &[5.0, 2.0, 4.0],
        expected_final: &[5.0, 1.0, 6.0],
        notes: "matches all surviving numbers: original CTs (5, 2, 4), first \
                iterative CTs (1, 6) with the frozen machine at 5, makespan \
                5 -> 6 via one randomly flipped tie",
    }
}

/// Shared ETC matrix of the MCT and MET examples — paper Table 4.
fn table4() -> EtcMatrix {
    EtcMatrix::from_rows(&[
        vec![4.0, 9.0, 9.0],
        vec![9.0, 1.0, 1.0],
        vec![9.0, 3.0, 3.0],
        vec![9.0, 2.0, 4.0],
    ])
    .expect("static example matrix is valid")
}

/// MCT example — paper Tables 4–6, Figures 6–7.
pub fn mct_example() -> PaperExample {
    PaperExample {
        id: "mct",
        title: "MCT increasing makespan via a random tie (Tables 4-6, Figs 6-7)",
        heuristic: ExampleHeuristic::Mct,
        etc: table4(),
        // Round 0: t1's CT tie m1/m2 -> m1. Round 1: t1 -> m2 (flipped),
        // then t3's CT tie (5, 5) -> m1.
        script: &[0, 1, 0],
        deterministic_increase: false,
        expected_original: &[4.0, 3.0, 3.0],
        expected_final: &[4.0, 5.0, 1.0],
        notes: "matches the surviving numbers: original CTs (4, 3, 3), first \
                iterative CTs {1, 5} with the frozen machine at 4; shares \
                one ETC matrix with the MET example as in the paper's Table 4",
    }
}

/// MET example — paper Tables 4, 7–8, Figures 9–10.
pub fn met_example() -> PaperExample {
    PaperExample {
        id: "met",
        title: "MET increasing makespan via a random tie (Tables 4, 7-8, Figs 9-10)",
        heuristic: ExampleHeuristic::Met,
        etc: table4(),
        // Round 0: t1's ETC tie -> m1, t2's ETC tie -> m2.
        // Round 1: both flipped (t1 -> m2, t2 -> m1).
        script: &[0, 1, 1, 0],
        deterministic_increase: false,
        expected_original: &[4.0, 3.0, 3.0],
        expected_final: &[4.0, 5.0, 1.0],
        notes: "matches the surviving numbers: original CTs (4, 3, 3), first \
                iterative CTs {1, 5}; the task with two MET machines flips \
                between mappings",
    }
}

/// SWA example — paper Tables 9–11, Figures 11–12.
pub fn swa_example() -> PaperExample {
    PaperExample {
        id: "swa",
        title: "SWA increasing makespan with deterministic ties (Tables 9-11, Figs 11-12)",
        heuristic: ExampleHeuristic::Swa,
        etc: EtcMatrix::from_rows(&[
            vec![6.0, 7.0, 8.0],
            vec![9.0, 2.0, 3.0],
            vec![9.0, 3.0, 4.0],
            vec![9.0, 3.0, 2.5],
            vec![9.0, 2.0, 1.0],
        ])
        .expect("static example matrix is valid"),
        script: &[],
        deterministic_increase: true,
        expected_original: &[6.0, 5.0, 5.0],
        expected_final: &[6.0, 4.0, 6.5],
        notes: "matches every surviving number: original CTs (6, 5, 5) with \
                BI trajectory x, 0, 0, 1/3, 2/3 and heuristic column \
                MCT x4 + MET; iterative CTs (4, 6.5) with BI trajectory \
                x, 0, 1/2, 4/13 and column MCT, MCT, MET, MCT; thresholds \
                hi = 0.49 (stated), lo = 1/3 (recovered)",
    }
}

/// KPB example — paper Tables 12–14, Figures 15–16.
pub fn kpb_example() -> PaperExample {
    PaperExample {
        id: "kpb",
        title:
            "K-Percent Best increasing makespan with deterministic ties (Tables 12-14, Figs 15-16)",
        heuristic: ExampleHeuristic::Kpb,
        etc: EtcMatrix::from_rows(&[
            vec![6.0, 7.0, 8.0],
            vec![9.0, 2.0, 3.0],
            vec![9.0, 4.0, 3.0],
            vec![9.0, 3.0, 4.0],
            vec![9.0, 2.0, 2.5],
        ])
        .expect("static example matrix is valid"),
        script: &[],
        deterministic_increase: true,
        expected_original: &[6.0, 5.0, 5.5],
        expected_final: &[6.0, 7.0, 3.0],
        notes: "matches every surviving number: k = 70%, original CTs \
                (6, 5, 5.5) using two-machine subsets, iterative CTs (7, 3) \
                where the single-machine subset forces MET behaviour",
    }
}

/// Sufferage example — paper Tables 15–17, Figures 18–19.
pub fn sufferage_example() -> PaperExample {
    PaperExample {
        id: "sufferage",
        title: "Sufferage increasing makespan with deterministic ties (Tables 15-17, Figs 18-19)",
        heuristic: ExampleHeuristic::Sufferage,
        etc: EtcMatrix::from_rows(&[
            vec![4.5, 3.5, 4.5],
            vec![3.5, 4.5, 4.0],
            vec![3.5, 3.5, 4.5],
            vec![2.5, 4.5, 4.0],
            vec![2.5, 1.5, 3.5],
            vec![4.5, 2.5, 3.5],
            vec![4.5, 4.5, 4.5],
            vec![4.0, 4.5, 4.5],
            vec![3.5, 4.0, 2.0],
        ])
        .expect("static example matrix is valid"),
        script: &[],
        deterministic_increase: true,
        expected_original: &[9.5, 9.5, 10.0],
        expected_final: &[10.5, 8.5, 10.0],
        notes: "matches the surviving completion times exactly: original CTs \
                (10, 9.5, 9.5), iterative CTs (10.5, 8.5) with the frozen \
                machine at 10 (found by hill-climbing search; the paper's \
                original has 6 sufferage passes, this reconstruction has 5)",
    }
}

/// All six examples in paper order.
pub fn all_examples() -> Vec<PaperExample> {
    vec![
        minmin_example(),
        mct_example(),
        met_example(),
        swa_example(),
        kpb_example(),
        sufferage_example(),
    ]
}

/// Looks an example up by its identifier.
pub fn example_by_id(id: &str) -> Option<PaperExample> {
    all_examples().into_iter().find(|e| e.id == id)
}

/// A Genitor instance suitable for running the examples' scenarios (small,
/// fast, seeded). §3.1 has no worked example — Genitor can only improve —
/// but the harness runs it on every example scenario to demonstrate the
/// monotonicity claim.
pub fn example_genitor(seed: u64) -> Genitor {
    Genitor::with_config(
        seed,
        hcs_genitor::GenitorConfig {
            pop_size: 50,
            max_steps: 3_000,
            stall_steps: 500,
            ..Default::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::Time;

    fn check(example: &PaperExample) {
        let outcome = example.run();
        let original: Vec<f64> = outcome
            .original()
            .completion
            .pairs()
            .iter()
            .map(|&(_, t)| t.get())
            .collect();
        assert_eq!(
            original, example.expected_original,
            "{}: original completion times",
            example.id
        );
        let finals: Vec<f64> = outcome.final_finish.iter().map(|&(_, t)| t.get()).collect();
        assert_eq!(
            finals, example.expected_final,
            "{}: final finishing times",
            example.id
        );
        assert!(
            outcome.makespan_increased(),
            "{}: the example exists to show a makespan increase",
            example.id
        );
    }

    #[test]
    fn minmin_matches_paper_numbers() {
        check(&minmin_example());
    }

    #[test]
    fn mct_matches_paper_numbers() {
        check(&mct_example());
    }

    #[test]
    fn met_matches_paper_numbers() {
        check(&met_example());
    }

    #[test]
    fn swa_matches_paper_numbers() {
        check(&swa_example());
    }

    #[test]
    fn kpb_matches_paper_numbers() {
        check(&kpb_example());
    }

    #[test]
    fn sufferage_matches_paper_numbers() {
        check(&sufferage_example());
    }

    #[test]
    fn deterministic_tie_examples_need_no_script() {
        for e in all_examples() {
            assert_eq!(
                e.deterministic_increase,
                e.script.is_empty(),
                "{}: deterministic examples use no script",
                e.id
            );
        }
    }

    #[test]
    fn random_tie_examples_are_invariant_under_deterministic_ties() {
        // The theorems: with deterministic ties, Min-Min / MCT / MET
        // produce identical mappings every iteration — so no increase.
        for e in [minmin_example(), mct_example(), met_example()] {
            let outcome = e.run_deterministic();
            assert!(
                outcome.mappings_identical(),
                "{}: deterministic ties must reproduce the original mapping",
                e.id
            );
            assert!(!outcome.makespan_increased(), "{}: no increase", e.id);
        }
    }

    #[test]
    fn deterministic_examples_increase_without_randomness() {
        for e in [swa_example(), kpb_example(), sufferage_example()] {
            let outcome = e.run_deterministic();
            assert!(
                outcome.makespan_increased(),
                "{}: increase must occur deterministically",
                e.id
            );
        }
    }

    #[test]
    fn mct_and_met_share_table4() {
        assert_eq!(mct_example().etc, met_example().etc);
    }

    #[test]
    fn lookup_by_id() {
        assert_eq!(example_by_id("swa").unwrap().id, "swa");
        assert!(example_by_id("nope").is_none());
        assert_eq!(all_examples().len(), 6);
    }

    #[test]
    fn genitor_improves_or_keeps_on_example_scenarios() {
        for e in all_examples() {
            let mut ga = example_genitor(7);
            let outcome = hcs_core::iterative::IterativeRun::new(&mut ga, &e.scenario())
                .execute()
                .unwrap();
            assert!(
                outcome.final_makespan() <= outcome.original_makespan() + Time::ZERO,
                "{}: Genitor must never increase makespan across iterations",
                e.id
            );
        }
    }
}
