//! Reconstruction of the paper's worked examples, tables and figures.
//!
//! # Why "reconstruction"
//!
//! The only available text of the paper preserves every example's
//! *narrative* — which heuristic, how many tasks and machines, the
//! per-machine completion times of the original and first iterative
//! mappings, which machine is the makespan machine, the Switching
//! Algorithm's balance-index trajectory and thresholds, K-Percent-Best's
//! `k = 70%` — but the numeric entries of the example ETC matrices
//! (Tables 1, 4, 9, 12 and 15) were lost in scraping. This crate therefore
//! ships ETC matrices **found by constraint search** ([`search`]) that
//! satisfy every surviving numeric constraint; [`narrative`] encodes those
//! constraints and [`examples`] holds the canonical matrices, each verified
//! end-to-end by tests. EXPERIMENTS.md records, per example, what was
//! matched.
//!
//! # Contents
//!
//! * [`examples`] — the six canonical worked examples (Min-Min, MCT, MET,
//!   SWA, KPB, Sufferage) with the tie-break scripts that replay the
//!   paper's exact mapping paths.
//! * [`narrative`] — the machine-checkable constraint sets and a verifier.
//! * [`search`] — the constraint-search tools (exhaustive for the
//!   random-tie examples, hill-climbing for Sufferage) used to derive the
//!   canonical matrices; also available as the `reconstruct` binary.
//! * [`tables`] — renderers that regenerate the paper's Tables 1–17.
//! * [`figures`] — ASCII Gantt charts regenerating Figures 3–19.
//! * [`extensions`] — findings beyond the paper in the paper's own style
//!   (a Max-Min counterexample with deterministic ties).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod examples;
pub mod extensions;
pub mod figures;
pub mod narrative;
pub mod search;
pub mod tables;

pub use examples::{all_examples, example_by_id, PaperExample};
pub use narrative::{verify_example, ExampleReport};
