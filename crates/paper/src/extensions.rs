//! Extension findings beyond the paper, in the paper's own style.
//!
//! The Monte-Carlo studies (EXPERIMENTS.md, X1) revealed that **Max-Min**
//! — a heuristic the paper does not study — increases its makespan under
//! the iterative technique on ~95% of continuous workloads, *with
//! deterministic ties*. Following the paper's methodology, this module
//! produces a small worked counterexample: [`find_deterministic_increase`]
//! searches seeded tie-rich integer workloads for the first instance where
//! a given heuristic's deterministic iterative run increases the makespan,
//! and [`maxmin_counterexample`] pins the canonical Max-Min instance.
//!
//! Why Max-Min misbehaves: freezing the makespan machine removes the
//! *longest* tasks from the pool; Max-Min's phase 2 then prioritizes a
//! completely different task ordering on the survivors, so the remapped
//! machines can stack long tasks that the original mapping had spread out.

use hcs_core::{iterative, EtcMatrix, Heuristic, IterativeOutcome, Scenario};
use hcs_etcgen::{Consistency, EtcSpec, Method};
use hcs_heuristics::MaxMin;

/// Searches seeds `0..max_seeds` of small integer workloads
/// (`n_tasks × n_machines`, values 1..=5) for the first where `make()`'s
/// heuristic **increases** the makespan under the iterative technique with
/// deterministic ties. Returns the seed, the matrix and the run.
pub fn find_deterministic_increase<F, H>(
    make: F,
    n_tasks: usize,
    n_machines: usize,
    max_seeds: u64,
) -> Option<(u64, EtcMatrix, IterativeOutcome)>
where
    F: Fn() -> H,
    H: Heuristic,
{
    let spec = EtcSpec {
        n_tasks,
        n_machines,
        method: Method::IntegerUniform { lo: 1, hi: 5 },
        consistency: Consistency::Inconsistent,
    };
    for seed in 0..max_seeds {
        let etc = spec.generate(seed);
        let scenario = Scenario::with_zero_ready(etc.clone());
        let mut heuristic = make();
        let outcome = iterative::IterativeRun::new(&mut heuristic, &scenario)
            .execute()
            .expect("roster heuristics uphold the mapping contract");
        if outcome.makespan_increased() {
            return Some((seed, etc, outcome));
        }
    }
    None
}

/// The canonical Max-Min counterexample: the first seeded 5×3 integer
/// workload on which deterministic Max-Min increases its makespan.
/// Deterministic — every call reproduces the same instance.
pub fn maxmin_counterexample() -> (EtcMatrix, IterativeOutcome) {
    let (_, etc, outcome) = find_deterministic_increase(|| MaxMin, 5, 3, 500)
        .expect("a 5x3 integer counterexample exists within 500 seeds");
    (etc, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_heuristics::{Mct, MinMin};

    #[test]
    fn maxmin_counterexample_is_found_and_increases() {
        let (etc, outcome) = maxmin_counterexample();
        assert_eq!(etc.n_tasks(), 5);
        assert_eq!(etc.n_machines(), 3);
        assert!(outcome.makespan_increased());
        assert!(outcome.final_makespan() > outcome.original_makespan());
    }

    #[test]
    fn counterexample_is_reproducible() {
        let (a, _) = maxmin_counterexample();
        let (b, _) = maxmin_counterexample();
        assert_eq!(a, b);
    }

    #[test]
    fn no_counterexample_exists_for_the_invariant_heuristics() {
        // The theorems say the search must come up empty for Min-Min and
        // MCT — a sharp end-to-end check over 300 tie-rich workloads.
        assert!(find_deterministic_increase(|| MinMin, 5, 3, 300).is_none());
        assert!(find_deterministic_increase(|| Mct, 5, 3, 300).is_none());
    }

    #[test]
    fn search_gives_up_gracefully() {
        assert!(find_deterministic_increase(|| MinMin, 4, 2, 5).is_none());
    }
}
