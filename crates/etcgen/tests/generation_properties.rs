//! Property-based checks of the workload generators: every spec in the
//! supported parameter space produces a valid, correctly-shaped,
//! correctly-structured matrix, deterministically.

use hcs_etcgen::{Consistency, EtcSpec, Method};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = EtcSpec> {
    let dims = (1usize..=40, 1usize..=10);
    let method = prop_oneof![
        (10.0f64..3000.0, 5.0f64..1000.0)
            .prop_map(|(r_task, r_mach)| Method::RangeBased { r_task, r_mach }),
        (10.0f64..1000.0, 0.05f64..1.0, 0.05f64..1.0).prop_map(|(mean_task, v_task, v_mach)| {
            Method::Cvb {
                mean_task,
                v_task,
                v_mach,
            }
        }),
        (1u32..=3, 3u32..=9).prop_map(|(lo, hi)| Method::IntegerUniform { lo, hi }),
    ];
    let consistency = prop_oneof![
        Just(Consistency::Consistent),
        Just(Consistency::SemiConsistent),
        Just(Consistency::Inconsistent),
    ];
    (dims, method, consistency).prop_map(|((n_tasks, n_machines), method, consistency)| EtcSpec {
        n_tasks,
        n_machines,
        method,
        consistency,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_spec_generates_a_valid_matrix(spec in spec_strategy(), seed in 0u64..1000) {
        let etc = spec.generate(seed);
        prop_assert_eq!(etc.n_tasks(), spec.n_tasks);
        prop_assert_eq!(etc.n_machines(), spec.n_machines);
        for t in etc.tasks() {
            for m in etc.machines() {
                let v = etc.get(t, m).get();
                prop_assert!(v.is_finite() && v > 0.0, "ETC({t},{m}) = {v}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic(spec in spec_strategy(), seed in 0u64..1000) {
        prop_assert_eq!(spec.generate(seed), spec.generate(seed));
    }

    #[test]
    fn consistent_specs_sort_every_row(spec in spec_strategy(), seed in 0u64..1000) {
        let spec = EtcSpec { consistency: Consistency::Consistent, ..spec };
        let etc = spec.generate(seed);
        for t in etc.tasks() {
            let row = etc.row(t);
            prop_assert!(row.windows(2).all(|w| w[0] <= w[1]), "row {t} unsorted");
        }
    }

    #[test]
    fn semi_consistent_specs_sort_even_columns(spec in spec_strategy(), seed in 0u64..1000) {
        let spec = EtcSpec { consistency: Consistency::SemiConsistent, ..spec };
        let etc = spec.generate(seed);
        for t in etc.tasks() {
            let evens: Vec<_> = etc.row(t).iter().step_by(2).collect();
            prop_assert!(evens.windows(2).all(|w| w[0] <= w[1]), "row {t}");
        }
    }

    #[test]
    fn csv_io_round_trips_generated_matrices(spec in spec_strategy(), seed in 0u64..100) {
        let etc = spec.generate(seed);
        let text = hcs_etcgen::io::to_csv(&etc);
        let back = hcs_etcgen::io::parse_csv(&text).expect("round trip parses");
        prop_assert_eq!(back.n_tasks(), etc.n_tasks());
        for t in etc.tasks() {
            for m in etc.machines() {
                prop_assert!(back.get(t, m).approx_eq(etc.get(t, m), 1e-9));
            }
        }
    }
}
