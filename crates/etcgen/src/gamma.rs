//! A self-contained Gamma sampler (Marsaglia & Tsang, 2000).
//!
//! The CVB generation method of Ali et al. draws task means and ETC entries
//! from Gamma distributions. Rather than pulling in `rand_distr` for a
//! single distribution, we implement the standard squeeze-free
//! Marsaglia–Tsang method: for shape `alpha >= 1`,
//!
//! ```text
//! d = alpha - 1/3,  c = 1 / sqrt(9 d)
//! repeat:
//!   x ~ Normal(0, 1);  v = (1 + c x)^3       (reject while v <= 0)
//!   u ~ U(0, 1)
//!   accept when ln(u) < x^2 / 2 + d - d v + d ln(v)
//! return d * v
//! ```
//!
//! and for `alpha < 1` the standard boost: sample with shape `alpha + 1`
//! and multiply by `U(0,1)^(1/alpha)`.

use rand::Rng;

/// Draws one sample from `Gamma(shape = alpha, scale = theta)`.
///
/// # Panics
///
/// Panics unless `alpha > 0` and `theta > 0`.
pub fn sample<R: Rng + ?Sized>(rng: &mut R, alpha: f64, theta: f64) -> f64 {
    assert!(alpha > 0.0, "gamma shape must be positive, got {alpha}");
    assert!(theta > 0.0, "gamma scale must be positive, got {theta}");
    if alpha < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return sample_shape_ge1(rng, alpha + 1.0) * u.powf(1.0 / alpha) * theta;
    }
    sample_shape_ge1(rng, alpha) * theta
}

/// Marsaglia–Tsang for `alpha >= 1`, unit scale.
fn sample_shape_ge1<R: Rng + ?Sized>(rng: &mut R, alpha: f64) -> f64 {
    debug_assert!(alpha >= 1.0);
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let t = 1.0 + c * x;
        if t <= 0.0 {
            continue;
        }
        let v = t * t * t;
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Box–Muller standard normal (one value per call; simplicity over caching
/// the pair — this is workload generation, not an inner loop).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Empirical mean/variance of Gamma(alpha, theta) should approach
    /// `alpha*theta` and `alpha*theta^2`.
    fn check_moments(alpha: f64, theta: f64) {
        let mut rng = StdRng::seed_from_u64(12345);
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| sample(&mut rng, alpha, theta)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        let exp_mean = alpha * theta;
        let exp_var = alpha * theta * theta;
        assert!(
            (mean - exp_mean).abs() / exp_mean < 0.05,
            "mean {mean} vs expected {exp_mean} (alpha={alpha})"
        );
        assert!(
            (var - exp_var).abs() / exp_var < 0.15,
            "var {var} vs expected {exp_var} (alpha={alpha})"
        );
    }

    #[test]
    fn moments_shape_above_one() {
        check_moments(2.5, 3.0);
        check_moments(10.0, 0.5);
    }

    #[test]
    fn moments_shape_below_one() {
        check_moments(0.5, 2.0);
    }

    #[test]
    fn moments_high_shape_low_cv() {
        // CVB with v = 0.1 means alpha = 100.
        check_moments(100.0, 1.0);
    }

    #[test]
    fn samples_are_positive() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(sample(&mut rng, 1.2345, 10.0) > 0.0);
            assert!(sample(&mut rng, 0.4, 1.0) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn zero_shape_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = sample(&mut rng, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = sample(&mut rng, 1.0, 0.0);
    }

    #[test]
    fn normal_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(77);
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        assert!(mean.abs() < 0.02, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "normal var {var}");
    }
}
