//! Declarative description of an ETC workload class.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Consistency structure of the ETC matrix (Braun et al. terminology).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Consistency {
    /// Rows sorted: one global machine speed order.
    Consistent,
    /// Even-indexed columns sorted: a consistent sub-matrix within an
    /// otherwise inconsistent matrix.
    SemiConsistent,
    /// No structure at all.
    Inconsistent,
}

impl Consistency {
    /// Short label used in experiment tables (`c`, `s`, `i`).
    pub fn label(self) -> &'static str {
        match self {
            Consistency::Consistent => "c",
            Consistency::SemiConsistent => "s",
            Consistency::Inconsistent => "i",
        }
    }
}

/// Heterogeneity level along one axis.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Heterogeneity {
    /// High variability.
    Hi,
    /// Low variability.
    Lo,
}

impl Heterogeneity {
    /// Short label (`hi` / `lo`).
    pub fn label(self) -> &'static str {
        match self {
            Heterogeneity::Hi => "hi",
            Heterogeneity::Lo => "lo",
        }
    }
}

/// The generation algorithm and its parameters.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Method {
    /// Braun et al. range-based generation: per-task baseline
    /// `q ~ U[1, r_task)`, entries `q * U[1, r_mach)`.
    RangeBased {
        /// Task-heterogeneity range (customarily 3000 hi / 100 lo).
        r_task: f64,
        /// Machine-heterogeneity range (customarily 1000 hi / 10 lo).
        r_mach: f64,
    },
    /// Uniform integers in `lo..=hi` — a deliberately tie-rich workload
    /// for studying tie-break sensitivity (exact completion-time ties are
    /// common with small integer ETCs, matching the paper's examples).
    IntegerUniform {
        /// Smallest value (inclusive).
        lo: u32,
        /// Largest value (inclusive).
        hi: u32,
    },
    /// Ali et al. coefficient-of-variation-based generation.
    Cvb {
        /// Mean task execution time.
        mean_task: f64,
        /// Coefficient of variation across tasks (hi ≈ 0.9, lo ≈ 0.1).
        v_task: f64,
        /// Coefficient of variation across machines.
        v_mach: f64,
    },
}

/// Full description of a workload class; `generate(seed)` is implemented in
/// the crate root.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EtcSpec {
    /// Number of tasks (matrix rows).
    pub n_tasks: usize,
    /// Number of machines (matrix columns).
    pub n_machines: usize,
    /// Generation method and heterogeneity parameters.
    pub method: Method,
    /// Consistency post-processing.
    pub consistency: Consistency,
}

impl EtcSpec {
    /// A Braun et al. class with the customary ranges: task range 3000
    /// (hi) / 100 (lo), machine range 1000 (hi) / 10 (lo).
    pub fn braun(
        n_tasks: usize,
        n_machines: usize,
        consistency: Consistency,
        task_h: Heterogeneity,
        mach_h: Heterogeneity,
    ) -> Self {
        let r_task = match task_h {
            Heterogeneity::Hi => 3000.0,
            Heterogeneity::Lo => 100.0,
        };
        let r_mach = match mach_h {
            Heterogeneity::Hi => 1000.0,
            Heterogeneity::Lo => 10.0,
        };
        EtcSpec {
            n_tasks,
            n_machines,
            method: Method::RangeBased { r_task, r_mach },
            consistency,
        }
    }

    /// A CVB class with the customary CVs: 0.9 for high heterogeneity, 0.1
    /// for low, mean task time 1000.
    pub fn cvb(
        n_tasks: usize,
        n_machines: usize,
        consistency: Consistency,
        task_h: Heterogeneity,
        mach_h: Heterogeneity,
    ) -> Self {
        let v = |h| match h {
            Heterogeneity::Hi => 0.9,
            Heterogeneity::Lo => 0.1,
        };
        EtcSpec {
            n_tasks,
            n_machines,
            method: Method::Cvb {
                mean_task: 1000.0,
                v_task: v(task_h),
                v_mach: v(mach_h),
            },
            consistency,
        }
    }

    /// The Braun-style class label, e.g. `c-hihi` for consistent, high task
    /// heterogeneity, high machine heterogeneity.
    pub fn label(&self) -> String {
        let hetero = match self.method {
            Method::RangeBased { r_task, r_mach } => {
                let th = if r_task > 1000.0 { "hi" } else { "lo" };
                let mh = if r_mach > 100.0 { "hi" } else { "lo" };
                format!("{th}{mh}")
            }
            Method::Cvb { v_task, v_mach, .. } => {
                let th = if v_task > 0.5 { "hi" } else { "lo" };
                let mh = if v_mach > 0.5 { "hi" } else { "lo" };
                format!("{th}{mh}")
            }
            Method::IntegerUniform { lo, hi } => format!("int{lo}-{hi}"),
        };
        format!("{}-{}", self.consistency.label(), hetero)
    }
}

impl fmt::Display for EtcSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} tasks x {} machines)",
            self.label(),
            self.n_tasks,
            self.n_machines
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_follow_braun_convention() {
        let s = EtcSpec::braun(
            512,
            16,
            Consistency::Consistent,
            Heterogeneity::Hi,
            Heterogeneity::Lo,
        );
        assert_eq!(s.label(), "c-hilo");
        assert_eq!(s.to_string(), "c-hilo (512 tasks x 16 machines)");

        let s = EtcSpec::cvb(
            10,
            4,
            Consistency::Inconsistent,
            Heterogeneity::Lo,
            Heterogeneity::Hi,
        );
        assert_eq!(s.label(), "i-lohi");
    }

    #[test]
    fn braun_parameters() {
        let s = EtcSpec::braun(
            1,
            1,
            Consistency::SemiConsistent,
            Heterogeneity::Lo,
            Heterogeneity::Hi,
        );
        assert_eq!(
            s.method,
            Method::RangeBased {
                r_task: 100.0,
                r_mach: 1000.0
            }
        );
        assert_eq!(s.consistency.label(), "s");
        assert_eq!(Heterogeneity::Hi.label(), "hi");
    }
}
