//! Plain-text (CSV) serialization of ETC matrices.
//!
//! The HC-scheduling literature exchanges ETC matrices as simple numeric
//! grids (one row per task, one column per machine). This module reads and
//! writes that format so externally published matrices can be fed to the
//! harness and generated workloads can be archived.
//!
//! Format: comma-separated `f64` values, one task per line. Blank lines and
//! lines starting with `#` are ignored. No header row — the matrix shape is
//! inferred.

use std::fmt;
use std::path::Path;

use hcs_core::{EtcMatrix, Time};

/// Errors from parsing an ETC CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input contained no data rows.
    Empty,
    /// A row had a different number of columns than the first row.
    RaggedRow {
        /// 1-based data-row number.
        row: usize,
        /// Columns found.
        found: usize,
        /// Columns expected (from the first row).
        expected: usize,
    },
    /// A cell failed to parse as a finite non-negative number.
    BadCell {
        /// 1-based data-row number.
        row: usize,
        /// 1-based column number.
        col: usize,
        /// The offending text.
        text: String,
    },
    /// The parsed rows were rejected by the core matrix constructor.
    Matrix(hcs_core::Error),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Empty => write!(f, "no data rows"),
            CsvError::RaggedRow {
                row,
                found,
                expected,
            } => {
                write!(f, "row {row} has {found} columns, expected {expected}")
            }
            CsvError::BadCell { row, col, text } => {
                write!(f, "row {row}, column {col}: cannot parse {text:?}")
            }
            CsvError::Matrix(e) => write!(f, "invalid matrix: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses an ETC matrix from CSV text.
pub fn parse_csv(text: &str) -> Result<EtcMatrix, CsvError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let row_no = rows.len() + 1;
        let mut row = Vec::new();
        for (c, cell) in line.split(',').enumerate() {
            let cell = cell.trim();
            let value: f64 = cell.parse().map_err(|_| CsvError::BadCell {
                row: row_no,
                col: c + 1,
                text: cell.to_string(),
            })?;
            if !value.is_finite() || value < 0.0 {
                return Err(CsvError::BadCell {
                    row: row_no,
                    col: c + 1,
                    text: cell.to_string(),
                });
            }
            row.push(value);
        }
        if let Some(first) = rows.first() {
            if row.len() != first.len() {
                return Err(CsvError::RaggedRow {
                    row: row_no,
                    found: row.len(),
                    expected: first.len(),
                });
            }
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(CsvError::Empty);
    }
    EtcMatrix::from_rows(&rows).map_err(CsvError::Matrix)
}

/// Renders an ETC matrix as CSV text (with a provenance comment line).
pub fn to_csv(etc: &EtcMatrix) -> String {
    let mut out = format!(
        "# ETC matrix: {} tasks x {} machines\n",
        etc.n_tasks(),
        etc.n_machines()
    );
    for t in etc.tasks() {
        let row: Vec<String> = etc.row(t).iter().map(Time::to_string).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Errors from reading an ETC matrix off disk: either the file could not
/// be read, or its contents failed to parse.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The file's contents are not a valid ETC CSV.
    Csv(CsvError),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "cannot read file: {e}"),
            LoadError::Csv(e) => write!(f, "bad ETC CSV: {e}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Csv(e) => Some(e),
        }
    }
}

/// Reads an ETC matrix from a CSV file.
pub fn load<P: AsRef<Path>>(path: P) -> Result<EtcMatrix, LoadError> {
    let text = std::fs::read_to_string(path).map_err(LoadError::Io)?;
    parse_csv(&text).map_err(LoadError::Csv)
}

/// Writes an ETC matrix to a CSV file.
pub fn save<P: AsRef<Path>>(etc: &EtcMatrix, path: P) -> std::io::Result<()> {
    std::fs::write(path, to_csv(etc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::id::{m, t};

    #[test]
    fn round_trips_through_csv() {
        let etc = EtcMatrix::from_rows(&[vec![1.0, 2.5, 3.0], vec![4.0, 5.0, 6.5]]).unwrap();
        let text = to_csv(&etc);
        let back = parse_csv(&text).unwrap();
        assert_eq!(back, etc);
    }

    #[test]
    fn comments_blank_lines_and_whitespace_tolerated() {
        let text = "# header\n\n 1 , 2 \n# middle\n3,4\n";
        let etc = parse_csv(text).unwrap();
        assert_eq!(etc.n_tasks(), 2);
        assert_eq!(etc.get(t(0), m(1)), Time::new(2.0));
        assert_eq!(etc.get(t(1), m(0)), Time::new(3.0));
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = parse_csv("1,2\n3\n").unwrap_err();
        assert_eq!(
            err,
            CsvError::RaggedRow {
                row: 2,
                found: 1,
                expected: 2
            }
        );
        assert!(err.to_string().contains("row 2"));
    }

    #[test]
    fn bad_cells_rejected() {
        assert!(matches!(
            parse_csv("1,zebra\n"),
            Err(CsvError::BadCell { row: 1, col: 2, .. })
        ));
        assert!(matches!(
            parse_csv("1,-3\n"),
            Err(CsvError::BadCell { row: 1, col: 2, .. })
        ));
        assert!(matches!(
            parse_csv("inf,1\n"),
            Err(CsvError::BadCell { .. })
        ));
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(parse_csv("# only comments\n"), Err(CsvError::Empty));
    }

    #[test]
    fn matrix_errors_are_not_swallowed() {
        // The Matrix variant forwards the core error's message instead of
        // collapsing everything to "no data rows".
        let e = CsvError::Matrix(hcs_core::Error::EtcEmpty);
        assert!(e.to_string().contains("at least one task"), "{e}");
    }

    #[test]
    fn load_distinguishes_io_from_parse_errors() {
        let missing = load("/nonexistent/etc.csv").unwrap_err();
        assert!(matches!(missing, LoadError::Io(_)), "{missing}");
        let dir = std::env::temp_dir().join("hcs_etcgen_io_load_err");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "1,zebra\n").unwrap();
        let bad = load(&path).unwrap_err();
        assert!(
            matches!(bad, LoadError::Csv(CsvError::BadCell { .. })),
            "{bad}"
        );
        assert!(bad.to_string().contains("zebra"), "{bad}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_round_trip() {
        let etc = crate::EtcSpec::braun(
            6,
            3,
            crate::Consistency::Inconsistent,
            crate::Heterogeneity::Lo,
            crate::Heterogeneity::Lo,
        )
        .generate(1);
        let dir = std::env::temp_dir().join("hcs_etcgen_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("etc.csv");
        save(&etc, &path).unwrap();
        let loaded = load(&path).unwrap();
        // f64 -> Display -> parse is lossy for long decimals; compare with
        // a tolerance.
        assert_eq!(loaded.n_tasks(), etc.n_tasks());
        for task in etc.tasks() {
            for machine in etc.machines() {
                assert!(loaded
                    .get(task, machine)
                    .approx_eq(etc.get(task, machine), 1e-9));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
