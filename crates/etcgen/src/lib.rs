//! ETC-matrix workload generation for heterogeneous-computing studies.
//!
//! The paper's evaluation universe (via its refs \[3\] Braun et al. and
//! \[1\] Ali et al.) is a family of synthetic ETC matrices classified along
//! three axes:
//!
//! * **task heterogeneity** — how much execution times vary *across tasks*;
//! * **machine heterogeneity** — how much they vary *across machines* for
//!   one task;
//! * **consistency** — *consistent* matrices have a fixed machine speed
//!   order (machine `a` faster than `b` for one task ⇒ faster for all),
//!   *inconsistent* matrices have none, and *semi-consistent* matrices have
//!   a consistent sub-matrix (even-indexed columns, following Braun et al.).
//!
//! Two generation methods are provided:
//!
//! * [`Method::RangeBased`] — Braun et al.'s method: draw a per-task
//!   baseline `q ~ U[1, R_task)` and fill the row with `q * U[1, R_mach)`.
//! * [`Method::Cvb`] — Ali et al.'s coefficient-of-variation-based method:
//!   per-task mean drawn from a Gamma distribution with CV `v_task`, then
//!   row values drawn from a Gamma with that mean and CV `v_mach`. The
//!   Gamma sampler (Marsaglia–Tsang) is implemented in [`gamma`].
//!
//! All generation is deterministic given an [`EtcSpec`] and a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod gamma;
pub mod io;
pub mod spec;

pub use spec::{Consistency, EtcSpec, Heterogeneity, Method};

use hcs_core::EtcMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates an ETC matrix from a spec and seed. Convenience wrapper around
/// [`EtcSpec::generate`].
pub fn generate(spec: &EtcSpec, seed: u64) -> EtcMatrix {
    spec.generate(seed)
}

impl EtcSpec {
    /// Generates the ETC matrix described by this spec, deterministically
    /// from `seed`.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate spec (zero tasks or machines); use
    /// [`EtcSpec::try_generate`] to get the error instead.
    pub fn generate(&self, seed: u64) -> EtcMatrix {
        self.try_generate(seed)
            .expect("generator produces valid finite positive values")
    }

    /// Fallible variant of [`EtcSpec::generate`]: a spec whose dimensions
    /// cannot form a matrix (zero tasks or machines) is reported as an
    /// [`hcs_core::Error`] instead of a panic, so request-driven callers
    /// (the mapping daemon, CLI input paths) can reject it cleanly.
    pub fn try_generate(&self, seed: u64) -> Result<EtcMatrix, hcs_core::Error> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows: Vec<Vec<f64>> = match self.method {
            Method::RangeBased { r_task, r_mach } => {
                (0..self.n_tasks)
                    .map(|_| {
                        // Braun et al.: baseline q ~ U[1, r_task), entries
                        // q * U[1, r_mach).
                        let q = rng.gen_range(1.0..r_task);
                        (0..self.n_machines)
                            .map(|_| q * rng.gen_range(1.0..r_mach))
                            .collect()
                    })
                    .collect()
            }
            Method::IntegerUniform { lo, hi } => {
                assert!(lo <= hi, "integer range must be non-empty");
                assert!(lo >= 1, "zero ETCs make degenerate workloads");
                (0..self.n_tasks)
                    .map(|_| {
                        (0..self.n_machines)
                            .map(|_| f64::from(rng.gen_range(lo..=hi)))
                            .collect()
                    })
                    .collect()
            }
            Method::Cvb {
                mean_task,
                v_task,
                v_mach,
            } => {
                // Ali et al.: alpha_task = 1/v_task^2; per-task mean drawn
                // from Gamma(alpha_task, mean_task/alpha_task); row entries
                // from Gamma(alpha_mach, task_mean/alpha_mach).
                let alpha_task = 1.0 / (v_task * v_task);
                let alpha_mach = 1.0 / (v_mach * v_mach);
                (0..self.n_tasks)
                    .map(|_| {
                        let task_mean = gamma::sample(&mut rng, alpha_task, mean_task / alpha_task);
                        (0..self.n_machines)
                            .map(|_| gamma::sample(&mut rng, alpha_mach, task_mean / alpha_mach))
                            .collect()
                    })
                    .collect()
            }
        };

        match self.consistency {
            Consistency::Inconsistent => {}
            Consistency::Consistent => {
                for row in &mut rows {
                    row.sort_by(f64::total_cmp);
                }
            }
            Consistency::SemiConsistent => {
                // Braun et al.: sort the even-indexed columns of each row;
                // odd columns stay where they fell.
                for row in &mut rows {
                    let mut evens: Vec<f64> = row.iter().copied().step_by(2).collect();
                    evens.sort_by(f64::total_cmp);
                    for (slot, v) in row.iter_mut().step_by(2).zip(evens) {
                        *slot = v;
                    }
                }
            }
        }

        EtcMatrix::from_rows(&rows)
    }
}

/// The twelve Braun et al. benchmark classes: every combination of
/// consistency × task heterogeneity × machine heterogeneity, at the given
/// dimensions, using the range-based method with the customary ranges
/// (`R = 3000` for high task heterogeneity, `100` for low; `1000` for high
/// machine heterogeneity, `10` for low).
pub fn braun_classes(n_tasks: usize, n_machines: usize) -> Vec<EtcSpec> {
    let mut specs = Vec::with_capacity(12);
    for consistency in [
        Consistency::Consistent,
        Consistency::SemiConsistent,
        Consistency::Inconsistent,
    ] {
        for task_h in [Heterogeneity::Hi, Heterogeneity::Lo] {
            for mach_h in [Heterogeneity::Hi, Heterogeneity::Lo] {
                specs.push(EtcSpec::braun(
                    n_tasks,
                    n_machines,
                    consistency,
                    task_h,
                    mach_h,
                ));
            }
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::{MachineId, TaskId};

    fn spec_range(consistency: Consistency) -> EtcSpec {
        EtcSpec {
            n_tasks: 24,
            n_machines: 6,
            method: Method::RangeBased {
                r_task: 3000.0,
                r_mach: 1000.0,
            },
            consistency,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = spec_range(Consistency::Inconsistent);
        assert_eq!(spec.generate(7), spec.generate(7));
        assert_ne!(spec.generate(7), spec.generate(8));
    }

    #[test]
    fn degenerate_spec_is_an_error_not_a_panic() {
        let mut spec = spec_range(Consistency::Inconsistent);
        spec.n_tasks = 0;
        assert_eq!(spec.try_generate(1), Err(hcs_core::Error::EtcEmpty));
    }

    #[test]
    fn consistent_rows_are_sorted() {
        let etc = spec_range(Consistency::Consistent).generate(3);
        for t in etc.tasks() {
            let row = etc.row(t);
            assert!(row.windows(2).all(|w| w[0] <= w[1]), "row {t} unsorted");
        }
    }

    #[test]
    fn semi_consistent_even_columns_are_sorted() {
        let etc = spec_range(Consistency::SemiConsistent).generate(3);
        for t in etc.tasks() {
            let row = etc.row(t);
            let evens: Vec<_> = row.iter().step_by(2).collect();
            assert!(evens.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn inconsistent_is_typically_unsorted() {
        let etc = spec_range(Consistency::Inconsistent).generate(3);
        let unsorted_rows = etc
            .tasks()
            .filter(|&t| {
                let row = etc.row(t);
                !row.windows(2).all(|w| w[0] <= w[1])
            })
            .count();
        assert!(
            unsorted_rows > 0,
            "all rows sorted by chance is implausible"
        );
    }

    #[test]
    fn range_based_values_in_range() {
        let etc = spec_range(Consistency::Inconsistent).generate(11);
        for t in etc.tasks() {
            for m in etc.machines() {
                let v = etc.get(t, m).get();
                assert!(v >= 1.0, "value below baseline: {v}");
                assert!(v < 3000.0 * 1000.0, "value above range: {v}");
            }
        }
    }

    #[test]
    fn cvb_mean_is_near_target() {
        let spec = EtcSpec {
            n_tasks: 200,
            n_machines: 16,
            method: Method::Cvb {
                mean_task: 100.0,
                v_task: 0.3,
                v_mach: 0.3,
            },
            consistency: Consistency::Inconsistent,
        };
        let etc = spec.generate(5);
        let mean = etc.mean().get();
        assert!(
            (mean - 100.0).abs() < 15.0,
            "sample mean {mean} too far from 100"
        );
    }

    #[test]
    fn braun_classes_yields_twelve_distinct_specs() {
        let specs = braun_classes(512, 16);
        assert_eq!(specs.len(), 12);
        for s in &specs {
            assert_eq!(s.n_tasks, 512);
            assert_eq!(s.n_machines, 16);
        }
        // All distinct.
        for i in 0..specs.len() {
            for j in (i + 1)..specs.len() {
                assert_ne!(specs[i], specs[j]);
            }
        }
    }

    #[test]
    fn integer_uniform_is_tie_rich() {
        let spec = EtcSpec {
            n_tasks: 40,
            n_machines: 6,
            method: Method::IntegerUniform { lo: 1, hi: 4 },
            consistency: Consistency::Inconsistent,
        };
        let etc = spec.generate(9);
        // All values are integers in range.
        for t in etc.tasks() {
            for m in etc.machines() {
                let v = etc.get(t, m).get();
                assert_eq!(v.fract(), 0.0);
                assert!((1.0..=4.0).contains(&v));
            }
        }
        // With 240 draws from 4 values, row-minimum ties are essentially
        // guaranteed somewhere.
        let tied_rows = etc
            .tasks()
            .filter(|&t| {
                let (cands, _) = etc.met_machines(t, &etc.machine_vec());
                cands.len() > 1
            })
            .count();
        assert!(tied_rows > 0, "expected at least one MET tie");
        assert_eq!(spec.label(), "i-int1-4");
    }

    #[test]
    fn dimensions_respected() {
        let etc = spec_range(Consistency::Consistent).generate(0);
        assert_eq!(etc.n_tasks(), 24);
        assert_eq!(etc.n_machines(), 6);
        // Ids round-trip.
        let _ = etc.get(TaskId(23), MachineId(5));
    }
}
