//! A minimal deterministic discrete-event simulation core.
//!
//! Events carry a firing time and an arbitrary payload. Ties in time are
//! resolved by insertion order (FIFO), which keeps whole simulations
//! reproducible bit-for-bit — essential for the tie-sensitivity studies
//! this workspace exists for.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use hcs_core::Time;

/// An event queue ordered by `(time, insertion sequence)`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: Time,
}

#[derive(Debug)]
struct Entry<E> {
    time: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest (time, seq).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics when `at` is before the current simulation time — scheduling
    /// into the past is always a model bug.
    pub fn schedule(&mut self, at: Time, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past (now {}, requested {at})",
            self.now
        );
        self.heap.push(Entry {
            time: at,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            (e.time, e.payload)
        })
    }

    /// The current simulation time (time of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: f64) -> Time {
        Time::new(v)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert_eq!(q.pop(), Some((t(1.0), "a")));
        assert_eq!(q.now(), t(1.0));
        assert_eq!(q.pop(), Some((t(2.0), "b")));
        assert_eq!(q.pop(), Some((t(3.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.schedule(t(5.0), label);
        }
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn clock_only_moves_forward() {
        let mut q = EventQueue::new();
        q.schedule(t(2.0), ());
        q.schedule(t(2.0), ());
        let _ = q.pop();
        // Scheduling at the current time is allowed (zero-delay events)...
        q.schedule(t(2.0), ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(2.0), ());
        let _ = q.pop();
        q.schedule(t(1.0), ());
    }
}
