//! Machine-failure injection and recovery.
//!
//! The iterative technique's core move — drop a machine, remap the
//! survivors — is also exactly what a scheduler does when a machine
//! *fails*. This module simulates that: a schedule executes until machine
//! `failed` dies at time `at`; its unfinished tasks (including one possibly
//! cut off mid-execution, which must restart from scratch) are remapped
//! on-line (MCT) onto the surviving machines, which first drain their own
//! remaining work.
//!
//! Used by the failure-injection tests to check that completion-time
//! accounting stays consistent under machine loss, and available as a
//! library feature for availability studies.

use hcs_core::{EtcMatrix, MachineId, Mapping, ReadyTimes, TaskId, TieBreaker, Time};
use serde::{Deserialize, Serialize};

use crate::dynamic::DynamicMapper;
use crate::gantt::Gantt;

/// Outcome of a failure-recovery simulation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecoveryOutcome {
    /// Tasks unaffected by the failure — everything on the survivors
    /// (which keep executing their schedules) plus the failed machine's
    /// tasks that completed before the failure — with completion times.
    pub unaffected: Vec<(TaskId, Time)>,
    /// Tasks lost with the failed machine and remapped (in original
    /// on-machine order), with their new completion times.
    pub remapped: Vec<(TaskId, MachineId, Time)>,
    /// Completion time of the last task overall.
    pub recovery_makespan: Time,
}

/// Simulates a fail-stop of `failed` at time `at` during the execution of
/// `mapping`, remapping its unfinished tasks with on-line MCT over the
/// surviving machines.
///
/// # Panics
///
/// Panics when `machines` does not contain `failed` or has fewer than two
/// machines (no survivors to recover onto). Use [`try_fail_and_recover`]
/// for the non-panicking variant.
pub fn fail_and_recover(
    mapping: &Mapping,
    etc: &EtcMatrix,
    ready: &ReadyTimes,
    machines: &[MachineId],
    failed: MachineId,
    at: Time,
    tb: &mut TieBreaker,
) -> RecoveryOutcome {
    match try_fail_and_recover(mapping, etc, ready, machines, failed, at, tb) {
        Ok(outcome) => outcome,
        Err(hcs_core::Error::MachineOutOfRange(m)) => {
            panic!("failed machine {m} must be in the active set")
        }
        Err(_) => panic!("recovery needs at least one survivor"),
    }
}

/// Fallible variant of [`fail_and_recover`]: invalid inputs become
/// [`hcs_core::Error`] values instead of panics, so long-running callers
/// (the daemon, availability studies over generated fault schedules) can
/// report them. A failure at `t = 0` is a well-defined degenerate case —
/// every task on the failed machine restarts on the survivors — and a
/// failure that leaves a single survivor serializes all lost work onto it.
pub fn try_fail_and_recover(
    mapping: &Mapping,
    etc: &EtcMatrix,
    ready: &ReadyTimes,
    machines: &[MachineId],
    failed: MachineId,
    at: Time,
    tb: &mut TieBreaker,
) -> Result<RecoveryOutcome, hcs_core::Error> {
    if !machines.contains(&failed) {
        return Err(hcs_core::Error::MachineOutOfRange(failed));
    }
    if machines.len() < 2 {
        return Err(hcs_core::Error::NoSurvivors);
    }

    let gantt = Gantt::from_mapping(mapping, etc, ready, machines);

    let mut unaffected = Vec::new();
    let mut lost: Vec<TaskId> = Vec::new();
    // Survivors keep executing their own schedules to completion; their
    // availability for remapped work is max(own finish, failure time).
    let mut survivor_avail: Vec<(MachineId, Time)> = Vec::new();

    for (machine, segments) in gantt.rows() {
        if *machine == failed {
            for seg in segments {
                if seg.end <= at {
                    unaffected.push((seg.task, seg.end));
                } else {
                    // Cut off (possibly mid-run): restarts elsewhere.
                    lost.push(seg.task);
                }
            }
        } else {
            for seg in segments {
                unaffected.push((seg.task, seg.end));
            }
            let own_finish = segments
                .last()
                .map_or_else(|| ready.get(*machine), |s| s.end);
            survivor_avail.push((*machine, own_finish.max(at)));
        }
    }

    let survivors: Vec<MachineId> = survivor_avail.iter().map(|&(m, _)| m).collect();
    let avail: Vec<Time> = survivor_avail.iter().map(|&(_, t)| t).collect();
    let mapper = DynamicMapper::try_new(survivors, avail)?;
    let arrivals: Vec<(Time, TaskId)> = lost.iter().map(|&t| (at, t)).collect();
    let out = mapper.run(etc, &arrivals, tb);

    let remapped: Vec<(TaskId, MachineId, Time)> = out
        .placements
        .iter()
        .map(|&(task, machine, _, done)| (task, machine, done))
        .collect();

    let recovery_makespan = remapped
        .iter()
        .map(|&(_, _, t)| t)
        .chain(unaffected.iter().map(|&(_, t)| t))
        .max()
        .unwrap_or(Time::ZERO);

    Ok(RecoveryOutcome {
        unaffected,
        remapped,
        recovery_makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::id::{m, t};

    /// m0 runs t0 (0-2) then t1 (2-6); m1 runs t2 (0-3).
    fn fixture() -> (Mapping, EtcMatrix, ReadyTimes) {
        let etc = EtcMatrix::from_rows(&[vec![2.0, 5.0], vec![4.0, 3.0], vec![9.0, 3.0]]).unwrap();
        let mut mapping = Mapping::new(3);
        mapping.assign(t(0), m(0)).unwrap();
        mapping.assign(t(1), m(0)).unwrap();
        mapping.assign(t(2), m(1)).unwrap();
        (mapping, etc, ReadyTimes::zero(2))
    }

    #[test]
    fn mid_run_task_restarts_on_a_survivor() {
        let (mapping, etc, ready) = fixture();
        // Failure at t=3: t0 finished (2 <= 3); t1 was running (2..6) and
        // is lost; m1 finishes t2 at 3 and picks t1 up at max(3,3)=3,
        // finishing at 3 + ETC(t1, m1) = 6.
        let mut tb = TieBreaker::Deterministic;
        let out = fail_and_recover(
            &mapping,
            &etc,
            &ready,
            &[m(0), m(1)],
            m(0),
            Time::new(3.0),
            &mut tb,
        );
        assert!(out.unaffected.contains(&(t(0), Time::new(2.0))));
        assert!(out.unaffected.contains(&(t(2), Time::new(3.0))));
        assert_eq!(out.remapped, vec![(t(1), m(1), Time::new(6.0))]);
        assert_eq!(out.recovery_makespan, Time::new(6.0));
    }

    #[test]
    fn failure_before_start_loses_everything_on_the_machine() {
        let (mapping, etc, ready) = fixture();
        let mut tb = TieBreaker::Deterministic;
        let out = fail_and_recover(
            &mapping,
            &etc,
            &ready,
            &[m(0), m(1)],
            m(0),
            Time::ZERO,
            &mut tb,
        );
        // Both of m0's tasks restart on m1 after its own work (t2 at 3):
        // t0: 3 + 5 = 8; t1: 8 + 3 = 11.
        assert_eq!(out.remapped.len(), 2);
        assert_eq!(out.recovery_makespan, Time::new(11.0));
    }

    #[test]
    fn failure_after_completion_loses_nothing() {
        let (mapping, etc, ready) = fixture();
        let mut tb = TieBreaker::Deterministic;
        let out = fail_and_recover(
            &mapping,
            &etc,
            &ready,
            &[m(0), m(1)],
            m(0),
            Time::new(100.0),
            &mut tb,
        );
        assert!(out.remapped.is_empty());
        assert_eq!(out.unaffected.len(), 3);
        assert_eq!(out.recovery_makespan, Time::new(6.0));
    }

    #[test]
    fn idle_failed_machine_is_harmless() {
        // All work on m0; m1 fails — nothing to remap.
        let etc = EtcMatrix::from_rows(&[vec![2.0, 5.0]]).unwrap();
        let mut mapping = Mapping::new(1);
        mapping.assign(t(0), m(0)).unwrap();
        let mut tb = TieBreaker::Deterministic;
        let out = fail_and_recover(
            &mapping,
            &etc,
            &ReadyTimes::zero(2),
            &[m(0), m(1)],
            m(1),
            Time::new(1.0),
            &mut tb,
        );
        assert!(out.remapped.is_empty());
        assert_eq!(out.recovery_makespan, Time::new(2.0));
    }

    #[test]
    fn failure_at_time_zero_is_a_full_restart_not_a_panic() {
        let (mapping, etc, ready) = fixture();
        let mut tb = TieBreaker::Deterministic;
        let out = try_fail_and_recover(
            &mapping,
            &etc,
            &ready,
            &[m(0), m(1)],
            m(0),
            Time::ZERO,
            &mut tb,
        )
        .expect("t=0 failure is a valid degenerate case");
        // Nothing on m0 had finished by t=0, so both its tasks restart.
        assert_eq!(out.remapped.len(), 2);
        assert!(out.unaffected.iter().all(|&(task, _)| task == t(2)));
        assert_eq!(out.recovery_makespan, Time::new(11.0));
    }

    #[test]
    fn single_survivor_serializes_all_lost_work() {
        // Three machines, two fail-free tasks on m1/m2... here: m0 and m1
        // active, m0 fails at t=0 leaving exactly one survivor, which must
        // absorb everything without panicking.
        let (mapping, etc, ready) = fixture();
        let mut tb = TieBreaker::Deterministic;
        let out = try_fail_and_recover(
            &mapping,
            &etc,
            &ready,
            &[m(0), m(1)],
            m(0),
            Time::ZERO,
            &mut tb,
        )
        .unwrap();
        // The lone survivor m1 runs its own t2 (0-3), then t0 (3-8), then
        // t1 (8-11) — all serialized on one machine.
        assert_eq!(
            out.remapped,
            vec![(t(0), m(1), Time::new(8.0)), (t(1), m(1), Time::new(11.0)),]
        );
    }

    #[test]
    fn try_variant_reports_errors_instead_of_panicking() {
        let (mapping, etc, ready) = fixture();
        let mut tb = TieBreaker::Deterministic;
        // Unknown failed machine.
        let err = try_fail_and_recover(
            &mapping,
            &etc,
            &ready,
            &[m(0), m(1)],
            m(7),
            Time::ZERO,
            &mut tb,
        )
        .unwrap_err();
        assert_eq!(err, hcs_core::Error::MachineOutOfRange(m(7)));
        // No survivor to recover onto.
        let single = EtcMatrix::from_rows(&[vec![2.0]]).unwrap();
        let mut one = Mapping::new(1);
        one.assign(t(0), m(0)).unwrap();
        let err = try_fail_and_recover(
            &one,
            &single,
            &ReadyTimes::zero(1),
            &[m(0)],
            m(0),
            Time::ZERO,
            &mut tb,
        )
        .unwrap_err();
        assert_eq!(err, hcs_core::Error::NoSurvivors);
    }

    #[test]
    #[should_panic(expected = "at least one survivor")]
    fn single_machine_cannot_recover() {
        let etc = EtcMatrix::from_rows(&[vec![2.0]]).unwrap();
        let mut mapping = Mapping::new(1);
        mapping.assign(t(0), m(0)).unwrap();
        let mut tb = TieBreaker::Deterministic;
        let _ = fail_and_recover(
            &mapping,
            &etc,
            &ReadyTimes::zero(1),
            &[m(0)],
            m(0),
            Time::ZERO,
            &mut tb,
        );
    }

    #[test]
    #[should_panic(expected = "must be in the active set")]
    fn unknown_machine_rejected() {
        let (mapping, etc, ready) = fixture();
        let mut tb = TieBreaker::Deterministic;
        let _ = fail_and_recover(
            &mapping,
            &etc,
            &ready,
            &[m(0), m(1)],
            m(7),
            Time::ZERO,
            &mut tb,
        );
    }
}
