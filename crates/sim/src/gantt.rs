//! Gantt-chart model of a schedule, with ASCII rendering.
//!
//! The paper visualizes every worked example as a bar chart of machines
//! against time (Figures 3–19). [`Gantt::from_mapping`] reconstructs the
//! timeline implied by a mapping (tasks run back-to-back on each machine in
//! assignment order, starting at the machine's initial ready time) and
//! [`Gantt::render`] draws it as text:
//!
//! ```text
//! m0 |--t0---|-t3-|
//! m1 |t1|
//! m2 |---t2----|
//!     0    2    4    6
//! ```

use hcs_core::{EtcMatrix, MachineId, Mapping, ReadyTimes, TaskId, Time};
use serde::{Deserialize, Serialize};

/// One task's run on one machine.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GanttSegment {
    /// The task.
    pub task: TaskId,
    /// Start time.
    pub start: Time,
    /// End time (start + ETC).
    pub end: Time,
}

/// A per-machine timeline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Gantt {
    rows: Vec<(MachineId, Vec<GanttSegment>)>,
}

impl Gantt {
    /// Builds the timeline implied by `mapping` over `machines`: each
    /// machine runs its tasks in assignment order, starting at its initial
    /// ready time.
    pub fn from_mapping(
        mapping: &Mapping,
        etc: &EtcMatrix,
        ready: &ReadyTimes,
        machines: &[MachineId],
    ) -> Self {
        let mut rows: Vec<(MachineId, Vec<GanttSegment>)> =
            machines.iter().map(|&m| (m, Vec::new())).collect();
        let mut clock: Vec<Time> = machines.iter().map(|&m| ready.get(m)).collect();
        for &(task, machine) in mapping.order() {
            if let Some(pos) = machines.iter().position(|&mm| mm == machine) {
                let start = clock[pos];
                let end = start + etc.get(task, machine);
                rows[pos].1.push(GanttSegment { task, start, end });
                clock[pos] = end;
            }
        }
        Gantt { rows }
    }

    /// The rows, ascending machine order as supplied.
    pub fn rows(&self) -> &[(MachineId, Vec<GanttSegment>)] {
        &self.rows
    }

    /// Finishing time of machine `m` (its initial ready time when idle is
    /// not representable here, so idle machines report `None`).
    pub fn finish_of(&self, m: MachineId) -> Option<Time> {
        self.rows
            .iter()
            .find(|&&(mm, _)| mm == m)
            .and_then(|(_, segs)| segs.last().map(|s| s.end))
    }

    /// Largest end time over all segments (zero for an empty chart).
    pub fn horizon(&self) -> Time {
        self.rows
            .iter()
            .flat_map(|(_, segs)| segs.iter().map(|s| s.end))
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Renders the chart as ASCII art, `width` characters per time unit
    /// scaled so the horizon fits in roughly 60 columns (at least one
    /// column per time unit of the horizon).
    pub fn render(&self) -> String {
        let horizon = self.horizon().get();
        if horizon <= 0.0 {
            return String::from("(empty schedule)\n");
        }
        let cols = 60.0;
        let scale = cols / horizon;
        let mut out = String::new();
        for (machine, segs) in &self.rows {
            let mut line = format!("{machine:>4} ");
            let mut cursor = 0usize;
            for seg in segs {
                let start_col = (seg.start.get() * scale).round() as usize;
                let end_col = ((seg.end.get() * scale).round() as usize).max(start_col + 2);
                if start_col > cursor {
                    line.push_str(&" ".repeat(start_col - cursor));
                }
                let label = seg.task.to_string();
                let inner = end_col - start_col;
                let body = if label.len() + 2 <= inner {
                    let pad = inner - label.len() - 2;
                    let left = pad / 2;
                    format!("|{}{}{}|", "-".repeat(left), label, "-".repeat(pad - left))
                } else {
                    format!("|{}|", "-".repeat(inner.saturating_sub(2)))
                };
                line.push_str(&body);
                cursor = start_col + body.len();
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        // Time axis.
        let mut axis = String::from("     ");
        let ticks = 6usize;
        for i in 0..=ticks {
            let v = horizon * i as f64 / ticks as f64;
            let col = (v * scale).round() as usize;
            while axis.len() < 5 + col {
                axis.push(' ');
            }
            axis.push_str(&format!("{v:.1}"));
        }
        out.push_str(axis.trim_end());
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::id::{m, t};

    fn fixture() -> (Mapping, EtcMatrix, ReadyTimes) {
        let etc = EtcMatrix::from_rows(&[vec![2.0, 9.0], vec![9.0, 3.0], vec![4.0, 9.0]]).unwrap();
        let mut mapping = Mapping::new(3);
        mapping.assign(t(0), m(0)).unwrap();
        mapping.assign(t(1), m(1)).unwrap();
        mapping.assign(t(2), m(0)).unwrap();
        (mapping, etc, ReadyTimes::zero(2))
    }

    #[test]
    fn segments_run_back_to_back() {
        let (mapping, etc, ready) = fixture();
        let g = Gantt::from_mapping(&mapping, &etc, &ready, &[m(0), m(1)]);
        let (machine, segs) = &g.rows()[0];
        assert_eq!(*machine, m(0));
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].start, Time::ZERO);
        assert_eq!(segs[0].end, Time::new(2.0));
        assert_eq!(segs[1].start, Time::new(2.0));
        assert_eq!(segs[1].end, Time::new(6.0));
        assert_eq!(g.finish_of(m(0)), Some(Time::new(6.0)));
        assert_eq!(g.horizon(), Time::new(6.0));
    }

    #[test]
    fn initial_ready_offsets_start() {
        let (mapping, etc, _) = fixture();
        let ready = ReadyTimes::from_values(&[1.5, 0.0]);
        let g = Gantt::from_mapping(&mapping, &etc, &ready, &[m(0), m(1)]);
        assert_eq!(g.rows()[0].1[0].start, Time::new(1.5));
        assert_eq!(g.finish_of(m(0)), Some(Time::new(7.5)));
    }

    #[test]
    fn idle_machine_has_no_finish() {
        let etc = EtcMatrix::from_rows(&[vec![2.0, 9.0]]).unwrap();
        let mut mapping = Mapping::new(1);
        mapping.assign(t(0), m(0)).unwrap();
        let g = Gantt::from_mapping(&mapping, &etc, &ReadyTimes::zero(2), &[m(0), m(1)]);
        assert_eq!(g.finish_of(m(1)), None);
    }

    #[test]
    fn render_contains_all_rows_and_axis() {
        let (mapping, etc, ready) = fixture();
        let g = Gantt::from_mapping(&mapping, &etc, &ready, &[m(0), m(1)]);
        let text = g.render();
        assert!(text.contains("m0"), "{text}");
        assert!(text.contains("m1"), "{text}");
        assert!(text.contains("t0"), "{text}");
        assert!(text.contains("6.0"), "{text}");
        assert_eq!(text.lines().count(), 3); // two machines + axis
    }

    #[test]
    fn empty_chart_renders_placeholder() {
        let g = Gantt {
            rows: vec![(m(0), Vec::new())],
        };
        assert_eq!(g.render(), "(empty schedule)\n");
    }

    #[test]
    fn tasks_on_removed_machines_are_ignored() {
        let (mapping, etc, ready) = fixture();
        // Only m1 is active: t0/t2 (on m0) do not appear.
        let g = Gantt::from_mapping(&mapping, &etc, &ready, &[m(1)]);
        assert_eq!(g.rows().len(), 1);
        assert_eq!(g.rows()[0].1.len(), 1);
        assert_eq!(g.rows()[0].1[0].task, t(1));
    }
}
