//! Task arrival-stream generation for dynamic-mapping studies.
//!
//! The Switching Algorithm and K-Percent Best come from a *dynamic*
//! setting (Maheswaran et al. \[14\]) where "the arrival times of the
//! tasks are not known a priori". This module synthesizes such streams:
//! Poisson processes (exponential inter-arrival times), uniform spacing,
//! and single batches, all deterministic per seed.

use hcs_core::{TaskId, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How tasks arrive over time.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// All tasks arrive at once, at the given instant.
    Batch {
        /// The common arrival time.
        at: f64,
    },
    /// Evenly spaced arrivals starting at zero.
    Uniform {
        /// Gap between consecutive arrivals.
        spacing: f64,
    },
    /// Poisson process: exponential inter-arrival times with the given
    /// rate (arrivals per unit time).
    Poisson {
        /// Arrival rate λ.
        rate: f64,
    },
}

impl ArrivalProcess {
    /// Generates arrival times for tasks `t0..t{n-1}` in task order
    /// (arrival times are non-decreasing by construction).
    ///
    /// # Panics
    ///
    /// Panics on non-finite / non-positive parameters where they make no
    /// sense (`spacing < 0`, `rate <= 0`, `at < 0`).
    pub fn generate(&self, n_tasks: usize, seed: u64) -> Vec<(Time, TaskId)> {
        match *self {
            ArrivalProcess::Batch { at } => {
                assert!(at >= 0.0 && at.is_finite(), "batch time must be >= 0");
                (0..n_tasks as u32)
                    .map(|i| (Time::new(at), TaskId(i)))
                    .collect()
            }
            ArrivalProcess::Uniform { spacing } => {
                assert!(
                    spacing >= 0.0 && spacing.is_finite(),
                    "spacing must be >= 0"
                );
                (0..n_tasks as u32)
                    .map(|i| (Time::new(spacing * f64::from(i)), TaskId(i)))
                    .collect()
            }
            ArrivalProcess::Poisson { rate } => {
                assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
                let mut rng = StdRng::seed_from_u64(seed);
                let mut clock = 0.0f64;
                (0..n_tasks as u32)
                    .map(|i| {
                        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                        clock += -u.ln() / rate;
                        (Time::new(clock), TaskId(i))
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_is_simultaneous() {
        let a = ArrivalProcess::Batch { at: 3.0 }.generate(4, 0);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|&(t, _)| t == Time::new(3.0)));
        assert_eq!(a[2].1, TaskId(2));
    }

    #[test]
    fn uniform_is_evenly_spaced() {
        let a = ArrivalProcess::Uniform { spacing: 2.5 }.generate(3, 0);
        assert_eq!(
            a.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            vec![Time::ZERO, Time::new(2.5), Time::new(5.0)]
        );
    }

    #[test]
    fn poisson_is_monotone_and_seeded() {
        let a = ArrivalProcess::Poisson { rate: 0.5 }.generate(50, 9);
        let b = ArrivalProcess::Poisson { rate: 0.5 }.generate(50, 9);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(a[0].0 > Time::ZERO);
    }

    #[test]
    fn poisson_mean_interarrival_approaches_one_over_rate() {
        let rate = 2.0;
        let n = 20_000;
        let a = ArrivalProcess::Poisson { rate }.generate(n, 1234);
        let total = a.last().unwrap().0.get();
        let mean_gap = total / n as f64;
        assert!(
            (mean_gap - 1.0 / rate).abs() < 0.02,
            "mean inter-arrival {mean_gap} vs expected {}",
            1.0 / rate
        );
    }

    #[test]
    fn zero_tasks_is_empty() {
        assert!(ArrivalProcess::Batch { at: 0.0 }.generate(0, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn bad_rate_rejected() {
        let _ = ArrivalProcess::Poisson { rate: 0.0 }.generate(1, 0);
    }

    #[test]
    fn feeds_the_dynamic_mapper() {
        use crate::dynamic::DynamicMapper;
        use hcs_core::{EtcMatrix, MachineId, TieBreaker};

        let etc = EtcMatrix::from_rows(&[vec![2.0, 3.0], vec![2.0, 3.0], vec![2.0, 3.0]]).unwrap();
        let arrivals = ArrivalProcess::Poisson { rate: 1.0 }.generate(3, 5);
        let mapper = DynamicMapper::new(
            vec![MachineId(0), MachineId(1)],
            vec![Time::ZERO, Time::ZERO],
        );
        let out = mapper.run(&etc, &arrivals, &mut TieBreaker::Deterministic);
        assert_eq!(out.placements.len(), 3);
        // Tasks cannot start before they arrive.
        for (&(_, task), &(task2, _, start, _)) in arrivals.iter().zip(&out.placements) {
            assert_eq!(task, task2);
            let arrival = arrivals.iter().find(|&&(_, t)| t == task).unwrap().0;
            assert!(start >= arrival);
        }
    }
}
