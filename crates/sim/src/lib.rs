//! Execution simulation for heterogeneous-computing schedules.
//!
//! The paper's motivating scenario (Section 1) is a production environment:
//! a set of *known* tasks is mapped off-line before execution begins, and
//! minimizing the finishing times of **all** machines — not just the
//! makespan machine — "will provide the earliest available \[machines\] ready
//! for these to execute tasks that were not initially considered."
//!
//! This crate makes that scenario concrete:
//!
//! * [`des`] — a small deterministic discrete-event simulation core;
//! * [`gantt`] — schedule timelines (who ran what, when) with ASCII
//!   rendering, used for the paper's figures;
//! * [`dynamic`] — arrival-driven on-line mapping (the context SWA and KPB
//!   were designed for in Maheswaran et al. \[14\]): each task is mapped
//!   when it arrives, via minimum completion time over the machines'
//!   *current* availability;
//! * [`production`] — the two-wave experiment: wave 1 mapped off-line
//!   (optionally with the iterative technique), wave 2 arriving later and
//!   mapped dynamically on whatever machines the first wave left free;
//! * [`failure`] — fail-stop injection: a machine dies mid-schedule and
//!   its unfinished tasks are remapped onto the survivors (the iterative
//!   technique's machine-removal move, triggered by hardware instead of
//!   policy).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod arrivals;
pub mod des;
pub mod dynamic;
pub mod failure;
pub mod gantt;
pub mod production;
pub mod svg;

pub use arrivals::ArrivalProcess;
pub use des::EventQueue;
pub use dynamic::{ArrivalOutcome, DynamicMapper, OnlinePolicy};
pub use failure::{fail_and_recover, RecoveryOutcome};
pub use gantt::{Gantt, GanttSegment};
pub use production::{ProductionOutcome, ProductionScenario, Wave2Summary};
