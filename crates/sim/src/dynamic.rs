//! On-line (arrival-driven) mapping via the discrete-event core.
//!
//! The Switching Algorithm and K-Percent Best were designed for *dynamic*
//! environments (Maheswaran et al. \[14\]) where task arrival times are not
//! known a priori. [`DynamicMapper`] replays such an environment: tasks
//! arrive at given times and are mapped **immediately on arrival** to the
//! machine minimizing `max(arrival, availability) + ETC` — on-line MCT.
//! Machine availability starts from a supplied vector, which is how the
//! production scenario hands the first wave's finishing times to the
//! second wave.

use hcs_core::{select, EtcMatrix, MachineId, TaskId, TieBreaker, Time};
use serde::{Deserialize, Serialize};

use crate::des::EventQueue;

/// Result of dynamically executing a stream of arrivals.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArrivalOutcome {
    /// `(task, machine, start, completion)` in execution-start order.
    pub placements: Vec<(TaskId, MachineId, Time, Time)>,
    /// Final availability of each machine (ascending machine order).
    pub availability: Vec<(MachineId, Time)>,
}

impl ArrivalOutcome {
    /// Completion time of the last task (zero when no tasks ran).
    pub fn makespan(&self) -> Time {
        self.placements
            .iter()
            .map(|&(_, _, _, done)| done)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Mean completion time over tasks (zero when no tasks ran).
    pub fn mean_completion(&self) -> Time {
        if self.placements.is_empty() {
            return Time::ZERO;
        }
        let total: Time = self.placements.iter().map(|&(_, _, _, done)| done).sum();
        total / (self.placements.len() as f64)
    }

    /// Completion time of a specific task.
    pub fn completion_of(&self, task: TaskId) -> Option<Time> {
        self.placements
            .iter()
            .find(|&&(tt, _, _, _)| tt == task)
            .map(|&(_, _, _, done)| done)
    }
}

/// On-line mapping policies for arrival-driven execution — the dynamic
/// counterparts of the immediate-mode heuristics (Maheswaran et al.
/// \[14\]).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum OnlinePolicy {
    /// Earliest completion time over `max(arrival, availability) + ETC`.
    Mct,
    /// Smallest execution time, ignoring availability.
    Met,
    /// Earliest-available machine, ignoring the ETC.
    Olb,
    /// MCT within the k-percent-best execution subset.
    Kpb {
        /// The percentage `k` in `(0, 100]`.
        k_percent: f64,
    },
    /// MCT/MET switching on the availability balance index.
    Swa {
        /// Switch to MCT when BI drops below this.
        lo: f64,
        /// Switch to MET when BI exceeds this.
        hi: f64,
    },
}

/// An on-line mapper over a fixed machine set.
#[derive(Clone, Debug)]
pub struct DynamicMapper {
    machines: Vec<MachineId>,
    availability: Vec<Time>,
}

impl DynamicMapper {
    /// A mapper whose machines become available at the given times.
    ///
    /// # Panics
    ///
    /// Panics on an empty machine set or mismatched lengths. Use
    /// [`DynamicMapper::try_new`] for the non-panicking variant.
    pub fn new(machines: Vec<MachineId>, availability: Vec<Time>) -> Self {
        assert_eq!(
            machines.len(),
            availability.len(),
            "one availability per machine"
        );
        Self::try_new(machines, availability).expect("dynamic mapper needs machines")
    }

    /// Fallible constructor: an empty machine set is reported as
    /// [`hcs_core::Error::NoSurvivors`] instead of panicking (mismatched
    /// lengths are truncated to the shorter of the two — a contract
    /// violation the panicking constructor still rejects loudly).
    pub fn try_new(
        mut machines: Vec<MachineId>,
        mut availability: Vec<Time>,
    ) -> Result<Self, hcs_core::Error> {
        if machines.is_empty() || availability.is_empty() {
            return Err(hcs_core::Error::NoSurvivors);
        }
        let n = machines.len().min(availability.len());
        machines.truncate(n);
        availability.truncate(n);
        Ok(DynamicMapper {
            machines,
            availability,
        })
    }

    /// Index of the MCT machine for `task` at time `now`.
    fn pick_mct(
        &self,
        etc: &EtcMatrix,
        task: TaskId,
        avail: &[Time],
        now: Time,
        tb: &mut TieBreaker,
    ) -> usize {
        let (cands, _) = select::min_candidates(
            self.machines
                .iter()
                .enumerate()
                .map(|(i, &machine)| (i, avail[i].max(now) + etc.get(task, machine))),
        );
        cands[tb.pick(cands.len())]
    }

    /// Index of the MET machine for `task`.
    fn pick_met(&self, etc: &EtcMatrix, task: TaskId, tb: &mut TieBreaker) -> usize {
        let (cands, _) = select::min_candidates(
            self.machines
                .iter()
                .enumerate()
                .map(|(i, &machine)| (i, etc.get(task, machine))),
        );
        cands[tb.pick(cands.len())]
    }

    /// Replays `arrivals` (`(arrival time, task)` pairs, any order) against
    /// the ETC matrix: each task is mapped on arrival to the machine with
    /// the earliest completion time, ties via `tb`. Simultaneous arrivals
    /// are processed in the order given (FIFO through the event queue).
    ///
    /// Shorthand for [`DynamicMapper::run_policy`] with
    /// [`OnlinePolicy::Mct`].
    pub fn run(
        &self,
        etc: &EtcMatrix,
        arrivals: &[(Time, TaskId)],
        tb: &mut TieBreaker,
    ) -> ArrivalOutcome {
        self.run_policy(etc, arrivals, OnlinePolicy::Mct, tb)
    }

    /// Replays `arrivals` with an arbitrary on-line policy (see
    /// [`OnlinePolicy`]). SWA's MCT/MET mode persists across arrivals, as
    /// in Maheswaran et al.'s dynamic setting.
    pub fn run_policy(
        &self,
        etc: &EtcMatrix,
        arrivals: &[(Time, TaskId)],
        policy: OnlinePolicy,
        tb: &mut TieBreaker,
    ) -> ArrivalOutcome {
        let mut queue = EventQueue::new();
        for &(at, task) in arrivals {
            queue.schedule(at, task);
        }
        let mut avail = self.availability.clone();
        let mut placements = Vec::with_capacity(arrivals.len());
        // SWA mode state (starts as MCT, per Figure 13 step 2).
        let mut swa_met_mode = false;
        let mut first = true;

        while let Some((now, task)) = queue.pop() {
            let i = match policy {
                OnlinePolicy::Mct => self.pick_mct(etc, task, &avail, now, tb),
                OnlinePolicy::Met => self.pick_met(etc, task, tb),
                OnlinePolicy::Olb => {
                    let (cands, _) = select::min_candidates(
                        avail.iter().enumerate().map(|(i, &a)| (i, a.max(now))),
                    );
                    cands[tb.pick(cands.len())]
                }
                OnlinePolicy::Kpb { k_percent } => {
                    // Subset of the best-execution machines, MCT within.
                    let q =
                        ((self.machines.len() as f64 * k_percent / 100.0).floor() as usize).max(1);
                    let mut by_etc: Vec<usize> = (0..self.machines.len()).collect();
                    by_etc.sort_by_key(|&i| (etc.get(task, self.machines[i]), i));
                    by_etc.truncate(q);
                    by_etc.sort_unstable();
                    let (cands, _) = select::min_candidates(
                        by_etc
                            .iter()
                            .map(|&i| (i, avail[i].max(now) + etc.get(task, self.machines[i]))),
                    );
                    cands[tb.pick(cands.len())]
                }
                OnlinePolicy::Swa { lo, hi } => {
                    if !first {
                        // BI over the *effective* availabilities at `now`.
                        // The constructor guarantees at least one machine;
                        // an empty set still degrades to BI = 0 (MCT mode)
                        // rather than panicking.
                        let eff: Vec<Time> = avail.iter().map(|&a| a.max(now)).collect();
                        let min = eff.iter().copied().min().unwrap_or(Time::ZERO);
                        let max = eff.iter().copied().max().unwrap_or(Time::ZERO);
                        if max > Time::ZERO {
                            let bi = min.get() / max.get();
                            if bi > hi {
                                swa_met_mode = true;
                            } else if bi < lo {
                                swa_met_mode = false;
                            }
                        }
                    }
                    if swa_met_mode {
                        self.pick_met(etc, task, tb)
                    } else {
                        self.pick_mct(etc, task, &avail, now, tb)
                    }
                }
            };
            first = false;
            let machine = self.machines[i];
            let start = avail[i].max(now);
            let done = start + etc.get(task, machine);
            avail[i] = done;
            placements.push((task, machine, start, done));
        }

        ArrivalOutcome {
            placements,
            availability: self
                .machines
                .iter()
                .copied()
                .zip(avail.iter().copied())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::id::{m, t};

    fn etc() -> EtcMatrix {
        EtcMatrix::from_rows(&[vec![2.0, 4.0], vec![3.0, 1.0], vec![5.0, 5.0]]).unwrap()
    }

    fn zero_mapper() -> DynamicMapper {
        DynamicMapper::new(vec![m(0), m(1)], vec![Time::ZERO, Time::ZERO])
    }

    #[test]
    fn maps_each_arrival_to_earliest_completion() {
        let arrivals = vec![
            (Time::ZERO, t(0)),
            (Time::ZERO, t(1)),
            (Time::new(1.0), t(2)),
        ];
        let out = zero_mapper().run(&etc(), &arrivals, &mut TieBreaker::Deterministic);
        // t0 -> m0 (2 < 4); t1 -> m1 (1 < 2+3); t2 at 1.0: m0 busy till 2
        // -> 2+5=7, m1 busy till 1 -> 1+5=6 -> m1.
        assert_eq!(out.placements[0], (t(0), m(0), Time::ZERO, Time::new(2.0)));
        assert_eq!(out.placements[1], (t(1), m(1), Time::ZERO, Time::new(1.0)));
        assert_eq!(
            out.placements[2],
            (t(2), m(1), Time::new(1.0), Time::new(6.0))
        );
        assert_eq!(out.makespan(), Time::new(6.0));
        assert_eq!(out.completion_of(t(2)), Some(Time::new(6.0)));
    }

    #[test]
    fn arrival_after_availability_waits_for_neither() {
        // Machine available at 0, task arrives at 10: starts at 10.
        let arrivals = vec![(Time::new(10.0), t(0))];
        let out = zero_mapper().run(&etc(), &arrivals, &mut TieBreaker::Deterministic);
        assert_eq!(out.placements[0].2, Time::new(10.0));
        assert_eq!(out.placements[0].3, Time::new(12.0));
    }

    #[test]
    fn initial_availability_delays_start() {
        let mapper = DynamicMapper::new(vec![m(0), m(1)], vec![Time::new(9.0), Time::new(8.0)]);
        let out = mapper.run(
            &etc(),
            &[(Time::ZERO, t(0))],
            &mut TieBreaker::Deterministic,
        );
        // CT on m0: 9+2=11; on m1: 8+4=12 -> m0, starting at 9.
        assert_eq!(
            out.placements[0],
            (t(0), m(0), Time::new(9.0), Time::new(11.0))
        );
    }

    #[test]
    fn mean_completion_and_empty_stream() {
        let out = zero_mapper().run(&etc(), &[], &mut TieBreaker::Deterministic);
        assert_eq!(out.makespan(), Time::ZERO);
        assert_eq!(out.mean_completion(), Time::ZERO);
        assert_eq!(out.completion_of(t(0)), None);

        let arrivals = vec![(Time::ZERO, t(0)), (Time::ZERO, t(1))];
        let out = zero_mapper().run(&etc(), &arrivals, &mut TieBreaker::Deterministic);
        assert_eq!(out.mean_completion(), Time::new(1.5)); // (2 + 1) / 2
    }

    #[test]
    fn availability_vector_reflects_final_state() {
        let arrivals = vec![(Time::ZERO, t(0)), (Time::ZERO, t(1))];
        let out = zero_mapper().run(&etc(), &arrivals, &mut TieBreaker::Deterministic);
        assert_eq!(
            out.availability,
            vec![(m(0), Time::new(2.0)), (m(1), Time::new(1.0))]
        );
    }

    #[test]
    #[should_panic(expected = "needs machines")]
    fn empty_machine_set_rejected() {
        let _ = DynamicMapper::new(vec![], vec![]);
    }

    #[test]
    fn met_policy_ignores_availability() {
        // m0 is busy forever but has the smallest ETC: MET still picks it.
        let mapper = DynamicMapper::new(vec![m(0), m(1)], vec![Time::new(100.0), Time::ZERO]);
        let out = mapper.run_policy(
            &etc(),
            &[(Time::ZERO, t(0))],
            OnlinePolicy::Met,
            &mut TieBreaker::Deterministic,
        );
        assert_eq!(out.placements[0].1, m(0));
        assert_eq!(out.placements[0].2, Time::new(100.0));
    }

    #[test]
    fn olb_policy_ignores_etc() {
        // t0 runs 2 on m0, 4 on m1; with m0 busy until 3, OLB still takes
        // the earlier-available m1 despite the larger ETC.
        let mapper = DynamicMapper::new(vec![m(0), m(1)], vec![Time::new(3.0), Time::ZERO]);
        let out = mapper.run_policy(
            &etc(),
            &[(Time::ZERO, t(0))],
            OnlinePolicy::Olb,
            &mut TieBreaker::Deterministic,
        );
        assert_eq!(out.placements[0].1, m(1));
    }

    #[test]
    fn kpb_policy_restricts_to_best_subset() {
        // Three machines; t0's ETC row (2, 4, 100): the 2-of-3 subset is
        // {m0, m1}; m2 is idle but excluded.
        let wide = EtcMatrix::from_rows(&[vec![2.0, 4.0, 100.0]]).unwrap();
        let mapper = DynamicMapper::new(
            vec![m(0), m(1), m(2)],
            vec![Time::new(50.0), Time::new(49.0), Time::ZERO],
        );
        let out = mapper.run_policy(
            &wide,
            &[(Time::ZERO, t(0))],
            OnlinePolicy::Kpb { k_percent: 70.0 },
            &mut TieBreaker::Deterministic,
        );
        assert_ne!(out.placements[0].1, m(2));
        // MCT within the subset: 50+2=52 vs 49+4=53 -> m0.
        assert_eq!(out.placements[0].1, m(0));
    }

    #[test]
    fn swa_policy_switches_modes_on_balance() {
        // Arrange availabilities so BI starts high (balanced) -> MET mode.
        let rows = EtcMatrix::from_rows(&[
            vec![5.0, 1.0], // t0: MET machine is m1
            vec![5.0, 1.0], // t1: same
        ])
        .unwrap();
        let mapper = DynamicMapper::new(vec![m(0), m(1)], vec![Time::new(10.0), Time::new(10.0)]);
        let out = mapper.run_policy(
            &rows,
            &[(Time::ZERO, t(0)), (Time::ZERO, t(1))],
            OnlinePolicy::Swa { lo: 0.3, hi: 0.49 },
            &mut TieBreaker::Deterministic,
        );
        // First task: MCT mode (start state): CT m0 = 15, m1 = 11 -> m1.
        assert_eq!(out.placements[0].1, m(1));
        // Before t1: availabilities (10, 11), BI = 10/11 > 0.49 -> MET
        // mode -> m1 again (ETC 1 < 5) even though m0 finishes earlier.
        assert_eq!(out.placements[1].1, m(1));
    }

    #[test]
    fn mct_shorthand_matches_run_policy() {
        let arrivals = vec![(Time::ZERO, t(0)), (Time::new(0.5), t(1))];
        let a = zero_mapper().run(&etc(), &arrivals, &mut TieBreaker::Deterministic);
        let b = zero_mapper().run_policy(
            &etc(),
            &arrivals,
            OnlinePolicy::Mct,
            &mut TieBreaker::Deterministic,
        );
        assert_eq!(a, b);
    }
}
