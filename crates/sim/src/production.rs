//! The two-wave production-environment experiment (paper Section 1's
//! motivation, experiment X4 in DESIGN.md).
//!
//! * **Wave 1** — a set of known tasks, mapped off-line before execution
//!   begins. We run the mapping heuristic twice, conceptually: once to get
//!   the *original* mapping, and once through the full *iterative
//!   technique* (both come out of a single
//!   [`hcs_core::iterative::IterativeRun`] execution).
//! * **Wave 2** — tasks "that were not initially considered": they show up
//!   at some arrival time and are mapped on-line (MCT on arrival) onto
//!   whatever availability wave 1 left behind.
//!
//! The comparison: wave-2 performance when machines become available at
//! their **original-mapping completion times** versus at their **iterative
//! final finishing times**. If the iterative technique succeeded in pulling
//! non-makespan machines' finishing times down, wave 2 starts earlier and
//! finishes earlier; if the technique backfired (makespan increase), wave 2
//! pays for it.

use hcs_core::{
    iterative, EtcMatrix, Heuristic, IterativeConfig, MachineId, MapWorkspace, Scenario, TaskId,
    TieBreaker, Time,
};
use serde::{Deserialize, Serialize};

use crate::dynamic::DynamicMapper;

/// The two-wave workload.
#[derive(Clone, Debug)]
pub struct ProductionScenario {
    /// Wave 1: the known, off-line-mapped tasks.
    pub wave1: Scenario,
    /// Wave 2: ETC matrix of the unplanned tasks (same machine columns).
    pub wave2_etc: EtcMatrix,
    /// When the wave-2 tasks arrive (all at once, in task order).
    pub wave2_arrival: Time,
}

impl ProductionScenario {
    /// Builds a scenario, checking that the two waves agree on the machine
    /// set.
    ///
    /// # Panics
    ///
    /// Panics when the machine counts differ.
    pub fn new(wave1: Scenario, wave2_etc: EtcMatrix, wave2_arrival: Time) -> Self {
        assert_eq!(
            wave1.n_machines(),
            wave2_etc.n_machines(),
            "both waves must run on the same machine suite"
        );
        ProductionScenario {
            wave1,
            wave2_etc,
            wave2_arrival,
        }
    }
}

/// Wave-2 performance numbers.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Wave2Summary {
    /// Completion time of the last wave-2 task.
    pub makespan: Time,
    /// Mean completion time over wave-2 tasks.
    pub mean_completion: Time,
}

/// Outcome of the production experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProductionOutcome {
    /// Machine availability after wave 1 under the original mapping.
    pub original_availability: Vec<(MachineId, Time)>,
    /// Machine availability after wave 1 under the iterative technique.
    pub iterative_availability: Vec<(MachineId, Time)>,
    /// Wave-2 results on the original availability.
    pub wave2_original: Wave2Summary,
    /// Wave-2 results on the iterative availability.
    pub wave2_iterative: Wave2Summary,
}

impl ProductionOutcome {
    /// Positive when the iterative technique let wave 2 finish earlier.
    pub fn makespan_gain(&self) -> f64 {
        self.wave2_original.makespan.get() - self.wave2_iterative.makespan.get()
    }

    /// Positive when the iterative technique improved wave-2 mean
    /// completion.
    pub fn mean_completion_gain(&self) -> f64 {
        self.wave2_original.mean_completion.get() - self.wave2_iterative.mean_completion.get()
    }
}

/// Runs the full two-wave experiment with `heuristic` (and optionally the
/// seed guard) for wave 1.
pub fn run<H: Heuristic + ?Sized>(
    scenario: &ProductionScenario,
    heuristic: &mut H,
    tb: &mut TieBreaker,
    config: IterativeConfig,
) -> ProductionOutcome {
    run_in(scenario, heuristic, tb, config, &mut MapWorkspace::new())
}

/// Like [`run`], but with a caller-owned [`MapWorkspace`] threaded through
/// the wave-1 iterative driver, so Monte-Carlo harnesses reuse one
/// workspace per thread across trials.
pub fn run_in<H: Heuristic + ?Sized>(
    scenario: &ProductionScenario,
    heuristic: &mut H,
    tb: &mut TieBreaker,
    config: IterativeConfig,
    ws: &mut MapWorkspace,
) -> ProductionOutcome {
    let outcome = iterative::IterativeRun::new(heuristic, &scenario.wave1)
        .ties(tb)
        .config(config)
        .workspace(ws)
        .execute()
        .expect("heuristic violated the mapping contract");

    let original_availability: Vec<(MachineId, Time)> =
        outcome.original().completion.pairs().to_vec();
    let iterative_availability = outcome.final_finish.clone();

    let arrivals: Vec<(Time, TaskId)> = scenario
        .wave2_etc
        .tasks()
        .map(|task| (scenario.wave2_arrival, task))
        .collect();

    let summarize = |availability: &[(MachineId, Time)]| {
        let machines: Vec<MachineId> = availability.iter().map(|&(m, _)| m).collect();
        let avail: Vec<Time> = availability.iter().map(|&(_, t)| t).collect();
        let mapper = DynamicMapper::new(machines, avail);
        // Clone the tie-breaker so both availability variants see identical
        // tie decisions — only the availability differs.
        let mut tb2 = tb.clone();
        let out = mapper.run(&scenario.wave2_etc, &arrivals, &mut tb2);
        Wave2Summary {
            makespan: out.makespan(),
            mean_completion: out.mean_completion(),
        }
    };

    let wave2_original = summarize(&original_availability);
    let wave2_iterative = summarize(&iterative_availability);

    ProductionOutcome {
        original_availability,
        iterative_availability,
        wave2_original,
        wave2_iterative,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::id::m;
    use hcs_core::{Instance, Mapping};

    /// Round 0: balanced; later rounds: pushes everything onto the lowest
    /// machine index. Guarantees the iterative availability differs from
    /// the original, letting the tests observe a wave-2 effect in both
    /// directions.
    struct TwoFaced {
        calls: usize,
        improve: bool,
    }
    impl Heuristic for TwoFaced {
        fn name(&self) -> &'static str {
            "two-faced"
        }
        fn map(&mut self, inst: &Instance<'_>, _tb: &mut TieBreaker) -> Mapping {
            self.calls += 1;
            let mut mapping = Mapping::new(inst.etc.n_tasks());
            if self.calls == 1 || !self.improve {
                // Greedy balanced-ish: alternate machines.
                for (i, &task) in inst.tasks.iter().enumerate() {
                    let machine = inst.machines[i % inst.machines.len()];
                    mapping.assign(task, machine).unwrap();
                }
            } else {
                // "Improved": everything on the last machine — for the
                // 1-task sub-instances in this test this shortens the
                // other machine's finish.
                for &task in inst.tasks {
                    mapping
                        .assign(task, inst.machines[inst.machines.len() - 1])
                        .unwrap();
                }
            }
            mapping
        }
    }

    fn scenario() -> ProductionScenario {
        let wave1 = Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[
                vec![4.0, 6.0, 8.0],
                vec![5.0, 3.0, 7.0],
                vec![6.0, 5.0, 2.0],
            ])
            .unwrap(),
        );
        let wave2 = EtcMatrix::from_rows(&[vec![1.0, 1.0, 1.0], vec![2.0, 2.0, 2.0]]).unwrap();
        ProductionScenario::new(wave1, wave2, Time::ZERO)
    }

    #[test]
    fn availability_vectors_come_from_wave1() {
        let s = scenario();
        let mut tb = TieBreaker::Deterministic;
        let out = run(
            &s,
            &mut TwoFaced {
                calls: 0,
                improve: false,
            },
            &mut tb,
            IterativeConfig::default(),
        );
        assert_eq!(out.original_availability.len(), 3);
        assert_eq!(out.iterative_availability.len(), 3);
        // Original availability is the round-0 completion of each machine:
        // m0 runs t0 (4), m1 runs t1 (3), m2 runs t2 (2).
        assert_eq!(out.original_availability[0], (m(0), Time::new(4.0)));
        assert_eq!(out.original_availability[1], (m(1), Time::new(3.0)));
        assert_eq!(out.original_availability[2], (m(2), Time::new(2.0)));
    }

    #[test]
    fn identical_availability_means_identical_wave2() {
        // A heuristic the iterative technique cannot change (here: the
        // balanced mapping repeated) gives identical wave-2 summaries.
        let s = scenario();
        let mut tb = TieBreaker::Deterministic;
        let out = run(
            &s,
            &mut TwoFaced {
                calls: 0,
                improve: false,
            },
            &mut tb,
            IterativeConfig::default(),
        );
        // TwoFaced without improve still remaps sub-instances with its
        // balanced rule; on this workload the finishing times happen to
        // match the original (each machine keeps one task).
        assert_eq!(out.wave2_original, out.wave2_iterative);
        assert_eq!(out.makespan_gain(), 0.0);
        assert_eq!(out.mean_completion_gain(), 0.0);
    }

    #[test]
    fn earlier_availability_helps_wave2() {
        // Handcrafted comparison: wave 2 on availability (4, 3, 2) versus
        // a strictly better (4, 1, 1).
        let s = scenario();
        let machines = vec![m(0), m(1), m(2)];
        let arrivals: Vec<(Time, TaskId)> = s.wave2_etc.tasks().map(|t| (Time::ZERO, t)).collect();
        let worse = DynamicMapper::new(
            machines.clone(),
            vec![Time::new(4.0), Time::new(3.0), Time::new(2.0)],
        );
        let better = DynamicMapper::new(
            machines,
            vec![Time::new(4.0), Time::new(1.0), Time::new(1.0)],
        );
        let mut tb = TieBreaker::Deterministic;
        let w = worse.run(&s.wave2_etc, &arrivals, &mut tb);
        let b = better.run(&s.wave2_etc, &arrivals, &mut tb);
        assert!(b.makespan() < w.makespan());
        assert!(b.mean_completion() < w.mean_completion());
    }

    #[test]
    fn run_in_with_reused_workspace_matches_run() {
        let s = scenario();
        let mut ws = MapWorkspace::new();
        for _ in 0..2 {
            let mut tb = TieBreaker::Deterministic;
            let mut h = TwoFaced {
                calls: 0,
                improve: true,
            };
            let plain = run(&s, &mut h, &mut tb, IterativeConfig::default());
            let mut tb = TieBreaker::Deterministic;
            let mut h = TwoFaced {
                calls: 0,
                improve: true,
            };
            let pooled = run_in(&s, &mut h, &mut tb, IterativeConfig::default(), &mut ws);
            assert_eq!(plain, pooled);
        }
    }

    #[test]
    #[should_panic(expected = "same machine suite")]
    fn mismatched_machine_counts_rejected() {
        let wave1 = Scenario::with_zero_ready(EtcMatrix::from_rows(&[vec![1.0, 2.0]]).unwrap());
        let wave2 = EtcMatrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        let _ = ProductionScenario::new(wave1, wave2, Time::ZERO);
    }
}
