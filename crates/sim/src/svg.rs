//! SVG rendering of Gantt charts — publication-quality counterparts of the
//! ASCII figures (the paper's Figures 3–19 are exactly this kind of bar
//! chart).
//!
//! The output is self-contained SVG 1.1: one horizontal lane per machine,
//! one labelled rectangle per task, a time axis with ticks. No external
//! fonts or scripts, so the files render anywhere.

use std::fmt::Write as _;

use hcs_core::Time;

use crate::gantt::Gantt;

/// Layout constants (pixels).
const LANE_HEIGHT: f64 = 28.0;
const LANE_GAP: f64 = 8.0;
const LEFT_MARGIN: f64 = 48.0;
const TOP_MARGIN: f64 = 16.0;
const AXIS_HEIGHT: f64 = 28.0;
const CHART_WIDTH: f64 = 640.0;

/// A muted categorical palette; task `i` uses colour `i % len`.
const PALETTE: [&str; 8] = [
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2", "#edc948", "#b07aa1", "#9c755f",
];

impl Gantt {
    /// Renders the chart as a standalone SVG document. `title` becomes the
    /// SVG `<title>` (hover text / accessibility).
    pub fn to_svg(&self, title: &str) -> String {
        let horizon = self.horizon().get().max(1e-9);
        let rows = self.rows();
        let height = TOP_MARGIN + rows.len() as f64 * (LANE_HEIGHT + LANE_GAP) + AXIS_HEIGHT;
        let width = LEFT_MARGIN + CHART_WIDTH + 24.0;
        let x = |t: Time| LEFT_MARGIN + t.get() / horizon * CHART_WIDTH;

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{height:.0}" viewBox="0 0 {width:.0} {height:.0}" font-family="sans-serif" font-size="12">"#
        );
        let _ = write!(svg, "<title>{}</title>", escape(title));

        for (lane, (machine, segments)) in rows.iter().enumerate() {
            let y = TOP_MARGIN + lane as f64 * (LANE_HEIGHT + LANE_GAP);
            // Machine label.
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" text-anchor="end" dominant-baseline="middle">{}</text>"#,
                LEFT_MARGIN - 8.0,
                y + LANE_HEIGHT / 2.0,
                machine
            );
            // Lane baseline.
            let _ = write!(
                svg,
                r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#ddd"/>"##,
                LEFT_MARGIN,
                y + LANE_HEIGHT,
                LEFT_MARGIN + CHART_WIDTH,
                y + LANE_HEIGHT
            );
            for seg in segments {
                let x0 = x(seg.start);
                let x1 = x(seg.end);
                let colour = PALETTE[seg.task.idx() % PALETTE.len()];
                let _ = write!(
                    svg,
                    r##"<rect x="{x0:.1}" y="{y:.1}" width="{:.1}" height="{LANE_HEIGHT:.1}" fill="{colour}" stroke="#333" stroke-width="0.5"><title>{}: {} - {}</title></rect>"##,
                    (x1 - x0).max(1.0),
                    seg.task,
                    seg.start,
                    seg.end
                );
                if x1 - x0 > 22.0 {
                    let _ = write!(
                        svg,
                        r##"<text x="{:.1}" y="{:.1}" text-anchor="middle" dominant-baseline="middle" fill="#fff">{}</text>"##,
                        (x0 + x1) / 2.0,
                        y + LANE_HEIGHT / 2.0,
                        seg.task
                    );
                }
            }
        }

        // Time axis with six ticks.
        let axis_y = TOP_MARGIN + rows.len() as f64 * (LANE_HEIGHT + LANE_GAP) + 4.0;
        let _ = write!(
            svg,
            r##"<line x1="{LEFT_MARGIN:.1}" y1="{axis_y:.1}" x2="{:.1}" y2="{axis_y:.1}" stroke="#333"/>"##,
            LEFT_MARGIN + CHART_WIDTH
        );
        for i in 0..=6 {
            let v = horizon * f64::from(i) / 6.0;
            let tick_x = LEFT_MARGIN + CHART_WIDTH * f64::from(i) / 6.0;
            let _ = write!(
                svg,
                r##"<line x1="{tick_x:.1}" y1="{axis_y:.1}" x2="{tick_x:.1}" y2="{:.1}" stroke="#333"/><text x="{tick_x:.1}" y="{:.1}" text-anchor="middle">{v:.1}</text>"##,
                axis_y + 4.0,
                axis_y + 18.0
            );
        }
        svg.push_str("</svg>");
        svg
    }
}

/// Minimal XML escaping for text content.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::id::{m, t};
    use hcs_core::{EtcMatrix, Mapping, ReadyTimes};

    fn sample() -> Gantt {
        let etc = EtcMatrix::from_rows(&[vec![2.0, 9.0], vec![9.0, 3.0], vec![4.0, 9.0]]).unwrap();
        let mut mapping = Mapping::new(3);
        mapping.assign(t(0), m(0)).unwrap();
        mapping.assign(t(1), m(1)).unwrap();
        mapping.assign(t(2), m(0)).unwrap();
        Gantt::from_mapping(&mapping, &etc, &ReadyTimes::zero(2), &[m(0), m(1)])
    }

    #[test]
    fn produces_wellformed_svg() {
        let svg = sample().to_svg("demo");
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("<title>demo</title>"));
        // Balanced rect tags, one per task segment.
        assert_eq!(svg.matches("<rect").count(), 3);
        // Machine labels present.
        assert!(svg.contains(">m0<"));
        assert!(svg.contains(">m1<"));
    }

    #[test]
    fn scales_to_the_horizon() {
        let svg = sample().to_svg("demo");
        // Horizon is 6.0, so the last axis label is 6.0.
        assert!(svg.contains(">6.0<"), "{svg}");
    }

    #[test]
    fn escapes_titles() {
        let svg = sample().to_svg("a < b & c");
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn renders_paper_figures_as_svg() {
        // Smoke over the reconstructed examples via from_mapping (used by
        // the repro pipeline when exporting SVG).
        let etc = EtcMatrix::from_rows(&[vec![6.0, 7.0, 8.0], vec![9.0, 2.0, 3.0]]).unwrap();
        let mut mapping = Mapping::new(2);
        mapping.assign(t(0), m(0)).unwrap();
        mapping.assign(t(1), m(1)).unwrap();
        let g = Gantt::from_mapping(&mapping, &etc, &ReadyTimes::zero(3), &[m(0), m(1), m(2)]);
        let svg = g.to_svg("Figure 11");
        assert!(svg.contains("Figure 11"));
        assert!(svg.matches("<rect").count() == 2);
    }
}
