//! `hcs-client`: a resilient TCP client for the `hcs-service` mapping
//! daemon.
//!
//! The daemon speaks newline-delimited JSON over TCP ([`hcs_service`
//! protocol docs](hcs_service::protocol)); this crate wraps that wire
//! format in a typed client that a resource-management system can lean on
//! without writing its own retry machinery:
//!
//! * **deadlines** — a connect timeout and a per-request read deadline, so
//!   a wedged daemon can never hang the caller,
//! * **bounded retries with jittered exponential backoff** — transient
//!   failures (connection refused or reset, `503` load shedding, injected
//!   faults, deadline expiry) are retried up to a configured cap; the
//!   jitter sequence is deterministic in [`ClientConfig::jitter_seed`] so
//!   test runs are reproducible,
//! * **typed errors** — [`ClientError`] carries an [`ErrorKind`] that
//!   splits retryable transport/overload failures from terminal protocol
//!   or server faults, plus the number of attempts actually made, and
//! * **batching** — [`Client::map_batch`] sends one `map_batch` line for
//!   many instances and returns per-item results; across retries only the
//!   items that failed retryably are re-sent.
//!
//! The crate is std-only, like the daemon it talks to: one blocking
//! `TcpStream` per client, reused across requests, reconnected (with
//! backoff) whenever it breaks.
//!
//! ```no_run
//! use hcs_client::Client;
//! use hcs_core::{EtcMatrix, Scenario};
//! use hcs_service::MapRequest;
//!
//! let mut client = Client::new("127.0.0.1:7077");
//! let request = MapRequest {
//!     scenario: Scenario::with_zero_ready(
//!         EtcMatrix::from_rows(&[vec![2.0, 6.0], vec![3.0, 4.0]]).unwrap(),
//!     ),
//!     heuristic: "min-min".into(),
//!     random_ties: None,
//!     iterative: true,
//!     guard: false,
//!     sleep_ms: 0,
//!     rid: None,
//! };
//! let reply = client.map(&request).expect("mapped");
//! println!("makespan {} in {:?} rounds", reply.makespan, reply.rounds);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod fleet;

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use hcs_service::json::{parse, Value};
use hcs_service::protocol::{batch_line, MapRequest, PROTOCOL_VERSION};

/// Client tuning knobs. The defaults suit a daemon on the same host or
/// rack; loosen the deadlines for anything slower.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Deadline for one request/reply exchange once connected. When it
    /// expires the connection is dropped (a late reply would desynchronize
    /// the line framing) and the attempt counts as retryable.
    pub read_timeout: Duration,
    /// Retries *after* the first attempt — `retries: 3` means at most 4
    /// attempts. Only failures whose [`ErrorKind`] is
    /// [retryable](ErrorKind::retryable) consume retries.
    pub retries: u32,
    /// Backoff before retry `k` is `backoff_base * 2^(k-1)`, capped at
    /// [`backoff_max`](ClientConfig::backoff_max), then jittered to
    /// 50–100% of that value.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep (pre-jitter).
    pub backoff_max: Duration,
    /// Seed for the deterministic jitter sequence. Two clients configured
    /// identically sleep identically — handy in tests, harmless in
    /// production (vary the seed per client to decorrelate).
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(5),
            retries: 3,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
            jitter_seed: 0,
        }
    }
}

/// What went wrong, coarsely — the split that matters is
/// [`retryable`](ErrorKind::retryable) versus terminal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// Could not establish a connection (refused, unreachable, connect
    /// deadline). Retryable: the daemon may just be restarting.
    Connect,
    /// The connection broke mid-exchange (reset, EOF, write failure).
    /// Retryable on a fresh connection.
    ConnectionLost,
    /// The read deadline expired before a reply line arrived. Retryable.
    Deadline,
    /// The daemon shed the request under load (`error_code: "shed"`).
    /// Retryable after backoff — that is the entire point of shedding.
    Shed,
    /// The daemon's injected-fault hook dropped the request
    /// (`error_code: "fault"`). Retryable; exists to exercise this client.
    Fault,
    /// The exchange violated the protocol: unparseable reply, unknown
    /// protocol version, malformed request (`error_code:
    /// "parse"`/`"version"`). Terminal — retrying the same bytes cannot
    /// help.
    Protocol,
    /// The daemon failed internally (`error_code: "internal"`). Terminal:
    /// the same request would deterministically fail again.
    Server,
}

impl ErrorKind {
    /// Whether a failure of this kind is worth retrying.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrorKind::Connect
                | ErrorKind::ConnectionLost
                | ErrorKind::Deadline
                | ErrorKind::Shed
                | ErrorKind::Fault
        )
    }
}

/// A failed request, after the retry budget (for retryable kinds) was
/// spent or a terminal failure cut the loop short.
#[derive(Clone, Debug)]
pub struct ClientError {
    /// Classification of the last failure observed.
    pub kind: ErrorKind,
    /// Human-readable detail from the transport or the daemon's reply.
    pub message: String,
    /// Attempts actually made (1 = failed without any retry).
    pub attempts: u32,
}

impl ClientError {
    /// Whether the underlying failure kind is retryable (the client has
    /// already exhausted its own budget by the time you see this).
    pub fn retryable(&self) -> bool {
        self.kind.retryable()
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} after {} attempt{}: {}",
            self.kind,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

impl std::error::Error for ClientError {}

/// A successful mapping reply, with the fields callers routinely need
/// lifted out and the full reply object retained in [`raw`](MapReply::raw).
#[derive(Clone, Debug)]
pub struct MapReply {
    /// Whether the daemon answered from its digest cache.
    pub cached: bool,
    /// Canonical heuristic name the daemon resolved.
    pub heuristic: String,
    /// Initial-mapping makespan.
    pub makespan: f64,
    /// The objective name the daemon scored against, when the request
    /// asked for a non-makespan objective (absent on v1/makespan replies).
    pub objective: Option<String>,
    /// The objective's value for the mapping, when non-makespan.
    pub objective_value: Option<f64>,
    /// Post-iteration makespan, when the request asked for the iterative
    /// procedure.
    pub final_makespan: Option<f64>,
    /// Rounds the iterative driver ran, when requested.
    pub rounds: Option<u32>,
    /// The request id the daemon echoed back (present only when the
    /// request carried one — server-assigned ids are never echoed).
    pub rid: Option<u64>,
    /// The complete reply object (assignments, completion vector, …).
    pub raw: Value,
}

/// A failure local to one attempt: the kind plus detail. Attempt counting
/// happens in the retry loops.
type Failure = (ErrorKind, String);

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A client for one daemon address. Holds at most one connection, reused
/// across requests and re-established (with backoff) when it breaks. Not
/// `Sync` — use one `Client` per thread, like one `TcpStream` per thread.
pub struct Client {
    addr: String,
    config: ClientConfig,
    conn: Option<Conn>,
    jitter_counter: u64,
}

impl Client {
    /// A client with default [`ClientConfig`].
    pub fn new(addr: impl Into<String>) -> Client {
        Client::with_config(addr, ClientConfig::default())
    }

    /// A client with explicit configuration.
    pub fn with_config(addr: impl Into<String>, config: ClientConfig) -> Client {
        Client {
            addr: addr.into(),
            config,
            conn: None,
            jitter_counter: 0,
        }
    }

    /// Maps one instance, retrying transient failures. On success the
    /// reply is parsed into a [`MapReply`]; on failure the error reports
    /// the kind and how many attempts were made.
    pub fn map(&mut self, request: &MapRequest) -> Result<MapReply, ClientError> {
        let line = request.to_line();
        let value = self.request_value(&line)?;
        reply_from_value(value).map_err(|(kind, message)| ClientError {
            kind,
            message,
            attempts: 1,
        })
    }

    /// Maps many instances in one `map_batch` line per attempt. Returns
    /// one result per input, in input order; the call as a whole only
    /// fails when the exchange itself does terminally (protocol breakage,
    /// batch-level rejection) — per-item failures land in the item's
    /// slot. Across retries, only items that failed retryably are
    /// re-sent.
    #[allow(clippy::type_complexity)]
    pub fn map_batch(
        &mut self,
        requests: &[MapRequest],
    ) -> Result<Vec<Result<MapReply, ClientError>>, ClientError> {
        let mut results: Vec<Option<Result<MapReply, ClientError>>> =
            (0..requests.len()).map(|_| None).collect();
        let mut pending: Vec<usize> = (0..requests.len()).collect();
        let mut last_failure: Option<Failure> = None;

        let mut attempt = 0;
        while attempt <= self.config.retries && !pending.is_empty() {
            if attempt > 0 {
                self.backoff(attempt);
            }
            attempt += 1;

            let subset: Vec<MapRequest> = pending.iter().map(|&i| requests[i].clone()).collect();
            let value = match self.exchange(&batch_line(&subset)) {
                Ok(v) => v,
                Err((kind, message)) if kind.retryable() => {
                    last_failure = Some((kind, message));
                    continue;
                }
                Err((kind, message)) => {
                    return Err(ClientError {
                        kind,
                        message,
                        attempts: attempt,
                    })
                }
            };
            if let Err((kind, message)) = reply_status(&value) {
                if kind.retryable() {
                    last_failure = Some((kind, message));
                    continue;
                }
                return Err(ClientError {
                    kind,
                    message,
                    attempts: attempt,
                });
            }
            let items = match value.get("items").and_then(Value::as_array) {
                Some(items) if items.len() == pending.len() => items,
                _ => {
                    return Err(ClientError {
                        kind: ErrorKind::Protocol,
                        message: format!(
                            "batch reply items do not line up with the request: {value}"
                        ),
                        attempts: attempt,
                    })
                }
            };

            let mut still_pending = Vec::new();
            for (&slot, item) in pending.iter().zip(items) {
                match reply_status(item) {
                    Ok(()) => {
                        results[slot] =
                            Some(reply_from_value(item.clone()).map_err(|(kind, message)| {
                                ClientError {
                                    kind,
                                    message,
                                    attempts: attempt,
                                }
                            }));
                    }
                    Err((kind, message)) if kind.retryable() => {
                        last_failure = Some((kind, message));
                        still_pending.push(slot);
                    }
                    Err((kind, message)) => {
                        results[slot] = Some(Err(ClientError {
                            kind,
                            message,
                            attempts: attempt,
                        }));
                    }
                }
            }
            pending = still_pending;
        }

        // Whatever is still pending exhausted the retry budget.
        let (kind, message) =
            last_failure.unwrap_or((ErrorKind::Shed, "retry budget exhausted".into()));
        for slot in pending {
            results[slot] = Some(Err(ClientError {
                kind,
                message: message.clone(),
                attempts: attempt,
            }));
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every slot resolved"))
            .collect())
    }

    /// Fetches the daemon's `STATS` object (the `"stats"` payload).
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        let v = self.request_value(&op_line("stats"))?;
        v.get("stats").cloned().ok_or_else(|| ClientError {
            kind: ErrorKind::Protocol,
            message: format!("stats reply missing payload: {v}"),
            attempts: 1,
        })
    }

    /// Fetches the daemon's Prometheus exposition text.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let v = self.request_value(&op_line("metrics"))?;
        v.get("metrics")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError {
                kind: ErrorKind::Protocol,
                message: format!("metrics reply missing payload: {v}"),
                attempts: 1,
            })
    }

    /// Fetches the daemon's trace ring as the raw reply object. With a
    /// rid, the reply carries only that request's `events` plus its
    /// recorded per-phase `spans` — the server-side half of an
    /// end-to-end request timeline.
    pub fn trace(&mut self, rid: Option<u64>) -> Result<Value, ClientError> {
        let line = match rid {
            None => op_line("trace"),
            Some(rid) => {
                format!("{{\"op\":\"trace\",\"v\":{PROTOCOL_VERSION},\"rid\":\"{rid:016x}\"}}")
            }
        };
        self.request_value(&line)
    }

    /// Asks the daemon to shut down (drain, then exit). The connection is
    /// dropped afterwards — the daemon is going away.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let result = self.request_value(&op_line("shutdown")).map(|_| ());
        self.conn = None;
        result
    }

    /// The retry loop shared by every single-line exchange: send `line`,
    /// classify the reply, back off and retry while the failure is
    /// retryable and budget remains.
    fn request_value(&mut self, line: &str) -> Result<Value, ClientError> {
        let mut last: Failure = (ErrorKind::Connect, "no attempt made".into());
        for attempt in 0..=self.config.retries {
            if attempt > 0 {
                self.backoff(attempt);
            }
            let failure = match self.exchange(line) {
                Ok(value) => match reply_status(&value) {
                    Ok(()) => return Ok(value),
                    Err(f) => f,
                },
                Err(f) => f,
            };
            if !failure.0.retryable() {
                return Err(ClientError {
                    kind: failure.0,
                    message: failure.1,
                    attempts: attempt + 1,
                });
            }
            last = failure;
        }
        Err(ClientError {
            kind: last.0,
            message: last.1,
            attempts: self.config.retries + 1,
        })
    }

    /// One attempt: connect if needed, write one line, read one line,
    /// parse it, check the protocol version. Any transport failure drops
    /// the connection so the next attempt starts clean — in particular a
    /// deadline expiry must not leave a late reply in the buffer to be
    /// mistaken for the answer to the *next* request.
    fn exchange(&mut self, line: &str) -> Result<Value, Failure> {
        if self.conn.is_none() {
            self.conn = Some(self.connect()?);
        }
        let conn = self.conn.as_mut().expect("connection just established");

        let wrote = conn
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| conn.writer.write_all(b"\n"))
            .and_then(|()| conn.writer.flush());
        if let Err(e) = wrote {
            self.conn = None;
            return Err((ErrorKind::ConnectionLost, format!("write failed: {e}")));
        }

        let mut reply = String::new();
        match conn.reader.read_line(&mut reply) {
            Ok(0) => {
                self.conn = None;
                return Err((
                    ErrorKind::ConnectionLost,
                    "connection closed before reply".into(),
                ));
            }
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                self.conn = None;
                return Err((
                    ErrorKind::Deadline,
                    format!("no reply within {:?}", self.config.read_timeout),
                ));
            }
            Err(e) => {
                self.conn = None;
                return Err((ErrorKind::ConnectionLost, format!("read failed: {e}")));
            }
        }

        let value = parse(reply.trim_end()).map_err(|e| {
            (
                ErrorKind::Protocol,
                format!("unparseable reply line: {e:?}"),
            )
        })?;
        match value.get("v") {
            None | Some(Value::Null) => Ok(value),
            Some(v) if v.as_u64() == Some(PROTOCOL_VERSION) => Ok(value),
            Some(v) => Err((
                ErrorKind::Protocol,
                format!(
                    "daemon speaks protocol version {v}, this client speaks {PROTOCOL_VERSION}"
                ),
            )),
        }
    }

    fn connect(&self) -> Result<Conn, Failure> {
        let addrs: Vec<SocketAddr> = self
            .addr
            .to_socket_addrs()
            .map_err(|e| {
                (
                    ErrorKind::Connect,
                    format!("cannot resolve {}: {e}", self.addr),
                )
            })?
            .collect();
        let mut last = (
            ErrorKind::Connect,
            format!("{} resolved to no addresses", self.addr),
        );
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.config.connect_timeout) {
                Ok(stream) => {
                    stream
                        .set_read_timeout(Some(self.config.read_timeout))
                        .map_err(|e| (ErrorKind::Connect, format!("set deadline: {e}")))?;
                    stream.set_nodelay(true).ok();
                    let writer = stream
                        .try_clone()
                        .map_err(|e| (ErrorKind::Connect, format!("clone stream: {e}")))?;
                    return Ok(Conn {
                        reader: BufReader::new(stream),
                        writer,
                    });
                }
                Err(e) => last = (ErrorKind::Connect, format!("connect {addr}: {e}")),
            }
        }
        Err(last)
    }

    /// Sleeps before retry `attempt` (1-based): exponential growth from
    /// `backoff_base` capped at `backoff_max`, jittered deterministically
    /// to 50–100% of the capped value.
    fn backoff(&mut self, attempt: u32) {
        let exp = attempt.saturating_sub(1).min(16);
        let uncapped = self.config.backoff_base.saturating_mul(1 << exp);
        let capped = uncapped.min(self.config.backoff_max);
        let draw = splitmix64(self.config.jitter_seed.wrapping_add(self.jitter_counter));
        self.jitter_counter = self.jitter_counter.wrapping_add(1);
        let frac = (draw >> 11) as f64 / (1u64 << 53) as f64;
        std::thread::sleep(capped.mul_f64(0.5 + 0.5 * frac));
    }
}

fn op_line(op: &str) -> String {
    format!("{{\"op\":\"{op}\",\"v\":{PROTOCOL_VERSION}}}")
}

/// Classifies a reply object: `Ok(())` for `"ok":true`, otherwise the
/// [`ErrorKind`] the daemon's typed `error_code` maps to (with a numeric
/// `code` fallback for replies predating the closed enum).
fn reply_status(value: &Value) -> Result<(), Failure> {
    if value.get("ok").and_then(Value::as_bool) == Some(true) {
        return Ok(());
    }
    let message = value
        .get("error")
        .and_then(Value::as_str)
        .unwrap_or("daemon reported failure without detail")
        .to_string();
    let kind = match value.get("error_code").and_then(Value::as_str) {
        Some("shed") => ErrorKind::Shed,
        Some("fault") => ErrorKind::Fault,
        Some("parse") | Some("version") => ErrorKind::Protocol,
        Some("internal") => ErrorKind::Server,
        Some(_) | None => match value.get("code").and_then(Value::as_u64) {
            Some(503) => ErrorKind::Shed,
            Some(500) => ErrorKind::Server,
            _ => ErrorKind::Protocol,
        },
    };
    Err((kind, message))
}

fn reply_from_value(value: Value) -> Result<MapReply, Failure> {
    let heuristic = match value.get("heuristic").and_then(Value::as_str) {
        Some(h) => h.to_string(),
        None => {
            return Err((
                ErrorKind::Protocol,
                format!("reply missing field `heuristic`: {value}"),
            ))
        }
    };
    let makespan = match value.get("makespan").and_then(Value::as_f64) {
        Some(m) => m,
        None => {
            return Err((
                ErrorKind::Protocol,
                format!("reply missing field `makespan`: {value}"),
            ))
        }
    };
    Ok(MapReply {
        cached: value
            .get("cached")
            .and_then(Value::as_bool)
            .unwrap_or(false),
        heuristic,
        makespan,
        objective: value
            .get("objective")
            .and_then(Value::as_str)
            .map(str::to_string),
        objective_value: value.get("objective_value").and_then(Value::as_f64),
        final_makespan: value.get("final_makespan").and_then(Value::as_f64),
        rounds: value
            .get("rounds")
            .and_then(Value::as_u64)
            .map(|r| r.min(u64::from(u32::MAX)) as u32),
        rid: value
            .get("rid")
            .and_then(Value::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok()),
        raw: value,
    })
}

/// The splitmix64 finalizer — drives the deterministic jitter stream.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_kinds_split_retryable_from_terminal() {
        for kind in [
            ErrorKind::Connect,
            ErrorKind::ConnectionLost,
            ErrorKind::Deadline,
            ErrorKind::Shed,
            ErrorKind::Fault,
        ] {
            assert!(kind.retryable(), "{kind:?}");
        }
        for kind in [ErrorKind::Protocol, ErrorKind::Server] {
            assert!(!kind.retryable(), "{kind:?}");
        }
    }

    #[test]
    fn reply_status_maps_error_codes_onto_kinds() {
        let classify = |line: &str| reply_status(&parse(line).unwrap()).unwrap_err().0;
        assert_eq!(
            classify(r#"{"ok":false,"code":503,"error_code":"shed","error":"x"}"#),
            ErrorKind::Shed
        );
        assert_eq!(
            classify(r#"{"ok":false,"code":503,"error_code":"fault","error":"x"}"#),
            ErrorKind::Fault
        );
        assert_eq!(
            classify(r#"{"ok":false,"code":400,"error_code":"parse","error":"x"}"#),
            ErrorKind::Protocol
        );
        assert_eq!(
            classify(r#"{"ok":false,"code":400,"error_code":"version","error":"x"}"#),
            ErrorKind::Protocol
        );
        assert_eq!(
            classify(r#"{"ok":false,"code":500,"error_code":"internal","error":"x"}"#),
            ErrorKind::Server
        );
        // Fallback on the numeric code when the string is absent.
        assert_eq!(
            classify(r#"{"ok":false,"code":503,"error":"x"}"#),
            ErrorKind::Shed
        );
        assert_eq!(
            classify(r#"{"ok":false,"code":500,"error":"x"}"#),
            ErrorKind::Server
        );
        assert_eq!(
            classify(r#"{"ok":false,"code":400,"error":"x"}"#),
            ErrorKind::Protocol
        );
    }

    #[test]
    fn backoff_is_capped_exponential_and_deterministic() {
        let config = ClientConfig {
            backoff_base: Duration::from_millis(8),
            backoff_max: Duration::from_millis(40),
            ..ClientConfig::default()
        };
        let delays = |seed: u64| -> Vec<Duration> {
            // Reproduce the backoff arithmetic without the sleep.
            let mut counter = 0u64;
            (1u32..=6)
                .map(|attempt| {
                    let exp = attempt.saturating_sub(1).min(16);
                    let capped = config
                        .backoff_base
                        .saturating_mul(1 << exp)
                        .min(config.backoff_max);
                    let draw = splitmix64(seed.wrapping_add(counter));
                    counter += 1;
                    let frac = (draw >> 11) as f64 / (1u64 << 53) as f64;
                    capped.mul_f64(0.5 + 0.5 * frac)
                })
                .collect()
        };
        let a = delays(7);
        let b = delays(7);
        assert_eq!(a, b, "same seed, same sleeps");
        for (attempt, d) in a.iter().enumerate() {
            let capped = config
                .backoff_base
                .saturating_mul(1 << (attempt as u32).min(16))
                .min(config.backoff_max);
            assert!(
                *d >= capped.mul_f64(0.5) && *d <= capped,
                "attempt {attempt}: {d:?}"
            );
        }
        // The cap binds from attempt 4 on (8ms * 2^3 = 64ms > 40ms).
        assert!(a[5] <= Duration::from_millis(40));
    }

    #[test]
    fn map_reply_lifts_the_common_fields() {
        let value = parse(
            r#"{"ok":true,"cached":true,"heuristic":"Min-Min","assignments":[[0,1]],
                "completion":[[1,3.5]],"makespan":3.5,"final_makespan":3.0,"rounds":2,
                "makespan_increased":false}"#,
        )
        .unwrap();
        let reply = reply_from_value(value).unwrap();
        assert!(reply.cached);
        assert_eq!(reply.heuristic, "Min-Min");
        assert_eq!(reply.makespan, 3.5);
        assert_eq!(reply.objective, None, "makespan replies omit the field");
        assert_eq!(reply.objective_value, None);
        assert_eq!(reply.final_makespan, Some(3.0));
        assert_eq!(reply.rounds, Some(2));
        assert_eq!(reply.rid, None, "v1 replies carry no rid");
        assert!(reply.raw.get("assignments").is_some());
    }

    #[test]
    fn map_reply_lifts_an_echoed_rid() {
        let value = parse(
            r#"{"ok":true,"v":1,"rid":"000000000000002a","cached":false,"heuristic":"MCT",
                "assignments":[[0,0]],"completion":[[0,2.0]],"makespan":2.0}"#,
        )
        .unwrap();
        assert_eq!(reply_from_value(value).unwrap().rid, Some(0x2a));
    }

    #[test]
    fn map_reply_lifts_the_objective_fields_when_present() {
        let value = parse(
            r#"{"ok":true,"cached":false,"heuristic":"MCT","assignments":[[0,0]],
                "completion":[[0,2.0]],"makespan":2.0,"objective":"flowtime",
                "objective_value":2.0}"#,
        )
        .unwrap();
        let reply = reply_from_value(value).unwrap();
        assert_eq!(reply.objective.as_deref(), Some("flowtime"));
        assert_eq!(reply.objective_value, Some(2.0));
    }

    #[test]
    fn malformed_success_replies_are_protocol_errors() {
        let value = parse(r#"{"ok":true,"heuristic":"MCT"}"#).unwrap();
        let (kind, message) = reply_from_value(value).unwrap_err();
        assert_eq!(kind, ErrorKind::Protocol);
        assert!(message.contains("makespan"), "{message}");
    }
}
