//! Fleet-aware client: consistent-hash routing over a set of `hcs-service`
//! shards.
//!
//! One daemon is a scaling ceiling; a fleet of daemons is only useful if
//! requests route *stably* — the digest cache inside each shard is keyed on
//! [`InstanceDigest`], so cache locality falls out of routing exactly when
//! the same digest always lands on the same shard. This module provides
//! that:
//!
//! * [`HashRing`] — a deterministic consistent-hash ring over shard
//!   addresses. Each node contributes `vnodes` points (hashed with the same
//!   FNV-1a construction as [`InstanceDigest`]); a request's digest owns
//!   the first point clockwise from it. Two rings built from the same
//!   addresses agree on every key, and removing a node only remaps the
//!   keys that node owned (~`1/N` of the keyspace) — both properties are
//!   pinned by tests.
//! * [`FleetClient`] — owns one lazily-connected [`Client`] per shard,
//!   routes [`Client::map`]/[`Client::map_batch`] by digest, tracks
//!   per-node health, and **fails over to the next ring node only for
//!   retryable [`ErrorKind`]s**. Health also drives candidate selection:
//!   a node with three or more consecutive failures is demoted behind
//!   every healthier node in the failover sequence (tried only as a last
//!   resort) until its next success restores it. Terminal errors (protocol breakage, a
//!   deterministic server failure) surface immediately: retrying the same
//!   bytes against a different shard cannot help and would double the
//!   damage. [`FleetClient::drain`] chains per-node SHUTDOWN in reverse
//!   ring order, so the node that owns the lowest arc — the one new
//!   traffic hits first after a wrap — goes down last.
//!
//! The inner [`Client`] already retries transient failures against *its*
//! node with jittered backoff; the fleet layer adds the across-node hop on
//! top. A request therefore survives both a flaky exchange (inner retry)
//! and a dead shard (ring failover) without the caller seeing either.
//!
//! # Correlation and aggregation
//!
//! Every request routed through the fleet carries a [`RequestId`]: the
//! caller's own (`request.rid`), or one the fleet client derives from
//! [`FleetConfig::rid_seed`] and a counter. Each attempt — the owner node
//! and every failover hop — is recorded in a bounded per-rid hop timeline
//! ([`HopAttempt`]: node tried, error kind, elapsed), and
//! [`FleetClient::trace`] joins those client-side hops with every node's
//! rid-filtered `TRACE` reply into one end-to-end timeline. On the
//! telemetry side, [`FleetClient::stats_merged`] and
//! [`FleetClient::metrics_merged`] fold the per-node fan-outs into one
//! fleet view: summed counters, max queue depth, and latency distributions
//! merged bucket-wise ([`Histogram::merge`]) so fleet percentiles come
//! from one histogram rather than averaging per-node percentiles.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::time::Instant;

use hcs_core::obs::{Histogram, Registry, RequestId};
use hcs_core::InstanceDigest;
use hcs_service::json::{ObjectBuilder, Value};
use hcs_service::protocol::MapRequest;

use crate::{Client, ClientConfig, ClientError, ErrorKind, MapReply};

/// Distinct rids whose hop timelines are retained; older rids are evicted
/// first-in-first-out once the table is full.
const HOP_CAPACITY: usize = 1024;

/// Consecutive failures after which a node is demoted during candidate
/// selection: it drops behind every healthier node in a key's failover
/// sequence (still tried as a last resort) until one success resets the
/// streak and restores its ring position.
const SKIP_AFTER: u64 = 3;

/// Tuning for a [`FleetClient`].
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Configuration handed to every per-shard [`Client`].
    pub client: ClientConfig,
    /// Virtual nodes per shard address. More points smooth the arc sizes
    /// (64 keeps the max/min owned-share ratio close to 1 for small
    /// fleets); fewer make ring construction cheaper.
    pub vnodes: usize,
    /// Maximum *additional* nodes tried after the owner on retryable
    /// failures. `None` tries every node once before giving up.
    pub failover: Option<usize>,
    /// Seed for rids assigned to requests submitted without one: the
    /// `i`-th assigned rid is `RequestId::derive(rid_seed, i)`, so a test
    /// or bench can predict every id it will issue. Vary the seed per
    /// fleet client to keep streams disjoint.
    pub rid_seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            client: ClientConfig::default(),
            vnodes: 64,
            failover: None,
            rid_seed: 0,
        }
    }
}

/// A deterministic consistent-hash ring over shard addresses.
///
/// Construction is pure: the point set depends only on the address strings
/// and the vnode count, never on insertion order, process, or time — the
/// property that lets every client in a fleet agree on routing without
/// coordination.
#[derive(Clone, Debug)]
pub struct HashRing {
    nodes: Vec<String>,
    /// `(point, node index)` sorted by point; lookup is a binary search.
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// Builds a ring with `vnodes` points per address.
    ///
    /// # Panics
    ///
    /// Panics on an empty address list or zero vnodes — an unroutable ring
    /// is a configuration error, not a runtime condition.
    pub fn new(addrs: &[String], vnodes: usize) -> HashRing {
        assert!(!addrs.is_empty(), "a ring needs at least one node");
        assert!(vnodes > 0, "a node needs at least one point");
        let nodes: Vec<String> = addrs.to_vec();
        let mut points = Vec::with_capacity(nodes.len() * vnodes);
        for (idx, addr) in nodes.iter().enumerate() {
            for replica in 0..vnodes {
                points.push((Self::point(addr, replica), idx as u32));
            }
        }
        // Sort by point; break the (astronomically unlikely) point
        // collision by node index so construction stays order-independent.
        points.sort_unstable();
        HashRing { nodes, points }
    }

    /// One ring point: the FNV-1a stream over the address and the replica
    /// index — the same construction [`InstanceDigest`] uses for cache
    /// keys, so the two hash spaces mix identically.
    fn point(addr: &str, replica: usize) -> u64 {
        InstanceDigest::new()
            .write_str(addr)
            .write_usize(replica)
            .finish()
    }

    /// The shard addresses, in construction order (node indices returned
    /// by [`node_for`](Self::node_for) index into this slice).
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Number of distinct shards on the ring.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` only for a ring that cannot exist (construction panics on
    /// empty input); present for clippy's `len_without_is_empty`.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Index of the first point at or clockwise-after `key`, wrapping.
    fn first_point(&self, key: u64) -> usize {
        match self.points.binary_search(&(key, 0)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0,
            Err(i) => i,
        }
    }

    /// The node that owns `key` (an [`InstanceDigest`] value).
    pub fn node_for(&self, key: u64) -> usize {
        self.points[self.first_point(key)].1 as usize
    }

    /// All distinct nodes in ring order starting at `key`'s owner — the
    /// failover sequence: owner first, then each subsequent node the key
    /// would route to if everything before it were removed.
    pub fn sequence(&self, key: u64) -> Vec<usize> {
        let start = self.first_point(key);
        let mut seen = vec![false; self.nodes.len()];
        let mut order = Vec::with_capacity(self.nodes.len());
        for i in 0..self.points.len() {
            let idx = self.points[(start + i) % self.points.len()].1 as usize;
            if !seen[idx] {
                seen[idx] = true;
                order.push(idx);
                if order.len() == self.nodes.len() {
                    break;
                }
            }
        }
        order
    }

    /// Nodes ordered by their first point on the ring — the canonical
    /// "ring order" used (reversed) by [`FleetClient::drain`].
    pub fn ring_order(&self) -> Vec<usize> {
        let mut seen = vec![false; self.nodes.len()];
        let mut order = Vec::with_capacity(self.nodes.len());
        for &(_, idx) in &self.points {
            let idx = idx as usize;
            if !seen[idx] {
                seen[idx] = true;
                order.push(idx);
            }
        }
        order
    }
}

/// Per-node request accounting, updated on every exchange the fleet client
/// makes (MAP, MAP_BATCH sub-batches, STATS probes).
#[derive(Clone, Debug, Default)]
pub struct NodeHealth {
    /// Exchanges attempted against this node.
    pub requests: u64,
    /// Exchanges that failed (after the inner client's own retries).
    pub failures: u64,
    /// Failures since the last success; reset to zero by any success.
    pub consecutive_failures: u64,
    /// Kind of the most recent failure, if any.
    pub last_error: Option<ErrorKind>,
}

/// A request the whole fleet could not serve: the terminal failure, or the
/// last retryable one after every eligible node was tried.
#[derive(Clone, Debug)]
pub struct FleetError {
    /// Classification of the failure that ended the attempt.
    pub kind: ErrorKind,
    /// Detail from the last node tried.
    pub message: String,
    /// Addresses tried, in ring order (one entry for a terminal failure —
    /// terminal errors never fail over).
    pub nodes_tried: Vec<String>,
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} after trying {} node{} [{}]: {}",
            self.kind,
            self.nodes_tried.len(),
            if self.nodes_tried.len() == 1 { "" } else { "s" },
            self.nodes_tried.join(", "),
            self.message
        )
    }
}

impl std::error::Error for FleetError {}

/// One attempt in a request's client-side hop timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HopAttempt {
    /// Address the attempt went to.
    pub node: String,
    /// `None` when the hop succeeded; otherwise the failure kind that
    /// pushed the request to the next ring node (or ended it).
    pub error: Option<ErrorKind>,
    /// Wall-clock duration of the exchange in microseconds, including the
    /// inner client's own retries and backoff.
    pub elapsed_us: u64,
}

struct NodeState {
    addr: String,
    client: Option<Client>,
    health: NodeHealth,
}

/// One STATS fan-out folded into a fleet-wide view.
struct MergedStats {
    nodes: usize,
    reachable: usize,
    counters: [(&'static str, u64); 8],
    queue_depth: u64,
    workers: u64,
    latency: Histogram,
    queue_wait: Histogram,
}

impl MergedStats {
    fn new(nodes: usize) -> MergedStats {
        MergedStats {
            nodes,
            reachable: 0,
            counters: [
                ("submitted", 0),
                ("served", 0),
                ("cache_hits", 0),
                ("rejected", 0),
                ("bad_requests", 0),
                ("batched", 0),
                ("batch_items", 0),
                ("faults", 0),
            ],
            queue_depth: 0,
            workers: 0,
            latency: Histogram::new(),
            queue_wait: Histogram::new(),
        }
    }
}

/// Rebuilds a mergeable [`Histogram`] from the `{count, ..., sum_us,
/// buckets}` object a daemon's STATS reply carries.
fn hist_from_value(v: &Value) -> Option<Histogram> {
    let buckets = v.get("buckets")?.as_array()?;
    let counts: Vec<u64> = buckets.iter().filter_map(Value::as_u64).collect();
    let sum = v.get("sum_us").and_then(Value::as_u64).unwrap_or(0);
    let max = v.get("max_us").and_then(Value::as_u64).unwrap_or(0);
    Some(Histogram::from_parts(&counts, sum, max))
}

/// Renders a histogram in the same JSON shape a single daemon's STATS
/// reply uses, so merged and per-node views stay drop-in compatible.
fn hist_object(h: &Histogram) -> Value {
    let buckets = h
        .bucket_counts()
        .iter()
        .map(|&n| Value::Number(n as f64))
        .collect();
    ObjectBuilder::new()
        .field("count", Value::Number(h.count() as f64))
        .field("p50_us", Value::Number(h.percentile(50.0) as f64))
        .field("p95_us", Value::Number(h.percentile(95.0) as f64))
        .field("p99_us", Value::Number(h.percentile(99.0) as f64))
        .field("max_us", Value::Number(h.max() as f64))
        .field("sum_us", Value::Number(h.sum() as f64))
        .field("buckets", Value::Array(buckets))
        .build()
}

/// A client for a fleet of `hcs-service` shards: consistent-hash routing
/// keyed on the request digest, lazy per-shard connections, retryable-only
/// failover, reverse-ring-order drain.
pub struct FleetClient {
    ring: HashRing,
    nodes: Vec<NodeState>,
    config: FleetConfig,
    /// Counter behind [`FleetConfig::rid_seed`]-derived rid assignment.
    rid_counter: u64,
    /// Bounded per-rid hop timelines (FIFO eviction at [`HOP_CAPACITY`]).
    hops: BTreeMap<u64, Vec<HopAttempt>>,
    hop_order: VecDeque<u64>,
}

impl FleetClient {
    /// A fleet client over `addrs` with default [`FleetConfig`].
    pub fn new(addrs: &[String]) -> FleetClient {
        FleetClient::with_config(addrs, FleetConfig::default())
    }

    /// A fleet client with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics on an empty address list (see [`HashRing::new`]).
    pub fn with_config(addrs: &[String], config: FleetConfig) -> FleetClient {
        let ring = HashRing::new(addrs, config.vnodes);
        let nodes = ring
            .nodes()
            .iter()
            .map(|addr| NodeState {
                addr: addr.clone(),
                client: None,
                health: NodeHealth::default(),
            })
            .collect();
        FleetClient {
            ring,
            nodes,
            config,
            rid_counter: 0,
            hops: BTreeMap::new(),
            hop_order: VecDeque::new(),
        }
    }

    /// The routing ring (read-only; the node set is fixed at construction).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The address `request` routes to — the ring owner of its digest.
    pub fn node_for(&self, request: &MapRequest) -> &str {
        &self.ring.nodes()[self.ring.node_for(request.digest())]
    }

    /// Per-node health counters, in ring construction order.
    pub fn health(&self) -> Vec<(String, NodeHealth)> {
        self.nodes
            .iter()
            .map(|n| (n.addr.clone(), n.health.clone()))
            .collect()
    }

    /// How many nodes a request may be sent to: the owner plus the
    /// configured failover budget.
    fn tries_for(&self, sequence_len: usize) -> usize {
        match self.config.failover {
            Some(extra) => sequence_len.min(1 + extra),
            None => sequence_len,
        }
    }

    /// The lazily-created client for node `idx`. Connection happens on the
    /// first exchange, inside the inner client.
    fn client_at(&mut self, idx: usize) -> &mut Client {
        let node = &mut self.nodes[idx];
        node.client.get_or_insert_with(|| {
            // Decorrelate the jitter streams so the shards of one fleet
            // client do not back off in lockstep.
            let mut config = self.config.client.clone();
            config.jitter_seed = config.jitter_seed.wrapping_add(idx as u64);
            Client::with_config(node.addr.clone(), config)
        })
    }

    /// `sequence` reordered by health: nodes whose consecutive-failure
    /// streak is under [`SKIP_AFTER`] keep their ring order up front;
    /// nodes at or past it are appended behind them (ring order among
    /// themselves) as a last resort, so a fleet whose every node is
    /// flapping still tries them all rather than failing without a
    /// request. Health is read at call time — one success anywhere resets
    /// that node's streak and restores its normal position on the next
    /// request.
    fn route_order(&self, sequence: &[usize]) -> Vec<usize> {
        let healthy = |&i: &usize| self.nodes[i].health.consecutive_failures < SKIP_AFTER;
        let mut order: Vec<usize> = sequence.iter().copied().filter(healthy).collect();
        order.extend(sequence.iter().copied().filter(|i| !healthy(i)));
        order
    }

    fn record_ok(&mut self, idx: usize) {
        let h = &mut self.nodes[idx].health;
        h.requests += 1;
        h.consecutive_failures = 0;
    }

    fn record_err(&mut self, idx: usize, kind: ErrorKind) {
        let h = &mut self.nodes[idx].health;
        h.requests += 1;
        h.failures += 1;
        h.consecutive_failures += 1;
        h.last_error = Some(kind);
    }

    /// The rid this request travels under: its own, or the next one in
    /// the client's deterministic assignment stream.
    fn rid_for(&mut self, request: &MapRequest) -> u64 {
        request.rid.unwrap_or_else(|| {
            let n = self.rid_counter;
            self.rid_counter += 1;
            RequestId::derive(self.config.rid_seed, n).0
        })
    }

    /// Appends one attempt to `rid`'s hop timeline, evicting the oldest
    /// rid's timeline once [`HOP_CAPACITY`] distinct rids are tracked.
    fn record_hop(&mut self, rid: u64, node: usize, error: Option<ErrorKind>, elapsed_us: u64) {
        let attempt = HopAttempt {
            node: self.nodes[node].addr.clone(),
            error,
            elapsed_us,
        };
        if let Some(timeline) = self.hops.get_mut(&rid) {
            timeline.push(attempt);
            return;
        }
        while self.hop_order.len() >= HOP_CAPACITY {
            if let Some(evicted) = self.hop_order.pop_front() {
                self.hops.remove(&evicted);
            }
        }
        self.hop_order.push_back(rid);
        self.hops.insert(rid, vec![attempt]);
    }

    /// The recorded hop timeline for `rid`, if still retained.
    pub fn hops(&self, rid: u64) -> Option<&[HopAttempt]> {
        self.hops.get(&rid).map(Vec::as_slice)
    }

    /// Maps one instance through the fleet: send to the digest's owner,
    /// hop to the next ring node only while failures stay retryable.
    /// Candidates are health-ordered first (see [`SKIP_AFTER`]): a node
    /// that has failed three or more exchanges in a row is skipped ahead
    /// of — demoted behind — every healthier node until a success resets
    /// its streak. Every attempt is recorded in the request's hop
    /// timeline under its rid (assigned here when the request carries
    /// none).
    pub fn map(&mut self, request: &MapRequest) -> Result<MapReply, FleetError> {
        let rid = self.rid_for(request);
        let mut request = request.clone();
        request.rid = Some(rid);
        let sequence = self.route_order(&self.ring.sequence(request.digest()));
        let tries = self.tries_for(sequence.len());
        let mut tried = Vec::new();
        let mut last: Option<(ErrorKind, String)> = None;
        for &idx in &sequence[..tries] {
            let start = Instant::now();
            let outcome = self.client_at(idx).map(&request);
            let elapsed_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            match outcome {
                Ok(reply) => {
                    self.record_ok(idx);
                    self.record_hop(rid, idx, None, elapsed_us);
                    return Ok(reply);
                }
                Err(e) => {
                    self.record_err(idx, e.kind);
                    self.record_hop(rid, idx, Some(e.kind), elapsed_us);
                    tried.push(self.nodes[idx].addr.clone());
                    if e.kind.retryable() {
                        last = Some((e.kind, e.message));
                    } else {
                        return Err(FleetError {
                            kind: e.kind,
                            message: e.message,
                            nodes_tried: tried,
                        });
                    }
                }
            }
        }
        let (kind, message) =
            last.unwrap_or((ErrorKind::Connect, "fleet has no nodes to try".into()));
        Err(FleetError {
            kind,
            message,
            nodes_tried: tried,
        })
    }

    /// Maps many instances, grouping them into one MAP_BATCH sub-batch per
    /// target shard and re-grouping retryable failures onto each item's
    /// next ring node. Returns one result per input, in input order.
    /// Items are stamped with rids up front (assigned when absent); each
    /// sub-batch exchange is recorded in every member item's hop timeline.
    pub fn map_batch(&mut self, requests: &[MapRequest]) -> Vec<Result<MapReply, FleetError>> {
        let requests: Vec<MapRequest> = requests
            .iter()
            .map(|r| {
                let rid = self.rid_for(r);
                let mut r = r.clone();
                r.rid = Some(rid);
                r
            })
            .collect();
        let rids: Vec<u64> = requests
            .iter()
            .map(|r| r.rid.expect("stamped above"))
            .collect();
        let n = requests.len();
        let mut results: Vec<Option<Result<MapReply, FleetError>>> = (0..n).map(|_| None).collect();
        let sequences: Vec<Vec<usize>> = requests
            .iter()
            .map(|r| self.route_order(&self.ring.sequence(r.digest())))
            .collect();
        let mut position = vec![0usize; n];
        let mut tried: Vec<Vec<String>> = vec![Vec::new(); n];
        let mut last: Vec<Option<(ErrorKind, String)>> = vec![None; n];

        loop {
            // Group unresolved items by their current target node; items
            // whose failover budget is spent resolve to their last error.
            let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for i in 0..n {
                if results[i].is_some() {
                    continue;
                }
                if position[i] >= self.tries_for(sequences[i].len()) {
                    let (kind, message) = last[i]
                        .take()
                        .unwrap_or((ErrorKind::Connect, "fleet has no nodes to try".into()));
                    results[i] = Some(Err(FleetError {
                        kind,
                        message,
                        nodes_tried: std::mem::take(&mut tried[i]),
                    }));
                    continue;
                }
                groups.entry(sequences[i][position[i]]).or_default().push(i);
            }
            if groups.is_empty() {
                break;
            }

            for (node, items) in groups {
                let addr = self.nodes[node].addr.clone();
                let subset: Vec<MapRequest> = items.iter().map(|&i| requests[i].clone()).collect();
                let start = Instant::now();
                let outcome = self.client_at(node).map_batch(&subset);
                // One exchange served the whole sub-batch, so its members
                // share the hop's elapsed time.
                let elapsed_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                match outcome {
                    Ok(per_item) => {
                        for (&i, item) in items.iter().zip(per_item) {
                            match item {
                                Ok(reply) => {
                                    self.record_ok(node);
                                    self.record_hop(rids[i], node, None, elapsed_us);
                                    results[i] = Some(Ok(reply));
                                }
                                Err(e) if e.kind.retryable() => {
                                    self.record_err(node, e.kind);
                                    self.record_hop(rids[i], node, Some(e.kind), elapsed_us);
                                    tried[i].push(addr.clone());
                                    last[i] = Some((e.kind, e.message));
                                    position[i] += 1;
                                }
                                Err(e) => {
                                    self.record_err(node, e.kind);
                                    self.record_hop(rids[i], node, Some(e.kind), elapsed_us);
                                    tried[i].push(addr.clone());
                                    results[i] = Some(Err(FleetError {
                                        kind: e.kind,
                                        message: e.message,
                                        nodes_tried: std::mem::take(&mut tried[i]),
                                    }));
                                }
                            }
                        }
                    }
                    // The exchange itself failed against this node; every
                    // item in the sub-batch shares the outcome.
                    Err(e) => {
                        let retryable = e.kind.retryable();
                        for &i in &items {
                            self.record_err(node, e.kind);
                            self.record_hop(rids[i], node, Some(e.kind), elapsed_us);
                            tried[i].push(addr.clone());
                            if retryable {
                                last[i] = Some((e.kind, e.message.clone()));
                                position[i] += 1;
                            } else {
                                results[i] = Some(Err(FleetError {
                                    kind: e.kind,
                                    message: e.message.clone(),
                                    nodes_tried: std::mem::take(&mut tried[i]),
                                }));
                            }
                        }
                    }
                }
            }
        }

        results
            .into_iter()
            .map(|r| r.expect("every slot resolved"))
            .collect()
    }

    /// Fetches STATS from every node (ring construction order), updating
    /// each node's health counters — the fleet-level health probe.
    pub fn stats(&mut self) -> Vec<(String, Result<Value, ClientError>)> {
        (0..self.nodes.len())
            .map(|idx| {
                let result = self.client_at(idx).stats();
                match &result {
                    Ok(_) => self.record_ok(idx),
                    Err(e) => self.record_err(idx, e.kind),
                }
                (self.nodes[idx].addr.clone(), result)
            })
            .collect()
    }

    /// Fetches the Prometheus exposition from every node.
    pub fn metrics(&mut self) -> Vec<(String, Result<String, ClientError>)> {
        (0..self.nodes.len())
            .map(|idx| {
                let result = self.client_at(idx).metrics();
                match &result {
                    Ok(_) => self.record_ok(idx),
                    Err(e) => self.record_err(idx, e.kind),
                }
                (self.nodes[idx].addr.clone(), result)
            })
            .collect()
    }

    /// Reconstructs one request's end-to-end timeline as a JSON object:
    /// this client's recorded hop attempts (`"hops"`), plus each node's
    /// rid-filtered `TRACE` reply (`"nodes"`, one entry per node that
    /// still holds events or spans for the rid). Unreachable nodes are
    /// skipped (and counted against their health), so a partial fleet
    /// still yields the surviving half of the timeline.
    pub fn trace(&mut self, rid: u64) -> Value {
        let hops = Value::Array(
            self.hops(rid)
                .unwrap_or(&[])
                .iter()
                .map(|h| {
                    let mut b = ObjectBuilder::new()
                        .field("node", Value::String(h.node.clone()))
                        .field("elapsed_us", Value::Number(h.elapsed_us as f64));
                    b = match h.error {
                        Some(kind) => b.field("error", Value::String(format!("{kind:?}"))),
                        None => b.field("ok", Value::Bool(true)),
                    };
                    b.build()
                })
                .collect(),
        );
        let mut nodes = Vec::new();
        for idx in 0..self.nodes.len() {
            let result = self.client_at(idx).trace(Some(rid));
            match result {
                Ok(reply) => {
                    self.record_ok(idx);
                    let events = reply.get("events").cloned().unwrap_or(Value::Array(vec![]));
                    let spans = reply.get("spans").cloned().unwrap_or(Value::Array(vec![]));
                    let empty = |v: &Value| matches!(v.as_array(), Some([]) | None);
                    if empty(&events) && empty(&spans) {
                        continue;
                    }
                    nodes.push(
                        ObjectBuilder::new()
                            .field("node", Value::String(self.nodes[idx].addr.clone()))
                            .field("events", events)
                            .field("spans", spans)
                            .build(),
                    );
                }
                Err(e) => self.record_err(idx, e.kind),
            }
        }
        ObjectBuilder::new()
            .field("rid", Value::String(RequestId(rid).to_hex()))
            .field("hops", hops)
            .field("nodes", Value::Array(nodes))
            .build()
    }

    /// Fetches STATS from every node and folds them into one fleet view:
    /// summed counters and workers, max queue depth, and latency /
    /// queue-wait distributions merged bucket-wise so the percentiles are
    /// those of the *fleet* histogram. `"nodes"` counts the fleet;
    /// `"reachable"` how many answered this probe.
    pub fn stats_merged(&mut self) -> Value {
        let merged = self.merged_view();
        let mut b = ObjectBuilder::new()
            .field("nodes", Value::Number(merged.nodes as f64))
            .field("reachable", Value::Number(merged.reachable as f64));
        for (key, total) in merged.counters {
            b = b.field(key, Value::Number(total as f64));
        }
        b.field("queue_depth", Value::Number(merged.queue_depth as f64))
            .field("workers", Value::Number(merged.workers as f64))
            .field("latency", hist_object(&merged.latency))
            .field("queue_wait", hist_object(&merged.queue_wait))
            .build()
    }

    /// Renders the merged fleet view in Prometheus text exposition format:
    /// the same counter/gauge/histogram families a single daemon exposes
    /// (folded across nodes), plus one `hcs_fleet_node_health` gauge per
    /// node — 1 when the node's last exchange succeeded (no consecutive
    /// failures), 0 otherwise. Health is sampled *before* this call's own
    /// STATS probe, so the gauge reports the request-path state (a node
    /// that faults MAPs but answers STATS still scores 0).
    pub fn metrics_merged(&mut self) -> String {
        let health: Vec<(String, bool)> = self
            .nodes
            .iter()
            .map(|n| (n.addr.clone(), n.health.consecutive_failures == 0))
            .collect();
        let merged = self.merged_view();
        let registry = Registry::new();
        registry
            .gauge("hcs_fleet_nodes", "Nodes configured in the fleet.")
            .set(merged.nodes as u64);
        registry
            .gauge(
                "hcs_fleet_reachable",
                "Nodes that answered the last merged STATS probe.",
            )
            .set(merged.reachable as u64);
        for (key, total) in merged.counters {
            let name = match key {
                "submitted" => "hcs_requests_submitted_total",
                "served" => "hcs_requests_served_total",
                "cache_hits" => "hcs_cache_hits_total",
                "rejected" => "hcs_requests_rejected_total",
                "bad_requests" => "hcs_bad_requests_total",
                "batched" => "hcs_batch_requests_total",
                "batch_items" => "hcs_batch_items_total",
                _ => "hcs_faults_injected_total",
            };
            registry
                .counter(name, "Summed across fleet nodes.")
                .add(total);
        }
        registry
            .gauge("hcs_queue_depth", "Deepest per-node queue at probe time.")
            .set(merged.queue_depth);
        registry
            .gauge("hcs_workers", "Worker threads across the fleet.")
            .set(merged.workers);
        registry
            .histogram(
                "hcs_request_latency_us",
                "End-to-end request latency, merged across fleet nodes.",
            )
            .merge(&merged.latency);
        registry
            .histogram(
                "hcs_queue_wait_us",
                "Queue wait before a worker pickup, merged across fleet nodes.",
            )
            .merge(&merged.queue_wait);
        for (addr, healthy) in &health {
            registry
                .gauge_with(
                    "hcs_fleet_node_health",
                    "1 when the node's most recent exchange succeeded, else 0.",
                    &[("node", addr)],
                )
                .set(u64::from(*healthy));
        }
        registry.prometheus_text()
    }

    /// The per-node health ledger as a JSON array (one object per node, in
    /// ring construction order): request/failure counts, the consecutive-
    /// failure streak, the last error kind, and the derived `healthy` bit
    /// that also backs the `hcs_fleet_node_health` gauge.
    pub fn health_snapshot(&self) -> Value {
        Value::Array(
            self.nodes
                .iter()
                .map(|n| {
                    let mut b = ObjectBuilder::new()
                        .field("node", Value::String(n.addr.clone()))
                        .field("requests", Value::Number(n.health.requests as f64))
                        .field("failures", Value::Number(n.health.failures as f64))
                        .field(
                            "consecutive_failures",
                            Value::Number(n.health.consecutive_failures as f64),
                        )
                        .field("healthy", Value::Bool(n.health.consecutive_failures == 0));
                    if let Some(kind) = n.health.last_error {
                        b = b.field("last_error", Value::String(format!("{kind:?}")));
                    }
                    b.build()
                })
                .collect(),
        )
    }

    /// One STATS fan-out, folded. Unreachable nodes contribute nothing
    /// (their health records the failure).
    fn merged_view(&mut self) -> MergedStats {
        let mut merged = MergedStats::new(self.nodes.len());
        for (_, result) in self.stats() {
            let Ok(stats) = result else { continue };
            merged.reachable += 1;
            for (key, total) in merged.counters.iter_mut() {
                *total += stats.get(key).and_then(Value::as_u64).unwrap_or(0);
            }
            let depth = stats
                .get("queue_depth")
                .and_then(Value::as_u64)
                .unwrap_or(0);
            merged.queue_depth = merged.queue_depth.max(depth);
            merged.workers += stats.get("workers").and_then(Value::as_u64).unwrap_or(0);
            if let Some(h) = stats.get("latency").and_then(hist_from_value) {
                merged.latency.merge(&h);
            }
            if let Some(h) = stats.get("queue_wait").and_then(hist_from_value) {
                merged.queue_wait.merge(&h);
            }
        }
        merged
    }

    /// Shuts the fleet down: per-node SHUTDOWN in **reverse ring order**,
    /// so the node owning the lowest arc — the first stop for wrapped
    /// lookups — drains last. Returns per-node outcomes in the order the
    /// shutdowns were sent.
    pub fn drain(&mut self) -> Vec<(String, Result<(), ClientError>)> {
        let mut order = self.ring.ring_order();
        order.reverse();
        order
            .into_iter()
            .map(|idx| {
                let result = self.client_at(idx).shutdown();
                (self.nodes[idx].addr.clone(), result)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7077")).collect()
    }

    /// A deterministic stream of well-spread keys (the splitmix64
    /// finalizer over a counter).
    fn keys(count: usize) -> impl Iterator<Item = u64> {
        (0..count as u64).map(crate::splitmix64)
    }

    #[test]
    fn same_nodes_same_ring_same_owner_for_every_key() {
        let a = HashRing::new(&addrs(8), 64);
        let b = HashRing::new(&addrs(8), 64);
        for key in keys(4096) {
            assert_eq!(a.node_for(key), b.node_for(key));
        }
    }

    #[test]
    fn vnodes_spread_ownership_across_all_nodes() {
        let ring = HashRing::new(&addrs(8), 64);
        let mut owned = vec![0usize; 8];
        let total = 8192;
        for key in keys(total) {
            owned[ring.node_for(key)] += 1;
        }
        let expected = total / 8;
        for (node, &count) in owned.iter().enumerate() {
            assert!(
                count > expected / 4,
                "node {node} owns {count} of {total} keys — ring badly unbalanced: {owned:?}"
            );
        }
    }

    #[test]
    fn removing_one_node_remaps_only_its_own_keys() {
        for n in [2usize, 4, 8, 16] {
            let full = HashRing::new(&addrs(n), 64);
            let removed = n - 1;
            let survivors: Vec<String> = addrs(n)
                .into_iter()
                .enumerate()
                .filter(|&(i, _)| i != removed)
                .map(|(_, a)| a)
                .collect();
            let shrunk = HashRing::new(&survivors, 64);

            let total = 4096;
            let mut moved = 0usize;
            for key in keys(total) {
                let before = &full.nodes()[full.node_for(key)];
                let after = &shrunk.nodes()[shrunk.node_for(key)];
                if before == after {
                    continue;
                }
                moved += 1;
                // Only keys the removed node owned may move.
                assert_eq!(
                    before,
                    &full.nodes()[removed],
                    "key {key:#x} moved off a surviving node at n={n}"
                );
            }
            let fraction = moved as f64 / total as f64;
            // ~1/n of the keyspace, with slack for vnode unevenness.
            assert!(
                fraction < 2.5 / n as f64,
                "n={n}: {fraction:.3} of keys remapped, expected ~{:.3}",
                1.0 / n as f64
            );
            assert!(fraction > 0.0, "n={n}: the removed node owned nothing");
        }
    }

    #[test]
    fn sequence_starts_at_owner_and_visits_every_node_once() {
        let ring = HashRing::new(&addrs(8), 64);
        for key in keys(256) {
            let seq = ring.sequence(key);
            assert_eq!(seq[0], ring.node_for(key));
            let mut sorted = seq.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn failover_target_matches_the_shrunk_ring() {
        // The second node in a key's sequence is exactly where the key
        // routes if the owner disappears — the property that makes
        // failover cache-friendly.
        let all = addrs(4);
        let ring = HashRing::new(&all, 64);
        for key in keys(512) {
            let seq = ring.sequence(key);
            let survivors: Vec<String> = all
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != seq[0])
                .map(|(_, a)| a.clone())
                .collect();
            let shrunk = HashRing::new(&survivors, 64);
            assert_eq!(
                &survivors[shrunk.node_for(key)],
                &all[seq[1]],
                "key {key:#x}"
            );
        }
    }

    #[test]
    fn ring_order_is_a_permutation_and_deterministic() {
        let ring = HashRing::new(&addrs(8), 64);
        let order = ring.ring_order();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        assert_eq!(order, HashRing::new(&addrs(8), 64).ring_order());
    }

    #[test]
    fn fleet_error_display_names_the_kind_and_the_nodes() {
        let err = FleetError {
            kind: ErrorKind::Connect,
            message: "connection refused".into(),
            nodes_tried: vec!["a:1".into(), "b:2".into()],
        };
        let text = err.to_string();
        assert!(text.contains("Connect"), "{text}");
        assert!(text.contains("2 nodes"), "{text}");
        assert!(text.contains("a:1, b:2"), "{text}");
    }

    #[test]
    fn node_for_request_agrees_with_the_ring() {
        use hcs_core::{EtcMatrix, Scenario};
        let client = FleetClient::new(&addrs(4));
        let request = MapRequest {
            scenario: Scenario::with_zero_ready(
                EtcMatrix::from_rows(&[vec![2.0, 6.0], vec![3.0, 4.0]]).unwrap(),
            ),
            heuristic: "Min-Min".into(),
            random_ties: None,
            iterative: true,
            guard: false,
            sleep_ms: 0,
            rid: None,
        };
        let expected = &client.ring().nodes()[client.ring().node_for(request.digest())];
        assert_eq!(client.node_for(&request), expected);
    }

    #[test]
    fn rid_assignment_is_deterministic_and_respects_the_request() {
        let mut a = FleetClient::new(&addrs(2));
        let mut b = FleetClient::new(&addrs(2));
        let blank = MapRequest {
            scenario: hcs_core::Scenario::with_zero_ready(
                hcs_core::EtcMatrix::from_rows(&[vec![2.0, 6.0], vec![3.0, 4.0]]).unwrap(),
            ),
            heuristic: "mct".into(),
            random_ties: None,
            iterative: false,
            guard: false,
            sleep_ms: 0,
            rid: None,
        };
        // Same seed, same position in the stream, same rid — and never 0.
        let first = a.rid_for(&blank);
        assert_eq!(first, b.rid_for(&blank));
        assert_ne!(first, 0);
        let second = a.rid_for(&blank);
        assert_ne!(second, first, "stream must advance");
        assert_eq!(second, b.rid_for(&blank));

        // A client-supplied rid passes through and does not consume the
        // stream.
        let mut tagged = blank.clone();
        tagged.rid = Some(0x2a);
        assert_eq!(a.rid_for(&tagged), 0x2a);
        assert_eq!(a.rid_for(&blank), b.rid_for(&blank));
    }

    #[test]
    fn hop_timelines_append_and_evict_fifo_at_capacity() {
        let mut fleet = FleetClient::new(&addrs(2));
        fleet.record_hop(1, 0, Some(ErrorKind::Connect), 10);
        fleet.record_hop(1, 1, None, 20);
        let hops = fleet.hops(1).expect("rid 1 tracked");
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0].error, Some(ErrorKind::Connect));
        assert_eq!(hops[1].error, None);
        assert_eq!(hops[1].elapsed_us, 20);

        // Fill to capacity with fresh rids: the oldest (rid 1) evicts
        // first, newer rids survive.
        for rid in 2..(2 + HOP_CAPACITY as u64) {
            fleet.record_hop(rid, 0, None, 1);
        }
        assert!(fleet.hops(1).is_none(), "oldest rid should evict");
        assert!(fleet.hops(2).is_some());
        assert!(fleet.hops(1 + HOP_CAPACITY as u64).is_some());
    }

    #[test]
    fn health_snapshot_reports_per_node_state() {
        let mut fleet = FleetClient::new(&addrs(2));
        fleet.record_ok(0);
        fleet.record_err(1, ErrorKind::Connect);
        let snapshot = fleet.health_snapshot();
        let nodes = snapshot.as_array().expect("array");
        assert_eq!(nodes.len(), 2);
        let by_addr = |addr: &str| {
            nodes
                .iter()
                .find(|n| n.get("node").and_then(Value::as_str) == Some(addr))
                .expect("node present")
        };
        let ok = by_addr(&fleet.nodes[0].addr);
        assert_eq!(ok.get("healthy"), Some(&Value::Bool(true)));
        assert_eq!(ok.get("requests").and_then(Value::as_u64), Some(1));
        assert!(ok.get("last_error").is_none());
        let bad = by_addr(&fleet.nodes[1].addr);
        assert_eq!(bad.get("healthy"), Some(&Value::Bool(false)));
        assert_eq!(bad.get("failures").and_then(Value::as_u64), Some(1));
        assert_eq!(
            bad.get("last_error").and_then(Value::as_str),
            Some("Connect")
        );
    }

    #[test]
    fn route_order_bypasses_a_flapping_node_and_restores_it_on_success() {
        let mut fleet = FleetClient::new(&addrs(3));
        let seq = vec![0, 1, 2];
        assert_eq!(fleet.route_order(&seq), vec![0, 1, 2]);
        // Under the threshold the streak changes nothing: the owner is
        // still tried first.
        fleet.record_err(0, ErrorKind::Connect);
        fleet.record_err(0, ErrorKind::Deadline);
        assert_eq!(fleet.route_order(&seq), vec![0, 1, 2]);
        // The third consecutive failure demotes the flapping owner to
        // last resort — candidates now start at the next ring node.
        fleet.record_err(0, ErrorKind::Connect);
        assert_eq!(fleet.route_order(&seq), vec![1, 2, 0]);
        // The demotion is per-key-sequence, not a global mask: another
        // key whose owner is healthy keeps its own order.
        assert_eq!(fleet.route_order(&[2, 0, 1]), vec![2, 1, 0]);
        // One success resets the streak and restores ring position.
        fleet.record_ok(0);
        assert_eq!(fleet.route_order(&seq), vec![0, 1, 2]);
        // A fully flapping fleet degrades to plain ring order rather
        // than refusing to route.
        for idx in 0..3 {
            for _ in 0..SKIP_AFTER {
                fleet.record_err(idx, ErrorKind::Connect);
            }
        }
        assert_eq!(fleet.route_order(&seq), vec![0, 1, 2]);
    }

    #[test]
    fn histogram_objects_round_trip_through_the_wire_shape() {
        let h = Histogram::new();
        for v in [1u64, 3, 3, 9, 100] {
            h.record_value(v);
        }
        let rebuilt = hist_from_value(&hist_object(&h)).expect("well-formed");
        assert_eq!(rebuilt.count(), h.count());
        assert_eq!(rebuilt.sum(), h.sum());
        assert_eq!(rebuilt.max(), h.max());
        assert_eq!(rebuilt.percentile(95.0), h.percentile(95.0));

        // Merging two rebuilt histograms folds both sample sets.
        let other = Histogram::new();
        other.record_value(50);
        rebuilt.merge(&other);
        assert_eq!(rebuilt.count(), h.count() + 1);
        assert_eq!(rebuilt.sum(), h.sum() + 50);
    }
}
