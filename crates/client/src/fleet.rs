//! Fleet-aware client: consistent-hash routing over a set of `hcs-service`
//! shards.
//!
//! One daemon is a scaling ceiling; a fleet of daemons is only useful if
//! requests route *stably* — the digest cache inside each shard is keyed on
//! [`InstanceDigest`], so cache locality falls out of routing exactly when
//! the same digest always lands on the same shard. This module provides
//! that:
//!
//! * [`HashRing`] — a deterministic consistent-hash ring over shard
//!   addresses. Each node contributes `vnodes` points (hashed with the same
//!   FNV-1a construction as [`InstanceDigest`]); a request's digest owns
//!   the first point clockwise from it. Two rings built from the same
//!   addresses agree on every key, and removing a node only remaps the
//!   keys that node owned (~`1/N` of the keyspace) — both properties are
//!   pinned by tests.
//! * [`FleetClient`] — owns one lazily-connected [`Client`] per shard,
//!   routes [`Client::map`]/[`Client::map_batch`] by digest, tracks
//!   per-node health, and **fails over to the next ring node only for
//!   retryable [`ErrorKind`]s**. Terminal errors (protocol breakage, a
//!   deterministic server failure) surface immediately: retrying the same
//!   bytes against a different shard cannot help and would double the
//!   damage. [`FleetClient::drain`] chains per-node SHUTDOWN in reverse
//!   ring order, so the node that owns the lowest arc — the one new
//!   traffic hits first after a wrap — goes down last.
//!
//! The inner [`Client`] already retries transient failures against *its*
//! node with jittered backoff; the fleet layer adds the across-node hop on
//! top. A request therefore survives both a flaky exchange (inner retry)
//! and a dead shard (ring failover) without the caller seeing either.

use std::collections::BTreeMap;
use std::fmt;

use hcs_core::InstanceDigest;
use hcs_service::json::Value;
use hcs_service::protocol::MapRequest;

use crate::{Client, ClientConfig, ClientError, ErrorKind, MapReply};

/// Tuning for a [`FleetClient`].
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Configuration handed to every per-shard [`Client`].
    pub client: ClientConfig,
    /// Virtual nodes per shard address. More points smooth the arc sizes
    /// (64 keeps the max/min owned-share ratio close to 1 for small
    /// fleets); fewer make ring construction cheaper.
    pub vnodes: usize,
    /// Maximum *additional* nodes tried after the owner on retryable
    /// failures. `None` tries every node once before giving up.
    pub failover: Option<usize>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            client: ClientConfig::default(),
            vnodes: 64,
            failover: None,
        }
    }
}

/// A deterministic consistent-hash ring over shard addresses.
///
/// Construction is pure: the point set depends only on the address strings
/// and the vnode count, never on insertion order, process, or time — the
/// property that lets every client in a fleet agree on routing without
/// coordination.
#[derive(Clone, Debug)]
pub struct HashRing {
    nodes: Vec<String>,
    /// `(point, node index)` sorted by point; lookup is a binary search.
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// Builds a ring with `vnodes` points per address.
    ///
    /// # Panics
    ///
    /// Panics on an empty address list or zero vnodes — an unroutable ring
    /// is a configuration error, not a runtime condition.
    pub fn new(addrs: &[String], vnodes: usize) -> HashRing {
        assert!(!addrs.is_empty(), "a ring needs at least one node");
        assert!(vnodes > 0, "a node needs at least one point");
        let nodes: Vec<String> = addrs.to_vec();
        let mut points = Vec::with_capacity(nodes.len() * vnodes);
        for (idx, addr) in nodes.iter().enumerate() {
            for replica in 0..vnodes {
                points.push((Self::point(addr, replica), idx as u32));
            }
        }
        // Sort by point; break the (astronomically unlikely) point
        // collision by node index so construction stays order-independent.
        points.sort_unstable();
        HashRing { nodes, points }
    }

    /// One ring point: the FNV-1a stream over the address and the replica
    /// index — the same construction [`InstanceDigest`] uses for cache
    /// keys, so the two hash spaces mix identically.
    fn point(addr: &str, replica: usize) -> u64 {
        InstanceDigest::new()
            .write_str(addr)
            .write_usize(replica)
            .finish()
    }

    /// The shard addresses, in construction order (node indices returned
    /// by [`node_for`](Self::node_for) index into this slice).
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Number of distinct shards on the ring.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` only for a ring that cannot exist (construction panics on
    /// empty input); present for clippy's `len_without_is_empty`.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Index of the first point at or clockwise-after `key`, wrapping.
    fn first_point(&self, key: u64) -> usize {
        match self.points.binary_search(&(key, 0)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0,
            Err(i) => i,
        }
    }

    /// The node that owns `key` (an [`InstanceDigest`] value).
    pub fn node_for(&self, key: u64) -> usize {
        self.points[self.first_point(key)].1 as usize
    }

    /// All distinct nodes in ring order starting at `key`'s owner — the
    /// failover sequence: owner first, then each subsequent node the key
    /// would route to if everything before it were removed.
    pub fn sequence(&self, key: u64) -> Vec<usize> {
        let start = self.first_point(key);
        let mut seen = vec![false; self.nodes.len()];
        let mut order = Vec::with_capacity(self.nodes.len());
        for i in 0..self.points.len() {
            let idx = self.points[(start + i) % self.points.len()].1 as usize;
            if !seen[idx] {
                seen[idx] = true;
                order.push(idx);
                if order.len() == self.nodes.len() {
                    break;
                }
            }
        }
        order
    }

    /// Nodes ordered by their first point on the ring — the canonical
    /// "ring order" used (reversed) by [`FleetClient::drain`].
    pub fn ring_order(&self) -> Vec<usize> {
        let mut seen = vec![false; self.nodes.len()];
        let mut order = Vec::with_capacity(self.nodes.len());
        for &(_, idx) in &self.points {
            let idx = idx as usize;
            if !seen[idx] {
                seen[idx] = true;
                order.push(idx);
            }
        }
        order
    }
}

/// Per-node request accounting, updated on every exchange the fleet client
/// makes (MAP, MAP_BATCH sub-batches, STATS probes).
#[derive(Clone, Debug, Default)]
pub struct NodeHealth {
    /// Exchanges attempted against this node.
    pub requests: u64,
    /// Exchanges that failed (after the inner client's own retries).
    pub failures: u64,
    /// Failures since the last success; reset to zero by any success.
    pub consecutive_failures: u64,
    /// Kind of the most recent failure, if any.
    pub last_error: Option<ErrorKind>,
}

/// A request the whole fleet could not serve: the terminal failure, or the
/// last retryable one after every eligible node was tried.
#[derive(Clone, Debug)]
pub struct FleetError {
    /// Classification of the failure that ended the attempt.
    pub kind: ErrorKind,
    /// Detail from the last node tried.
    pub message: String,
    /// Addresses tried, in ring order (one entry for a terminal failure —
    /// terminal errors never fail over).
    pub nodes_tried: Vec<String>,
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} after trying {} node{} [{}]: {}",
            self.kind,
            self.nodes_tried.len(),
            if self.nodes_tried.len() == 1 { "" } else { "s" },
            self.nodes_tried.join(", "),
            self.message
        )
    }
}

impl std::error::Error for FleetError {}

struct NodeState {
    addr: String,
    client: Option<Client>,
    health: NodeHealth,
}

/// A client for a fleet of `hcs-service` shards: consistent-hash routing
/// keyed on the request digest, lazy per-shard connections, retryable-only
/// failover, reverse-ring-order drain.
pub struct FleetClient {
    ring: HashRing,
    nodes: Vec<NodeState>,
    config: FleetConfig,
}

impl FleetClient {
    /// A fleet client over `addrs` with default [`FleetConfig`].
    pub fn new(addrs: &[String]) -> FleetClient {
        FleetClient::with_config(addrs, FleetConfig::default())
    }

    /// A fleet client with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics on an empty address list (see [`HashRing::new`]).
    pub fn with_config(addrs: &[String], config: FleetConfig) -> FleetClient {
        let ring = HashRing::new(addrs, config.vnodes);
        let nodes = ring
            .nodes()
            .iter()
            .map(|addr| NodeState {
                addr: addr.clone(),
                client: None,
                health: NodeHealth::default(),
            })
            .collect();
        FleetClient {
            ring,
            nodes,
            config,
        }
    }

    /// The routing ring (read-only; the node set is fixed at construction).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The address `request` routes to — the ring owner of its digest.
    pub fn node_for(&self, request: &MapRequest) -> &str {
        &self.ring.nodes()[self.ring.node_for(request.digest())]
    }

    /// Per-node health counters, in ring construction order.
    pub fn health(&self) -> Vec<(String, NodeHealth)> {
        self.nodes
            .iter()
            .map(|n| (n.addr.clone(), n.health.clone()))
            .collect()
    }

    /// How many nodes a request may be sent to: the owner plus the
    /// configured failover budget.
    fn tries_for(&self, sequence_len: usize) -> usize {
        match self.config.failover {
            Some(extra) => sequence_len.min(1 + extra),
            None => sequence_len,
        }
    }

    /// The lazily-created client for node `idx`. Connection happens on the
    /// first exchange, inside the inner client.
    fn client_at(&mut self, idx: usize) -> &mut Client {
        let node = &mut self.nodes[idx];
        node.client.get_or_insert_with(|| {
            // Decorrelate the jitter streams so the shards of one fleet
            // client do not back off in lockstep.
            let mut config = self.config.client.clone();
            config.jitter_seed = config.jitter_seed.wrapping_add(idx as u64);
            Client::with_config(node.addr.clone(), config)
        })
    }

    fn record_ok(&mut self, idx: usize) {
        let h = &mut self.nodes[idx].health;
        h.requests += 1;
        h.consecutive_failures = 0;
    }

    fn record_err(&mut self, idx: usize, kind: ErrorKind) {
        let h = &mut self.nodes[idx].health;
        h.requests += 1;
        h.failures += 1;
        h.consecutive_failures += 1;
        h.last_error = Some(kind);
    }

    /// Maps one instance through the fleet: send to the digest's owner,
    /// hop to the next ring node only while failures stay retryable.
    pub fn map(&mut self, request: &MapRequest) -> Result<MapReply, FleetError> {
        let sequence = self.ring.sequence(request.digest());
        let tries = self.tries_for(sequence.len());
        let mut tried = Vec::new();
        let mut last: Option<(ErrorKind, String)> = None;
        for &idx in &sequence[..tries] {
            match self.client_at(idx).map(request) {
                Ok(reply) => {
                    self.record_ok(idx);
                    return Ok(reply);
                }
                Err(e) => {
                    self.record_err(idx, e.kind);
                    tried.push(self.nodes[idx].addr.clone());
                    if e.kind.retryable() {
                        last = Some((e.kind, e.message));
                    } else {
                        return Err(FleetError {
                            kind: e.kind,
                            message: e.message,
                            nodes_tried: tried,
                        });
                    }
                }
            }
        }
        let (kind, message) =
            last.unwrap_or((ErrorKind::Connect, "fleet has no nodes to try".into()));
        Err(FleetError {
            kind,
            message,
            nodes_tried: tried,
        })
    }

    /// Maps many instances, grouping them into one MAP_BATCH sub-batch per
    /// target shard and re-grouping retryable failures onto each item's
    /// next ring node. Returns one result per input, in input order.
    pub fn map_batch(&mut self, requests: &[MapRequest]) -> Vec<Result<MapReply, FleetError>> {
        let n = requests.len();
        let mut results: Vec<Option<Result<MapReply, FleetError>>> = (0..n).map(|_| None).collect();
        let sequences: Vec<Vec<usize>> = requests
            .iter()
            .map(|r| self.ring.sequence(r.digest()))
            .collect();
        let mut position = vec![0usize; n];
        let mut tried: Vec<Vec<String>> = vec![Vec::new(); n];
        let mut last: Vec<Option<(ErrorKind, String)>> = vec![None; n];

        loop {
            // Group unresolved items by their current target node; items
            // whose failover budget is spent resolve to their last error.
            let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for i in 0..n {
                if results[i].is_some() {
                    continue;
                }
                if position[i] >= self.tries_for(sequences[i].len()) {
                    let (kind, message) = last[i]
                        .take()
                        .unwrap_or((ErrorKind::Connect, "fleet has no nodes to try".into()));
                    results[i] = Some(Err(FleetError {
                        kind,
                        message,
                        nodes_tried: std::mem::take(&mut tried[i]),
                    }));
                    continue;
                }
                groups.entry(sequences[i][position[i]]).or_default().push(i);
            }
            if groups.is_empty() {
                break;
            }

            for (node, items) in groups {
                let addr = self.nodes[node].addr.clone();
                let subset: Vec<MapRequest> = items.iter().map(|&i| requests[i].clone()).collect();
                match self.client_at(node).map_batch(&subset) {
                    Ok(per_item) => {
                        for (&i, item) in items.iter().zip(per_item) {
                            match item {
                                Ok(reply) => {
                                    self.record_ok(node);
                                    results[i] = Some(Ok(reply));
                                }
                                Err(e) if e.kind.retryable() => {
                                    self.record_err(node, e.kind);
                                    tried[i].push(addr.clone());
                                    last[i] = Some((e.kind, e.message));
                                    position[i] += 1;
                                }
                                Err(e) => {
                                    self.record_err(node, e.kind);
                                    tried[i].push(addr.clone());
                                    results[i] = Some(Err(FleetError {
                                        kind: e.kind,
                                        message: e.message,
                                        nodes_tried: std::mem::take(&mut tried[i]),
                                    }));
                                }
                            }
                        }
                    }
                    // The exchange itself failed against this node; every
                    // item in the sub-batch shares the outcome.
                    Err(e) => {
                        let retryable = e.kind.retryable();
                        for &i in &items {
                            self.record_err(node, e.kind);
                            tried[i].push(addr.clone());
                            if retryable {
                                last[i] = Some((e.kind, e.message.clone()));
                                position[i] += 1;
                            } else {
                                results[i] = Some(Err(FleetError {
                                    kind: e.kind,
                                    message: e.message.clone(),
                                    nodes_tried: std::mem::take(&mut tried[i]),
                                }));
                            }
                        }
                    }
                }
            }
        }

        results
            .into_iter()
            .map(|r| r.expect("every slot resolved"))
            .collect()
    }

    /// Fetches STATS from every node (ring construction order), updating
    /// each node's health counters — the fleet-level health probe.
    pub fn stats(&mut self) -> Vec<(String, Result<Value, ClientError>)> {
        (0..self.nodes.len())
            .map(|idx| {
                let result = self.client_at(idx).stats();
                match &result {
                    Ok(_) => self.record_ok(idx),
                    Err(e) => self.record_err(idx, e.kind),
                }
                (self.nodes[idx].addr.clone(), result)
            })
            .collect()
    }

    /// Fetches the Prometheus exposition from every node.
    pub fn metrics(&mut self) -> Vec<(String, Result<String, ClientError>)> {
        (0..self.nodes.len())
            .map(|idx| {
                let result = self.client_at(idx).metrics();
                match &result {
                    Ok(_) => self.record_ok(idx),
                    Err(e) => self.record_err(idx, e.kind),
                }
                (self.nodes[idx].addr.clone(), result)
            })
            .collect()
    }

    /// Shuts the fleet down: per-node SHUTDOWN in **reverse ring order**,
    /// so the node owning the lowest arc — the first stop for wrapped
    /// lookups — drains last. Returns per-node outcomes in the order the
    /// shutdowns were sent.
    pub fn drain(&mut self) -> Vec<(String, Result<(), ClientError>)> {
        let mut order = self.ring.ring_order();
        order.reverse();
        order
            .into_iter()
            .map(|idx| {
                let result = self.client_at(idx).shutdown();
                (self.nodes[idx].addr.clone(), result)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7077")).collect()
    }

    /// A deterministic stream of well-spread keys (the splitmix64
    /// finalizer over a counter).
    fn keys(count: usize) -> impl Iterator<Item = u64> {
        (0..count as u64).map(crate::splitmix64)
    }

    #[test]
    fn same_nodes_same_ring_same_owner_for_every_key() {
        let a = HashRing::new(&addrs(8), 64);
        let b = HashRing::new(&addrs(8), 64);
        for key in keys(4096) {
            assert_eq!(a.node_for(key), b.node_for(key));
        }
    }

    #[test]
    fn vnodes_spread_ownership_across_all_nodes() {
        let ring = HashRing::new(&addrs(8), 64);
        let mut owned = vec![0usize; 8];
        let total = 8192;
        for key in keys(total) {
            owned[ring.node_for(key)] += 1;
        }
        let expected = total / 8;
        for (node, &count) in owned.iter().enumerate() {
            assert!(
                count > expected / 4,
                "node {node} owns {count} of {total} keys — ring badly unbalanced: {owned:?}"
            );
        }
    }

    #[test]
    fn removing_one_node_remaps_only_its_own_keys() {
        for n in [2usize, 4, 8, 16] {
            let full = HashRing::new(&addrs(n), 64);
            let removed = n - 1;
            let survivors: Vec<String> = addrs(n)
                .into_iter()
                .enumerate()
                .filter(|&(i, _)| i != removed)
                .map(|(_, a)| a)
                .collect();
            let shrunk = HashRing::new(&survivors, 64);

            let total = 4096;
            let mut moved = 0usize;
            for key in keys(total) {
                let before = &full.nodes()[full.node_for(key)];
                let after = &shrunk.nodes()[shrunk.node_for(key)];
                if before == after {
                    continue;
                }
                moved += 1;
                // Only keys the removed node owned may move.
                assert_eq!(
                    before,
                    &full.nodes()[removed],
                    "key {key:#x} moved off a surviving node at n={n}"
                );
            }
            let fraction = moved as f64 / total as f64;
            // ~1/n of the keyspace, with slack for vnode unevenness.
            assert!(
                fraction < 2.5 / n as f64,
                "n={n}: {fraction:.3} of keys remapped, expected ~{:.3}",
                1.0 / n as f64
            );
            assert!(fraction > 0.0, "n={n}: the removed node owned nothing");
        }
    }

    #[test]
    fn sequence_starts_at_owner_and_visits_every_node_once() {
        let ring = HashRing::new(&addrs(8), 64);
        for key in keys(256) {
            let seq = ring.sequence(key);
            assert_eq!(seq[0], ring.node_for(key));
            let mut sorted = seq.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn failover_target_matches_the_shrunk_ring() {
        // The second node in a key's sequence is exactly where the key
        // routes if the owner disappears — the property that makes
        // failover cache-friendly.
        let all = addrs(4);
        let ring = HashRing::new(&all, 64);
        for key in keys(512) {
            let seq = ring.sequence(key);
            let survivors: Vec<String> = all
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != seq[0])
                .map(|(_, a)| a.clone())
                .collect();
            let shrunk = HashRing::new(&survivors, 64);
            assert_eq!(
                &survivors[shrunk.node_for(key)],
                &all[seq[1]],
                "key {key:#x}"
            );
        }
    }

    #[test]
    fn ring_order_is_a_permutation_and_deterministic() {
        let ring = HashRing::new(&addrs(8), 64);
        let order = ring.ring_order();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        assert_eq!(order, HashRing::new(&addrs(8), 64).ring_order());
    }

    #[test]
    fn fleet_error_display_names_the_kind_and_the_nodes() {
        let err = FleetError {
            kind: ErrorKind::Connect,
            message: "connection refused".into(),
            nodes_tried: vec!["a:1".into(), "b:2".into()],
        };
        let text = err.to_string();
        assert!(text.contains("Connect"), "{text}");
        assert!(text.contains("2 nodes"), "{text}");
        assert!(text.contains("a:1, b:2"), "{text}");
    }

    #[test]
    fn node_for_request_agrees_with_the_ring() {
        use hcs_core::{EtcMatrix, Scenario};
        let client = FleetClient::new(&addrs(4));
        let request = MapRequest {
            scenario: Scenario::with_zero_ready(
                EtcMatrix::from_rows(&[vec![2.0, 6.0], vec![3.0, 4.0]]).unwrap(),
            ),
            heuristic: "Min-Min".into(),
            random_ties: None,
            iterative: true,
            guard: false,
            sleep_ms: 0,
        };
        let expected = &client.ring().nodes()[client.ring().node_for(request.digest())];
        assert_eq!(client.node_for(&request), expected);
    }
}
