//! Client-against-daemon loopback tests: a real `hcs-service` daemon on an
//! ephemeral port, driven through the `hcs-client` retry machinery —
//! including the injected-fault acceptance test (100% completion against a
//! daemon dropping 20% of requests).

use std::time::Duration;

use hcs_client::{Client, ClientConfig, ErrorKind};
use hcs_core::{EtcMatrix, Scenario};
use hcs_service::json::Value;
use hcs_service::{MapRequest, ServeConfig, Server};

fn serve(workers: usize, fault_rate: f64) -> Server {
    let config = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .workers(workers)
        .queue_depth(64)
        .cache_capacity(256)
        .cache_shards(4)
        .trace_capacity(0)
        .fault_rate(fault_rate)
        .fault_seed(2024)
        .build()
        .expect("valid config");
    Server::start(config).expect("bind ephemeral port")
}

/// Fast-retry client config for tests: the budget is what matters, not
/// the wall-clock spent sleeping.
fn fast(retries: u32) -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_secs(5),
        retries,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(10),
        jitter_seed: 1,
    }
}

fn request(seed: u64, tasks: usize, iterative: bool) -> MapRequest {
    let rows: Vec<Vec<f64>> = (0..tasks)
        .map(|t| {
            (0..3)
                .map(|m| {
                    let mut x = seed
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add((t * 3 + m) as u64);
                    x ^= x >> 31;
                    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    ((x >> 33) % 100 + 1) as f64
                })
                .collect()
        })
        .collect();
    MapRequest {
        scenario: Scenario::with_zero_ready(EtcMatrix::from_rows(&rows).unwrap()),
        heuristic: "Min-Min".into(),
        random_ties: None,
        iterative,
        guard: false,
        sleep_ms: 0,
        rid: None,
    }
}

/// The acceptance test: against a daemon injecting faults into 20% of
/// requests, a client with a sane retry budget completes **every**
/// request — 50 singles and a 16-item batch — and the daemon's own
/// counters confirm faults actually fired.
#[test]
fn client_completes_all_requests_against_a_faulty_daemon() {
    let server = serve(2, 0.2);
    let addr = server.local_addr().to_string();
    let mut client = Client::with_config(&addr, fast(16));

    for i in 0..50u64 {
        let req = request(9000 + i, 5 + (i % 4) as usize, i % 2 == 0);
        let reply = client.map(&req).unwrap_or_else(|e| {
            panic!("request {i} failed despite the retry budget: {e}");
        });
        assert!(reply.makespan > 0.0);
    }

    let batch: Vec<MapRequest> = (0..16u64).map(|i| request(9500 + i, 6, true)).collect();
    let results = client.map_batch(&batch).expect("batch exchange succeeds");
    assert_eq!(results.len(), 16);
    for (i, r) in results.iter().enumerate() {
        let reply = r.as_ref().unwrap_or_else(|e| {
            panic!("batch item {i} failed despite the retry budget: {e}");
        });
        assert!(reply.final_makespan.is_some(), "item {i} ran iteratively");
    }

    let stats = client.stats().expect("stats");
    let n = |k: &str| stats.get(k).and_then(Value::as_u64).unwrap();
    assert!(n("faults") > 0, "20% fault rate never fired: {stats}");
    assert!(n("batched") >= 1);
    assert!(n("batch_items") >= 16);
    assert_eq!(
        n("submitted"),
        n("served") + n("cache_hits") + n("rejected"),
        "accounting invariant broken: {stats}"
    );

    server.stop();
    server.join();
}

#[test]
fn terminal_failures_do_not_consume_retries() {
    let server = serve(1, 0.0);
    let addr = server.local_addr().to_string();
    let mut client = Client::with_config(&addr, fast(8));

    let mut req = request(1, 4, false);
    req.heuristic = "nope".into();
    let err = client.map(&req).expect_err("unknown heuristic is terminal");
    assert_eq!(err.kind, ErrorKind::Protocol);
    assert!(!err.retryable());
    assert_eq!(err.attempts, 1, "terminal errors must not retry");

    // The connection survives a terminal error reply: the next request on
    // the same client works without reconnecting.
    let reply = client.map(&request(2, 4, false)).expect("healthy request");
    assert_eq!(reply.heuristic, "Min-Min");

    server.stop();
    server.join();
}

#[test]
fn connection_refused_is_retried_then_reported_as_connect() {
    // Grab an ephemeral port and free it again: connecting there is
    // refused (nothing is listening).
    let addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let mut client = Client::with_config(&addr, fast(2));
    let err = client
        .map(&request(3, 4, false))
        .expect_err("nothing listens there");
    assert_eq!(err.kind, ErrorKind::Connect);
    assert!(err.retryable(), "connect failures are worth retrying");
    assert_eq!(err.attempts, 3, "retries: 2 means 3 attempts");
}

#[test]
fn read_deadline_expiry_is_typed_and_counted() {
    let server = serve(1, 0.0);
    let addr = server.local_addr().to_string();
    let mut client = Client::with_config(
        &addr,
        ClientConfig {
            read_timeout: Duration::from_millis(50),
            ..fast(1)
        },
    );

    let mut req = request(4, 4, false);
    req.sleep_ms = 400; // server-side artificial latency >> read deadline
    let err = client.map(&req).expect_err("deadline must expire");
    assert_eq!(err.kind, ErrorKind::Deadline);
    assert_eq!(err.attempts, 2, "retries: 1 means 2 attempts");

    server.stop();
    server.join();
}

#[test]
fn batch_reports_poisoned_items_in_place() {
    let server = serve(2, 0.0);
    let addr = server.local_addr().to_string();
    let mut client = Client::with_config(&addr, fast(3));

    let mut batch: Vec<MapRequest> = (0..5u64).map(|i| request(8000 + i, 5, false)).collect();
    batch[2].heuristic = "nope".into();
    let results = client.map_batch(&batch).expect("batch line succeeds");
    assert_eq!(results.len(), 5);
    for (i, r) in results.iter().enumerate() {
        if i == 2 {
            let err = r.as_ref().expect_err("poisoned item fails in place");
            assert_eq!(err.kind, ErrorKind::Protocol);
            assert_eq!(err.attempts, 1, "terminal item failures must not retry");
        } else {
            assert!(r.is_ok(), "item {i}: {r:?}");
        }
    }

    server.stop();
    server.join();
}

#[test]
fn repeat_requests_come_back_cached_and_metrics_expose_them() {
    let server = serve(1, 0.0);
    let addr = server.local_addr().to_string();
    let mut client = Client::with_config(&addr, fast(2));

    let req = request(7000, 6, true);
    let first = client.map(&req).expect("miss");
    let second = client.map(&req).expect("hit");
    assert!(!first.cached);
    assert!(second.cached);
    assert_eq!(first.makespan, second.makespan);
    assert_eq!(first.final_makespan, second.final_makespan);

    let text = client.metrics().expect("prometheus text");
    assert!(text.contains("hcs_cache_hits_total 1\n"), "{text}");

    // Shutdown through the client: the daemon drains and exits.
    client.shutdown().expect("daemon acknowledges shutdown");
    server.join();
}
