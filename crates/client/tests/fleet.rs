//! Fleet-client acceptance tests: real `hcs-service` daemons on ephemeral
//! ports behind a [`FleetClient`] — failover against an injected-fault
//! node, terminal errors surfacing without failover, cache locality under
//! ring routing, and reverse-ring-order drain.

use std::time::Duration;

use hcs_client::fleet::{FleetClient, FleetConfig};
use hcs_client::{ClientConfig, ErrorKind};
use hcs_core::{EtcMatrix, Scenario};
use hcs_service::{MapRequest, ServeConfig, Server, ShardIdentity};

fn serve(shard_id: u64, fleet_size: u64, fault_rate: f64) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 64,
        cache_capacity: 256,
        cache_shards: 4,
        trace_capacity: 0,
        fault_rate,
        fault_seed: 2024,
        shard: Some(ShardIdentity {
            shard_id,
            fleet_size,
        }),
    })
    .expect("bind ephemeral port")
}

/// Fleet config with no inner retries: every fault surfaces to the fleet
/// layer, so the tests exercise *ring* failover rather than the inner
/// client's backoff loop.
fn fleet_config() -> FleetConfig {
    FleetConfig {
        client: ClientConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(5),
            retries: 0,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(10),
            jitter_seed: 1,
        },
        ..FleetConfig::default()
    }
}

fn request(seed: u64) -> MapRequest {
    let rows: Vec<Vec<f64>> = (0..4)
        .map(|t| {
            (0..3)
                .map(|m| {
                    let mut x = seed
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add((t * 3 + m) as u64);
                    x ^= x >> 31;
                    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    ((x >> 33) % 100 + 1) as f64
                })
                .collect()
        })
        .collect();
    MapRequest {
        scenario: Scenario::with_zero_ready(EtcMatrix::from_rows(&rows).unwrap()),
        heuristic: "Min-Min".into(),
        random_ties: None,
        iterative: true,
        guard: false,
        sleep_ms: 0,
    }
}

/// The fleet acceptance test: two daemons, one injecting faults into 20%
/// of its requests, and a fleet client with **zero** inner retries. Every
/// fault becomes a fleet-level failover to the healthy node, and the
/// whole batch still completes 100%.
#[test]
fn batch_completes_against_a_fleet_with_one_faulty_node() {
    let healthy = serve(0, 2, 0.0);
    let faulty = serve(1, 2, 0.2);
    let addrs = vec![
        healthy.local_addr().to_string(),
        faulty.local_addr().to_string(),
    ];
    let mut client = FleetClient::with_config(&addrs, fleet_config());

    let items: Vec<MapRequest> = (0..40).map(|i| request(5000 + i)).collect();
    let results = client.map_batch(&items);
    assert_eq!(results.len(), items.len());
    for (i, r) in results.iter().enumerate() {
        let reply = r.as_ref().unwrap_or_else(|e| {
            panic!("item {i} failed despite a healthy failover target: {e}");
        });
        assert_eq!(reply.heuristic, "Min-Min");
    }

    // Singles fail over the same way.
    for i in 0..20 {
        client.map(&request(7000 + i)).unwrap_or_else(|e| {
            panic!("single {i} failed despite a healthy failover target: {e}");
        });
    }

    // The faulty node really did fault (otherwise this test is vacuous),
    // and the health ledger saw both nodes take traffic.
    let stats = client.stats();
    let faults: u64 = stats
        .iter()
        .map(|(_, v)| {
            v.as_ref()
                .ok()
                .and_then(|s| s.get("faults").and_then(|f| f.as_u64()))
                .unwrap_or(0)
        })
        .sum();
    assert!(faults > 0, "fault injection never fired");
    let health = client.health();
    assert!(health.iter().all(|(_, h)| h.requests > 0), "{health:?}");

    for server in [healthy, faulty] {
        server.stop();
        server.join();
    }
}

/// Terminal errors must surface immediately: an unknown heuristic is a
/// protocol-level mistake that would fail identically on every node, so
/// the fleet client reports it after exactly one attempt.
#[test]
fn terminal_errors_surface_without_failover() {
    let a = serve(0, 2, 0.0);
    let b = serve(1, 2, 0.0);
    let addrs = vec![a.local_addr().to_string(), b.local_addr().to_string()];
    let mut client = FleetClient::with_config(&addrs, fleet_config());

    let mut bad = request(1);
    bad.heuristic = "no-such-heuristic".into();
    let err = client.map(&bad).unwrap_err();
    assert_eq!(err.kind, ErrorKind::Protocol);
    assert_eq!(
        err.nodes_tried.len(),
        1,
        "terminal errors must not fail over: {err}"
    );

    // The same request through map_batch also stays on its owner.
    let results = client.map_batch(std::slice::from_ref(&bad));
    let err = results[0].as_ref().unwrap_err();
    assert_eq!(err.kind, ErrorKind::Protocol);
    assert_eq!(err.nodes_tried.len(), 1, "{err}");

    for server in [a, b] {
        server.stop();
        server.join();
    }
}

/// Ring routing is cache-friendly: repeating a request lands it on the
/// same node, so the second round is answered entirely from that node's
/// digest cache.
#[test]
fn repeat_requests_hit_the_owner_node_cache() {
    let a = serve(0, 2, 0.0);
    let b = serve(1, 2, 0.0);
    let addrs = vec![a.local_addr().to_string(), b.local_addr().to_string()];
    let mut client = FleetClient::with_config(&addrs, fleet_config());

    let items: Vec<MapRequest> = (0..12).map(|i| request(100 + i)).collect();
    for r in client.map_batch(&items) {
        assert!(!r.expect("cold round completes").cached);
    }
    for r in client.map_batch(&items) {
        assert!(
            r.expect("warm round completes").cached,
            "a repeated request missed its owner's cache"
        );
    }

    // Identity stamped by `ServeConfig::shard` is visible through the
    // fleet client's METRICS fan-out.
    let metrics = client.metrics();
    assert_eq!(metrics.len(), 2);
    for (addr, text) in metrics {
        let text = text.expect("metrics reachable");
        assert!(
            text.contains("hcs_shard_info{shard_id=\""),
            "{addr} exposes no shard identity"
        );
    }

    for server in [a, b] {
        server.stop();
        server.join();
    }
}

/// `drain` shuts every node down, last ring position first, and reports
/// one result per node in that order.
#[test]
fn drain_stops_every_node_in_reverse_ring_order() {
    let servers: Vec<Server> = (0..3).map(|i| serve(i, 3, 0.0)).collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let mut client = FleetClient::with_config(&addrs, fleet_config());
    client.map(&request(42)).expect("fleet serves before drain");

    let expected: Vec<String> = {
        let ring = client.ring();
        let mut order: Vec<String> = ring
            .ring_order()
            .into_iter()
            .map(|i| ring.nodes()[i].clone())
            .collect();
        order.reverse();
        order
    };
    let drained = client.drain();
    let drained_addrs: Vec<String> = drained.iter().map(|(a, _)| a.clone()).collect();
    assert_eq!(drained_addrs, expected);
    for (addr, result) in &drained {
        assert!(result.is_ok(), "drain of {addr} failed: {result:?}");
    }

    // Every daemon actually exits.
    for server in servers {
        server.join();
    }
}
