//! Fleet-client acceptance tests: real `hcs-service` daemons on ephemeral
//! ports behind a [`FleetClient`] — failover against an injected-fault
//! node, terminal errors surfacing without failover, cache locality under
//! ring routing, and reverse-ring-order drain.

use std::time::Duration;

use hcs_client::fleet::{FleetClient, FleetConfig};
use hcs_client::{ClientConfig, ErrorKind};
use hcs_core::{EtcMatrix, Scenario};
use hcs_service::{MapRequest, ServeConfig, Server, ShardIdentity};

fn serve(shard_id: u64, fleet_size: u64, fault_rate: f64) -> Server {
    let config = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .workers(2)
        .queue_depth(64)
        .cache_capacity(256)
        .cache_shards(4)
        .trace_capacity(0)
        .fault_rate(fault_rate)
        .fault_seed(2024)
        .shard(ShardIdentity {
            shard_id,
            fleet_size,
        })
        .build()
        .expect("valid config");
    Server::start(config).expect("bind ephemeral port")
}

/// Like [`serve`] but with tracing on, for the correlation tests.
fn serve_traced(shard_id: u64, fleet_size: u64, fault_rate: f64) -> Server {
    let config = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .workers(2)
        .queue_depth(64)
        .cache_capacity(256)
        .cache_shards(4)
        .trace_capacity(256)
        .fault_rate(fault_rate)
        .fault_seed(2024)
        .shard(ShardIdentity {
            shard_id,
            fleet_size,
        })
        .build()
        .expect("valid config");
    Server::start(config).expect("bind ephemeral port")
}

/// Fleet config with no inner retries: every fault surfaces to the fleet
/// layer, so the tests exercise *ring* failover rather than the inner
/// client's backoff loop.
fn fleet_config() -> FleetConfig {
    FleetConfig {
        client: ClientConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(5),
            retries: 0,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(10),
            jitter_seed: 1,
        },
        ..FleetConfig::default()
    }
}

fn request(seed: u64) -> MapRequest {
    let rows: Vec<Vec<f64>> = (0..4)
        .map(|t| {
            (0..3)
                .map(|m| {
                    let mut x = seed
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add((t * 3 + m) as u64);
                    x ^= x >> 31;
                    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    ((x >> 33) % 100 + 1) as f64
                })
                .collect()
        })
        .collect();
    MapRequest {
        scenario: Scenario::with_zero_ready(EtcMatrix::from_rows(&rows).unwrap()),
        heuristic: "Min-Min".into(),
        random_ties: None,
        iterative: true,
        guard: false,
        sleep_ms: 0,
        rid: None,
    }
}

/// The fleet acceptance test: two daemons, one injecting faults into 20%
/// of its requests, and a fleet client with **zero** inner retries. Every
/// fault becomes a fleet-level failover to the healthy node, and the
/// whole batch still completes 100%.
#[test]
fn batch_completes_against_a_fleet_with_one_faulty_node() {
    let healthy = serve(0, 2, 0.0);
    let faulty = serve(1, 2, 0.2);
    let addrs = vec![
        healthy.local_addr().to_string(),
        faulty.local_addr().to_string(),
    ];
    let mut client = FleetClient::with_config(&addrs, fleet_config());

    let items: Vec<MapRequest> = (0..40).map(|i| request(5000 + i)).collect();
    let results = client.map_batch(&items);
    assert_eq!(results.len(), items.len());
    for (i, r) in results.iter().enumerate() {
        let reply = r.as_ref().unwrap_or_else(|e| {
            panic!("item {i} failed despite a healthy failover target: {e}");
        });
        assert_eq!(reply.heuristic, "Min-Min");
    }

    // Singles fail over the same way.
    for i in 0..20 {
        client.map(&request(7000 + i)).unwrap_or_else(|e| {
            panic!("single {i} failed despite a healthy failover target: {e}");
        });
    }

    // The faulty node really did fault (otherwise this test is vacuous),
    // and the health ledger saw both nodes take traffic.
    let stats = client.stats();
    let faults: u64 = stats
        .iter()
        .map(|(_, v)| {
            v.as_ref()
                .ok()
                .and_then(|s| s.get("faults").and_then(|f| f.as_u64()))
                .unwrap_or(0)
        })
        .sum();
    assert!(faults > 0, "fault injection never fired");
    let health = client.health();
    assert!(health.iter().all(|(_, h)| h.requests > 0), "{health:?}");

    for server in [healthy, faulty] {
        server.stop();
        server.join();
    }
}

/// Terminal errors must surface immediately: an unknown heuristic is a
/// protocol-level mistake that would fail identically on every node, so
/// the fleet client reports it after exactly one attempt.
#[test]
fn terminal_errors_surface_without_failover() {
    let a = serve(0, 2, 0.0);
    let b = serve(1, 2, 0.0);
    let addrs = vec![a.local_addr().to_string(), b.local_addr().to_string()];
    let mut client = FleetClient::with_config(&addrs, fleet_config());

    let mut bad = request(1);
    bad.heuristic = "no-such-heuristic".into();
    let err = client.map(&bad).unwrap_err();
    assert_eq!(err.kind, ErrorKind::Protocol);
    assert_eq!(
        err.nodes_tried.len(),
        1,
        "terminal errors must not fail over: {err}"
    );

    // The same request through map_batch also stays on its owner.
    let results = client.map_batch(std::slice::from_ref(&bad));
    let err = results[0].as_ref().unwrap_err();
    assert_eq!(err.kind, ErrorKind::Protocol);
    assert_eq!(err.nodes_tried.len(), 1, "{err}");

    for server in [a, b] {
        server.stop();
        server.join();
    }
}

/// Ring routing is cache-friendly: repeating a request lands it on the
/// same node, so the second round is answered entirely from that node's
/// digest cache.
#[test]
fn repeat_requests_hit_the_owner_node_cache() {
    let a = serve(0, 2, 0.0);
    let b = serve(1, 2, 0.0);
    let addrs = vec![a.local_addr().to_string(), b.local_addr().to_string()];
    let mut client = FleetClient::with_config(&addrs, fleet_config());

    let items: Vec<MapRequest> = (0..12).map(|i| request(100 + i)).collect();
    for r in client.map_batch(&items) {
        assert!(!r.expect("cold round completes").cached);
    }
    for r in client.map_batch(&items) {
        assert!(
            r.expect("warm round completes").cached,
            "a repeated request missed its owner's cache"
        );
    }

    // Identity stamped by `ServeConfig::shard` is visible through the
    // fleet client's METRICS fan-out.
    let metrics = client.metrics();
    assert_eq!(metrics.len(), 2);
    for (addr, text) in metrics {
        let text = text.expect("metrics reachable");
        assert!(
            text.contains("hcs_shard_info{shard_id=\""),
            "{addr} exposes no shard identity"
        );
    }

    for server in [a, b] {
        server.stop();
        server.join();
    }
}

/// The correlation acceptance test: one rid pushed through the fleet
/// with its ring owner faulting **every** request. The reply must come
/// from the failover node, and `FleetClient::trace` must reconstruct the
/// whole story under that single rid — the failed hop, the successful
/// hop, the owner's partial server-side timeline (the fault fires in the
/// worker, after the queue-wait span), and the serving node's complete
/// four-phase timeline. The merged exposition and health snapshot must
/// reflect the same exchange.
#[test]
fn one_rid_yields_a_complete_timeline_across_a_forced_failover() {
    let faulty = serve_traced(0, 2, 1.0);
    let healthy = serve_traced(1, 2, 0.0);
    let addrs = vec![
        faulty.local_addr().to_string(),
        healthy.local_addr().to_string(),
    ];
    let mut client = FleetClient::with_config(&addrs, fleet_config());

    // A request the ring routes to the faulty node (ownership depends on
    // the digest, so probe seeds until one lands there).
    let mut request = (0..1000)
        .map(|i| request(9000 + i))
        .find(|r| client.node_for(r) == addrs[0])
        .expect("some request routes to the faulty node");
    let rid = 0x51D;
    request.rid = Some(rid);

    let reply = client.map(&request).expect("failover absorbs the fault");
    assert_eq!(reply.rid, Some(rid), "reply must echo the rid");

    // Client-side hop timeline: owner faulted, failover node served.
    let hops = client.hops(rid).expect("hop timeline recorded");
    assert_eq!(hops.len(), 2, "{hops:?}");
    assert_eq!(hops[0].node, addrs[0]);
    assert_eq!(hops[0].error, Some(ErrorKind::Fault), "{hops:?}");
    assert_eq!(hops[1].node, addrs[1]);
    assert_eq!(hops[1].error, None, "{hops:?}");

    // Health and aggregation views, sampled while the fault streak is
    // fresh (a later successful TRACE/STATS exchange resets it): the
    // snapshot and the merged exposition score the owner unhealthy, the
    // exposition validates, and the merged stats carry summed counters
    // and mergeable distributions.
    let snapshot = client.health_snapshot();
    let entry = |addr: &str| {
        snapshot
            .as_array()
            .unwrap()
            .iter()
            .find(|n| n.get("node").and_then(|v| v.as_str()) == Some(addr))
            .unwrap()
            .clone()
    };
    assert_eq!(
        entry(&addrs[0]).get("healthy"),
        Some(&hcs_service::json::Value::Bool(false))
    );
    assert_eq!(
        entry(&addrs[1]).get("healthy"),
        Some(&hcs_service::json::Value::Bool(true))
    );

    let exposition = client.metrics_merged();
    hcs_core::obs::validate_prometheus(&exposition).expect("merged exposition validates");
    let unhealthy = format!("hcs_fleet_node_health{{node=\"{}\"}} 0", addrs[0]);
    let healthy_gauge = format!("hcs_fleet_node_health{{node=\"{}\"}} 1", addrs[1]);
    assert!(exposition.contains(&unhealthy), "{exposition}");
    assert!(exposition.contains(&healthy_gauge), "{exposition}");

    let merged = client.stats_merged();
    assert_eq!(merged.get("nodes").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(merged.get("reachable").and_then(|v| v.as_u64()), Some(2));
    assert!(merged.get("submitted").and_then(|v| v.as_u64()).unwrap() >= 2);
    assert!(
        merged
            .get("latency")
            .and_then(|l| l.get("count"))
            .and_then(|v| v.as_u64())
            .unwrap()
            >= 1,
        "{merged}"
    );

    // The fleet TRACE view stitches both sides together under the rid.
    let timeline = client.trace(rid);
    let hops_json = timeline.get("hops").and_then(|h| h.as_array()).unwrap();
    assert_eq!(hops_json.len(), 2, "{timeline}");
    let nodes = timeline.get("nodes").and_then(|n| n.as_array()).unwrap();
    let spans_of = |addr: &str| -> Vec<String> {
        nodes
            .iter()
            .find(|n| n.get("node").and_then(|v| v.as_str()) == Some(addr))
            .unwrap_or_else(|| panic!("{addr} missing from timeline: {timeline}"))
            .get("spans")
            .and_then(|s| s.as_array())
            .unwrap()
            .iter()
            .map(|s| s.get("phase").unwrap().as_str().unwrap().to_string())
            .collect()
    };
    // The owner got as far as the worker before the injected fault.
    assert_eq!(spans_of(&addrs[0]), ["cache_probe", "queue_wait"]);
    // The serving node ran the request end to end.
    assert_eq!(
        spans_of(&addrs[1]),
        ["cache_probe", "queue_wait", "kernel_map", "serialize"]
    );
    // Every event either node holds for this rid is stamped with it.
    for node in nodes {
        for event in node.get("events").and_then(|e| e.as_array()).unwrap() {
            assert_eq!(
                event.get("rid").and_then(|r| r.as_str()),
                Some("000000000000051d"),
                "{event}"
            );
        }
    }

    for server in [faulty, healthy] {
        server.stop();
        server.join();
    }
}

/// `drain` shuts every node down, last ring position first, and reports
/// one result per node in that order.
#[test]
fn drain_stops_every_node_in_reverse_ring_order() {
    let servers: Vec<Server> = (0..3).map(|i| serve(i, 3, 0.0)).collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let mut client = FleetClient::with_config(&addrs, fleet_config());
    client.map(&request(42)).expect("fleet serves before drain");

    let expected: Vec<String> = {
        let ring = client.ring();
        let mut order: Vec<String> = ring
            .ring_order()
            .into_iter()
            .map(|i| ring.nodes()[i].clone())
            .collect();
        order.reverse();
        order
    };
    let drained = client.drain();
    let drained_addrs: Vec<String> = drained.iter().map(|(a, _)| a.clone()).collect();
    assert_eq!(drained_addrs, expected);
    for (addr, result) in &drained {
        assert!(result.is_ok(), "drain of {addr} failed: {result:?}");
    }

    // Every daemon actually exits.
    for server in servers {
        server.join();
    }
}
