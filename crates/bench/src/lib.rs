//! Experiment harness: the extended Monte-Carlo studies (DESIGN.md X1–X7)
//! and shared workload builders for the Criterion benches.
//!
//! The binaries:
//!
//! * `repro` — regenerates every table and figure of the paper (E1–E17)
//!   plus the per-example verification checklists.
//! * `experiments` — runs the Monte-Carlo studies X1–X4, X6 and X7 and prints
//!   their tables (the data recorded in EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod benchdoc;
pub mod dynamic_study;
pub mod genitor_study;
pub mod makespan_tie_study;
pub mod production_study;
pub mod roster;
pub mod seedguard_study;
pub mod tiebreak_study;
pub mod workloads;

pub use roster::{
    greedy_roster, make_heuristic, study_genitor_config, study_genitor_config_large,
    try_make_heuristic, try_make_search_heuristic, SearchConfigError, SearchKnobs,
    UnknownHeuristic,
};
pub use workloads::{study_classes, study_scenario, StudyDims};
