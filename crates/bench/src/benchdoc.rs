//! Helpers for the `BENCH_service.json` document.
//!
//! Several tools write into the same bench document — `loadgen` owns the
//! serving sections (`config`, `runs`, `batch`, `fleet`, …) while other
//! harnesses may add their own top-level sections over time. A fresh
//! measurement must therefore *merge into* the existing file, not clobber
//! it: [`merge_preserving`] keeps every top-level section the new document
//! does not redefine.

use hcs_service::json::Value;

/// Merges a freshly measured bench document over an existing one.
///
/// Both documents are JSON objects of top-level sections. Sections defined
/// by `fresh` win (a new measurement replaces its own previous results,
/// wholesale — no deep merge); sections only present in `existing` are
/// appended after them in their original order, so a section written by
/// another tool survives a re-run of this one.
///
/// A missing or non-object `existing` (first run, corrupt file) yields
/// `fresh` unchanged.
pub fn merge_preserving(existing: Option<&Value>, fresh: Value) -> Value {
    let Some(Value::Object(old)) = existing else {
        return fresh;
    };
    let Value::Object(mut entries) = fresh else {
        return fresh;
    };
    for (key, value) in old {
        if !entries.iter().any(|(k, _)| k == key) {
            entries.push((key.clone(), value.clone()));
        }
    }
    Value::Object(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_service::json::parse;

    fn obj(text: &str) -> Value {
        parse(text).expect("test JSON parses")
    }

    #[test]
    fn fresh_sections_replace_their_old_versions() {
        let existing = obj(r#"{"runs":[1,2],"batch":{"old":true}}"#);
        let fresh = obj(r#"{"runs":[3],"batch":{"new":true}}"#);
        let merged = merge_preserving(Some(&existing), fresh.clone());
        assert_eq!(merged, fresh);
    }

    #[test]
    fn unknown_sections_survive_a_rewrite() {
        let existing = obj(r#"{"runs":[1],"search_bench":{"sa":1.5},"notes":"keep me"}"#);
        let fresh = obj(r#"{"runs":[2],"fleet":{"nodes":2}}"#);
        let merged = merge_preserving(Some(&existing), fresh);
        assert_eq!(merged.get("runs"), Some(&obj("[2]")));
        assert_eq!(merged.get("fleet"), Some(&obj(r#"{"nodes":2}"#)));
        // Sections loadgen knows nothing about are preserved verbatim.
        assert_eq!(merged.get("search_bench"), Some(&obj(r#"{"sa":1.5}"#)));
        assert_eq!(merged.get("notes"), Some(&Value::String("keep me".into())));
    }

    #[test]
    fn preserved_sections_keep_their_relative_order_after_fresh_ones() {
        let existing = obj(r#"{"a":1,"b":2,"c":3}"#);
        let fresh = obj(r#"{"b":9,"d":4}"#);
        let merged = merge_preserving(Some(&existing), fresh);
        match merged {
            Value::Object(entries) => {
                let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["b", "d", "a", "c"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn missing_or_corrupt_existing_yields_fresh_unchanged() {
        let fresh = obj(r#"{"runs":[1]}"#);
        assert_eq!(merge_preserving(None, fresh.clone()), fresh);
        let not_an_object = obj("[1,2,3]");
        assert_eq!(merge_preserving(Some(&not_an_object), fresh.clone()), fresh);
    }
}
