//! The heuristic roster used by the studies.

use hcs_core::Heuristic;
use hcs_genitor::{Genitor, GenitorConfig, IslandConfig, IslandGenitor};
use hcs_heuristics::{MultiConfig, MultiSa, MultiTabu};

/// Names of the greedy heuristics in study order (the paper's seven study
/// subjects first — Genitor is handled separately because it needs a seed
/// and is orders of magnitude slower).
pub fn greedy_roster() -> Vec<&'static str> {
    vec![
        "Min-Min",
        "MCT",
        "MET",
        "SWA",
        "KPB",
        "Sufferage",
        "OLB",
        "Max-Min",
        "Duplex",
        "Segmented-Min-Min",
        "SA",
    ]
}

/// A heuristic name that matched nothing in the roster.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownHeuristic {
    /// The name as the caller spelled it.
    pub name: String,
}

impl std::fmt::Display for UnknownHeuristic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown heuristic {:?}; known names: {}, Genitor, Tabu, genitor-island, sa-multi, tabu-multi",
            self.name,
            greedy_roster().join(", ")
        )
    }
}

impl std::error::Error for UnknownHeuristic {}

/// Instantiates a heuristic by name; `"Genitor"` gets a study-sized GA,
/// `"SA"` a default-configured annealer, and `"Tabu"` a default tabu
/// search, all seeded from `seed`. This is the fallible entry point for
/// user-supplied names (CLI flags); fixed compile-time rosters go through
/// the panicking [`make_heuristic`] wrapper.
pub fn try_make_heuristic(name: &str, seed: u64) -> Result<Box<dyn Heuristic>, UnknownHeuristic> {
    if name.eq_ignore_ascii_case("genitor") {
        return Ok(Box::new(Genitor::with_config(seed, study_genitor_config())));
    }
    if name.eq_ignore_ascii_case("sa") {
        return Ok(Box::new(hcs_heuristics::Sa::new(seed)));
    }
    if name.eq_ignore_ascii_case("tabu") {
        return Ok(Box::new(hcs_heuristics::Tabu::new(seed)));
    }
    hcs_heuristics::by_name(name).ok_or_else(|| UnknownHeuristic {
        name: name.to_string(),
    })
}

/// Parallel-search knobs (`--threads`, `--islands`,
/// `--migration-interval`) for the engines behind the `genitor-island`,
/// `sa-multi` and `tabu-multi` roster names.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SearchKnobs {
    /// Worker threads for the multi-restart engines (restart count is
    /// [`MultiConfig::restarts_for`]`(threads)` — two waves per lane).
    pub threads: usize,
    /// Island count for the island-model Genitor.
    pub islands: usize,
    /// Steps between island best-chromosome exchanges; `0` disables
    /// migration.
    pub migration_interval: usize,
}

impl Default for SearchKnobs {
    fn default() -> Self {
        SearchKnobs {
            threads: 4,
            islands: 4,
            migration_interval: 500,
        }
    }
}

/// A parallel-search configuration the roster refuses to build — the typed
/// twin of [`UnknownHeuristic`] for the `--threads`/`--islands` flags.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchConfigError {
    /// The heuristic name matched nothing (see [`UnknownHeuristic`]).
    Unknown(UnknownHeuristic),
    /// `--threads 0`: the worker pool needs at least one lane.
    InvalidThreads,
    /// `--islands` of zero, or more islands than the population holds
    /// chromosomes (each island runs a full population).
    InvalidIslands {
        /// The rejected island count.
        islands: usize,
        /// The per-island population size the count was checked against.
        pop_size: usize,
    },
}

impl std::fmt::Display for SearchConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchConfigError::Unknown(e) => e.fmt(f),
            SearchConfigError::InvalidThreads => {
                write!(f, "--threads must be at least 1")
            }
            SearchConfigError::InvalidIslands { islands, pop_size } => write!(
                f,
                "--islands must be in 1..={pop_size} (the population size), got {islands}"
            ),
        }
    }
}

impl std::error::Error for SearchConfigError {}

impl From<UnknownHeuristic> for SearchConfigError {
    fn from(e: UnknownHeuristic) -> Self {
        SearchConfigError::Unknown(e)
    }
}

/// [`try_make_heuristic`] extended with the parallel-search roster:
/// `genitor-island`, `sa-multi` and `tabu-multi` (case-insensitive), built
/// from `knobs` at **equal total budget** — the study engine's step/hop
/// budget is divided across islands/restarts, so a parallel run costs the
/// same total search steps as its single-threaded twin and speedup comes
/// only from concurrency. Every other name falls through to
/// [`try_make_heuristic`].
pub fn try_make_search_heuristic(
    name: &str,
    seed: u64,
    knobs: &SearchKnobs,
) -> Result<Box<dyn Heuristic>, SearchConfigError> {
    if name.eq_ignore_ascii_case("genitor-island") {
        let base = study_genitor_config();
        if knobs.islands == 0 || knobs.islands > base.pop_size {
            return Err(SearchConfigError::InvalidIslands {
                islands: knobs.islands,
                pop_size: base.pop_size,
            });
        }
        let genitor = GenitorConfig {
            max_steps: (base.max_steps / knobs.islands).max(1),
            stall_steps: (base.stall_steps / knobs.islands).max(1),
            ..base
        };
        return Ok(Box::new(IslandGenitor::with_config(
            seed,
            IslandConfig {
                islands: knobs.islands,
                migration_interval: knobs.migration_interval,
                genitor,
            },
        )));
    }
    if knobs.threads == 0
        && (name.eq_ignore_ascii_case("sa-multi") || name.eq_ignore_ascii_case("tabu-multi"))
    {
        return Err(SearchConfigError::InvalidThreads);
    }
    if name.eq_ignore_ascii_case("sa-multi") {
        let restarts = MultiConfig::restarts_for(knobs.threads);
        let base = hcs_heuristics::SaConfig::default();
        let sa = hcs_heuristics::SaConfig {
            max_steps: (base.max_steps / restarts).max(1),
            ..base
        };
        return Ok(Box::new(MultiSa::with_config(
            seed,
            MultiConfig {
                threads: knobs.threads,
                restarts,
                adopt: true,
            },
            sa,
        )));
    }
    if name.eq_ignore_ascii_case("tabu-multi") {
        let restarts = MultiConfig::restarts_for(knobs.threads);
        let base = hcs_heuristics::TabuConfig::default();
        let tabu = hcs_heuristics::TabuConfig {
            max_hops: (base.max_hops / restarts).max(1),
            ..base
        };
        return Ok(Box::new(MultiTabu::with_config(
            seed,
            MultiConfig {
                threads: knobs.threads,
                restarts,
                adopt: true,
            },
            tabu,
        )));
    }
    Ok(try_make_heuristic(name, seed)?)
}

/// Instantiates a heuristic by name, like [`try_make_heuristic`].
///
/// # Panics
///
/// Panics on an unknown name — the study rosters are fixed at compile
/// time, so an unknown name there is a harness bug, not user input.
pub fn make_heuristic(name: &str, seed: u64) -> Box<dyn Heuristic> {
    try_make_heuristic(name, seed).unwrap_or_else(|_| panic!("unknown heuristic in roster: {name}"))
}

/// The GA configuration the studies use: small enough to keep Monte-Carlo
/// runs tractable, large enough to improve reliably over random mappings.
/// The delta-evaluation kernel made Genitor steps ~5x cheaper at study
/// sizes (see `BENCH_search.json`), so the budget is larger than the
/// pre-kernel one (was 4 000 steps / 800 stall).
pub fn study_genitor_config() -> GenitorConfig {
    GenitorConfig {
        pop_size: 96,
        max_steps: 6_000,
        stall_steps: 1_200,
        ..Default::default()
    }
}

/// The `--large` GA configuration: the canonical Braun-sized study budget,
/// affordable only because offspring costing is delta-based.
pub fn study_genitor_config_large() -> GenitorConfig {
    GenitorConfig {
        pop_size: 200,
        max_steps: 25_000,
        stall_steps: 4_000,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_instantiates() {
        for name in greedy_roster() {
            let h = make_heuristic(name, 0);
            assert_eq!(h.name(), name);
        }
        let ga = make_heuristic("Genitor", 1);
        assert_eq!(ga.name(), "Genitor");
    }

    #[test]
    #[should_panic(expected = "unknown heuristic")]
    fn unknown_name_is_a_bug() {
        let _ = make_heuristic("Simulated-Annealing", 0);
    }

    #[test]
    fn try_make_heuristic_accepts_the_search_names_case_insensitively() {
        for (name, expect) in [("tabu", "Tabu"), ("GENITOR", "Genitor"), ("sa", "SA")] {
            let h = try_make_heuristic(name, 7).expect(name);
            assert_eq!(h.name(), expect);
        }
    }

    #[test]
    fn search_roster_instantiates_the_parallel_names() {
        let knobs = SearchKnobs::default();
        for (name, expect) in [
            ("genitor-island", "Genitor-Island"),
            ("SA-MULTI", "SA-Multi"),
            ("Tabu-Multi", "Tabu-Multi"),
            ("min-min", "Min-Min"),
        ] {
            let h = try_make_search_heuristic(name, 7, &knobs).expect(name);
            assert_eq!(h.name(), expect);
        }
    }

    #[test]
    fn search_roster_rejects_invalid_knobs_with_typed_errors() {
        let zero_threads = SearchKnobs {
            threads: 0,
            ..Default::default()
        };
        assert_eq!(
            try_make_search_heuristic("sa-multi", 0, &zero_threads).err(),
            Some(SearchConfigError::InvalidThreads)
        );
        let zero_islands = SearchKnobs {
            islands: 0,
            ..Default::default()
        };
        match try_make_search_heuristic("genitor-island", 0, &zero_islands).err() {
            Some(SearchConfigError::InvalidIslands { islands: 0, .. }) => {}
            other => panic!("expected InvalidIslands, got {other:?}"),
        }
        let too_many = SearchKnobs {
            islands: study_genitor_config().pop_size + 1,
            ..Default::default()
        };
        let err = try_make_search_heuristic("genitor-island", 0, &too_many)
            .err()
            .expect("oversized island count must be rejected");
        assert!(err.to_string().contains("--islands"), "{err}");
        // Unknown names still surface as such.
        match try_make_search_heuristic("nope", 0, &SearchKnobs::default()).err() {
            Some(SearchConfigError::Unknown(e)) => assert_eq!(e.name, "nope"),
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn try_make_heuristic_reports_unknown_names() {
        let err = match try_make_heuristic("Simulated-Annealing", 0) {
            Ok(_) => panic!("the name must be rejected"),
            Err(e) => e,
        };
        assert_eq!(err.name, "Simulated-Annealing");
        let msg = err.to_string();
        assert!(
            msg.contains("unknown heuristic \"Simulated-Annealing\""),
            "{msg}"
        );
        assert!(msg.contains("Genitor"), "{msg}");
    }
}
