//! The heuristic roster used by the studies.

use hcs_core::Heuristic;
use hcs_genitor::{Genitor, GenitorConfig};

/// Names of the greedy heuristics in study order (the paper's seven study
/// subjects first — Genitor is handled separately because it needs a seed
/// and is orders of magnitude slower).
pub fn greedy_roster() -> Vec<&'static str> {
    vec![
        "Min-Min",
        "MCT",
        "MET",
        "SWA",
        "KPB",
        "Sufferage",
        "OLB",
        "Max-Min",
        "Duplex",
        "Segmented-Min-Min",
        "SA",
    ]
}

/// Instantiates a heuristic by name; `"Genitor"` gets a study-sized GA and
/// `"SA"` a default-configured annealer, both seeded from `seed`.
///
/// # Panics
///
/// Panics on an unknown name — the roster is fixed at compile time, so an
/// unknown name is a harness bug.
pub fn make_heuristic(name: &str, seed: u64) -> Box<dyn Heuristic> {
    if name.eq_ignore_ascii_case("genitor") {
        return Box::new(Genitor::with_config(seed, study_genitor_config()));
    }
    if name.eq_ignore_ascii_case("sa") {
        return Box::new(hcs_heuristics::Sa::new(seed));
    }
    hcs_heuristics::by_name(name).unwrap_or_else(|| panic!("unknown heuristic in roster: {name}"))
}

/// The GA configuration the studies use: small enough to keep Monte-Carlo
/// runs tractable, large enough to improve reliably over random mappings.
pub fn study_genitor_config() -> GenitorConfig {
    GenitorConfig {
        pop_size: 60,
        max_steps: 4_000,
        stall_steps: 800,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_instantiates() {
        for name in greedy_roster() {
            let h = make_heuristic(name, 0);
            assert_eq!(h.name(), name);
        }
        let ga = make_heuristic("Genitor", 1);
        assert_eq!(ga.name(), "Genitor");
    }

    #[test]
    #[should_panic(expected = "unknown heuristic")]
    fn unknown_name_is_a_bug() {
        let _ = make_heuristic("Simulated-Annealing", 0);
    }
}
