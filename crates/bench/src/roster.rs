//! The heuristic roster used by the studies.

use hcs_core::Heuristic;
use hcs_genitor::{Genitor, GenitorConfig};

/// Names of the greedy heuristics in study order (the paper's seven study
/// subjects first — Genitor is handled separately because it needs a seed
/// and is orders of magnitude slower).
pub fn greedy_roster() -> Vec<&'static str> {
    vec![
        "Min-Min",
        "MCT",
        "MET",
        "SWA",
        "KPB",
        "Sufferage",
        "OLB",
        "Max-Min",
        "Duplex",
        "Segmented-Min-Min",
        "SA",
    ]
}

/// A heuristic name that matched nothing in the roster.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownHeuristic {
    /// The name as the caller spelled it.
    pub name: String,
}

impl std::fmt::Display for UnknownHeuristic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown heuristic {:?}; known names: {}, Genitor, Tabu",
            self.name,
            greedy_roster().join(", ")
        )
    }
}

impl std::error::Error for UnknownHeuristic {}

/// Instantiates a heuristic by name; `"Genitor"` gets a study-sized GA,
/// `"SA"` a default-configured annealer, and `"Tabu"` a default tabu
/// search, all seeded from `seed`. This is the fallible entry point for
/// user-supplied names (CLI flags); fixed compile-time rosters go through
/// the panicking [`make_heuristic`] wrapper.
pub fn try_make_heuristic(name: &str, seed: u64) -> Result<Box<dyn Heuristic>, UnknownHeuristic> {
    if name.eq_ignore_ascii_case("genitor") {
        return Ok(Box::new(Genitor::with_config(seed, study_genitor_config())));
    }
    if name.eq_ignore_ascii_case("sa") {
        return Ok(Box::new(hcs_heuristics::Sa::new(seed)));
    }
    if name.eq_ignore_ascii_case("tabu") {
        return Ok(Box::new(hcs_heuristics::Tabu::new(seed)));
    }
    hcs_heuristics::by_name(name).ok_or_else(|| UnknownHeuristic {
        name: name.to_string(),
    })
}

/// Instantiates a heuristic by name, like [`try_make_heuristic`].
///
/// # Panics
///
/// Panics on an unknown name — the study rosters are fixed at compile
/// time, so an unknown name there is a harness bug, not user input.
pub fn make_heuristic(name: &str, seed: u64) -> Box<dyn Heuristic> {
    try_make_heuristic(name, seed).unwrap_or_else(|_| panic!("unknown heuristic in roster: {name}"))
}

/// The GA configuration the studies use: small enough to keep Monte-Carlo
/// runs tractable, large enough to improve reliably over random mappings.
/// The delta-evaluation kernel made Genitor steps ~5x cheaper at study
/// sizes (see `BENCH_search.json`), so the budget is larger than the
/// pre-kernel one (was 4 000 steps / 800 stall).
pub fn study_genitor_config() -> GenitorConfig {
    GenitorConfig {
        pop_size: 96,
        max_steps: 6_000,
        stall_steps: 1_200,
        ..Default::default()
    }
}

/// The `--large` GA configuration: the canonical Braun-sized study budget,
/// affordable only because offspring costing is delta-based.
pub fn study_genitor_config_large() -> GenitorConfig {
    GenitorConfig {
        pop_size: 200,
        max_steps: 25_000,
        stall_steps: 4_000,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_instantiates() {
        for name in greedy_roster() {
            let h = make_heuristic(name, 0);
            assert_eq!(h.name(), name);
        }
        let ga = make_heuristic("Genitor", 1);
        assert_eq!(ga.name(), "Genitor");
    }

    #[test]
    #[should_panic(expected = "unknown heuristic")]
    fn unknown_name_is_a_bug() {
        let _ = make_heuristic("Simulated-Annealing", 0);
    }

    #[test]
    fn try_make_heuristic_accepts_the_search_names_case_insensitively() {
        for (name, expect) in [("tabu", "Tabu"), ("GENITOR", "Genitor"), ("sa", "SA")] {
            let h = try_make_heuristic(name, 7).expect(name);
            assert_eq!(h.name(), expect);
        }
    }

    #[test]
    fn try_make_heuristic_reports_unknown_names() {
        let err = match try_make_heuristic("Simulated-Annealing", 0) {
            Ok(_) => panic!("the name must be rejected"),
            Err(e) => e,
        };
        assert_eq!(err.name, "Simulated-Annealing");
        let msg = err.to_string();
        assert!(
            msg.contains("unknown heuristic \"Simulated-Annealing\""),
            "{msg}"
        );
        assert!(msg.contains("Genitor"), "{msg}");
    }
}
