//! Experiment X4 — the two-wave production scenario (the paper's
//! motivation made quantitative).
//!
//! Wave 1 (a Braun-class workload) is mapped off-line; wave 2 (a second,
//! smaller workload of "tasks that were not initially considered") arrives
//! at time zero and is mapped on-line onto the availability wave 1 left.
//! For each heuristic we compare wave-2 mean completion time when machines
//! become available at their **original-mapping** completion times versus
//! their **iterative** finishing times. A positive gain means the
//! iterative technique freed machines earlier where it matters.

use serde::Serialize;

use hcs_analysis::{run_trials_with, OnlineStats, TextTable};
use hcs_core::{IterativeConfig, MapWorkspace, TieBreaker, Time};
use hcs_sim::production::{self, ProductionScenario};

use crate::roster::{greedy_roster, make_heuristic};
use crate::workloads::{study_classes, study_scenario, StudyDims};

/// Aggregated row for one heuristic.
#[derive(Clone, Debug, Serialize)]
pub struct ProductionRow {
    /// Heuristic name.
    pub heuristic: &'static str,
    /// Mean wave-2 mean-completion gain (original − iterative), absolute.
    pub mean_completion_gain: f64,
    /// Mean wave-2 makespan gain, absolute.
    pub makespan_gain: f64,
    /// Fraction of trials where the iterative availability *hurt* wave 2
    /// (negative mean-completion gain).
    pub hurt_fraction: f64,
}

/// Runs X4 with a wave-2 size of one quarter of wave 1.
pub fn run(dims: StudyDims, base_seed: u64) -> Vec<ProductionRow> {
    let classes = study_classes(dims);
    let wave2_tasks = (dims.n_tasks / 4).max(1);
    greedy_roster()
        .into_iter()
        .map(|name| {
            let mut gain_mc = OnlineStats::new();
            let mut gain_ms = OnlineStats::new();
            let mut hurt = OnlineStats::new();
            for spec in &classes {
                let wave2_spec = hcs_etcgen::EtcSpec {
                    n_tasks: wave2_tasks,
                    ..*spec
                };
                let results =
                    run_trials_with(base_seed, dims.trials, MapWorkspace::new, |ws, seed| {
                        let wave1 = study_scenario(spec, seed).with_objective(dims.objective);
                        let wave2 = wave2_spec.generate(seed ^ 0x5151_5151);
                        let scenario = ProductionScenario::new(wave1, wave2, Time::ZERO);
                        let mut h = make_heuristic(name, seed);
                        let mut tb = TieBreaker::Deterministic;
                        let out = production::run_in(
                            &scenario,
                            &mut *h,
                            &mut tb,
                            IterativeConfig::default(),
                            ws,
                        );
                        (out.mean_completion_gain(), out.makespan_gain())
                    });
                for (mc, ms) in results {
                    gain_mc.push(mc);
                    gain_ms.push(ms);
                    hurt.push(f64::from(u8::from(mc < 0.0)));
                }
            }
            ProductionRow {
                heuristic: name,
                mean_completion_gain: gain_mc.mean(),
                makespan_gain: gain_ms.mean(),
                hurt_fraction: hurt.mean(),
            }
        })
        .collect()
}

/// Formats X4 as a text table.
pub fn table(rows: &[ProductionRow], dims: StudyDims) -> TextTable {
    let mut t = TextTable::new(vec![
        "heuristic",
        "wave-2 mean-CT gain",
        "wave-2 makespan gain",
        "hurt%",
    ])
    .with_title(format!(
        "X4. Two-wave production scenario — wave 1 {} tasks, wave 2 {} tasks, {} machines, {} trials per class",
        dims.n_tasks,
        (dims.n_tasks / 4).max(1),
        dims.n_machines,
        dims.trials
    ));
    for r in rows {
        t.push_row(vec![
            r.heuristic.to_string(),
            format!("{:+.1}", r.mean_completion_gain),
            format!("{:+.1}", r.makespan_gain),
            format!("{:.1}", r.hurt_fraction * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_tabulates() {
        let dims = StudyDims {
            n_tasks: 12,
            n_machines: 4,
            trials: 2,
            ..StudyDims::default()
        };
        let rows = run(dims, 9);
        assert_eq!(rows.len(), greedy_roster().len());
        let t = table(&rows, dims);
        assert_eq!(t.n_rows(), rows.len());
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.hurt_fraction));
            // Invariant heuristics (Min-Min/MCT/MET, deterministic ties)
            // produce identical availability, hence zero gain.
            if ["Min-Min", "MCT", "MET"].contains(&r.heuristic) {
                assert_eq!(r.mean_completion_gain, 0.0, "{}", r.heuristic);
                assert_eq!(r.makespan_gain, 0.0, "{}", r.heuristic);
            }
        }
    }
}
