//! Workload builders shared by the experiment binaries and benches.

use hcs_core::{Objective, Scenario};
use hcs_etcgen::{braun_classes, EtcSpec};

/// Dimensions for a Monte-Carlo study.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StudyDims {
    /// Tasks per scenario.
    pub n_tasks: usize,
    /// Machines per scenario.
    pub n_machines: usize,
    /// Trials (seeds) per (class, heuristic) cell.
    pub trials: usize,
    /// Objective every trial scenario is scored against (makespan by
    /// default — the paper's setting; `--objective` overrides it).
    pub objective: Objective,
}

impl Default for StudyDims {
    /// Laptop-friendly defaults: enough structure for the phenomena to
    /// show, small enough for quick iteration. The Braun benchmark's
    /// canonical 512×16 remains available via `--tasks 512 --machines 16`.
    fn default() -> Self {
        StudyDims {
            n_tasks: 64,
            n_machines: 8,
            trials: 10,
            objective: Objective::Makespan,
        }
    }
}

/// The twelve Braun classes at the study dimensions.
pub fn study_classes(dims: StudyDims) -> Vec<EtcSpec> {
    braun_classes(dims.n_tasks, dims.n_machines)
}

/// One scenario of a class: the workload of trial `seed`. Initial ready
/// times are zero, as in the paper's setting; the objective is makespan
/// (the studies apply [`StudyDims::objective`] via
/// [`Scenario::with_objective`]).
pub fn study_scenario(spec: &EtcSpec, seed: u64) -> Scenario {
    Scenario::with_zero_ready(spec.generate(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_modest() {
        let d = StudyDims::default();
        assert!(d.n_tasks * d.n_machines <= 1024);
        assert_eq!(study_classes(d).len(), 12);
    }

    #[test]
    fn scenarios_are_seed_deterministic() {
        let spec = study_classes(StudyDims::default())[0];
        assert_eq!(study_scenario(&spec, 3), study_scenario(&spec, 3));
        assert_ne!(study_scenario(&spec, 3), study_scenario(&spec, 4));
    }
}
