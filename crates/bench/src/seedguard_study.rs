//! Experiment X3 — the seeding-guard ablation.
//!
//! The paper's conclusion suggests that "implementing a form of seeding
//! similar to Genitor's seeding to other heuristics would guarantee that a
//! heuristic can never increase makespan from one iteration to the next".
//! `hcs_core::IterativeConfig::seed_guard` implements that suggestion. X3
//! runs every greedy heuristic with and without the guard (random ties —
//! the adversarial setting) and verifies:
//!
//! * with the guard, the makespan-increase frequency drops to zero — this
//!   is a theorem: each round keeps the better of the fresh mapping and
//!   the previous round's mapping restricted to the surviving machines,
//!   and the restriction's makespan never exceeds the previous round's;
//! * the finishing-time reduction with and without the guard, to see what
//!   the safety costs (empirically near nothing; it is not a theorem that
//!   the guard can never lose reduction, since it alters which machines
//!   freeze in later rounds).

use serde::Serialize;

use hcs_analysis::{run_trials_with, OnlineStats, OutcomeMetrics, TextTable};
use hcs_core::{iterative, IterativeConfig, MapWorkspace, TieBreaker};

use crate::roster::{greedy_roster, make_heuristic};
use crate::workloads::{study_classes, study_scenario, StudyDims};

/// Aggregated row for one heuristic.
#[derive(Clone, Debug, Serialize)]
pub struct SeedGuardRow {
    /// Heuristic name.
    pub heuristic: &'static str,
    /// Makespan-increase fraction without the guard.
    pub increase_unguarded: f64,
    /// Makespan-increase fraction with the guard (expected 0).
    pub increase_guarded: f64,
    /// Mean finishing-time reduction (percent) without the guard.
    pub reduction_unguarded_pct: f64,
    /// Mean finishing-time reduction (percent) with the guard.
    pub reduction_guarded_pct: f64,
}

/// Runs X3: one row per greedy heuristic, random ties.
pub fn run(dims: StudyDims, base_seed: u64) -> Vec<SeedGuardRow> {
    let classes = study_classes(dims);
    greedy_roster()
        .into_iter()
        .map(|name| {
            let mut inc_u = OnlineStats::new();
            let mut inc_g = OnlineStats::new();
            let mut red_u = OnlineStats::new();
            let mut red_g = OnlineStats::new();
            for spec in &classes {
                let results =
                    run_trials_with(base_seed, dims.trials, MapWorkspace::new, |ws, seed| {
                        let scenario = study_scenario(spec, seed).with_objective(dims.objective);
                        let run_with = |guard: bool, ws: &mut MapWorkspace| {
                            let mut h = make_heuristic(name, seed);
                            let outcome = iterative::IterativeRun::new(&mut *h, &scenario)
                                .tie_breaker(TieBreaker::random(seed.wrapping_mul(0x9e37_79b9)))
                                .config(IterativeConfig {
                                    seed_guard: guard,
                                    ..IterativeConfig::default()
                                })
                                .workspace(ws)
                                .execute()
                                .unwrap();
                            OutcomeMetrics::from_outcome(&outcome)
                        };
                        (run_with(false, &mut *ws), run_with(true, &mut *ws))
                    });
                for (unguarded, guarded) in results {
                    inc_u.push(f64::from(u8::from(unguarded.makespan_increased)));
                    inc_g.push(f64::from(u8::from(guarded.makespan_increased)));
                    red_u.push(unguarded.mean_finish_reduction * 100.0);
                    red_g.push(guarded.mean_finish_reduction * 100.0);
                }
            }
            SeedGuardRow {
                heuristic: name,
                increase_unguarded: inc_u.mean(),
                increase_guarded: inc_g.mean(),
                reduction_unguarded_pct: red_u.mean(),
                reduction_guarded_pct: red_g.mean(),
            }
        })
        .collect()
}

/// Formats X3 as a text table.
pub fn table(rows: &[SeedGuardRow], dims: StudyDims) -> TextTable {
    let mut t = TextTable::new(vec![
        "heuristic",
        "increase% (no guard)",
        "increase% (guard)",
        "reduction% (no guard)",
        "reduction% (guard)",
    ])
    .with_title(format!(
        "X3. Seeding-guard ablation (random ties) — {} tasks x {} machines, {} trials per class",
        dims.n_tasks, dims.n_machines, dims.trials
    ));
    for r in rows {
        t.push_row(vec![
            r.heuristic.to_string(),
            format!("{:.1}", r.increase_unguarded * 100.0),
            format!("{:.1}", r.increase_guarded * 100.0),
            format!("{:.2}", r.reduction_unguarded_pct),
            format!("{:.2}", r.reduction_guarded_pct),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_eliminates_increases() {
        let dims = StudyDims {
            n_tasks: 12,
            n_machines: 4,
            trials: 2,
            ..StudyDims::default()
        };
        for r in run(dims, 42) {
            assert_eq!(
                r.increase_guarded, 0.0,
                "{}: the guard must make the technique monotone",
                r.heuristic
            );
            assert!(r.reduction_guarded_pct <= 100.0);
            assert!((0.0..=1.0).contains(&r.increase_unguarded));
        }
    }
}
