//! Experiment X6 — the dynamic (on-line) setting SWA and KPB came from.
//!
//! The paper adapts SWA and K-Percent Best from Maheswaran et al. \[14\],
//! where tasks arrive over time and are mapped the moment they arrive. X6
//! replays that context: Poisson arrivals over the Braun classes, mapped
//! on-line by each [`OnlinePolicy`], comparing makespan and mean task
//! completion time. The expected shape (from \[14\]): KPB and SWA track or
//! beat plain MCT on inconsistent workloads (the execution-time subset
//! steers tasks away from machines that are fast *now* but poor matches),
//! while MET degenerates badly on consistent workloads (it floods the
//! globally fastest machine) and OLB wastes heterogeneity.

use serde::Serialize;

use hcs_analysis::{run_trials, OnlineStats, TextTable};
use hcs_core::{MachineId, TieBreaker, Time};
use hcs_sim::{ArrivalProcess, DynamicMapper, OnlinePolicy};

use crate::workloads::{study_classes, study_scenario, StudyDims};

/// The on-line policies X6 compares.
pub fn policy_roster() -> Vec<(&'static str, OnlinePolicy)> {
    vec![
        ("MCT", OnlinePolicy::Mct),
        ("MET", OnlinePolicy::Met),
        ("OLB", OnlinePolicy::Olb),
        ("KPB-70", OnlinePolicy::Kpb { k_percent: 70.0 }),
        (
            "SWA",
            OnlinePolicy::Swa {
                lo: 1.0 / 3.0,
                hi: 0.49,
            },
        ),
    ]
}

/// Aggregated row for one policy.
#[derive(Clone, Debug, Serialize)]
pub struct DynamicRow {
    /// Policy name.
    pub policy: &'static str,
    /// Mean makespan over all classes and trials.
    pub makespan: f64,
    /// Mean of per-trial mean task completion times.
    pub mean_completion: f64,
    /// Makespan normalized to MCT's on the same trials (1.0 = parity).
    pub vs_mct: f64,
}

/// Runs X6: Poisson arrivals sized so the system is moderately loaded
/// (mean inter-arrival = mean ETC / machines · 2).
pub fn run(dims: StudyDims, base_seed: u64) -> Vec<DynamicRow> {
    let classes = study_classes(dims);
    let machines: Vec<MachineId> = (0..dims.n_machines as u32).map(MachineId).collect();

    // Collect per-trial results for every policy, then normalize to MCT.
    let mut per_policy: Vec<(&'static str, OnlineStats, OnlineStats, Vec<f64>)> = policy_roster()
        .into_iter()
        .map(|(name, _)| (name, OnlineStats::new(), OnlineStats::new(), Vec::new()))
        .collect();

    for spec in &classes {
        let results = run_trials(base_seed, dims.trials, |seed| {
            let scenario = study_scenario(spec, seed).with_objective(dims.objective);
            // Moderate load: arrivals spread over about half the serial
            // execution horizon.
            let mean_etc = scenario.etc.mean().get();
            let rate = 2.0 * dims.n_machines as f64 / mean_etc;
            let arrivals = ArrivalProcess::Poisson { rate }.generate(dims.n_tasks, seed);
            policy_roster()
                .into_iter()
                .map(|(_, policy)| {
                    let mapper =
                        DynamicMapper::new(machines.clone(), vec![Time::ZERO; machines.len()]);
                    let mut tb = TieBreaker::Deterministic;
                    let out = mapper.run_policy(&scenario.etc, &arrivals, policy, &mut tb);
                    (out.makespan().get(), out.mean_completion().get())
                })
                .collect::<Vec<_>>()
        });
        for trial in results {
            let mct_ms = trial[0].0; // MCT is first in the roster
            for (slot, &(ms, mc)) in per_policy.iter_mut().zip(&trial) {
                slot.1.push(ms);
                slot.2.push(mc);
                slot.3.push(if mct_ms > 0.0 { ms / mct_ms } else { 1.0 });
            }
        }
    }

    per_policy
        .into_iter()
        .map(|(policy, ms, mc, ratios)| DynamicRow {
            policy,
            makespan: ms.mean(),
            mean_completion: mc.mean(),
            vs_mct: ratios.iter().sum::<f64>() / ratios.len().max(1) as f64,
        })
        .collect()
}

/// Formats X6 as a text table.
pub fn table(rows: &[DynamicRow], dims: StudyDims) -> TextTable {
    let mut t = TextTable::new(vec![
        "policy",
        "mean makespan",
        "mean task CT",
        "makespan vs MCT",
    ])
    .with_title(format!(
        "X6. On-line mapping under Poisson arrivals — {} tasks x {} machines, {} trials per class",
        dims.n_tasks, dims.n_machines, dims.trials
    ));
    for r in rows {
        t.push_row(vec![
            r.policy.to_string(),
            format!("{:.0}", r.makespan),
            format!("{:.0}", r.mean_completion),
            format!("{:.3}", r.vs_mct),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_mct_is_its_own_baseline() {
        let dims = StudyDims {
            n_tasks: 16,
            n_machines: 4,
            trials: 2,
            ..StudyDims::default()
        };
        let rows = run(dims, 3);
        assert_eq!(rows.len(), policy_roster().len());
        let mct = rows.iter().find(|r| r.policy == "MCT").unwrap();
        assert!((mct.vs_mct - 1.0).abs() < 1e-12);
        for r in &rows {
            assert!(r.makespan > 0.0);
            assert!(r.mean_completion > 0.0);
            assert!(r.makespan >= r.mean_completion * 0.5);
        }
    }

    #[test]
    fn met_is_much_worse_than_mct_online() {
        // MET floods the fastest machine; under load its makespan must be
        // well above MCT's.
        let dims = StudyDims {
            n_tasks: 32,
            n_machines: 4,
            trials: 2,
            ..StudyDims::default()
        };
        let rows = run(dims, 11);
        let met = rows.iter().find(|r| r.policy == "MET").unwrap();
        assert!(met.vs_mct > 1.2, "MET vs MCT ratio {}", met.vs_mct);
    }
}
