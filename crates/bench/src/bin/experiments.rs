//! Runs the extended Monte-Carlo experiments X1–X4, X6 and X7 (DESIGN.md).
//!
//! ```text
//! cargo run --release -p hcs-bench --bin experiments \
//!     [-- --exp x1|x2|x3|x4|x6|all] [--tasks N] [--machines M] [--trials T] [--seed S]
//!     [--per-class HEURISTIC] [--objective NAME] [--large] [--json FILE]
//!     [--threads N] [--islands N] [--migration-interval N]
//!
//! With `--json FILE`, every study's raw rows are additionally written as
//! one JSON document (for archiving or downstream plotting). `--large`
//! runs X2 under the canonical Braun-sized GA budget (200 chromosomes,
//! 25 000 steps) instead of the study default — affordable since offspring
//! costing became delta-based.
//! ```
//!
//! Defaults: all experiments, 64 tasks × 8 machines, 10 trials per
//! (class, heuristic) cell, seed 2007. The canonical Braun dimensions are
//! available with `--tasks 512 --machines 16` (slower).

use argflags::value as parse_flag;
use hcs_core::Objective;

use hcs_bench::{
    dynamic_study, genitor_study, makespan_tie_study, production_study, seedguard_study,
    study_genitor_config, study_genitor_config_large, tiebreak_study, try_make_search_heuristic,
    SearchConfigError, SearchKnobs, StudyDims,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exp = parse_flag(&args, "--exp").unwrap_or_else(|| "all".to_string());
    let mut dims = StudyDims::default();
    if let Some(v) = parse_flag(&args, "--tasks") {
        dims.n_tasks = v.parse().expect("--tasks takes an integer");
    }
    if let Some(v) = parse_flag(&args, "--machines") {
        dims.n_machines = v.parse().expect("--machines takes an integer");
    }
    if let Some(v) = parse_flag(&args, "--trials") {
        dims.trials = v.parse().expect("--trials takes an integer");
    }
    if let Some(v) = parse_flag(&args, "--objective") {
        // Reject a misspelled objective before any study burns CPU — the
        // same exit path as an unknown heuristic, never a makespan fallback.
        match Objective::from_name(&v) {
            Ok(o) => dims.objective = o,
            Err(e) => {
                eprintln!("--objective: {e}");
                std::process::exit(2);
            }
        }
    }
    let seed: u64 = parse_flag(&args, "--seed")
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(2007);
    let json_path = parse_flag(&args, "--json");
    let per_class = parse_flag(&args, "--per-class");
    let ga_config = if args.iter().any(|a| a == "--large") {
        study_genitor_config_large()
    } else {
        study_genitor_config()
    };
    let mut knobs = SearchKnobs::default();
    if let Some(v) = parse_flag(&args, "--threads") {
        knobs.threads = v.parse().expect("--threads takes an integer");
    }
    if let Some(v) = parse_flag(&args, "--islands") {
        knobs.islands = v.parse().expect("--islands takes an integer");
    }
    if let Some(v) = parse_flag(&args, "--migration-interval") {
        knobs.migration_interval = v
            .parse()
            .expect("--migration-interval takes an integer (0 disables migration)");
    }
    // Reject unusable parallel knobs before any study burns CPU — the same
    // typed-error exit path as an unknown heuristic or objective.
    if knobs.threads == 0 {
        eprintln!("--threads: {}", SearchConfigError::InvalidThreads);
        std::process::exit(2);
    }
    if knobs.islands == 0 || knobs.islands > ga_config.pop_size {
        let e = SearchConfigError::InvalidIslands {
            islands: knobs.islands,
            pop_size: ga_config.pop_size,
        };
        eprintln!("--islands: {e}");
        std::process::exit(2);
    }
    if let Some(h) = &per_class {
        // Reject a misspelled name before any study burns CPU on X1. The
        // search roster also accepts the parallel engine names here.
        if let Err(e) = try_make_search_heuristic(h, seed, &knobs) {
            eprintln!("--per-class: {e}");
            std::process::exit(2);
        }
    }
    let mut json = serde_json::Map::new();
    json.insert("tasks".into(), dims.n_tasks.into());
    json.insert("machines".into(), dims.n_machines.into());
    json.insert("trials".into(), dims.trials.into());
    json.insert("seed".into(), seed.into());
    json.insert("objective".into(), dims.objective.name().into());

    let run_x1 = exp == "all" || exp == "x1";
    let run_x2 = exp == "all" || exp == "x2";
    let run_x3 = exp == "all" || exp == "x3";
    let run_x4 = exp == "all" || exp == "x4";
    let run_x6 = exp == "all" || exp == "x6";
    let run_x7 = exp == "all" || exp == "x7";
    if !(run_x1 || run_x2 || run_x3 || run_x4 || run_x6 || run_x7) {
        eprintln!("unknown experiment {exp:?}; expected x1, x2, x3, x4, x6, x7 or all");
        std::process::exit(2);
    }

    if run_x1 {
        let rows = tiebreak_study::run(dims, seed);
        println!("{}", tiebreak_study::table(&rows, dims));
        json.insert(
            "x1".into(),
            serde_json::to_value(&rows).expect("serialize x1"),
        );
        if let Some(h) = &per_class {
            let rows = tiebreak_study::run_per_class_with(h, dims, seed, &knobs);
            println!("{}", tiebreak_study::per_class_table(h, &rows, dims));
            json.insert(
                "x1b".into(),
                serde_json::to_value(&rows).expect("serialize x1b"),
            );
        }
        println!(
            "Paper predictions: Min-Min/MCT/MET rows must read 0.0 increase and \
             100.0 identical under deterministic ties (Theorems 3.2.1, 3.3.1, §3.4);\n\
             SWA/KPB/Sufferage may increase even deterministically (§3.5-3.7).\n"
        );
    }
    if run_x2 {
        let rows = genitor_study::run_with_config(dims, seed, ga_config);
        println!("{}", genitor_study::table(&rows, dims));
        json.insert(
            "x2".into(),
            serde_json::to_value(&rows).expect("serialize x2"),
        );
        println!(
            "Paper prediction: the increase column must be 0.0 everywhere — Genitor's \
             seeding keeps or improves every iteration (§3.1).\n"
        );
    }
    if run_x3 {
        let rows = seedguard_study::run(dims, seed);
        println!("{}", seedguard_study::table(&rows, dims));
        json.insert(
            "x3".into(),
            serde_json::to_value(&rows).expect("serialize x3"),
        );
        println!(
            "Paper prediction (conclusion): seeding makes every heuristic monotone — \
             the guarded increase column must be 0.0.\n"
        );
    }
    if run_x6 {
        let rows = dynamic_study::run(dims, seed);
        println!("{}", dynamic_study::table(&rows, dims));
        json.insert(
            "x6".into(),
            serde_json::to_value(&rows).expect("serialize x6"),
        );
        println!(
            "Context: the on-line setting SWA and KPB were designed for (Maheswaran et \
             al. [14]). Expected shape: KPB/SWA track or beat MCT; MET and OLB degrade.\n"
        );
    }
    if run_x7 {
        let rows = makespan_tie_study::run(dims, seed);
        println!("{}", makespan_tie_study::table(&rows, dims));
        json.insert(
            "x7".into(),
            serde_json::to_value(&rows).expect("serialize x7"),
        );
        println!(
            "Ablation of a detail the paper leaves unspecified: which machine freezes \
             when several tie for the makespan. Divergence > 0 means the choice is \
             load-bearing on tie-rich workloads; the theorems' heuristics stay at 0 \
             increase under every rule.\n"
        );
    }
    if run_x4 {
        let rows = production_study::run(dims, seed);
        println!("{}", production_study::table(&rows, dims));
        json.insert(
            "x4".into(),
            serde_json::to_value(&rows).expect("serialize x4"),
        );
        println!(
            "Interpretation: positive gains mean the iterative technique freed machines \
             earlier for the unplanned second wave (the paper's Section 1 motivation).\n"
        );
    }

    if let Some(path) = json_path {
        let doc = serde_json::Value::Object(json);
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("serialize results"),
        )
        .expect("write --json file");
        println!("wrote {path}");
    }
}
