//! Regenerates every table and figure of the paper (experiments E1–E17 in
//! DESIGN.md).
//!
//! ```text
//! cargo run --release -p hcs-bench --bin repro [-- --only <id>]
//! ```
//!
//! `<id>` ∈ {minmin, mct, met, swa, kpb, sufferage}. Without `--only`,
//! all six examples are printed: the reconstructed ETC matrix, the
//! step-by-step allocation tables of the original and first iterative
//! mappings, the Gantt-chart figures, and the verification checklist
//! against the paper's surviving numbers. With `--svg DIR`, the figures
//! are additionally written as standalone SVG files into `DIR`.

use argflags::value as flag;
use hcs_paper::examples::{all_examples, example_by_id, ExampleHeuristic, PaperExample};
use hcs_paper::{figures, tables, verify_example};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let only = flag(&args, "--only");
    let svg_dir = flag(&args, "--svg");

    let only_all = only.is_none();
    let examples: Vec<PaperExample> = match only {
        Some(id) => match example_by_id(&id) {
            Some(e) => vec![e],
            None => {
                eprintln!("unknown example id {id:?}; expected one of: minmin, mct, met, swa, kpb, sufferage");
                std::process::exit(2);
            }
        },
        None => all_examples(),
    };

    for example in &examples {
        print_example(example);
        if let Some(dir) = &svg_dir {
            export_svg(example, dir);
        }
    }

    if only_all {
        print_maxmin_extension();
    }
}

/// Prints the extension counterexample (EXPERIMENTS.md X1 finding): a
/// Max-Min instance whose makespan increases with deterministic ties.
fn print_maxmin_extension() {
    use hcs_paper::extensions::maxmin_counterexample;
    let rule = "=".repeat(78);
    println!("{rule}");
    println!("Extension: Max-Min increasing makespan with deterministic ties");
    println!("(not in the paper; discovered by this reproduction — see EXPERIMENTS.md X1)");
    println!("{rule}\n");
    let (etc, outcome) = maxmin_counterexample();
    println!("ETC matrix (integer workload found by seeded search):");
    for t in etc.tasks() {
        let row: Vec<String> = etc.row(t).iter().map(ToString::to_string).collect();
        println!("  {t}: [{}]", row.join(", "));
    }
    println!(
        "\nmakespan: {} -> {} across {} rounds (deterministic ties)\n",
        outcome.original_makespan(),
        outcome.final_makespan(),
        outcome.rounds.len()
    );
}

/// Writes the example's original and first-iterative Gantt charts as SVG.
fn export_svg(example: &PaperExample, dir: &str) {
    use hcs_sim::Gantt;
    std::fs::create_dir_all(dir).expect("create SVG output directory");
    let scenario = example.scenario();
    let outcome = example.run();
    let (_, _, _, f_orig, f_iter) = numbering(example);
    for (round, figure_no) in outcome.rounds.iter().take(2).zip([f_orig, f_iter]) {
        let gantt = Gantt::from_mapping(
            &round.mapping,
            &scenario.etc,
            &scenario.initial_ready,
            &round.machines,
        );
        let title = format!("{figure_no} ({})", example.id);
        let file = format!(
            "{dir}/{}_{}.svg",
            example.id,
            figure_no.to_lowercase().replace(' ', "_")
        );
        std::fs::write(&file, gantt.to_svg(&title)).expect("write SVG figure");
        println!("wrote {file}");
    }
}

/// The paper's table/figure numbers for each example, in print order:
/// (ETC table, original table, iterative table, original figure, iterative
/// figure).
fn numbering(
    e: &PaperExample,
) -> (
    &'static str,
    &'static str,
    &'static str,
    &'static str,
    &'static str,
) {
    match e.id {
        "minmin" => ("Table 1", "Table 2", "Table 3", "Figure 3", "Figure 4"),
        "mct" => ("Table 4", "Table 5", "Table 6", "Figure 6", "Figure 7"),
        "met" => (
            "Table 4 (shared)",
            "Table 7",
            "Table 8",
            "Figure 9",
            "Figure 10",
        ),
        "swa" => ("Table 9", "Table 10", "Table 11", "Figure 11", "Figure 12"),
        "kpb" => ("Table 12", "Table 13", "Table 14", "Figure 15", "Figure 16"),
        "sufferage" => ("Table 15", "Table 16", "Table 17", "Figure 18", "Figure 19"),
        _ => ("?", "?", "?", "?", "?"),
    }
}

fn print_example(example: &PaperExample) {
    let (t_etc, t_orig, t_iter, f_orig, f_iter) = numbering(example);
    let rule = "=".repeat(78);
    println!("{rule}");
    println!("{}", example.title);
    println!("{rule}\n");

    println!(
        "{}",
        tables::etc_table(example, &format!("{t_etc}. Reconstructed ETC matrix"))
    );

    let outcome = example.run();
    let original = &outcome.rounds[0];

    match example.heuristic {
        ExampleHeuristic::Swa => {
            println!(
                "{}",
                tables::swa_table(
                    example,
                    original,
                    &format!("{t_orig}. Original mapping (SWA)")
                )
            );
        }
        ExampleHeuristic::Kpb => {
            println!(
                "{}",
                tables::kpb_table(
                    example,
                    original,
                    &format!("{t_orig}. Original mapping (KPB)")
                )
            );
        }
        ExampleHeuristic::Sufferage => {
            println!(
                "{}",
                tables::sufferage_table(
                    example,
                    original,
                    &format!("{t_orig}. Original mapping (Sufferage passes)")
                )
            );
        }
        _ => {
            println!(
                "{}",
                tables::allocation_table(example, original, &format!("{t_orig}. Original mapping"))
            );
        }
    }

    if outcome.rounds.len() > 1 {
        let first_iter = &outcome.rounds[1];
        match example.heuristic {
            ExampleHeuristic::Swa => println!(
                "{}",
                tables::swa_table(
                    example,
                    first_iter,
                    &format!("{t_iter}. First iterative mapping (SWA)")
                )
            ),
            ExampleHeuristic::Kpb => println!(
                "{}",
                tables::kpb_table(
                    example,
                    first_iter,
                    &format!("{t_iter}. First iterative mapping (KPB)")
                )
            ),
            ExampleHeuristic::Sufferage => println!(
                "{}",
                tables::sufferage_table(
                    example,
                    first_iter,
                    &format!("{t_iter}. First iterative mapping (Sufferage passes)")
                )
            ),
            _ => println!(
                "{}",
                tables::allocation_table(
                    example,
                    first_iter,
                    &format!("{t_iter}. First iterative mapping")
                )
            ),
        }
    }

    let (fig_orig, fig_iter) = figures::figure_pair(example);
    println!("{f_orig}. {fig_orig}");
    println!("{f_iter}. {fig_iter}");

    println!("Verification against the paper's surviving numbers:");
    let report = verify_example(example);
    for (desc, ok) in &report.checks {
        println!("  [{}] {desc}", if *ok { "ok" } else { "FAIL" });
    }
    println!(
        "  => {}\n",
        if report.all_ok() {
            "all constraints satisfied"
        } else {
            "RECONSTRUCTION MISMATCH"
        }
    );
    println!("Reconstruction notes: {}\n", example.notes);
}
