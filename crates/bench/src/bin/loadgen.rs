//! Load generator for the `hcs-service` mapping daemon.
//!
//! ```text
//! cargo run --release -p hcs-bench --bin loadgen
//!     [-- --smoke] [--tasks N] [--machines M] [--instances K] [--clients C]
//!     [--warm-repeats R] [--heuristic NAME] [--out BENCH_service.json]
//! ```
//!
//! Starts an in-process daemon (ephemeral port), drives it with `C`
//! concurrent TCP clients, and measures two regimes per worker count
//! (1, 4, 8):
//!
//! * **cold** — `K` distinct instances, each seen for the first time, so
//!   every request is computed by a worker;
//! * **warm** — the same `K` instances re-sent `R` times, so every request
//!   is answered from the digest cache.
//!
//! Results (client-side throughput and latency percentiles, plus the
//! daemon's own `STATS` counters and registry-side latency percentiles)
//! are written to `BENCH_service.json`. `--smoke` runs one tiny round —
//! including fetching `METRICS` and validating the Prometheus exposition —
//! and exits non-zero on any invariant violation; used as the CI smoke
//! test.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use argflags::{present, value as parse_flag};
use hcs_core::Scenario;
use hcs_etcgen::{Consistency, EtcSpec, Heterogeneity};
use hcs_service::json::{ObjectBuilder, Value};
use hcs_service::{MapRequest, ServeConfig, Server};

struct LoadSpec {
    tasks: usize,
    machines: usize,
    instances: usize,
    clients: usize,
    warm_repeats: usize,
    heuristic: String,
}

/// One measured regime (cold or warm).
struct RegimeResult {
    requests: usize,
    seconds: f64,
    latencies_us: Vec<u64>,
}

impl RegimeResult {
    fn throughput_rps(&self) -> f64 {
        self.requests as f64 / self.seconds.max(1e-9)
    }

    fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let n = self.latencies_us.len();
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as usize;
        self.latencies_us[rank.min(n) - 1]
    }

    fn to_json(&self) -> Value {
        ObjectBuilder::new()
            .field("requests", Value::Number(self.requests as f64))
            .field("seconds", Value::Number(self.seconds))
            .field("throughput_rps", Value::Number(self.throughput_rps()))
            .field("p50_us", Value::Number(self.percentile_us(50.0) as f64))
            .field("p95_us", Value::Number(self.percentile_us(95.0) as f64))
            .field("p99_us", Value::Number(self.percentile_us(99.0) as f64))
            .build()
    }
}

/// Builds `K` distinct request lines (one Braun-class instance per seed).
fn build_lines(spec: &LoadSpec) -> Vec<String> {
    (0..spec.instances)
        .map(|i| {
            let etc = EtcSpec::braun(
                spec.tasks,
                spec.machines,
                Consistency::Inconsistent,
                Heterogeneity::Hi,
                Heterogeneity::Hi,
            )
            .generate(1000 + i as u64);
            MapRequest {
                scenario: Scenario::with_zero_ready(etc),
                heuristic: spec.heuristic.clone(),
                random_ties: None,
                iterative: true,
                guard: false,
                sleep_ms: 0,
            }
            .to_line()
        })
        .collect()
}

/// Sends every line in `work` once over one connection; returns per-request
/// latencies in µs. Panics on any non-`ok` reply (loadgen sends only valid,
/// distinct-instance requests, so rejections would corrupt the measurement).
fn drive_client(addr: SocketAddr, work: &[String]) -> Vec<u64> {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut latencies = Vec::with_capacity(work.len());
    let mut reply = String::new();
    for line in work {
        let start = Instant::now();
        stream.write_all(line.as_bytes()).expect("send request");
        stream.write_all(b"\n").expect("send newline");
        reply.clear();
        reader.read_line(&mut reply).expect("read reply");
        latencies.push(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        assert!(
            reply.contains("\"ok\":true"),
            "daemon refused a loadgen request: {reply}"
        );
    }
    latencies
}

/// Fans `lines` out over `clients` connections (each client gets a
/// contiguous slice, repeated `repeats` times) and measures the regime.
fn run_regime(addr: SocketAddr, lines: &[String], clients: usize, repeats: usize) -> RegimeResult {
    let start = Instant::now();
    let chunk = lines.len().div_ceil(clients.max(1));
    let mut latencies_us: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = lines
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || {
                    let mut all = Vec::new();
                    for _ in 0..repeats {
                        all.extend(drive_client(addr, slice));
                    }
                    all
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let seconds = start.elapsed().as_secs_f64();
    latencies_us.sort_unstable();
    RegimeResult {
        requests: latencies_us.len(),
        seconds,
        latencies_us,
    }
}

/// One request/reply against a verb op (`stats`, `metrics`, …).
fn fetch_verb(addr: SocketAddr, op: &str) -> Value {
    let mut stream = TcpStream::connect(addr).expect("connect for verb");
    stream
        .write_all(format!("{{\"op\":\"{op}\"}}\n").as_bytes())
        .expect("send verb");
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read verb reply");
    hcs_service::json::parse(reply.trim_end()).expect("parse verb reply")
}

/// Fetches `STATS` and checks the accounting invariant; returns the parsed
/// stats object.
fn fetch_and_check_stats(addr: SocketAddr) -> Value {
    let parsed = fetch_verb(addr, "stats");
    let stats = parsed.get("stats").expect("stats object").clone();
    let count = |k: &str| stats.get(k).and_then(Value::as_u64).unwrap_or(0);
    assert_eq!(
        count("submitted"),
        count("served") + count("cache_hits") + count("rejected"),
        "stats invariant violated: {stats}"
    );
    stats
}

/// Fetches `METRICS` and runs the strict Prometheus-text validator over
/// the exposition, panicking on any malformed line or missing `# TYPE`.
fn fetch_and_validate_metrics(addr: SocketAddr) {
    let parsed = fetch_verb(addr, "metrics");
    let text = parsed
        .get("metrics")
        .and_then(Value::as_str)
        .expect("metrics payload")
        .to_string();
    hcs_core::obs::validate_prometheus(&text)
        .unwrap_or_else(|e| panic!("invalid Prometheus exposition: {e}"));
    assert!(
        text.contains("# TYPE hcs_request_latency_us histogram"),
        "metrics must expose the latency histogram"
    );
}

/// One full measurement at a given worker count. Returns the run's JSON
/// record and the warm/cold throughput ratio.
fn bench_workers(spec: &LoadSpec, workers: usize) -> (Value, f64) {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_depth: 1024,
        // Cache must hold every distinct instance for the warm pass to be
        // all hits.
        cache_capacity: spec.instances.max(16) * 2,
        cache_shards: 8,
        // Tracing off: per-request ring writes would perturb the numbers.
        trace_capacity: 0,
    })
    .expect("start daemon");
    let addr = server.local_addr();
    let lines = build_lines(spec);

    let cold = run_regime(addr, &lines, spec.clients, 1);
    let warm = run_regime(addr, &lines, spec.clients, spec.warm_repeats);
    let stats = fetch_and_check_stats(addr);
    fetch_and_validate_metrics(addr);

    let hits = stats.get("cache_hits").and_then(Value::as_u64).unwrap_or(0);
    assert_eq!(
        hits as usize, warm.requests,
        "warm pass should be answered entirely from cache"
    );

    server.stop();
    server.join();

    let ratio = warm.throughput_rps() / cold.throughput_rps().max(1e-9);
    // The daemon's own registry-side latency percentiles (server view:
    // excludes client/network time), surfaced per worker count so the
    // bench record captures both ends of the wire.
    let daemon_latency = |p: &str| {
        stats
            .get("latency")
            .and_then(|l| l.get(p))
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
    };
    let record = ObjectBuilder::new()
        .field("workers", Value::Number(workers as f64))
        .field("cold", cold.to_json())
        .field("warm", warm.to_json())
        .field("warm_over_cold", Value::Number(ratio))
        .field("latency_p50_us", Value::Number(daemon_latency("p50_us")))
        .field("latency_p95_us", Value::Number(daemon_latency("p95_us")))
        .field("latency_p99_us", Value::Number(daemon_latency("p99_us")))
        .field("stats", stats)
        .build();
    (record, ratio)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = present(&args, "--smoke");
    let uint = |name: &str, default: usize| {
        parse_flag(&args, name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("{name} takes an integer"))
            })
            .unwrap_or(default)
    };
    let spec = LoadSpec {
        // Default sizes keep the cold pass compute-bound (iterative
        // mapping is O(t^2·m) per instance) while warm requests only pay
        // parse + digest (O(t·m)) — that separation is what the cache is
        // for, and what the >= 5x acceptance bound below measures.
        tasks: uint("--tasks", if smoke { 16 } else { 320 }),
        machines: uint("--machines", 8),
        instances: uint("--instances", if smoke { 8 } else { 32 }),
        clients: uint("--clients", if smoke { 2 } else { 8 }),
        warm_repeats: uint("--warm-repeats", if smoke { 2 } else { 8 }),
        heuristic: parse_flag(&args, "--heuristic").unwrap_or_else(|| "min-min".into()),
    };
    let out_path = parse_flag(&args, "--out").unwrap_or_else(|| "BENCH_service.json".to_string());

    if smoke {
        let (record, ratio) = bench_workers(&spec, 2);
        println!("smoke ok: {record}");
        println!("warm/cold throughput ratio: {ratio:.1}x");
        return;
    }

    let mut runs = Vec::new();
    let mut worst_ratio = f64::INFINITY;
    for workers in [1usize, 4, 8] {
        let (record, ratio) = bench_workers(&spec, workers);
        println!(
            "workers={workers}: cold {:>8.1} rps, warm {:>10.1} rps ({ratio:.1}x)",
            record
                .get("cold")
                .and_then(|c| c.get("throughput_rps"))
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            record
                .get("warm")
                .and_then(|w| w.get("throughput_rps"))
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
        );
        worst_ratio = worst_ratio.min(ratio);
        runs.push(record);
    }

    let doc = ObjectBuilder::new()
        .field(
            "config",
            ObjectBuilder::new()
                .field("tasks", Value::Number(spec.tasks as f64))
                .field("machines", Value::Number(spec.machines as f64))
                .field("instances", Value::Number(spec.instances as f64))
                .field("clients", Value::Number(spec.clients as f64))
                .field("warm_repeats", Value::Number(spec.warm_repeats as f64))
                .field("heuristic", Value::String(spec.heuristic.clone()))
                .build(),
        )
        .field("runs", Value::Array(runs))
        .field("min_warm_over_cold", Value::Number(worst_ratio))
        .build();
    std::fs::write(&out_path, format!("{doc}\n")).expect("write results");
    println!("wrote {out_path}");
    assert!(
        worst_ratio >= 5.0,
        "cache should make warm throughput >= 5x cold (got {worst_ratio:.1}x)"
    );
}
