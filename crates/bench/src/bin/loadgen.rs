//! Load generator for the `hcs-service` mapping daemon.
//!
//! ```text
//! cargo run --release -p hcs-bench --bin loadgen
//!     [-- --smoke] [--tasks N] [--machines M] [--instances K] [--clients C]
//!     [--warm-repeats R] [--heuristic NAME] [--objective NAME]
//!     [--out BENCH_service.json]
//! ```
//!
//! Starts an in-process daemon (ephemeral port), drives it with `C`
//! concurrent TCP clients, and measures two regimes per worker count
//! (1, 4, 8):
//!
//! * **cold** — `K` distinct instances, each seen for the first time, so
//!   every request is computed by a worker;
//! * **warm** — the same `K` instances re-sent `R` times, so every request
//!   is answered from the digest cache.
//!
//! A third measurement compares **batch** against single-request
//! throughput: the same latency-bound instances (fixed `sleep_ms` of
//! service time each) are sent once as individual `map` lines and once as
//! `map_batch` lines (fresh daemon each pass, so neither is answered from
//! cache), at 8 workers. With few clients, single requests leave most
//! workers idle — one request in flight per connection — while a batch
//! line fans across the whole pool, which is the point of the verb.
//!
//! Results (client-side throughput and latency percentiles, plus the
//! daemon's own `STATS` counters and registry-side latency percentiles)
//! are merged into `BENCH_service.json` — sections the current run does
//! not redefine are preserved. `--smoke` runs one tiny round — including
//! fetching `METRICS` and validating the Prometheus exposition, a small
//! batch-vs-single pass, and an `hcs-client` retry exercise against a
//! daemon injecting faults into 20% of requests — and exits non-zero on
//! any invariant violation; used as the CI smoke test.
//!
//! `--fleet N` switches to the sharded-fleet benchmark: it spins fleets
//! of in-process daemons (every node count in {1, 2, 4, 8} up to `N`),
//! routes the workload through the consistent-hash [`FleetClient`], and
//! records scaling efficiency and per-node cache hit rates into the
//! `"fleet"` section — each run now also records the fleet-merged
//! queue-wait p95 and ring-imbalance statistics (min/max/CV of per-node
//! `submitted`, with a loud warning if any node saw zero requests).
//! `--fleet N --smoke` instead asserts the routing invariants (>= 90% of
//! keys stay put when one of 16 ring nodes is removed), drives a live
//! fleet end-to-end (asserting the imbalance CV is finite), and proves
//! failover absorbs a fault-injecting node.
//!
//! `--trace-smoke` runs the request-correlation smoke: a 2-node tracing
//! fleet driven under known rids, each rid's `TRACE` reply reconstructing
//! its end-to-end timeline, and the merged fleet `METRICS` exposition
//! passing the strict Prometheus validator.
//!
//! `--connections N` switches to the connection-scaling benchmark for the
//! event-driven front end: per worker count (1, 4, 8) it measures MAP
//! latency on an otherwise empty daemon and again with `N` held-open idle
//! connections, recording both into the `"connections"` section.
//! `--serve-bin PATH` runs each daemon as a child process (required near
//! `N` = 10k, so daemon and loadgen fds live in separate processes);
//! `--pre-bin PATH` additionally measures a pre-refactor binary for the
//! regression comparison. `--connections N --smoke` holds `N` idle
//! connections against one in-process daemon and asserts MAP p99 stays
//! under 200 ms and the event-loop gauges count them.
//!
//! `--oversized-check` is the CI negative check: it asserts a daemon
//! capped at a small `--max-line-bytes` answers an over-limit request
//! with the typed 400 parse error (connection surviving), then exits 2.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use argflags::{present, value as parse_flag};
use hcs_bench::benchdoc::merge_preserving;
use hcs_client::fleet::{FleetClient, FleetConfig, HashRing};
use hcs_core::{Objective, Scenario};
use hcs_etcgen::{Consistency, EtcSpec, Heterogeneity};
use hcs_service::json::{ObjectBuilder, Value};
use hcs_service::{MapRequest, ServeConfig, Server, ShardIdentity};

struct LoadSpec {
    tasks: usize,
    machines: usize,
    instances: usize,
    clients: usize,
    warm_repeats: usize,
    heuristic: String,
    objective: Objective,
}

/// One measured regime (cold or warm).
struct RegimeResult {
    requests: usize,
    seconds: f64,
    latencies_us: Vec<u64>,
}

impl RegimeResult {
    fn throughput_rps(&self) -> f64 {
        self.requests as f64 / self.seconds.max(1e-9)
    }

    fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let n = self.latencies_us.len();
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as usize;
        self.latencies_us[rank.min(n) - 1]
    }

    fn to_json(&self) -> Value {
        ObjectBuilder::new()
            .field("requests", Value::Number(self.requests as f64))
            .field("seconds", Value::Number(self.seconds))
            .field("throughput_rps", Value::Number(self.throughput_rps()))
            .field("p50_us", Value::Number(self.percentile_us(50.0) as f64))
            .field("p95_us", Value::Number(self.percentile_us(95.0) as f64))
            .field("p99_us", Value::Number(self.percentile_us(99.0) as f64))
            .build()
    }
}

/// Builds `K` distinct request lines (one Braun-class instance per seed).
fn build_lines(spec: &LoadSpec) -> Vec<String> {
    (0..spec.instances)
        .map(|i| {
            let etc = EtcSpec::braun(
                spec.tasks,
                spec.machines,
                Consistency::Inconsistent,
                Heterogeneity::Hi,
                Heterogeneity::Hi,
            )
            .generate(1000 + i as u64);
            MapRequest {
                scenario: Scenario::with_zero_ready(etc).with_objective(spec.objective),
                heuristic: spec.heuristic.clone(),
                random_ties: None,
                iterative: true,
                guard: false,
                sleep_ms: 0,
                rid: None,
            }
            .to_line()
        })
        .collect()
}

/// Sends every line in `work` once over one connection; returns per-request
/// latencies in µs. Panics on any non-`ok` reply (loadgen sends only valid,
/// distinct-instance requests, so rejections would corrupt the measurement).
fn drive_client(addr: SocketAddr, work: &[String]) -> Vec<u64> {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut latencies = Vec::with_capacity(work.len());
    let mut reply = String::new();
    for line in work {
        let start = Instant::now();
        stream.write_all(line.as_bytes()).expect("send request");
        stream.write_all(b"\n").expect("send newline");
        reply.clear();
        reader.read_line(&mut reply).expect("read reply");
        latencies.push(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        assert!(
            reply.contains("\"ok\":true"),
            "daemon refused a loadgen request: {reply}"
        );
    }
    latencies
}

/// Fans `lines` out over `clients` connections (each client gets a
/// contiguous slice, repeated `repeats` times) and measures the regime.
fn run_regime(addr: SocketAddr, lines: &[String], clients: usize, repeats: usize) -> RegimeResult {
    let start = Instant::now();
    let chunk = lines.len().div_ceil(clients.max(1));
    let mut latencies_us: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = lines
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || {
                    let mut all = Vec::new();
                    for _ in 0..repeats {
                        all.extend(drive_client(addr, slice));
                    }
                    all
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let seconds = start.elapsed().as_secs_f64();
    latencies_us.sort_unstable();
    RegimeResult {
        requests: latencies_us.len(),
        seconds,
        latencies_us,
    }
}

/// One request/reply against a verb op (`stats`, `metrics`, …).
fn fetch_verb(addr: SocketAddr, op: &str) -> Value {
    let mut stream = TcpStream::connect(addr).expect("connect for verb");
    stream
        .write_all(format!("{{\"op\":\"{op}\"}}\n").as_bytes())
        .expect("send verb");
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read verb reply");
    hcs_service::json::parse(reply.trim_end()).expect("parse verb reply")
}

/// Fetches `STATS` and checks the accounting invariant; returns the parsed
/// stats object.
fn fetch_and_check_stats(addr: SocketAddr) -> Value {
    let parsed = fetch_verb(addr, "stats");
    let stats = parsed.get("stats").expect("stats object").clone();
    let count = |k: &str| stats.get(k).and_then(Value::as_u64).unwrap_or(0);
    assert_eq!(
        count("submitted"),
        count("served") + count("cache_hits") + count("rejected"),
        "stats invariant violated: {stats}"
    );
    stats
}

/// Fetches `METRICS` and runs the strict Prometheus-text validator over
/// the exposition, panicking on any malformed line or missing `# TYPE`.
fn fetch_and_validate_metrics(addr: SocketAddr) {
    let parsed = fetch_verb(addr, "metrics");
    let text = parsed
        .get("metrics")
        .and_then(Value::as_str)
        .expect("metrics payload")
        .to_string();
    hcs_core::obs::validate_prometheus(&text)
        .unwrap_or_else(|e| panic!("invalid Prometheus exposition: {e}"));
    assert!(
        text.contains("# TYPE hcs_request_latency_us histogram"),
        "metrics must expose the latency histogram"
    );
}

/// One full measurement at a given worker count. Returns the run's JSON
/// record and the warm/cold throughput ratio.
fn bench_workers(spec: &LoadSpec, workers: usize) -> (Value, f64) {
    let config = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .workers(workers)
        .queue_depth(1024)
        // Cache must hold every distinct instance for the warm pass to be
        // all hits.
        .cache_capacity(spec.instances.max(16) * 2)
        .cache_shards(8)
        // Tracing off: per-request ring writes would perturb the numbers.
        .trace_capacity(0)
        .build()
        .expect("valid config");
    let server = Server::start(config).expect("start daemon");
    let addr = server.local_addr();
    let lines = build_lines(spec);

    let cold = run_regime(addr, &lines, spec.clients, 1);
    let warm = run_regime(addr, &lines, spec.clients, spec.warm_repeats);
    let stats = fetch_and_check_stats(addr);
    fetch_and_validate_metrics(addr);

    let hits = stats.get("cache_hits").and_then(Value::as_u64).unwrap_or(0);
    assert_eq!(
        hits as usize, warm.requests,
        "warm pass should be answered entirely from cache"
    );

    server.stop();
    server.join();

    let ratio = warm.throughput_rps() / cold.throughput_rps().max(1e-9);
    // The daemon's own registry-side latency percentiles (server view:
    // excludes client/network time), surfaced per worker count so the
    // bench record captures both ends of the wire.
    let daemon_latency = |p: &str| {
        stats
            .get("latency")
            .and_then(|l| l.get(p))
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
    };
    let record = ObjectBuilder::new()
        .field("workers", Value::Number(workers as f64))
        .field("cold", cold.to_json())
        .field("warm", warm.to_json())
        .field("warm_over_cold", Value::Number(ratio))
        .field("latency_p50_us", Value::Number(daemon_latency("p50_us")))
        .field("latency_p95_us", Value::Number(daemon_latency("p95_us")))
        .field("latency_p99_us", Value::Number(daemon_latency("p99_us")))
        .field("stats", stats)
        .build();
    (record, ratio)
}

/// Builds `items` distinct requests for the batch comparison and the
/// fault smoke. The heuristic choice controls per-item compute: the batch
/// comparison wants compute-bound items (worker parallelism is what the
/// verb buys), the fault smoke wants cheap ones.
fn build_batch_requests(
    tasks: usize,
    machines: usize,
    items: usize,
    heuristic: &str,
    sleep_ms: u64,
) -> Vec<MapRequest> {
    (0..items)
        .map(|i| {
            let etc = EtcSpec::braun(
                tasks,
                machines,
                Consistency::Inconsistent,
                Heterogeneity::Hi,
                Heterogeneity::Hi,
            )
            .generate(5000 + i as u64);
            MapRequest {
                scenario: Scenario::with_zero_ready(etc),
                heuristic: heuristic.into(),
                random_ties: None,
                iterative: false,
                guard: false,
                sleep_ms,
                rid: None,
            }
        })
        .collect()
}

/// Batch-vs-single throughput at a fixed worker count. Each pass gets a
/// fresh daemon so the second never rides the first's cache. Returns the
/// JSON record and the batch/single per-item throughput ratio.
fn bench_batch(
    tasks: usize,
    machines: usize,
    items: usize,
    batch_size: usize,
    clients: usize,
    workers: usize,
    sleep_ms: u64,
) -> (Value, f64) {
    // Latency-bound items: each request carries a fixed `sleep_ms` of
    // service time (the protocol's load-modeling knob), padding the
    // µs-scale greedy kernel up to a service time that dwarfs parse and
    // framing. What MAP_BATCH buys is *dispatch concurrency* — a
    // single-request client keeps one worker busy per connection, while
    // one batch line occupies the whole pool at once — and latency-bound
    // items measure exactly that, with the same numbers on a one-core CI
    // box as on a desktop. Compute-bound items would instead measure the
    // host's core count: on a single CPU they serialize no matter how
    // the daemon dispatches them.
    let requests = build_batch_requests(tasks, machines, items, "min-min", sleep_ms);
    let start_server = || {
        let config = ServeConfig::builder()
            .addr("127.0.0.1:0")
            .workers(workers)
            .queue_depth(1024)
            .cache_capacity(items.max(16) * 2)
            .cache_shards(8)
            .trace_capacity(0)
            .build()
            .expect("valid config");
        Server::start(config).expect("start daemon")
    };

    // Pass 1: every instance as its own `map` line.
    let server = start_server();
    let single_lines: Vec<String> = requests.iter().map(MapRequest::to_line).collect();
    let single = run_regime(server.local_addr(), &single_lines, clients, 1);
    server.stop();
    server.join();

    // Pass 2: the same instances as `map_batch` lines, fresh daemon.
    let server = start_server();
    let batch_lines: Vec<String> = requests
        .chunks(batch_size)
        .map(hcs_service::batch_line)
        .collect();
    let batch = run_regime(server.local_addr(), &batch_lines, clients, 1);
    let stats = fetch_and_check_stats(server.local_addr());
    let count = |k: &str| stats.get(k).and_then(Value::as_u64).unwrap_or(0);
    assert_eq!(count("batched") as usize, batch_lines.len());
    assert_eq!(count("batch_items") as usize, items);
    assert_eq!(count("cache_hits"), 0, "distinct instances never hit");
    server.stop();
    server.join();

    // Throughput is compared per *item*, not per line.
    let single_rps = single.throughput_rps();
    let batch_items_rps = items as f64 / batch.seconds.max(1e-9);
    let ratio = batch_items_rps / single_rps.max(1e-9);
    let record = ObjectBuilder::new()
        .field("workers", Value::Number(workers as f64))
        .field("batch_size", Value::Number(batch_size as f64))
        .field("items", Value::Number(items as f64))
        .field("sleep_ms", Value::Number(sleep_ms as f64))
        .field("single", single.to_json())
        .field(
            "batch",
            ObjectBuilder::new()
                .field("lines", Value::Number(batch.requests as f64))
                .field("seconds", Value::Number(batch.seconds))
                .field("throughput_rps", Value::Number(batch_items_rps))
                .field(
                    "p50_line_us",
                    Value::Number(batch.percentile_us(50.0) as f64),
                )
                .field(
                    "p95_line_us",
                    Value::Number(batch.percentile_us(95.0) as f64),
                )
                .build(),
        )
        .field("batch_over_single", Value::Number(ratio))
        .build();
    (record, ratio)
}

/// Smoke-only: drives a daemon that injects faults into 20% of requests
/// through the `hcs-client` retry machinery — every request (single and
/// batch) must eventually succeed, and the daemon's counters must show
/// that faults actually fired and were absorbed.
fn smoke_fault_retry(tasks: usize, machines: usize) {
    let config = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .workers(2)
        .queue_depth(64)
        .cache_capacity(128)
        .cache_shards(4)
        .trace_capacity(0)
        .fault_rate(0.2)
        .fault_seed(7)
        .build()
        .expect("valid config");
    let server = Server::start(config).expect("start faulty daemon");
    let addr = server.local_addr().to_string();
    let mut client = hcs_client::Client::with_config(
        &addr,
        hcs_client::ClientConfig {
            retries: 8,
            backoff_base: std::time::Duration::from_millis(1),
            backoff_max: std::time::Duration::from_millis(10),
            ..hcs_client::ClientConfig::default()
        },
    );

    let singles = build_batch_requests(tasks, machines, 40, "min-min", 0);
    for (i, request) in singles.iter().enumerate() {
        client
            .map(request)
            .unwrap_or_else(|e| panic!("fault-smoke single {i} failed: {e}"));
    }
    let batch: Vec<MapRequest> = build_batch_requests(tasks + 1, machines, 16, "min-min", 0);
    let results = client
        .map_batch(&batch)
        .expect("fault-smoke batch exchange");
    for (i, result) in results.iter().enumerate() {
        assert!(result.is_ok(), "fault-smoke batch item {i}: {result:?}");
    }

    let stats = client.stats().expect("stats through the client");
    let count = |k: &str| stats.get(k).and_then(Value::as_u64).unwrap_or(0);
    assert!(count("faults") > 0, "fault rate 0.2 never fired: {stats}");
    assert!(count("batched") >= 1);
    assert!(count("batch_items") >= 16);
    assert_eq!(
        count("submitted"),
        count("served") + count("cache_hits") + count("rejected"),
        "stats invariant violated under faults: {stats}"
    );
    println!(
        "fault smoke ok: {} faults absorbed over {} submissions",
        count("faults"),
        count("submitted")
    );
    server.stop();
    server.join();
}

/// Opens and holds `n` idle connections against a daemon (the
/// connection-scaling axis: sockets that cost the event loop one slab
/// entry each and nothing else).
fn open_idle_connections(addr: SocketAddr, n: usize) -> Vec<TcpStream> {
    (0..n)
        .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle connection {i}: {e}")))
        .collect()
}

/// Blocks until the daemon reports at least `n` open connections. A
/// connect storm needs this barrier: the kernel completes TCP handshakes
/// into the listen backlog before the daemon has accepted and registered
/// the sockets, so measuring immediately would overlap the accept burst.
fn wait_for_open_connections(addr: SocketAddr, n: usize) {
    let deadline = Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let parsed = fetch_verb(addr, "stats");
        let open = parsed
            .get("stats")
            .and_then(|s| s.get("open_connections"))
            .and_then(Value::as_u64)
            .unwrap_or(0);
        if open >= n as u64 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never registered {n} connections (stuck at {open})"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

/// A daemon running as a child process — the 10k-connection run needs the
/// daemon's file descriptors in a separate process from the load
/// generator's, or the combined count blows the per-process fd limit.
struct ChildDaemon {
    child: std::process::Child,
    stdout: BufReader<std::process::ChildStdout>,
    addr: SocketAddr,
}

impl ChildDaemon {
    /// Spawns `bin serve` on an ephemeral port and parses the bound
    /// address from its readiness line.
    fn spawn(bin: &str, workers: usize, extra: &[&str]) -> ChildDaemon {
        let mut child = std::process::Command::new(bin)
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                &workers.to_string(),
                "--queue-depth",
                "1024",
                "--trace-capacity",
                "0",
            ])
            .args(extra)
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
        let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("daemon readiness line");
        // "listening on 127.0.0.1:PORT (N workers); send ..."
        let addr = line
            .strip_prefix("listening on ")
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|a| a.parse().ok())
            .unwrap_or_else(|| panic!("unparseable readiness line: {line:?}"));
        ChildDaemon {
            child,
            stdout,
            addr,
        }
    }

    /// Sends `SHUTDOWN` and waits for the child to exit.
    fn stop(mut self) {
        if let Ok(mut stream) = TcpStream::connect(self.addr) {
            let _ = stream.write_all(b"{\"op\":\"shutdown\"}\n");
            let mut reply = String::new();
            let _ = BufReader::new(stream).read_line(&mut reply);
        }
        // Drain remaining stdout so the child never blocks on a full pipe.
        let mut rest = String::new();
        use std::io::Read as _;
        let _ = self.stdout.read_to_string(&mut rest);
        let _ = self.child.wait();
    }
}

/// Client-side latency percentiles of one measured pass, as JSON.
fn latency_json(r: &RegimeResult) -> Value {
    ObjectBuilder::new()
        .field("requests", Value::Number(r.requests as f64))
        .field("p50_us", Value::Number(r.percentile_us(50.0) as f64))
        .field("p95_us", Value::Number(r.percentile_us(95.0) as f64))
        .field("p99_us", Value::Number(r.percentile_us(99.0) as f64))
        .build()
}

/// The connection-scaling benchmark: per worker count, MAP latency with
/// an empty daemon (`baseline`) and with `idle_n` held-open idle
/// connections (`with_idle`); optionally the same measurement against a
/// pre-refactor binary (`--pre-bin`) for the regression comparison.
/// Daemons run as child processes when `--serve-bin` is given (required
/// for fd-limit headroom at 10k connections), in-process otherwise.
fn bench_connections(
    idle_n: usize,
    serve_bin: Option<&str>,
    pre_bin: Option<&str>,
    out_path: &str,
) {
    let spec = LoadSpec {
        tasks: 16,
        machines: 8,
        instances: 64,
        clients: 4,
        warm_repeats: 1,
        heuristic: "min-min".into(),
        objective: Objective::Makespan,
    };
    let lines = build_lines(&spec);
    // One discarded warmup pass per daemon: the measured passes are then
    // all cache hits, so every number isolates the front end (accept,
    // framing, event loop, serialize) rather than kernel compute.
    let measure = |addr: SocketAddr| {
        let _ = run_regime(addr, &lines, spec.clients, 1);
        run_regime(addr, &lines, spec.clients, 3)
    };

    let mut per_workers = Vec::new();
    for workers in [1usize, 4, 8] {
        let pre = pre_bin.map(|bin| {
            let daemon = ChildDaemon::spawn(bin, workers, &[]);
            let r = measure(daemon.addr);
            daemon.stop();
            r
        });

        // The idle holders must outlive both measured passes: a long idle
        // timeout keeps the sweep from reaping them mid-run.
        let (addr, child, local) = match serve_bin {
            Some(bin) => {
                let daemon = ChildDaemon::spawn(bin, workers, &["--idle-timeout-ms", "600000"]);
                (daemon.addr, Some(daemon), None)
            }
            None => {
                let config = ServeConfig::builder()
                    .addr("127.0.0.1:0")
                    .workers(workers)
                    .queue_depth(1024)
                    .trace_capacity(0)
                    .idle_timeout(std::time::Duration::from_secs(600))
                    .build()
                    .expect("valid config");
                let server = Server::start(config).expect("start daemon");
                (server.local_addr(), None, Some(server))
            }
        };

        let baseline = measure(addr);
        let idles = open_idle_connections(addr, idle_n);
        wait_for_open_connections(addr, idle_n);
        let with_idle = measure(addr);
        let stats = fetch_and_check_stats(addr);
        let open = stats
            .get("open_connections")
            .and_then(Value::as_u64)
            .unwrap_or(0);
        assert!(
            open >= idle_n as u64,
            "daemon must report >= {idle_n} open connections, got {open}"
        );
        drop(idles);
        if let Some(daemon) = child {
            daemon.stop();
        }
        if let Some(server) = local {
            server.stop();
            server.join();
        }

        let slowdown =
            with_idle.percentile_us(99.0) as f64 / (baseline.percentile_us(99.0) as f64).max(1.0);
        println!(
            "workers={workers}: p99 {:>7}us empty, {:>7}us with {idle_n} idle conns ({slowdown:.2}x){}",
            baseline.percentile_us(99.0),
            with_idle.percentile_us(99.0),
            pre.as_ref()
                .map(|p| format!(", pre-refactor {}us", p.percentile_us(99.0)))
                .unwrap_or_default(),
        );

        let mut record = ObjectBuilder::new()
            .field("workers", Value::Number(workers as f64))
            .field("baseline", latency_json(&baseline))
            .field("with_idle", latency_json(&with_idle));
        if let Some(p) = pre {
            record = record.field("pre_refactor", latency_json(&p)).field(
                "with_idle_over_pre_p99",
                Value::Number(
                    with_idle.percentile_us(99.0) as f64 / (p.percentile_us(99.0) as f64).max(1.0),
                ),
            );
        }
        per_workers.push(record.build());
    }

    let record = ObjectBuilder::new()
        .field("idle_connections", Value::Number(idle_n as f64))
        .field("per_workers", Value::Array(per_workers))
        .build();
    write_merged(
        out_path,
        ObjectBuilder::new().field("connections", record).build(),
    );
}

/// CI smoke for the connection axis: hold `idle_n` idle connections
/// against one in-process daemon, prove MAP still answers under a p99
/// bound, and check the new event-loop gauges are live.
fn smoke_connections(idle_n: usize, tasks: usize, machines: usize) {
    let config = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .workers(2)
        .queue_depth(1024)
        .trace_capacity(0)
        .idle_timeout(std::time::Duration::from_secs(600))
        .build()
        .expect("valid config");
    let server = Server::start(config).expect("start daemon");
    let addr = server.local_addr();

    let idles = open_idle_connections(addr, idle_n);
    wait_for_open_connections(addr, idle_n);
    let spec = LoadSpec {
        tasks,
        machines,
        instances: 32,
        clients: 2,
        warm_repeats: 1,
        heuristic: "min-min".into(),
        objective: Objective::Makespan,
    };
    let lines = build_lines(&spec);
    let active = run_regime(addr, &lines, spec.clients, 1);
    let p99_us = active.percentile_us(99.0);
    assert!(
        p99_us <= 200_000,
        "MAP p99 with {idle_n} idle connections must stay under 200ms, got {p99_us}us"
    );

    let stats = fetch_and_check_stats(addr);
    let open = stats
        .get("open_connections")
        .and_then(Value::as_u64)
        .unwrap_or(0);
    assert!(
        open >= idle_n as u64,
        "stats must count the idle connections: {open} < {idle_n}"
    );
    let metrics = fetch_verb(addr, "metrics");
    let text = metrics
        .get("metrics")
        .and_then(Value::as_str)
        .expect("metrics payload");
    for name in [
        "hcs_open_connections",
        "hcs_event_wakeups_total",
        "hcs_read_buffer_hwm_bytes",
    ] {
        assert!(text.contains(name), "metrics must expose {name}");
    }

    drop(idles);
    server.stop();
    server.join();
    println!("connections smoke ok: {idle_n} idle connections held, MAP p99 {p99_us}us");
}

/// CI negative check: a daemon capped at a small `max_line_bytes` must
/// answer an oversized request with the typed 400 (`error_code:"parse"`)
/// while keeping the connection alive — then this process exits 2 so the
/// CI step can assert the rejection path actually fired.
fn oversized_check() -> ! {
    let config = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .workers(1)
        .max_line_bytes(1024)
        .build()
        .expect("valid config");
    let server = Server::start(config).expect("start daemon");
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut big = vec![b'x'; 8 * 1024];
    big.push(b'\n');
    stream.write_all(&big).expect("send oversized line");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    let v = hcs_service::json::parse(reply.trim_end()).expect("parse reply");
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{reply}");
    assert_eq!(v.get("code").and_then(Value::as_u64), Some(400), "{reply}");
    assert_eq!(
        v.get("error_code").and_then(Value::as_str),
        Some("parse"),
        "{reply}"
    );
    assert!(
        v.get("error")
            .and_then(Value::as_str)
            .is_some_and(|e| e.contains("max_line_bytes")),
        "{reply}"
    );
    // The connection survives the rejection.
    stream
        .write_all(b"{\"etc\":[[1,2]],\"heuristic\":\"mct\"}\n")
        .expect("send follow-up");
    reply.clear();
    reader.read_line(&mut reply).expect("read follow-up");
    assert!(reply.contains("\"ok\":true"), "{reply}");

    server.stop();
    server.join();
    eprintln!("oversized-check: typed 400 received, connection survived; exiting 2");
    std::process::exit(2);
}

/// Spawns `nodes` in-process daemons, each stamped with its fleet
/// identity; `fault_rate_for(i)` lets one node inject faults.
/// `trace_capacity` is 0 for measured runs (per-request ring writes would
/// perturb the numbers) and nonzero for the trace-correlation smoke.
fn start_fleet(
    nodes: usize,
    trace_capacity: usize,
    fault_rate_for: impl Fn(usize) -> f64,
) -> Vec<Server> {
    (0..nodes)
        .map(|i| {
            let config = ServeConfig::builder()
                .addr("127.0.0.1:0")
                .workers(2)
                .queue_depth(1024)
                .cache_capacity(1024)
                .cache_shards(8)
                .trace_capacity(trace_capacity)
                .fault_rate(fault_rate_for(i))
                .fault_seed(7)
                .shard(ShardIdentity {
                    shard_id: i as u64,
                    fleet_size: nodes as u64,
                })
                .build()
                .expect("valid config");
            Server::start(config).expect("start fleet daemon")
        })
        .collect()
}

/// Fleet client tuned for the bench: no inner retries (failover is the
/// fleet layer's job) and fast backoff.
fn fleet_client(addrs: &[String]) -> FleetClient {
    FleetClient::with_config(
        addrs,
        FleetConfig {
            client: hcs_client::ClientConfig {
                retries: 0,
                backoff_base: std::time::Duration::from_millis(1),
                backoff_max: std::time::Duration::from_millis(10),
                ..hcs_client::ClientConfig::default()
            },
            ..FleetConfig::default()
        },
    )
}

/// Sends `items` through the fleet in sub-batches and returns the elapsed
/// seconds; panics on any per-item error (the bench sends only valid
/// requests at fleets with no injected faults).
fn drive_fleet(client: &mut FleetClient, items: &[MapRequest], expect_cached: bool) -> f64 {
    let start = Instant::now();
    for chunk in items.chunks(32) {
        for (i, result) in client.map_batch(chunk).iter().enumerate() {
            let reply = result
                .as_ref()
                .unwrap_or_else(|e| panic!("fleet bench item {i} failed: {e}"));
            if expect_cached {
                assert!(reply.cached, "warm fleet pass should hit the owner cache");
            }
        }
    }
    start.elapsed().as_secs_f64()
}

/// Per-node accounting after a measurement: shard id, counters, and the
/// node's cache hit rate, straight from each daemon's `STATS`.
fn fleet_per_node(client: &mut FleetClient) -> Vec<Value> {
    client
        .stats()
        .into_iter()
        .map(|(addr, stats)| {
            let stats = stats.unwrap_or_else(|e| panic!("STATS from {addr} failed: {e}"));
            let count = |k: &str| stats.get(k).and_then(Value::as_u64).unwrap_or(0);
            assert_eq!(
                count("submitted"),
                count("served") + count("cache_hits") + count("rejected"),
                "stats invariant violated on {addr}: {stats}"
            );
            let hit_rate = if count("submitted") > 0 {
                count("cache_hits") as f64 / count("submitted") as f64
            } else {
                0.0
            };
            let queue_wait_p95 = stats
                .get("queue_wait")
                .and_then(|q| q.get("p95_us"))
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            ObjectBuilder::new()
                .field("addr", Value::String(addr))
                .field("shard_id", Value::Number(count("shard_id") as f64))
                .field("submitted", Value::Number(count("submitted") as f64))
                .field("cache_hits", Value::Number(count("cache_hits") as f64))
                .field("cache_hit_rate", Value::Number(hit_rate))
                .field("queue_wait_p95_us", Value::Number(queue_wait_p95))
                .build()
        })
        .collect()
}

/// Ring-imbalance statistics over the per-node `submitted` counters:
/// min, max, mean, and the coefficient of variation (stddev / mean). A
/// node that saw zero requests is a routing bug worth shouting about —
/// the ring left a shard completely idle.
fn imbalance_stats(per_node: &[Value]) -> Value {
    let submitted: Vec<f64> = per_node
        .iter()
        .map(|n| n.get("submitted").and_then(Value::as_f64).unwrap_or(0.0))
        .collect();
    let min = submitted.iter().copied().fold(f64::INFINITY, f64::min);
    let max = submitted.iter().copied().fold(0.0f64, f64::max);
    let mean = submitted.iter().sum::<f64>() / submitted.len().max(1) as f64;
    let var = submitted
        .iter()
        .map(|&s| (s - mean) * (s - mean))
        .sum::<f64>()
        / submitted.len().max(1) as f64;
    let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    for (node, &s) in per_node.iter().zip(&submitted) {
        if s == 0.0 {
            let addr = node.get("addr").and_then(Value::as_str).unwrap_or("?");
            eprintln!(
                "WARNING: fleet node {addr} received ZERO requests — \
                 the ring routed nothing to it (imbalance cv {cv:.3})"
            );
        }
    }
    ObjectBuilder::new()
        .field("min_submitted", Value::Number(min))
        .field("max_submitted", Value::Number(max))
        .field("mean_submitted", Value::Number(mean))
        .field("cv", Value::Number(cv))
        .build()
}

/// The fleet benchmark: for every node count in {1, 2, 4, 8} up to
/// `max_nodes`, route the same workload through a consistent-hash fleet
/// of that size and record throughput, scaling efficiency against the
/// single-node run, and per-node cache hit rates.
fn bench_fleet(spec: &LoadSpec, max_nodes: usize) -> Value {
    let items = build_batch_requests(
        spec.tasks,
        spec.machines,
        spec.instances.max(32),
        &spec.heuristic,
        0,
    );
    let mut runs = Vec::new();
    let mut single_node_rps = None;
    for nodes in [1usize, 2, 4, 8] {
        if nodes > max_nodes {
            break;
        }
        let servers = start_fleet(nodes, 0, |_| 0.0);
        let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
        let mut client = fleet_client(&addrs);

        let cold_seconds = drive_fleet(&mut client, &items, false);
        let mut warm_seconds = 0.0;
        for _ in 0..spec.warm_repeats {
            warm_seconds += drive_fleet(&mut client, &items, true);
        }
        let per_node = fleet_per_node(&mut client);
        let imbalance = imbalance_stats(&per_node);
        // Fleet-wide queue-wait p95: merged across nodes bucket-wise, not
        // averaged per-node percentiles.
        let queue_wait_p95 = client
            .stats_merged()
            .get("queue_wait")
            .and_then(|q| q.get("p95_us"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        for (addr, result) in client.drain() {
            result.unwrap_or_else(|e| panic!("drain of {addr} failed: {e}"));
        }
        for server in servers {
            server.join();
        }

        let cold_rps = items.len() as f64 / cold_seconds.max(1e-9);
        let warm_rps = (items.len() * spec.warm_repeats) as f64 / warm_seconds.max(1e-9);
        let base = *single_node_rps.get_or_insert(warm_rps);
        let speedup = warm_rps / base.max(1e-9);
        println!(
            "fleet nodes={nodes}: cold {cold_rps:>8.1} rps, warm {warm_rps:>8.1} rps \
             (speedup {speedup:.2}x, efficiency {:.2})",
            speedup / nodes as f64
        );
        runs.push(
            ObjectBuilder::new()
                .field("nodes", Value::Number(nodes as f64))
                .field("cold_rps", Value::Number(cold_rps))
                .field("warm_rps", Value::Number(warm_rps))
                .field("speedup", Value::Number(speedup))
                .field("efficiency", Value::Number(speedup / nodes as f64))
                .field("queue_wait_p95_us", Value::Number(queue_wait_p95))
                .field("imbalance", imbalance)
                .field("per_node", Value::Array(per_node))
                .build(),
        );
    }
    ObjectBuilder::new()
        .field("items", Value::Number(items.len() as f64))
        .field("warm_repeats", Value::Number(spec.warm_repeats as f64))
        .field("runs", Value::Array(runs))
        .build()
}

/// The splitmix64 finalizer — synthetic well-mixed routing keys for the
/// ring-stability assertion.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Fleet smoke: ring-stability invariants on a synthetic 16-node ring,
/// then a live fleet driven end-to-end, then failover against a node
/// injecting faults into 20% of its requests.
fn smoke_fleet(nodes: usize, tasks: usize, machines: usize) {
    // 1. Routing stability. Removing one of 16 nodes must leave >= 90% of
    //    keys on their original owner (the expected remap is ~1/16), and
    //    every key that moved must have been owned by the removed node —
    //    consistent hashing never reshuffles survivors among themselves.
    let ring_nodes: Vec<String> = (0..16).map(|i| format!("10.0.0.{i}:7077")).collect();
    let full = HashRing::new(&ring_nodes, 64);
    let shrunk = HashRing::new(&ring_nodes[1..], 64);
    let keys: Vec<u64> = (0..4096u64).map(mix64).collect();
    let mut stable = 0usize;
    for &key in &keys {
        let owner = &full.nodes()[full.node_for(key)];
        let new_owner = &shrunk.nodes()[shrunk.node_for(key)];
        if owner == new_owner {
            stable += 1;
        } else {
            assert_eq!(
                owner, &ring_nodes[0],
                "a key moved off a surviving node: {owner} -> {new_owner}"
            );
        }
    }
    let stable_fraction = stable as f64 / keys.len() as f64;
    assert!(
        stable_fraction >= 0.90,
        "only {stable_fraction:.3} of keys survived a 1-of-16 node removal"
    );
    println!(
        "fleet routing smoke ok: {stable_fraction:.3} of {} keys stable after removing \
         1 of 16 nodes",
        keys.len()
    );

    // 2. A live fleet end-to-end: distinct items complete, repeats hit
    //    the owner's cache, every node exposes valid metrics with its
    //    shard identity stamped, and drain stops every daemon.
    let nodes = nodes.max(2);
    let servers = start_fleet(nodes, 0, |_| 0.0);
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let mut client = fleet_client(&addrs);
    let items = build_batch_requests(tasks, machines, 24, "min-min", 0);
    drive_fleet(&mut client, &items, false);
    drive_fleet(&mut client, &items, true);
    let per_node = fleet_per_node(&mut client);
    assert_eq!(per_node.len(), nodes);
    let imbalance = imbalance_stats(&per_node);
    let cv = imbalance
        .get("cv")
        .and_then(Value::as_f64)
        .unwrap_or(f64::NAN);
    assert!(
        cv.is_finite(),
        "ring imbalance cv must be finite: {imbalance}"
    );
    println!("fleet imbalance smoke ok: cv {cv:.3} over {nodes} nodes");
    for (addr, text) in client.metrics() {
        let text = text.unwrap_or_else(|e| panic!("METRICS from {addr} failed: {e}"));
        hcs_core::obs::validate_prometheus(&text)
            .unwrap_or_else(|e| panic!("invalid exposition from {addr}: {e}"));
        assert!(
            text.contains("hcs_shard_info{shard_id=\""),
            "{addr} exposes no shard identity"
        );
    }
    for (addr, result) in client.drain() {
        result.unwrap_or_else(|e| panic!("drain of {addr} failed: {e}"));
    }
    for server in servers {
        server.join();
    }
    println!("fleet live smoke ok: {nodes} nodes served, cached, and drained");

    // 3. Failover: one of two daemons injects faults into 20% of its
    //    requests; with zero inner retries every fault surfaces to the
    //    fleet layer, which must absorb 100% of the batch on the healthy
    //    node.
    let servers = start_fleet(2, 0, |i| if i == 1 { 0.2 } else { 0.0 });
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let mut client = fleet_client(&addrs);
    let items = build_batch_requests(tasks + 1, machines, 40, "min-min", 0);
    for (i, result) in client.map_batch(&items).iter().enumerate() {
        assert!(result.is_ok(), "failover smoke item {i}: {result:?}");
    }
    let faults: u64 = client
        .stats()
        .iter()
        .map(|(_, v)| {
            v.as_ref()
                .ok()
                .and_then(|s| s.get("faults").and_then(Value::as_u64))
                .unwrap_or(0)
        })
        .sum();
    assert!(faults > 0, "fault rate 0.2 never fired");
    for (addr, result) in client.drain() {
        result.unwrap_or_else(|e| panic!("drain of {addr} failed: {e}"));
    }
    for server in servers {
        server.join();
    }
    println!("fleet failover smoke ok: {faults} faults absorbed by ring failover");
}

/// Trace-correlation smoke: a 2-node tracing fleet driven under known
/// rids. Every reply must echo its rid, every rid's fleet `TRACE` must
/// reconstruct the full timeline (client hop plus the owner node's four
/// server-side phase spans), and the merged fleet exposition must pass
/// the strict Prometheus validator with per-node health gauges present.
fn smoke_trace(tasks: usize, machines: usize) {
    const TRACE_CAPACITY: u64 = 256;
    let servers = start_fleet(2, TRACE_CAPACITY as usize, |_| 0.0);
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let mut client = fleet_client(&addrs);
    let mut items = build_batch_requests(tasks, machines, 8, "min-min", 0);
    // Rids chosen so no two share a span-store slot (`splitmix64(rid) %
    // capacity`): which rids co-reside on a node depends on the ephemeral
    // ports behind the ring, so any slot collision would flakily evict
    // another smoke rid's record.
    let mut rids: Vec<u64> = Vec::with_capacity(items.len());
    let mut slots_used = std::collections::HashSet::new();
    let mut candidate = 0xC0FF_EE00u64;
    while rids.len() < items.len() {
        if slots_used.insert(mix64(candidate) % TRACE_CAPACITY) {
            rids.push(candidate);
        }
        candidate += 1;
    }
    for (item, &rid) in items.iter_mut().zip(&rids) {
        item.rid = Some(rid);
    }
    for (i, item) in items.iter().enumerate() {
        let reply = client
            .map(item)
            .unwrap_or_else(|e| panic!("trace smoke item {i}: {e}"));
        assert_eq!(reply.rid, Some(rids[i]), "reply must echo the rid");
    }
    for &rid in &rids {
        let timeline = client.trace(rid);
        let hops = timeline
            .get("hops")
            .and_then(Value::as_array)
            .expect("hops array");
        assert!(!hops.is_empty(), "rid {rid:#x} has no client hop timeline");
        let nodes = timeline
            .get("nodes")
            .and_then(Value::as_array)
            .expect("nodes array");
        assert_eq!(
            nodes.len(),
            1,
            "exactly one node should hold rid {rid:#x}: {timeline}"
        );
        let spans = nodes[0]
            .get("spans")
            .and_then(Value::as_array)
            .expect("spans array");
        let phases: Vec<&str> = spans
            .iter()
            .filter_map(|s| s.get("phase").and_then(Value::as_str))
            .collect();
        for phase in ["cache_probe", "queue_wait", "kernel_map", "serialize"] {
            assert!(
                phases.contains(&phase),
                "rid {rid:#x} missing span {phase}: {timeline}"
            );
        }
    }
    let exposition = client.metrics_merged();
    hcs_core::obs::validate_prometheus(&exposition)
        .unwrap_or_else(|e| panic!("invalid merged exposition: {e}"));
    assert!(
        exposition.contains("hcs_fleet_node_health{node=\""),
        "merged exposition must carry per-node health gauges"
    );
    for (addr, result) in client.drain() {
        result.unwrap_or_else(|e| panic!("drain of {addr} failed: {e}"));
    }
    for server in servers {
        server.join();
    }
    println!(
        "trace smoke ok: {} rids reconstructed end to end, merged exposition valid",
        rids.len()
    );
}

/// Writes the bench document, preserving any top-level sections of an
/// existing file that `fresh` does not redefine.
fn write_merged(out_path: &str, fresh: Value) {
    let existing = std::fs::read_to_string(out_path)
        .ok()
        .and_then(|text| hcs_service::json::parse(text.trim_end()).ok());
    let doc = merge_preserving(existing.as_ref(), fresh);
    std::fs::write(out_path, format!("{doc}\n")).expect("write results");
    println!("wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = present(&args, "--smoke");
    let uint = |name: &str, default: usize| {
        parse_flag(&args, name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("{name} takes an integer"))
            })
            .unwrap_or(default)
    };
    let spec = LoadSpec {
        // Default sizes keep the cold pass compute-bound (iterative
        // mapping is O(t^2·m) per instance) while warm requests only pay
        // parse + digest (O(t·m)) — that separation is what the cache is
        // for, and what the >= 5x acceptance bound below measures.
        tasks: uint("--tasks", if smoke { 16 } else { 320 }),
        machines: uint("--machines", 8),
        instances: uint("--instances", if smoke { 8 } else { 32 }),
        clients: uint("--clients", if smoke { 2 } else { 8 }),
        warm_repeats: uint("--warm-repeats", if smoke { 2 } else { 8 }),
        heuristic: parse_flag(&args, "--heuristic").unwrap_or_else(|| "min-min".into()),
        // Unknown objective names exit 2 before any daemon starts — the
        // same path as an unknown heuristic, never a makespan fallback.
        objective: match parse_flag(&args, "--objective").map(|v| Objective::from_name(&v)) {
            None => Objective::Makespan,
            Some(Ok(o)) => o,
            Some(Err(e)) => {
                eprintln!("--objective: {e}");
                std::process::exit(2);
            }
        },
    };
    let out_path = parse_flag(&args, "--out").unwrap_or_else(|| "BENCH_service.json".to_string());
    let fleet = parse_flag(&args, "--fleet").map(|v| {
        v.parse::<usize>()
            .unwrap_or_else(|_| panic!("--fleet takes a node count"))
            .max(1)
    });

    if present(&args, "--oversized-check") {
        oversized_check();
    }

    if let Some(n) = parse_flag(&args, "--connections").map(|v| {
        v.parse::<usize>()
            .unwrap_or_else(|_| panic!("--connections takes a count"))
            .max(1)
    }) {
        if smoke {
            smoke_connections(n, spec.tasks, spec.machines);
            return;
        }
        bench_connections(
            n,
            parse_flag(&args, "--serve-bin").as_deref(),
            parse_flag(&args, "--pre-bin").as_deref(),
            &out_path,
        );
        return;
    }

    if present(&args, "--trace-smoke") {
        smoke_trace(spec.tasks, spec.machines);
        return;
    }

    if let Some(max_nodes) = fleet {
        if smoke {
            smoke_fleet(max_nodes, spec.tasks, spec.machines);
            return;
        }
        let record = bench_fleet(&spec, max_nodes);
        write_merged(
            &out_path,
            ObjectBuilder::new().field("fleet", record).build(),
        );
        return;
    }

    if smoke {
        let (record, ratio) = bench_workers(&spec, 2);
        println!("smoke ok: {record}");
        println!("warm/cold throughput ratio: {ratio:.1}x");
        // Exercise MAP_BATCH end-to-end (tiny sizes — correctness and
        // accounting only; the ratio is asserted in the full run).
        let (batch_record, batch_ratio) =
            bench_batch(spec.tasks, spec.machines, 64, 16, spec.clients, 2, 2);
        println!("batch smoke ok: {batch_record}");
        println!("batch/single throughput ratio: {batch_ratio:.1}x");
        smoke_fault_retry(spec.tasks, spec.machines);
        return;
    }

    let mut runs = Vec::new();
    let mut worst_ratio = f64::INFINITY;
    for workers in [1usize, 4, 8] {
        let (record, ratio) = bench_workers(&spec, workers);
        println!(
            "workers={workers}: cold {:>8.1} rps, warm {:>10.1} rps ({ratio:.1}x)",
            record
                .get("cold")
                .and_then(|c| c.get("throughput_rps"))
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            record
                .get("warm")
                .and_then(|w| w.get("throughput_rps"))
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
        );
        worst_ratio = worst_ratio.min(ratio);
        runs.push(record);
    }

    // Batch-vs-single comparison at 8 workers: many small latency-bound
    // instances (5 ms service time each) so dispatch concurrency, not
    // per-item compute, is what the two wire shapes differ on.
    let (batch_record, batch_ratio) = bench_batch(16, 8, 256, 32, 2, 8, 5);
    println!(
        "batch:  single {:>8.1} rps, batch {:>10.1} items/s ({batch_ratio:.1}x, size 32)",
        batch_record
            .get("single")
            .and_then(|s| s.get("throughput_rps"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0),
        batch_record
            .get("batch")
            .and_then(|b| b.get("throughput_rps"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0),
    );

    let doc = ObjectBuilder::new()
        .field(
            "config",
            ObjectBuilder::new()
                .field("tasks", Value::Number(spec.tasks as f64))
                .field("machines", Value::Number(spec.machines as f64))
                .field("instances", Value::Number(spec.instances as f64))
                .field("clients", Value::Number(spec.clients as f64))
                .field("warm_repeats", Value::Number(spec.warm_repeats as f64))
                .field("heuristic", Value::String(spec.heuristic.clone()))
                .field("objective", Value::String(spec.objective.name().into()))
                .build(),
        )
        .field("runs", Value::Array(runs))
        .field("min_warm_over_cold", Value::Number(worst_ratio))
        .field("batch", batch_record)
        .build();
    write_merged(&out_path, doc);
    assert!(
        worst_ratio >= 5.0,
        "cache should make warm throughput >= 5x cold (got {worst_ratio:.1}x)"
    );
    assert!(
        batch_ratio >= 2.0,
        "MAP_BATCH should at least double per-item throughput at 8 workers \
         (got {batch_ratio:.1}x)"
    );
}
