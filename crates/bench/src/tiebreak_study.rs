//! Experiment X1 — tie-break sensitivity of the iterative technique.
//!
//! For every Braun class × greedy heuristic × trial seed, run the full
//! iterative technique twice: once with deterministic ties and once with
//! random ties. Aggregate, per heuristic:
//!
//! * how often the overall makespan *increased* (the paper's pathology),
//!   under each tie policy;
//! * how often all iteration mappings were identical under deterministic
//!   ties (the theorems predict 100% for Min-Min, MCT, MET);
//! * the mean relative reduction of the average machine finishing time
//!   (the benefit the technique is after).
//!
//! The paper's qualitative predictions, checked quantitatively here:
//! Min-Min / MCT / MET never increase or change under deterministic ties;
//! SWA / KPB / Sufferage can increase even deterministically; everything
//! can increase under random ties (where ties actually occur — continuous
//! workloads rarely tie, so the random columns mostly show order effects
//! of the random policy, not tie flips; see EXPERIMENTS.md).

use serde::Serialize;

use hcs_analysis::{run_trials_with, OnlineStats, OutcomeMetrics, TextTable};
use hcs_core::{iterative, MapWorkspace, TieBreaker};

use crate::roster::{greedy_roster, make_heuristic, SearchKnobs};
use crate::workloads::{study_classes, study_scenario, StudyDims};

/// Aggregated row for one heuristic.
#[derive(Clone, Debug, Serialize)]
pub struct TieBreakRow {
    /// Heuristic name.
    pub heuristic: &'static str,
    /// Fraction of trials with a makespan increase, deterministic ties.
    pub increase_det: f64,
    /// Fraction of trials with a makespan increase, random ties.
    pub increase_rand: f64,
    /// Fraction of deterministic trials where every iteration reproduced
    /// the original mapping.
    pub identical_det: f64,
    /// Mean relative reduction of the average finishing time
    /// (deterministic ties), in percent.
    pub reduction_det_pct: f64,
    /// Same under random ties, in percent.
    pub reduction_rand_pct: f64,
}

/// Runs X1 and returns one row per greedy heuristic.
pub fn run(dims: StudyDims, base_seed: u64) -> Vec<TieBreakRow> {
    let classes = study_classes(dims);
    greedy_roster()
        .into_iter()
        .map(|name| {
            let mut inc_det = OnlineStats::new();
            let mut inc_rand = OnlineStats::new();
            let mut ident = OnlineStats::new();
            let mut red_det = OnlineStats::new();
            let mut red_rand = OnlineStats::new();
            for spec in &classes {
                let results =
                    run_trials_with(base_seed, dims.trials, MapWorkspace::new, |ws, seed| {
                        let scenario = study_scenario(spec, seed).with_objective(dims.objective);
                        let mut h = make_heuristic(name, seed);
                        let det_outcome = iterative::IterativeRun::new(&mut *h, &scenario)
                            .workspace(&mut *ws)
                            .execute()
                            .unwrap();
                        let det = OutcomeMetrics::from_outcome(&det_outcome);
                        let mut h = make_heuristic(name, seed);
                        let rand_outcome = iterative::IterativeRun::new(&mut *h, &scenario)
                            .tie_breaker(TieBreaker::random(seed ^ 0x9e37_79b9))
                            .workspace(&mut *ws)
                            .execute()
                            .unwrap();
                        let rand = OutcomeMetrics::from_outcome(&rand_outcome);
                        (det, rand)
                    });
                for (det, rand) in results {
                    inc_det.push(f64::from(u8::from(det.makespan_increased)));
                    inc_rand.push(f64::from(u8::from(rand.makespan_increased)));
                    ident.push(f64::from(u8::from(det.mappings_identical)));
                    red_det.push(det.mean_finish_reduction * 100.0);
                    red_rand.push(rand.mean_finish_reduction * 100.0);
                }
            }
            TieBreakRow {
                heuristic: name,
                increase_det: inc_det.mean(),
                increase_rand: inc_rand.mean(),
                identical_det: ident.mean(),
                reduction_det_pct: red_det.mean(),
                reduction_rand_pct: red_rand.mean(),
            }
        })
        .collect()
}

/// Formats X1 as a text table.
pub fn table(rows: &[TieBreakRow], dims: StudyDims) -> TextTable {
    let mut t = TextTable::new(vec![
        "heuristic",
        "increase% (det)",
        "increase% (rand)",
        "identical% (det)",
        "finish reduction% (det)",
        "finish reduction% (rand)",
    ])
    .with_title(format!(
        "X1. Iterative technique vs tie policy — {} Braun classes, {} tasks x {} machines, {} trials each",
        12, dims.n_tasks, dims.n_machines, dims.trials
    ));
    for r in rows {
        t.push_row(vec![
            r.heuristic.to_string(),
            format!("{:.1}", r.increase_det * 100.0),
            format!("{:.1}", r.increase_rand * 100.0),
            format!("{:.1}", r.identical_det * 100.0),
            format!("{:.2}", r.reduction_det_pct),
            format!("{:.2}", r.reduction_rand_pct),
        ]);
    }
    t
}

/// Per-class breakdown for one heuristic: where does the technique backfire?
#[derive(Clone, Debug, Serialize)]
pub struct ClassRow {
    /// Class label.
    pub class: String,
    /// Makespan-increase fraction (deterministic ties).
    pub increase: f64,
    /// Mean relative finishing-time reduction (percent) with its 95% CI
    /// half-width.
    pub reduction_pct: (f64, f64),
}

/// Per-class behaviour of a single heuristic under deterministic ties.
pub fn run_per_class(heuristic: &str, dims: StudyDims, base_seed: u64) -> Vec<ClassRow> {
    run_per_class_with(heuristic, dims, base_seed, &SearchKnobs::default())
}

/// [`run_per_class`] with explicit parallel-search knobs, so the
/// `genitor-island` / `sa-multi` / `tabu-multi` roster names run under the
/// caller's `--threads`/`--islands` settings. The knobs must already have
/// been validated (`experiments` does this up front); an invalid
/// combination panics here.
pub fn run_per_class_with(
    heuristic: &str,
    dims: StudyDims,
    base_seed: u64,
    knobs: &SearchKnobs,
) -> Vec<ClassRow> {
    study_classes(dims)
        .iter()
        .map(|spec| {
            let results = run_trials_with(base_seed, dims.trials, MapWorkspace::new, |ws, seed| {
                let scenario = study_scenario(spec, seed).with_objective(dims.objective);
                let mut h = crate::roster::try_make_search_heuristic(heuristic, seed, knobs)
                    .unwrap_or_else(|e| panic!("per-class roster: {e}"));
                let outcome = iterative::IterativeRun::new(&mut *h, &scenario)
                    .workspace(ws)
                    .execute()
                    .unwrap();
                OutcomeMetrics::from_outcome(&outcome)
            });
            let mut inc = OnlineStats::new();
            let mut red = OnlineStats::new();
            for m in results {
                inc.push(f64::from(u8::from(m.makespan_increased)));
                red.push(m.mean_finish_reduction * 100.0);
            }
            ClassRow {
                class: spec.label(),
                increase: inc.mean(),
                reduction_pct: (red.mean(), red.ci95_half_width()),
            }
        })
        .collect()
}

/// Formats the per-class breakdown as a text table.
pub fn per_class_table(heuristic: &str, rows: &[ClassRow], dims: StudyDims) -> TextTable {
    let mut t = TextTable::new(vec!["class", "increase%", "finish reduction% (95% CI)"])
        .with_title(format!(
            "X1b. {heuristic} per class (deterministic ties) — {} tasks x {} machines, {} trials",
            dims.n_tasks, dims.n_machines, dims.trials
        ));
    for r in rows {
        t.push_row(vec![
            r.class.clone(),
            format!("{:.1}", r.increase * 100.0),
            format!("{:.2} ± {:.2}", r.reduction_pct.0, r.reduction_pct.1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> StudyDims {
        StudyDims {
            n_tasks: 12,
            n_machines: 4,
            trials: 2,
            ..StudyDims::default()
        }
    }

    #[test]
    fn theorems_hold_quantitatively() {
        let rows = run(tiny(), 500);
        for r in &rows {
            if ["Min-Min", "MCT", "MET"].contains(&r.heuristic) {
                assert_eq!(
                    r.increase_det, 0.0,
                    "{}: no deterministic increase (theorem)",
                    r.heuristic
                );
                assert_eq!(
                    r.identical_det, 1.0,
                    "{}: mappings identical (theorem)",
                    r.heuristic
                );
            }
        }
    }

    #[test]
    fn table_has_one_row_per_heuristic() {
        let rows = run(tiny(), 7);
        let t = table(&rows, tiny());
        assert_eq!(t.n_rows(), greedy_roster().len());
    }

    #[test]
    fn per_class_covers_all_twelve() {
        let rows = run_per_class("Sufferage", tiny(), 5);
        assert_eq!(rows.len(), 12);
        let t = per_class_table("Sufferage", &rows, tiny());
        assert_eq!(t.n_rows(), 12);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.increase), "{}", r.class);
        }
    }

    #[test]
    fn reductions_are_bounded() {
        for r in run(tiny(), 11) {
            assert!(r.reduction_det_pct <= 100.0);
            assert!((0.0..=1.0).contains(&r.increase_det));
            assert!((0.0..=1.0).contains(&r.increase_rand));
        }
    }
}
