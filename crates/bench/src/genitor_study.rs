//! Experiment X2 — Genitor under the iterative technique.
//!
//! The paper (§3.1): because each iteration's population is seeded with the
//! previous iteration's mapping (minus the frozen machine), "the final
//! mapping is either the seeded mapping or a mapping with a smaller
//! makespan" — Genitor can only improve or keep the non-makespan machines.
//! X2 quantifies the improvement per Braun class: how much finishing time
//! the iterative technique recovers on the non-makespan machines, and that
//! the makespan never increases.

use serde::Serialize;

use hcs_analysis::{run_trials_with, wilcoxon_signed_rank, OnlineStats, OutcomeMetrics, TextTable};
use hcs_core::{iterative, MapWorkspace};
use hcs_etcgen::EtcSpec;
use hcs_genitor::{Genitor, GenitorConfig};

use crate::roster::study_genitor_config;
use crate::workloads::{study_classes, study_scenario, StudyDims};

/// Aggregated row for one workload class.
#[derive(Clone, Debug, Serialize)]
pub struct GenitorRow {
    /// Class label (`c-hihi`, …).
    pub class: String,
    /// Fraction of trials where the makespan increased (must be 0).
    pub increase: f64,
    /// Mean relative reduction of the average finishing time, percent.
    pub reduction_pct: f64,
    /// Mean number of machines that finished strictly earlier.
    pub machines_improved: f64,
    /// Two-sided Wilcoxon signed-rank p-value for "the finishing-time
    /// reduction differs from zero" over the class's trials.
    pub p_value: f64,
}

fn run_class(spec: &EtcSpec, dims: StudyDims, base_seed: u64, config: GenitorConfig) -> GenitorRow {
    let results = run_trials_with(base_seed, dims.trials, MapWorkspace::new, |ws, seed| {
        let scenario = study_scenario(spec, seed).with_objective(dims.objective);
        let mut ga = Genitor::with_config(seed, config);
        let outcome = iterative::IterativeRun::new(&mut ga, &scenario)
            .workspace(ws)
            .execute()
            .unwrap();
        OutcomeMetrics::from_outcome(&outcome)
    });
    let mut inc = OnlineStats::new();
    let mut red = OnlineStats::new();
    let mut imp = OnlineStats::new();
    let mut reductions = Vec::with_capacity(results.len());
    for m in results {
        inc.push(f64::from(u8::from(m.makespan_increased)));
        red.push(m.mean_finish_reduction * 100.0);
        imp.push(m.machines_improved as f64);
        reductions.push(m.mean_finish_reduction);
    }
    GenitorRow {
        class: spec.label(),
        increase: inc.mean(),
        reduction_pct: red.mean(),
        machines_improved: imp.mean(),
        p_value: wilcoxon_signed_rank(&reductions),
    }
}

/// Runs X2 with the default study GA budget: one row per Braun class.
pub fn run(dims: StudyDims, base_seed: u64) -> Vec<GenitorRow> {
    run_with_config(dims, base_seed, study_genitor_config())
}

/// Runs X2 under an explicit GA budget (the CLI's `--large` path).
pub fn run_with_config(dims: StudyDims, base_seed: u64, config: GenitorConfig) -> Vec<GenitorRow> {
    study_classes(dims)
        .iter()
        .map(|spec| run_class(spec, dims, base_seed, config))
        .collect()
}

/// Formats X2 as a text table.
pub fn table(rows: &[GenitorRow], dims: StudyDims) -> TextTable {
    let mut t = TextTable::new(vec![
        "class",
        "increase%",
        "finish reduction%",
        "machines improved (avg)",
        "p (Wilcoxon)",
    ])
    .with_title(format!(
        "X2. Genitor with per-iteration seeding — {} tasks x {} machines, {} trials per class",
        dims.n_tasks, dims.n_machines, dims.trials
    ));
    for r in rows {
        t.push_row(vec![
            r.class.clone(),
            format!("{:.1}", r.increase * 100.0),
            format!("{:.2}", r.reduction_pct),
            format!("{:.2}", r.machines_improved),
            format!("{:.3}", r.p_value),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genitor_never_increases_makespan() {
        let dims = StudyDims {
            n_tasks: 10,
            n_machines: 3,
            trials: 2,
            ..StudyDims::default()
        };
        let spec = study_classes(dims)[0];
        let row = run_class(&spec, dims, 1234, study_genitor_config());
        assert_eq!(row.increase, 0.0, "seeded Genitor is monotone");
        assert!(row.reduction_pct >= -1e-9);
        assert!((0.0..=1.0).contains(&row.p_value));
    }
}
