//! Experiment X7 — ablation of the frozen-machine tie rule.
//!
//! The paper never says which machine freezes when several tie for the
//! makespan. DESIGN.md §4 documents our default (lowest index); this study
//! measures whether the choice matters. It runs the iterative technique on
//! deliberately tie-rich integer workloads
//! ([`hcs_etcgen::Method::IntegerUniform`]) under the three
//! [`MakespanTie`] rules and reports, per heuristic:
//!
//! * how often the three rules produce different final finishing-time
//!   vectors (i.e. how often the unspecified detail is load-bearing);
//! * each rule's makespan-increase frequency.

use serde::Serialize;

use hcs_analysis::{run_trials_with, OnlineStats, TextTable};
use hcs_core::{iterative, IterativeConfig, MakespanTie, MapWorkspace, Scenario};
use hcs_etcgen::{Consistency, EtcSpec, Method};

use crate::roster::{greedy_roster, make_heuristic};
use crate::workloads::StudyDims;

/// Aggregated row for one heuristic.
#[derive(Clone, Debug, Serialize)]
pub struct MakespanTieRow {
    /// Heuristic name.
    pub heuristic: &'static str,
    /// Fraction of trials where at least two rules diverged in the final
    /// finishing-time vector.
    pub divergence: f64,
    /// Makespan-increase fraction per rule
    /// (lowest index, highest index, most tasks).
    pub increase: [f64; 3],
}

const RULES: [MakespanTie; 3] = [
    MakespanTie::LowestIndex,
    MakespanTie::HighestIndex,
    MakespanTie::MostTasks,
];

/// Runs X7 on tie-rich integer workloads.
pub fn run(dims: StudyDims, base_seed: u64) -> Vec<MakespanTieRow> {
    let spec = EtcSpec {
        n_tasks: dims.n_tasks,
        n_machines: dims.n_machines,
        method: Method::IntegerUniform { lo: 1, hi: 5 },
        consistency: Consistency::Inconsistent,
    };
    greedy_roster()
        .into_iter()
        .map(|name| {
            let results = run_trials_with(
                base_seed,
                dims.trials * 12,
                MapWorkspace::new,
                |ws, seed| {
                    let scenario = Scenario::with_zero_ready(spec.generate(seed));
                    let outcomes: Vec<_> = RULES
                        .iter()
                        .map(|&rule| {
                            let mut h = make_heuristic(name, seed);
                            iterative::IterativeRun::new(&mut *h, &scenario)
                                .config(IterativeConfig {
                                    makespan_tie: rule,
                                    ..IterativeConfig::default()
                                })
                                .workspace(&mut *ws)
                                .execute()
                                .unwrap()
                        })
                        .collect();
                    let diverged = outcomes
                        .iter()
                        .any(|o| o.final_finish != outcomes[0].final_finish);
                    let increases: Vec<bool> =
                        outcomes.iter().map(|o| o.makespan_increased()).collect();
                    (diverged, increases)
                },
            );
            let mut div = OnlineStats::new();
            let mut inc = [OnlineStats::new(), OnlineStats::new(), OnlineStats::new()];
            for (diverged, increases) in results {
                div.push(f64::from(u8::from(diverged)));
                for (stat, &flag) in inc.iter_mut().zip(&increases) {
                    stat.push(f64::from(u8::from(flag)));
                }
            }
            MakespanTieRow {
                heuristic: name,
                divergence: div.mean(),
                increase: [inc[0].mean(), inc[1].mean(), inc[2].mean()],
            }
        })
        .collect()
}

/// Formats X7 as a text table.
pub fn table(rows: &[MakespanTieRow], dims: StudyDims) -> TextTable {
    let mut t = TextTable::new(vec![
        "heuristic",
        "rules diverge%",
        "increase% (low idx)",
        "increase% (high idx)",
        "increase% (most tasks)",
    ])
    .with_title(format!(
        "X7. Frozen-machine tie-rule ablation — integer 1..=5 workloads, {} tasks x {} machines, {} trials",
        dims.n_tasks,
        dims.n_machines,
        dims.trials * 12
    ));
    for r in rows {
        t.push_row(vec![
            r.heuristic.to_string(),
            format!("{:.1}", r.divergence * 100.0),
            format!("{:.1}", r.increase[0] * 100.0),
            format!("{:.1}", r.increase[1] * 100.0),
            format!("{:.1}", r.increase[2] * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_rules_are_bounded() {
        let dims = StudyDims {
            n_tasks: 10,
            n_machines: 4,
            trials: 1,
            ..StudyDims::default()
        };
        let rows = run(dims, 77);
        assert_eq!(rows.len(), greedy_roster().len());
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.divergence), "{}", r.heuristic);
            for v in r.increase {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn invariant_heuristics_still_never_increase() {
        // The theorems hold regardless of the frozen-machine tie rule: the
        // mapping of every round is identical, so every rule freezes a
        // machine whose completion equals the (unchanged) makespan.
        let dims = StudyDims {
            n_tasks: 10,
            n_machines: 4,
            trials: 2,
            ..StudyDims::default()
        };
        for r in run(dims, 5) {
            if ["Min-Min", "MCT", "MET"].contains(&r.heuristic) {
                assert_eq!(r.increase, [0.0; 3], "{}", r.heuristic);
            }
        }
    }
}
