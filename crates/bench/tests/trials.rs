//! The Monte-Carlo runner's parallel/sequential agreement, exercised with
//! the real study payload: every heuristic in the roster driven through
//! the workspace-threaded iterative technique. Rayon's work splitting, the
//! per-thread `MapWorkspace` reuse, and the wrapping seed arithmetic must
//! all be invisible in the results.

use hcs_analysis::{run_trials, run_trials_seq, run_trials_with};
use hcs_bench::{greedy_roster, make_heuristic, study_classes, study_scenario, StudyDims};
use hcs_core::{iterative, MapWorkspace, Objective, TieBreaker};

const DIMS: StudyDims = StudyDims {
    n_tasks: 10,
    n_machines: 3,
    trials: 4,
    objective: Objective::Makespan,
};

/// One study trial: map + iterate one heuristic on a seeded Braun scenario,
/// returning the full outcome (rounds, mappings, finishing times).
fn trial(name: &str, ws: &mut MapWorkspace, seed: u64) -> hcs_core::iterative::IterativeOutcome {
    let spec = study_classes(DIMS)[seed as usize % 12];
    let scenario = study_scenario(&spec, seed);
    let mut h = make_heuristic(name, seed);
    iterative::IterativeRun::new(&mut *h, &scenario)
        .tie_breaker(TieBreaker::random(seed ^ 0xD1CE))
        .workspace(ws)
        .execute()
        .unwrap()
}

#[test]
fn parallel_and_sequential_twins_agree_for_every_roster_heuristic() {
    for name in greedy_roster() {
        let par = run_trials_with(2007, DIMS.trials, MapWorkspace::new, |ws, seed| {
            trial(name, ws, seed)
        });
        let seq = {
            let mut ws = MapWorkspace::new();
            run_trials_seq(2007, DIMS.trials, |seed| trial(name, &mut ws, seed))
        };
        assert_eq!(par, seq, "{name}");
    }
}

#[test]
fn wrapping_seeds_near_u64_max_agree_too() {
    // The seed arithmetic must wrap identically in all three runners, and
    // the trial payload must work with the wrapped seeds.
    let base = u64::MAX - 1;
    let name = "Min-Min";
    let with = run_trials_with(base, 4, MapWorkspace::new, |ws, seed| trial(name, ws, seed));
    let plain = run_trials(base, 4, |seed| trial(name, &mut MapWorkspace::new(), seed));
    let seq = {
        let mut ws = MapWorkspace::new();
        run_trials_seq(base, 4, |seed| trial(name, &mut ws, seed))
    };
    assert_eq!(with, plain);
    assert_eq!(with, seq);
}
