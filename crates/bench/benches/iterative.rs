//! X5b — cost of the full iterative technique versus a single mapping.
//!
//! The technique runs the heuristic once per machine, so the expected
//! overhead is roughly `n_machines ×` the single-mapping cost (slightly
//! less: later rounds shrink). The `seed_guard` variant measures the cost
//! of the conclusion's safety net.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcs_bench::{make_heuristic, study_scenario};
use hcs_core::{iterative, IterativeConfig};
use hcs_etcgen::{Consistency, EtcSpec, Heterogeneity};
use std::hint::black_box;

fn bench_iterative(c: &mut Criterion) {
    let spec = EtcSpec::braun(
        128,
        8,
        Consistency::Inconsistent,
        Heterogeneity::Hi,
        Heterogeneity::Hi,
    );
    let scenario = study_scenario(&spec, 42);

    let mut group = c.benchmark_group("iterative/128x8");
    for name in hcs_bench::greedy_roster() {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut h = make_heuristic(name, 42);
                black_box(
                    iterative::IterativeRun::new(&mut *h, &scenario)
                        .execute()
                        .unwrap(),
                )
            });
        });
    }
    group.bench_function(BenchmarkId::from_parameter("Sufferage+guard"), |b| {
        b.iter(|| {
            let mut h = make_heuristic("Sufferage", 42);
            black_box(
                iterative::IterativeRun::new(&mut *h, &scenario)
                    .config(IterativeConfig {
                        seed_guard: true,
                        ..IterativeConfig::default()
                    })
                    .execute()
                    .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_iterative);
criterion_main!(benches);
