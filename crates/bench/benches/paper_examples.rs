//! E1–E17 micro-benchmarks: the full iterative run of every reconstructed
//! paper example (tiny instances; this mostly tracks driver overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcs_paper::all_examples;
use std::hint::black_box;

fn bench_examples(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_examples");
    for example in all_examples() {
        group.bench_function(BenchmarkId::from_parameter(example.id), |b| {
            b.iter(|| black_box(example.run()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_examples);
criterion_main!(benches);
