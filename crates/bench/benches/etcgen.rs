//! X5d — workload generation cost: range-based versus CVB (the Gamma
//! sampler dominates CVB), and the consistency post-processing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcs_etcgen::{Consistency, EtcSpec, Heterogeneity, Method};
use std::hint::black_box;

fn bench_etcgen(c: &mut Criterion) {
    let mut group = c.benchmark_group("etcgen/512x16");
    for consistency in [
        Consistency::Inconsistent,
        Consistency::SemiConsistent,
        Consistency::Consistent,
    ] {
        let spec = EtcSpec::braun(512, 16, consistency, Heterogeneity::Hi, Heterogeneity::Hi);
        group.bench_function(BenchmarkId::new("range", consistency.label()), |b| {
            b.iter(|| black_box(spec.generate(7)))
        });
    }
    let cvb = EtcSpec {
        n_tasks: 512,
        n_machines: 16,
        method: Method::Cvb {
            mean_task: 1000.0,
            v_task: 0.9,
            v_mach: 0.9,
        },
        consistency: Consistency::Inconsistent,
    };
    group.bench_function("cvb/i", |b| b.iter(|| black_box(cvb.generate(7))));
    group.finish();
}

criterion_group!(benches, bench_etcgen);
criterion_main!(benches);
