//! Naive versus delta-evaluation search kernel: Genitor, SA, and Tabu
//! timed against their pre-kernel reference twins at three workload sizes.
//!
//! Both sides of every pair are bit-identical searches (enforced by the
//! golden-equivalence suites, and spot-checked here before timing), so the
//! comparison is pure move-costing: full-rescan / from-scratch fitness
//! versus `LoadTracker` probes and gate-then-recompute offspring costing.
//!
//! Besides the Criterion groups, the bench writes a machine-readable
//! summary to `BENCH_search.json` at the repository root. The file is
//! written *merge-preserving* (see `hcs_bench::benchdoc`): the kernel
//! comparison owns the `sizes` section and the parallel-engine comparison
//! owns the `parallel` section, and a re-run of either leaves the other's
//! results intact. `--parallel` re-measures only the parallel section;
//! `--smoke` skips Criterion and every summary rewrite: it runs a fast
//! small-size comparison asserting the delta kernel is never slower than
//! naive, pins the parallel engines' determinism and thread_count=1
//! equivalence, asserts island-Genitor speedup when the host has the
//! cores for it, and validates that the checked-in `BENCH_search.json`
//! still parses — the CI guardrail.

use criterion::{BenchmarkId, Criterion};
use hcs_bench::benchdoc::merge_preserving;
use hcs_bench::study_scenario;
use hcs_core::{Heuristic, Scenario, TieBreaker};
use hcs_etcgen::{Consistency, EtcSpec, Heterogeneity};
use hcs_genitor::{Genitor, GenitorConfig, IslandConfig, IslandGenitor};
use hcs_heuristics::{reference, MultiConfig, MultiSa, MultiTabu, Sa, SaConfig, Tabu, TabuConfig};
use hcs_service::json::Value as JValue;
use std::hint::black_box;
use std::time::Instant;

const SEED: u64 = 42;

fn braun_inconsistent(n_tasks: usize, n_machines: usize) -> Scenario {
    let spec = EtcSpec::braun(
        n_tasks,
        n_machines,
        Consistency::Inconsistent,
        Heterogeneity::Hi,
        Heterogeneity::Hi,
    );
    study_scenario(&spec, SEED)
}

/// Search budgets for the timed comparison. The Genitor budget is
/// stall-proof (`stall_steps == max_steps`) so both sides run the same
/// fixed number of steps, and the selection bias is high enough that the
/// population converges — the regime the steady-state GA spends most of
/// its life in, where almost every offspring is rejected and the naive
/// from-scratch fitness is pure waste.
fn bench_genitor_config(max_steps: usize) -> GenitorConfig {
    GenitorConfig {
        pop_size: 24,
        max_steps,
        stall_steps: max_steps,
        selection_bias: 1.9,
        seed_minmin: false,
        eval_threads: 1,
    }
}

fn bench_sa_config(max_steps: usize) -> SaConfig {
    SaConfig {
        max_steps,
        ..SaConfig::default()
    }
}

fn bench_tabu_config(max_hops: usize) -> TabuConfig {
    TabuConfig {
        max_hops,
        ..TabuConfig::default()
    }
}

/// One naive/delta pair, erased to `map` closures over fresh heuristic
/// state per call (Genitor is stateful; a fresh instance per run keeps
/// every measurement identical).
struct Pair {
    name: &'static str,
    naive: Box<dyn FnMut(&Scenario) -> hcs_core::Mapping>,
    delta: Box<dyn FnMut(&Scenario) -> hcs_core::Mapping>,
}

fn pairs(genitor_steps: usize, sa_steps: usize, tabu_hops: usize) -> Vec<Pair> {
    vec![
        Pair {
            name: "genitor",
            naive: Box::new(move |s| {
                map_fresh(
                    &mut hcs_genitor::reference::NaiveGenitor::with_config(
                        SEED,
                        bench_genitor_config(genitor_steps),
                    ),
                    s,
                )
            }),
            delta: Box::new(move |s| {
                map_fresh(
                    &mut Genitor::with_config(SEED, bench_genitor_config(genitor_steps)),
                    s,
                )
            }),
        },
        Pair {
            name: "sa",
            naive: Box::new(move |s| {
                map_fresh(
                    &mut reference::NaiveSa::with_config(SEED, bench_sa_config(sa_steps)),
                    s,
                )
            }),
            delta: Box::new(move |s| {
                map_fresh(&mut Sa::with_config(SEED, bench_sa_config(sa_steps)), s)
            }),
        },
        Pair {
            name: "tabu",
            naive: Box::new(move |s| {
                map_fresh(
                    &mut reference::NaiveTabu::with_config(SEED, bench_tabu_config(tabu_hops)),
                    s,
                )
            }),
            delta: Box::new(move |s| {
                map_fresh(
                    &mut Tabu::with_config(SEED, bench_tabu_config(tabu_hops)),
                    s,
                )
            }),
        },
    ]
}

fn map_fresh(h: &mut dyn Heuristic, scenario: &Scenario) -> hcs_core::Mapping {
    let owned = scenario.full_instance();
    let mut tb = TieBreaker::Deterministic;
    h.map(&owned.as_instance(scenario), &mut tb)
}

/// Median wall time of `f` over `runs` executions, in seconds.
fn median_secs(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Times every pair at one size, first asserting both sides still agree on
/// the final mapping (the timed comparison is only meaningful if the two
/// searches are the same search).
fn measure_size(
    scenario: &Scenario,
    runs: usize,
    genitor_steps: usize,
    sa_steps: usize,
    tabu_hops: usize,
) -> Vec<(&'static str, f64, f64)> {
    pairs(genitor_steps, sa_steps, tabu_hops)
        .into_iter()
        .map(|mut pair| {
            let a = (pair.naive)(scenario);
            let b = (pair.delta)(scenario);
            assert_eq!(
                a.order(),
                b.order(),
                "{}: naive and delta diverged — timing comparison void",
                pair.name
            );
            let naive = median_secs(runs, || {
                black_box((pair.naive)(scenario));
            });
            let delta = median_secs(runs, || {
                black_box((pair.delta)(scenario));
            });
            (pair.name, naive, delta)
        })
        .collect()
}

const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_search.json");

/// Minimal JSON reader for the smoke-mode validation of the checked-in
/// summary. Self-contained so the guardrail has no parser dependency:
/// objects keep insertion order, numbers are f64, escapes are decoded
/// enough to round-trip what the writer above emits.
mod tinyjson {
    #[derive(Debug, Clone, PartialEq)]
    pub enum J {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<J>),
        Obj(Vec<(String, J)>),
    }

    impl J {
        /// Member lookup on objects; `J::Null` for anything else.
        pub fn get(&self, key: &str) -> &J {
            match self {
                J::Obj(members) => members
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .unwrap_or(&J::Null),
                _ => &J::Null,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                J::Num(v) => Some(*v),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<J, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&b) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<J, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                let mut members = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(J::Obj(members));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    expect(bytes, pos, b':')?;
                    members.push((key, parse_value(bytes, pos)?));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(J::Obj(members));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(J::Arr(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(J::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                    }
                }
            }
            Some(b'"') => Ok(J::Str(parse_string(bytes, pos)?)),
            Some(b't') if bytes[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(J::Bool(true))
            }
            Some(b'f') if bytes[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(J::Bool(false))
            }
            Some(b'n') if bytes[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(J::Null)
            }
            Some(_) => {
                let start = *pos;
                while *pos < bytes.len()
                    && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *pos += 1;
                }
                std::str::from_utf8(&bytes[start..*pos])
                    .ok()
                    .and_then(|s| s.parse::<f64>().ok())
                    .map(J::Num)
                    .ok_or_else(|| format!("bad number at byte {start}"))
            }
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = Vec::new();
        while let Some(&b) = bytes.get(*pos) {
            *pos += 1;
            match b {
                b'"' => {
                    return String::from_utf8(out).map_err(|_| "invalid UTF-8".to_string());
                }
                b'\\' => {
                    let esc = bytes.get(*pos).copied().ok_or("truncated escape")?;
                    *pos += 1;
                    match esc {
                        b'"' | b'\\' | b'/' => out.push(esc),
                        b'n' => out.push(b'\n'),
                        b't' => out.push(b'\t'),
                        b'r' => out.push(b'\r'),
                        b'u' => {
                            let hex = bytes
                                .get(*pos..*pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            *pos += 4;
                            let c = char::from_u32(hex).ok_or("bad \\u codepoint")?;
                            out.extend_from_slice(c.to_string().as_bytes());
                        }
                        _ => return Err(format!("unknown escape \\{}", esc as char)),
                    }
                }
                _ => out.push(b),
            }
        }
        Err("unterminated string".to_string())
    }
}

/// Full-size budgets per heuristic (kept identical across sizes so the
/// scaling in the JSON is the instance size, not the budget).
const GENITOR_STEPS: usize = 32_000;
const SA_STEPS: usize = 30_000;
const TABU_HOPS: usize = 100;

/// Builds a flat JSON object from key/value pairs (insertion-ordered, like
/// every document in `hcs_service::json`).
fn obj(pairs: Vec<(&str, JValue)>) -> JValue {
    JValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn num(v: f64) -> JValue {
    JValue::Number(v)
}

fn s(v: &str) -> JValue {
    JValue::String(v.to_string())
}

/// Pretty-prints a JSON value with two-space indentation (the layout the
/// checked-in `BENCH_search.json` has always used; `hcs_service::json`'s
/// `Display` is compact, which is right for the wire but not for a file
/// humans diff).
fn pretty(v: &JValue, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close = "  ".repeat(indent);
    match v {
        JValue::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                out.push_str(&pad);
                out.push_str(&format!("{}: ", JValue::String(k.clone())));
                pretty(val, indent + 1, out);
                out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
            }
            out.push_str(&close);
            out.push('}');
        }
        JValue::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                pretty(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&close);
            out.push(']');
        }
        scalar => out.push_str(&scalar.to_string()),
    }
}

/// Writes the bench summary, preserving any top-level sections of the
/// existing file that `fresh` does not redefine — so the kernel comparison
/// and the parallel comparison can each be re-run without clobbering the
/// other's section.
fn write_merged_summary(fresh: JValue) {
    let existing = std::fs::read_to_string(BENCH_PATH)
        .ok()
        .and_then(|text| hcs_service::json::parse(text.trim_end()).ok());
    let doc = merge_preserving(existing.as_ref(), fresh);
    let mut out = String::new();
    pretty(&doc, 0, &mut out);
    out.push('\n');
    std::fs::write(BENCH_PATH, out).expect("write BENCH_search.json");
    println!("wrote {BENCH_PATH}");
}

fn write_search_summary() {
    let mut sizes = Vec::new();
    let mut genitor_512_speedup = None;
    let mut sa_worst_speedup = f64::INFINITY;
    for (label, n_tasks, n_machines, runs) in [
        ("128x8", 128, 8, 5),
        ("512x16", 512, 16, 5),
        ("1024x32", 1024, 32, 3),
    ] {
        let scenario = braun_inconsistent(n_tasks, n_machines);
        let mut entry = Vec::new();
        for (name, naive, delta) in
            measure_size(&scenario, runs, GENITOR_STEPS, SA_STEPS, TABU_HOPS)
        {
            let speedup = naive / delta;
            if name == "genitor" && label == "512x16" {
                genitor_512_speedup = Some(speedup);
            }
            if name == "sa" {
                sa_worst_speedup = sa_worst_speedup.min(speedup);
            }
            entry.push((
                name.to_string(),
                obj(vec![
                    ("naive_secs", num(naive)),
                    ("delta_secs", num(delta)),
                    ("speedup", num(speedup)),
                ]),
            ));
            println!("{label}/{name}: naive {naive:.4}s, delta {delta:.4}s, {speedup:.1}x");
        }
        sizes.push((label.to_string(), JValue::Object(entry)));
    }

    let fresh = obj(vec![
        (
            "benchmark",
            s("naive vs delta-evaluation search kernel, Braun i-hihi, seed 42"),
        ),
        (
            "statistic",
            s("median wall seconds per map call, identical searches"),
        ),
        (
            "budgets",
            obj(vec![
                (
                    "genitor",
                    obj(vec![
                        (
                            "pop_size",
                            num(bench_genitor_config(GENITOR_STEPS).pop_size as f64),
                        ),
                        ("max_steps", num(GENITOR_STEPS as f64)),
                        (
                            "selection_bias",
                            num(bench_genitor_config(GENITOR_STEPS).selection_bias),
                        ),
                    ]),
                ),
                ("sa", obj(vec![("max_steps", num(SA_STEPS as f64))])),
                ("tabu", obj(vec![("max_hops", num(TABU_HOPS as f64))])),
            ]),
        ),
        ("sizes", JValue::Object(sizes)),
    ]);
    write_merged_summary(fresh);

    let speedup = genitor_512_speedup.expect("512x16 genitor entry measured");
    assert!(
        speedup >= 5.0,
        "Genitor delta kernel must be >= 5x naive at 512x16, measured {speedup:.2}x"
    );
    // PR 5's honest loss, closed: the adaptive flat/tree split must keep
    // SA at or above parity with its naive twin at every measured size.
    assert!(
        sa_worst_speedup >= 1.0,
        "SA delta kernel must be >= 1.0x naive at every size, worst {sa_worst_speedup:.2}x"
    );
}

// ---------------------------------------------------------------------------
// Parallel engines: island-model Genitor and multi-restart SA/Tabu against
// their single-threaded twins at equal total step budget.
// ---------------------------------------------------------------------------

/// Thread/island counts the parallel comparison sweeps.
const PAR_UNITS: [usize; 4] = [1, 2, 4, 8];
/// Total Genitor step budget, divided across islands.
const PAR_GENITOR_STEPS: usize = GENITOR_STEPS;
/// Total SA step budget, divided across restarts. Much larger than the
/// kernel comparison's budget: a single 30k-step anneal finishes in
/// ~0.2 ms, which thread-spawn overhead would swamp.
const PAR_SA_STEPS: usize = 1_000_000;
/// Total Tabu hop budget, divided across restarts.
const PAR_TABU_HOPS: usize = 2_000;
/// Island best-chromosome exchange period (steps between migrations).
const PAR_MIGRATION_INTERVAL: usize = 250;

/// SA config for the parallel comparison: no temperature floor, so the
/// anneal is budget-bound and "equal total steps" means what it says
/// (the default floor freezes the default schedule after ~5.6k steps,
/// which thread-spawn overhead would swamp).
fn par_sa_config(max_steps: usize) -> SaConfig {
    SaConfig {
        max_steps,
        t_min_fraction: 0.0,
        ..SaConfig::default()
    }
}

/// One parallel family: a single-threaded baseline engine and a
/// `units`-parameterised parallel variant at the same total budget.
struct ParFamily {
    name: &'static str,
    single: Box<dyn Fn() -> Box<dyn Heuristic>>,
    variant: Box<dyn Fn(usize) -> Box<dyn Heuristic>>,
}

fn par_families(genitor_steps: usize, sa_steps: usize, tabu_hops: usize) -> Vec<ParFamily> {
    vec![
        ParFamily {
            name: "genitor-island",
            single: Box::new(move || {
                Box::new(Genitor::with_config(
                    SEED,
                    bench_genitor_config(genitor_steps),
                ))
            }),
            variant: Box::new(move |units| {
                Box::new(IslandGenitor::with_config(
                    SEED,
                    IslandConfig {
                        islands: units,
                        migration_interval: PAR_MIGRATION_INTERVAL,
                        genitor: bench_genitor_config((genitor_steps / units).max(1)),
                    },
                ))
            }),
        },
        ParFamily {
            name: "sa-multi",
            single: Box::new(move || Box::new(Sa::with_config(SEED, par_sa_config(sa_steps)))),
            variant: Box::new(move |units| {
                let restarts = MultiConfig::restarts_for(units);
                Box::new(MultiSa::with_config(
                    SEED,
                    MultiConfig {
                        threads: units,
                        restarts,
                        adopt: true,
                    },
                    par_sa_config((sa_steps / restarts).max(1)),
                ))
            }),
        },
        ParFamily {
            name: "tabu-multi",
            single: Box::new(move || {
                Box::new(Tabu::with_config(SEED, bench_tabu_config(tabu_hops)))
            }),
            variant: Box::new(move |units| {
                let restarts = MultiConfig::restarts_for(units);
                Box::new(MultiTabu::with_config(
                    SEED,
                    MultiConfig {
                        threads: units,
                        restarts,
                        adopt: true,
                    },
                    bench_tabu_config((tabu_hops / restarts).max(1)),
                ))
            }),
        },
    ]
}

/// Maps a fresh instance and returns the final mapping's objective value
/// alongside it.
fn map_valued(h: &mut dyn Heuristic, scenario: &Scenario) -> (hcs_core::Mapping, f64) {
    let owned = scenario.full_instance();
    let inst = owned.as_instance(scenario);
    let mut tb = TieBreaker::Deterministic;
    let mapping = h.map(&inst, &mut tb);
    let value = mapping
        .objective_value(inst.etc, inst.ready, inst.machines, inst.objective)
        .get();
    (mapping, value)
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Measures every parallel family against its single-threaded twin and
/// writes the `parallel` section of `BENCH_search.json` (merge-preserving:
/// the kernel comparison's sections survive). Every configuration is run
/// twice first and asserted bit-identical — the determinism contract holds
/// on whatever host runs the bench, regardless of core count.
fn write_parallel_summary() {
    let scenario = braun_inconsistent(512, 16);
    let runs = 5;
    let mut engines = Vec::new();
    for family in par_families(PAR_GENITOR_STEPS, PAR_SA_STEPS, PAR_TABU_HOPS) {
        let (_, single_value) = map_valued(&mut *(family.single)(), &scenario);
        let single_secs = median_secs(runs, || {
            black_box(map_valued(&mut *(family.single)(), &scenario));
        });
        let mut per_units = Vec::new();
        for units in PAR_UNITS {
            let (a, value) = map_valued(&mut *(family.variant)(units), &scenario);
            let (b, _) = map_valued(&mut *(family.variant)(units), &scenario);
            assert_eq!(
                a.order(),
                b.order(),
                "{} at {units} units: two identically-seeded runs diverged",
                family.name
            );
            let secs = median_secs(runs, || {
                black_box(map_valued(&mut *(family.variant)(units), &scenario));
            });
            let speedup = single_secs / secs;
            let quality_delta_pct = (value - single_value) / single_value * 100.0;
            println!(
                "parallel/{}/{units}: {secs:.4}s ({speedup:.2}x), quality {quality_delta_pct:+.3}%",
                family.name
            );
            per_units.push((
                units.to_string(),
                obj(vec![
                    ("secs", num(secs)),
                    ("speedup", num(speedup)),
                    ("value", num(value)),
                    ("quality_delta_pct", num(quality_delta_pct)),
                ]),
            ));
        }
        engines.push((
            family.name.to_string(),
            obj(vec![
                ("single_secs", num(single_secs)),
                ("single_value", num(single_value)),
                ("threads", JValue::Object(per_units)),
            ]),
        ));
    }

    let fresh =
        obj(vec![(
            "parallel",
            obj(vec![
            (
                "benchmark",
                s("parallel search engines vs single-threaded twins, equal total step budget, \
                   Braun i-hihi 512x16, seed 42"),
            ),
            (
                "statistic",
                s("median wall seconds per map call; quality_delta_pct = \
                   (parallel - single) / single objective value"),
            ),
            ("host_cores", num(host_cores() as f64)),
            (
                "budgets",
                obj(vec![
                    ("genitor_steps", num(PAR_GENITOR_STEPS as f64)),
                    ("sa_steps", num(PAR_SA_STEPS as f64)),
                    ("tabu_hops", num(PAR_TABU_HOPS as f64)),
                    ("migration_interval", num(PAR_MIGRATION_INTERVAL as f64)),
                ]),
            ),
            ("engines", JValue::Object(engines)),
        ]),
        )]);
    write_merged_summary(fresh);
}

/// `--smoke`: the CI guardrail. Small sizes, tiny budgets, hard asserts.
///
/// Two sizes on purpose: 64×8 exercises the tracker's *flat* mode (the
/// small-m regime where the tree-based kernel used to run SA at ~0.6x its
/// naive twin) and 256×256 its *tree* mode — the adaptive split must leave
/// no configuration slower than naive on either side of `FLAT_MAX`.
fn smoke() {
    for (label, n_tasks, n_machines, sa_steps) in [
        ("64x8-flat", 64, 8, 20_000),
        ("256x256-tree", 256, 256, 8_000),
    ] {
        let scenario = braun_inconsistent(n_tasks, n_machines);
        for (name, naive, delta) in measure_size(&scenario, 3, 300, sa_steps, 300) {
            println!("smoke/{label}/{name}: naive {naive:.5}s, delta {delta:.5}s");
            assert!(
                delta <= naive,
                "{name}: delta kernel slower than naive at {label} ({delta:.5}s > {naive:.5}s)"
            );
        }
    }

    // The checked-in summary must still be well-formed — the smoke run
    // never rewrites it, only validates it.
    let text = std::fs::read_to_string(BENCH_PATH)
        .unwrap_or_else(|e| panic!("BENCH_search.json unreadable at {BENCH_PATH}: {e}"));
    let doc = tinyjson::parse(&text)
        .unwrap_or_else(|e| panic!("BENCH_search.json is not valid JSON: {e}"));
    for label in ["128x8", "512x16", "1024x32"] {
        for name in ["genitor", "sa", "tabu"] {
            let entry = doc.get("sizes").get(label).get(name);
            for key in ["naive_secs", "delta_secs", "speedup"] {
                assert!(
                    entry.get(key).as_f64().is_some_and(|v| v > 0.0),
                    "BENCH_search.json missing positive sizes.{label}.{name}.{key}"
                );
            }
        }
    }
    let speedup = doc
        .get("sizes")
        .get("512x16")
        .get("genitor")
        .get("speedup")
        .as_f64()
        .expect("recorded genitor speedup");
    assert!(
        speedup >= 5.0,
        "checked-in BENCH_search.json records only {speedup:.2}x for Genitor at 512x16"
    );

    smoke_parallel(&doc);
    println!(
        "smoke ok: delta <= naive in flat (64x8) and tree (256x256) mode; parallel engines \
         deterministic and pinned to their single-threaded twins; BENCH_search.json well-formed"
    );
}

/// Parallel-engine smoke: determinism and thread_count=1 equivalence are
/// asserted unconditionally; the wall-clock speedup gate only runs when
/// the host actually has the cores to show one (CI runners do; a 1-core
/// container cannot and measures honest ~1x).
fn smoke_parallel(doc: &tinyjson::J) {
    let scenario = braun_inconsistent(64, 8);
    for family in par_families(2_000, 40_000, 200) {
        // thread_count=1 at the full budget is bit-identical to the
        // single-threaded engine (islands=1 delegates; one restart on one
        // lane replays the same RNG stream).
        let (single, _) = map_valued(&mut *(family.single)(), &scenario);
        let (one, _) = map_valued(&mut *(family.variant)(1), &scenario);
        if family.name == "genitor-island" {
            assert_eq!(
                single.order(),
                one.order(),
                "islands=1 must replay the single-threaded Genitor bit-for-bit"
            );
        }
        for units in PAR_UNITS {
            let (a, va) = map_valued(&mut *(family.variant)(units), &scenario);
            let (b, vb) = map_valued(&mut *(family.variant)(units), &scenario);
            assert_eq!(
                a.order(),
                b.order(),
                "{} at {units} units: repeated runs must be bit-identical",
                family.name
            );
            assert_eq!(va, vb, "{} at {units} units: values diverged", family.name);
        }
        println!(
            "smoke/parallel/{}: deterministic at 1/2/4/8 units",
            family.name
        );
    }
    // Exact thread_count=1 pins for the multi engines need restarts=1 (the
    // roster's restarts_for(1) = 2 runs a second restart on the same lane).
    let (sa_single, _) = map_valued(
        &mut Sa::with_config(SEED, bench_sa_config(40_000)),
        &scenario,
    );
    let one = MultiConfig {
        threads: 1,
        restarts: 1,
        adopt: true,
    };
    let (sa_one, _) = map_valued(
        &mut MultiSa::with_config(SEED, one, bench_sa_config(40_000)),
        &scenario,
    );
    assert_eq!(
        sa_single.order(),
        sa_one.order(),
        "one restart on one lane must replay single-threaded SA bit-for-bit"
    );
    let (tabu_single, _) = map_valued(
        &mut Tabu::with_config(SEED, bench_tabu_config(200)),
        &scenario,
    );
    let (tabu_one, _) = map_valued(
        &mut MultiTabu::with_config(SEED, one, bench_tabu_config(200)),
        &scenario,
    );
    assert_eq!(
        tabu_single.order(),
        tabu_one.order(),
        "one restart on one lane must replay single-threaded Tabu bit-for-bit"
    );

    // Wall-clock gate: at >= 4 cores, island Genitor at 4 islands must run
    // the same total budget at >= 2x the single-threaded engine.
    if host_cores() >= 4 {
        let big = braun_inconsistent(512, 16);
        let fams = par_families(PAR_GENITOR_STEPS, PAR_SA_STEPS, PAR_TABU_HOPS);
        let island = &fams[0];
        let single_secs = median_secs(3, || {
            black_box(map_valued(&mut *(island.single)(), &big));
        });
        let four_secs = median_secs(3, || {
            black_box(map_valued(&mut *(island.variant)(4), &big));
        });
        let speedup = single_secs / four_secs;
        println!(
            "smoke/parallel/genitor-island@4: {speedup:.2}x on {} cores",
            host_cores()
        );
        assert!(
            speedup >= 2.0,
            "island Genitor at 4 islands must be >= 2x single-threaded at equal budget \
             on a {}-core host, measured {speedup:.2}x",
            host_cores()
        );
    } else {
        println!(
            "smoke/parallel: speedup gate skipped on a {}-core host (needs >= 4)",
            host_cores()
        );
    }

    // The checked-in parallel section stays well-formed.
    let parallel = doc.get("parallel");
    assert!(
        parallel
            .get("host_cores")
            .as_f64()
            .is_some_and(|v| v >= 1.0),
        "BENCH_search.json missing parallel.host_cores"
    );
    for name in ["genitor-island", "sa-multi", "tabu-multi"] {
        let engine = parallel.get("engines").get(name);
        assert!(
            engine.get("single_secs").as_f64().is_some_and(|v| v > 0.0),
            "BENCH_search.json missing positive parallel.engines.{name}.single_secs"
        );
        for units in PAR_UNITS {
            let entry = engine.get("threads").get(&units.to_string());
            for key in ["secs", "speedup"] {
                assert!(
                    entry.get(key).as_f64().is_some_and(|v| v > 0.0),
                    "BENCH_search.json missing positive parallel.engines.{name}.threads.{units}.{key}"
                );
            }
            assert!(
                entry.get("quality_delta_pct").as_f64().is_some(),
                "BENCH_search.json missing parallel.engines.{name}.threads.{units}.quality_delta_pct"
            );
        }
    }
}

fn bench_search(c: &mut Criterion) {
    for (label, n_tasks, n_machines) in [("128x8", 128, 8), ("512x16", 512, 16)] {
        let scenario = braun_inconsistent(n_tasks, n_machines);
        let mut group = c.benchmark_group(format!("search/{label}"));
        group.sample_size(10);
        for mut pair in pairs(GENITOR_STEPS, SA_STEPS, TABU_HOPS) {
            group.bench_function(BenchmarkId::new(pair.name, "naive"), |b| {
                b.iter(|| black_box((pair.naive)(&scenario)));
            });
            group.bench_function(BenchmarkId::new(pair.name, "delta"), |b| {
                b.iter(|| black_box((pair.delta)(&scenario)));
            });
        }
        group.finish();
    }
}

fn main() {
    // `--smoke` and `--parallel` are ours, not Criterion's: intercept
    // before its arg parser.
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    if std::env::args().any(|a| a == "--parallel") {
        write_parallel_summary();
        return;
    }
    let mut criterion = Criterion::default().configure_from_args();
    bench_search(&mut criterion);
    criterion.final_summary();
    write_search_summary();
    write_parallel_summary();
}
