//! Naive versus delta-evaluation search kernel: Genitor, SA, and Tabu
//! timed against their pre-kernel reference twins at three workload sizes.
//!
//! Both sides of every pair are bit-identical searches (enforced by the
//! golden-equivalence suites, and spot-checked here before timing), so the
//! comparison is pure move-costing: full-rescan / from-scratch fitness
//! versus `LoadTracker` probes and gate-then-recompute offspring costing.
//!
//! Besides the Criterion groups, the bench writes a machine-readable
//! summary to `BENCH_search.json` at the repository root. `--smoke` skips
//! Criterion and the summary rewrite entirely: it runs a fast small-size
//! comparison asserting the delta kernel is never slower than naive, and
//! validates that the checked-in `BENCH_search.json` still parses — the
//! CI guardrail.

use criterion::{BenchmarkId, Criterion};
use hcs_bench::study_scenario;
use hcs_core::{Heuristic, Scenario, TieBreaker};
use hcs_etcgen::{Consistency, EtcSpec, Heterogeneity};
use hcs_genitor::{Genitor, GenitorConfig};
use hcs_heuristics::{reference, Sa, SaConfig, Tabu, TabuConfig};
use std::hint::black_box;
use std::time::Instant;

const SEED: u64 = 42;

fn braun_inconsistent(n_tasks: usize, n_machines: usize) -> Scenario {
    let spec = EtcSpec::braun(
        n_tasks,
        n_machines,
        Consistency::Inconsistent,
        Heterogeneity::Hi,
        Heterogeneity::Hi,
    );
    study_scenario(&spec, SEED)
}

/// Search budgets for the timed comparison. The Genitor budget is
/// stall-proof (`stall_steps == max_steps`) so both sides run the same
/// fixed number of steps, and the selection bias is high enough that the
/// population converges — the regime the steady-state GA spends most of
/// its life in, where almost every offspring is rejected and the naive
/// from-scratch fitness is pure waste.
fn bench_genitor_config(max_steps: usize) -> GenitorConfig {
    GenitorConfig {
        pop_size: 24,
        max_steps,
        stall_steps: max_steps,
        selection_bias: 1.9,
        seed_minmin: false,
        eval_threads: 1,
    }
}

fn bench_sa_config(max_steps: usize) -> SaConfig {
    SaConfig {
        max_steps,
        ..SaConfig::default()
    }
}

fn bench_tabu_config(max_hops: usize) -> TabuConfig {
    TabuConfig {
        max_hops,
        ..TabuConfig::default()
    }
}

/// One naive/delta pair, erased to `map` closures over fresh heuristic
/// state per call (Genitor is stateful; a fresh instance per run keeps
/// every measurement identical).
struct Pair {
    name: &'static str,
    naive: Box<dyn FnMut(&Scenario) -> hcs_core::Mapping>,
    delta: Box<dyn FnMut(&Scenario) -> hcs_core::Mapping>,
}

fn pairs(genitor_steps: usize, sa_steps: usize, tabu_hops: usize) -> Vec<Pair> {
    vec![
        Pair {
            name: "genitor",
            naive: Box::new(move |s| {
                map_fresh(
                    &mut hcs_genitor::reference::NaiveGenitor::with_config(
                        SEED,
                        bench_genitor_config(genitor_steps),
                    ),
                    s,
                )
            }),
            delta: Box::new(move |s| {
                map_fresh(
                    &mut Genitor::with_config(SEED, bench_genitor_config(genitor_steps)),
                    s,
                )
            }),
        },
        Pair {
            name: "sa",
            naive: Box::new(move |s| {
                map_fresh(
                    &mut reference::NaiveSa::with_config(SEED, bench_sa_config(sa_steps)),
                    s,
                )
            }),
            delta: Box::new(move |s| {
                map_fresh(&mut Sa::with_config(SEED, bench_sa_config(sa_steps)), s)
            }),
        },
        Pair {
            name: "tabu",
            naive: Box::new(move |s| {
                map_fresh(
                    &mut reference::NaiveTabu::with_config(SEED, bench_tabu_config(tabu_hops)),
                    s,
                )
            }),
            delta: Box::new(move |s| {
                map_fresh(
                    &mut Tabu::with_config(SEED, bench_tabu_config(tabu_hops)),
                    s,
                )
            }),
        },
    ]
}

fn map_fresh(h: &mut dyn Heuristic, scenario: &Scenario) -> hcs_core::Mapping {
    let owned = scenario.full_instance();
    let mut tb = TieBreaker::Deterministic;
    h.map(&owned.as_instance(scenario), &mut tb)
}

/// Median wall time of `f` over `runs` executions, in seconds.
fn median_secs(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Times every pair at one size, first asserting both sides still agree on
/// the final mapping (the timed comparison is only meaningful if the two
/// searches are the same search).
fn measure_size(
    scenario: &Scenario,
    runs: usize,
    genitor_steps: usize,
    sa_steps: usize,
    tabu_hops: usize,
) -> Vec<(&'static str, f64, f64)> {
    pairs(genitor_steps, sa_steps, tabu_hops)
        .into_iter()
        .map(|mut pair| {
            let a = (pair.naive)(scenario);
            let b = (pair.delta)(scenario);
            assert_eq!(
                a.order(),
                b.order(),
                "{}: naive and delta diverged — timing comparison void",
                pair.name
            );
            let naive = median_secs(runs, || {
                black_box((pair.naive)(scenario));
            });
            let delta = median_secs(runs, || {
                black_box((pair.delta)(scenario));
            });
            (pair.name, naive, delta)
        })
        .collect()
}

const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_search.json");

/// Minimal JSON reader for the smoke-mode validation of the checked-in
/// summary. Self-contained so the guardrail has no parser dependency:
/// objects keep insertion order, numbers are f64, escapes are decoded
/// enough to round-trip what the writer above emits.
mod tinyjson {
    #[derive(Debug, Clone, PartialEq)]
    pub enum J {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<J>),
        Obj(Vec<(String, J)>),
    }

    impl J {
        /// Member lookup on objects; `J::Null` for anything else.
        pub fn get(&self, key: &str) -> &J {
            match self {
                J::Obj(members) => members
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .unwrap_or(&J::Null),
                _ => &J::Null,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                J::Num(v) => Some(*v),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<J, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&b) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<J, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                let mut members = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(J::Obj(members));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    expect(bytes, pos, b':')?;
                    members.push((key, parse_value(bytes, pos)?));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(J::Obj(members));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(J::Arr(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(J::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                    }
                }
            }
            Some(b'"') => Ok(J::Str(parse_string(bytes, pos)?)),
            Some(b't') if bytes[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(J::Bool(true))
            }
            Some(b'f') if bytes[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(J::Bool(false))
            }
            Some(b'n') if bytes[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(J::Null)
            }
            Some(_) => {
                let start = *pos;
                while *pos < bytes.len()
                    && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *pos += 1;
                }
                std::str::from_utf8(&bytes[start..*pos])
                    .ok()
                    .and_then(|s| s.parse::<f64>().ok())
                    .map(J::Num)
                    .ok_or_else(|| format!("bad number at byte {start}"))
            }
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = Vec::new();
        while let Some(&b) = bytes.get(*pos) {
            *pos += 1;
            match b {
                b'"' => {
                    return String::from_utf8(out).map_err(|_| "invalid UTF-8".to_string());
                }
                b'\\' => {
                    let esc = bytes.get(*pos).copied().ok_or("truncated escape")?;
                    *pos += 1;
                    match esc {
                        b'"' | b'\\' | b'/' => out.push(esc),
                        b'n' => out.push(b'\n'),
                        b't' => out.push(b'\t'),
                        b'r' => out.push(b'\r'),
                        b'u' => {
                            let hex = bytes
                                .get(*pos..*pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            *pos += 4;
                            let c = char::from_u32(hex).ok_or("bad \\u codepoint")?;
                            out.extend_from_slice(c.to_string().as_bytes());
                        }
                        _ => return Err(format!("unknown escape \\{}", esc as char)),
                    }
                }
                _ => out.push(b),
            }
        }
        Err("unterminated string".to_string())
    }
}

/// Full-size budgets per heuristic (kept identical across sizes so the
/// scaling in the JSON is the instance size, not the budget).
const GENITOR_STEPS: usize = 32_000;
const SA_STEPS: usize = 30_000;
const TABU_HOPS: usize = 100;

/// Builds a flat JSON object from key/value pairs (the stub-safe subset of
/// `serde_json`: `Map` + `Value::from` + `Value::Object`).
fn obj(pairs: Vec<(&str, serde_json::Value)>) -> serde_json::Value {
    let mut map = serde_json::Map::new();
    for (k, v) in pairs {
        map.insert(k.to_string(), v);
    }
    serde_json::Value::Object(map)
}

fn write_search_summary() {
    let mut sizes = serde_json::Map::new();
    let mut genitor_512_speedup = None;
    let mut sa_worst_speedup = f64::INFINITY;
    for (label, n_tasks, n_machines, runs) in [
        ("128x8", 128, 8, 5),
        ("512x16", 512, 16, 5),
        ("1024x32", 1024, 32, 3),
    ] {
        let scenario = braun_inconsistent(n_tasks, n_machines);
        let mut entry = serde_json::Map::new();
        for (name, naive, delta) in
            measure_size(&scenario, runs, GENITOR_STEPS, SA_STEPS, TABU_HOPS)
        {
            let speedup = naive / delta;
            if name == "genitor" && label == "512x16" {
                genitor_512_speedup = Some(speedup);
            }
            if name == "sa" {
                sa_worst_speedup = sa_worst_speedup.min(speedup);
            }
            entry.insert(
                name.to_string(),
                obj(vec![
                    ("naive_secs", serde_json::Value::from(naive)),
                    ("delta_secs", serde_json::Value::from(delta)),
                    ("speedup", serde_json::Value::from(speedup)),
                ]),
            );
            println!("{label}/{name}: naive {naive:.4}s, delta {delta:.4}s, {speedup:.1}x");
        }
        sizes.insert(label.to_string(), serde_json::Value::Object(entry));
    }

    let doc = obj(vec![
        (
            "benchmark",
            serde_json::Value::from(
                "naive vs delta-evaluation search kernel, Braun i-hihi, seed 42",
            ),
        ),
        (
            "statistic",
            serde_json::Value::from("median wall seconds per map call, identical searches"),
        ),
        (
            "budgets",
            obj(vec![
                (
                    "genitor",
                    obj(vec![
                        (
                            "pop_size",
                            serde_json::Value::from(
                                bench_genitor_config(GENITOR_STEPS).pop_size as u64,
                            ),
                        ),
                        ("max_steps", serde_json::Value::from(GENITOR_STEPS as u64)),
                        (
                            "selection_bias",
                            serde_json::Value::from(
                                bench_genitor_config(GENITOR_STEPS).selection_bias,
                            ),
                        ),
                    ]),
                ),
                (
                    "sa",
                    obj(vec![(
                        "max_steps",
                        serde_json::Value::from(SA_STEPS as u64),
                    )]),
                ),
                (
                    "tabu",
                    obj(vec![(
                        "max_hops",
                        serde_json::Value::from(TABU_HOPS as u64),
                    )]),
                ),
            ]),
        ),
        ("sizes", serde_json::Value::Object(sizes)),
    ]);
    std::fs::write(
        BENCH_PATH,
        serde_json::to_string_pretty(&doc).expect("serialize summary"),
    )
    .expect("write BENCH_search.json");
    println!("wrote {BENCH_PATH}");

    let speedup = genitor_512_speedup.expect("512x16 genitor entry measured");
    assert!(
        speedup >= 5.0,
        "Genitor delta kernel must be >= 5x naive at 512x16, measured {speedup:.2}x"
    );
    // PR 5's honest loss, closed: the adaptive flat/tree split must keep
    // SA at or above parity with its naive twin at every measured size.
    assert!(
        sa_worst_speedup >= 1.0,
        "SA delta kernel must be >= 1.0x naive at every size, worst {sa_worst_speedup:.2}x"
    );
}

/// `--smoke`: the CI guardrail. Small sizes, tiny budgets, hard asserts.
///
/// Two sizes on purpose: 64×8 exercises the tracker's *flat* mode (the
/// small-m regime where the tree-based kernel used to run SA at ~0.6x its
/// naive twin) and 256×256 its *tree* mode — the adaptive split must leave
/// no configuration slower than naive on either side of `FLAT_MAX`.
fn smoke() {
    for (label, n_tasks, n_machines, sa_steps) in [
        ("64x8-flat", 64, 8, 20_000),
        ("256x256-tree", 256, 256, 8_000),
    ] {
        let scenario = braun_inconsistent(n_tasks, n_machines);
        for (name, naive, delta) in measure_size(&scenario, 3, 300, sa_steps, 300) {
            println!("smoke/{label}/{name}: naive {naive:.5}s, delta {delta:.5}s");
            assert!(
                delta <= naive,
                "{name}: delta kernel slower than naive at {label} ({delta:.5}s > {naive:.5}s)"
            );
        }
    }

    // The checked-in summary must still be well-formed — the smoke run
    // never rewrites it, only validates it.
    let text = std::fs::read_to_string(BENCH_PATH)
        .unwrap_or_else(|e| panic!("BENCH_search.json unreadable at {BENCH_PATH}: {e}"));
    let doc = tinyjson::parse(&text)
        .unwrap_or_else(|e| panic!("BENCH_search.json is not valid JSON: {e}"));
    for label in ["128x8", "512x16", "1024x32"] {
        for name in ["genitor", "sa", "tabu"] {
            let entry = doc.get("sizes").get(label).get(name);
            for key in ["naive_secs", "delta_secs", "speedup"] {
                assert!(
                    entry.get(key).as_f64().is_some_and(|v| v > 0.0),
                    "BENCH_search.json missing positive sizes.{label}.{name}.{key}"
                );
            }
        }
    }
    let speedup = doc
        .get("sizes")
        .get("512x16")
        .get("genitor")
        .get("speedup")
        .as_f64()
        .expect("recorded genitor speedup");
    assert!(
        speedup >= 5.0,
        "checked-in BENCH_search.json records only {speedup:.2}x for Genitor at 512x16"
    );
    println!("smoke ok: delta <= naive in flat (64x8) and tree (256x256) mode; BENCH_search.json well-formed");
}

fn bench_search(c: &mut Criterion) {
    for (label, n_tasks, n_machines) in [("128x8", 128, 8), ("512x16", 512, 16)] {
        let scenario = braun_inconsistent(n_tasks, n_machines);
        let mut group = c.benchmark_group(format!("search/{label}"));
        group.sample_size(10);
        for mut pair in pairs(GENITOR_STEPS, SA_STEPS, TABU_HOPS) {
            group.bench_function(BenchmarkId::new(pair.name, "naive"), |b| {
                b.iter(|| black_box((pair.naive)(&scenario)));
            });
            group.bench_function(BenchmarkId::new(pair.name, "delta"), |b| {
                b.iter(|| black_box((pair.delta)(&scenario)));
            });
        }
        group.finish();
    }
}

fn main() {
    // `--smoke` is ours, not Criterion's: intercept before its arg parser.
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let mut criterion = Criterion::default().configure_from_args();
    bench_search(&mut criterion);
    criterion.final_summary();
    write_search_summary();
}
