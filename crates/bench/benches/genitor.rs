//! X5c — Genitor cost: single mapping, iterative run, and the effect of
//! population size (an ablation of the GA's main knob).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcs_bench::study_scenario;
use hcs_core::{iterative, Heuristic, TieBreaker};
use hcs_etcgen::{Consistency, EtcSpec, Heterogeneity};
use hcs_genitor::{Genitor, GenitorConfig};
use std::hint::black_box;

fn quick(pop: usize) -> GenitorConfig {
    GenitorConfig {
        pop_size: pop,
        max_steps: 1_500,
        stall_steps: 400,
        ..Default::default()
    }
}

fn bench_genitor(c: &mut Criterion) {
    let spec = EtcSpec::braun(
        48,
        6,
        Consistency::Inconsistent,
        Heterogeneity::Hi,
        Heterogeneity::Hi,
    );
    let scenario = study_scenario(&spec, 42);
    let owned = scenario.full_instance();

    let mut group = c.benchmark_group("genitor/48x6");
    for pop in [30usize, 60, 120] {
        group.bench_function(BenchmarkId::new("map/pop", pop), |b| {
            b.iter(|| {
                let mut ga = Genitor::with_config(42, quick(pop));
                let mut tb = TieBreaker::Deterministic;
                let inst = owned.as_instance(&scenario);
                black_box(ga.map(&inst, &mut tb))
            });
        });
    }
    group.bench_function("iterative/pop60", |b| {
        b.iter(|| {
            let mut ga = Genitor::with_config(42, quick(60));
            black_box(
                iterative::IterativeRun::new(&mut ga, &scenario)
                    .execute()
                    .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_genitor);
criterion_main!(benches);
