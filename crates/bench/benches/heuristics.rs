//! X5a — runtime of each mapping heuristic at two workload sizes.
//!
//! One Criterion group per size; one benchmark per heuristic. The expected
//! shape: MET < OLB < MCT ≈ KPB ≈ SWA ≪ Min-Min ≈ Max-Min ≈ Sufferage
//! (the batch heuristics are O(T²·M) versus O(T·M) for immediate mode).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcs_bench::{make_heuristic, study_scenario};
use hcs_core::TieBreaker;
use hcs_etcgen::{Consistency, EtcSpec, Heterogeneity};
use std::hint::black_box;

fn bench_heuristics(c: &mut Criterion) {
    for (label, n_tasks, n_machines) in [("128x8", 128, 8), ("512x16", 512, 16)] {
        let spec = EtcSpec::braun(
            n_tasks,
            n_machines,
            Consistency::Inconsistent,
            Heterogeneity::Hi,
            Heterogeneity::Hi,
        );
        let scenario = study_scenario(&spec, 42);
        let owned = scenario.full_instance();

        let mut group = c.benchmark_group(format!("map/{label}"));
        for name in hcs_bench::greedy_roster() {
            group.bench_function(BenchmarkId::from_parameter(name), |b| {
                b.iter(|| {
                    let mut h = make_heuristic(name, 42);
                    let mut tb = TieBreaker::Deterministic;
                    let inst = owned.as_instance(&scenario);
                    black_box(h.map(&inst, &mut tb))
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);
