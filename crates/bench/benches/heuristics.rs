//! X5a — runtime of each mapping heuristic at two workload sizes — plus
//! the workspace-kernel comparison: the naive reference implementations
//! versus the `MapWorkspace`-backed ones, through the full iterative
//! technique.
//!
//! One Criterion group per size; one benchmark per heuristic. The expected
//! shape: MET < OLB < MCT ≈ KPB ≈ SWA ≪ Min-Min ≈ Max-Min ≈ Sufferage
//! (the batch heuristics are O(T²·M) versus O(T·M) for immediate mode).
//!
//! Besides the Criterion groups, this bench writes a machine-readable
//! timing summary of the kernel comparison to `BENCH_kernel.json` at the
//! repository root (median wall time of iterative Min-Min, naive versus
//! workspace, at 512×16).

use criterion::{BenchmarkId, Criterion};
use hcs_bench::{make_heuristic, study_scenario};
use hcs_core::{iterative, MapWorkspace, Scenario, TieBreaker};
use hcs_etcgen::{Consistency, EtcSpec, Heterogeneity};
use hcs_heuristics::{reference, MinMin};
use std::hint::black_box;
use std::time::Instant;

fn braun_inconsistent(n_tasks: usize, n_machines: usize) -> Scenario {
    let spec = EtcSpec::braun(
        n_tasks,
        n_machines,
        Consistency::Inconsistent,
        Heterogeneity::Hi,
        Heterogeneity::Hi,
    );
    study_scenario(&spec, 42)
}

fn bench_heuristics(c: &mut Criterion) {
    for (label, n_tasks, n_machines) in [("128x8", 128, 8), ("512x16", 512, 16)] {
        let scenario = braun_inconsistent(n_tasks, n_machines);
        let owned = scenario.full_instance();

        let mut group = c.benchmark_group(format!("map/{label}"));
        for name in hcs_bench::greedy_roster() {
            group.bench_function(BenchmarkId::from_parameter(name), |b| {
                b.iter(|| {
                    let mut h = make_heuristic(name, 42);
                    let mut tb = TieBreaker::Deterministic;
                    let inst = owned.as_instance(&scenario);
                    black_box(h.map(&inst, &mut tb))
                });
            });
        }
        group.finish();
    }
}

/// Naive reference vs workspace kernel, single `map` call and full
/// iterative run, Min-Min at both sizes.
fn bench_kernel(c: &mut Criterion) {
    for (label, n_tasks, n_machines) in [("128x8", 128, 8), ("512x16", 512, 16)] {
        let scenario = braun_inconsistent(n_tasks, n_machines);

        let mut group = c.benchmark_group(format!("kernel/iterative-minmin/{label}"));
        group.sample_size(10);
        group.bench_function("naive", |b| {
            b.iter(|| {
                let mut h = reference::naive_by_name("Min-Min").expect("naive Min-Min exists");
                black_box(
                    iterative::IterativeRun::new(&mut h, &scenario)
                        .execute()
                        .unwrap(),
                )
            });
        });
        group.bench_function("workspace", |b| {
            let mut ws = MapWorkspace::new();
            b.iter(|| {
                black_box(
                    iterative::IterativeRun::new(&mut MinMin, &scenario)
                        .workspace(&mut ws)
                        .execute()
                        .unwrap(),
                )
            });
        });
        group.finish();
    }
}

/// Median wall time of `f` over `runs` executions, in seconds.
fn median_secs(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Writes the standalone kernel summary (independent of Criterion's own
/// statistics, so it lands in one stable, machine-readable place).
fn write_kernel_summary() {
    let (n_tasks, n_machines, runs) = (512, 16, 5);
    let scenario = braun_inconsistent(n_tasks, n_machines);

    let naive = median_secs(runs, || {
        let mut h = reference::naive_by_name("Min-Min").expect("naive Min-Min exists");
        black_box(
            iterative::IterativeRun::new(&mut h, &scenario)
                .execute()
                .unwrap(),
        );
    });
    let mut ws = MapWorkspace::new();
    let workspace = median_secs(runs, || {
        black_box(
            iterative::IterativeRun::new(&mut MinMin, &scenario)
                .workspace(&mut ws)
                .execute()
                .unwrap(),
        );
    });

    let doc = serde_json::json!({
        "benchmark": "iterative Min-Min, Braun i-hihi, seed 42",
        "n_tasks": n_tasks,
        "n_machines": n_machines,
        "runs": runs,
        "statistic": "median wall seconds per full iterative run",
        "naive_secs": naive,
        "workspace_secs": workspace,
        "speedup": naive / workspace,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json");
    std::fs::write(
        path,
        serde_json::to_string_pretty(&doc).expect("serialize summary"),
    )
    .expect("write BENCH_kernel.json");
    println!("wrote {path}");
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    bench_heuristics(&mut criterion);
    bench_kernel(&mut criterion);
    criterion.final_summary();
    write_kernel_summary();
}
