//! Nonparametric significance tests for paired experiment outcomes.
//!
//! The Monte-Carlo studies compare paired quantities (e.g. a machine's
//! finishing time before and after the iterative technique, or the same
//! trial with and without the seeding guard). The distributions are far
//! from normal, so the classical tools here are the exact **sign test**
//! (direction only) and the **Wilcoxon signed-rank test** (direction and
//! magnitude, normal approximation) — both standard for this literature's
//! "is heuristic A better than B on these instances" questions.

/// Two-sided exact sign test: given `wins` positive differences and
/// `losses` negative differences (zeros discarded beforehand), returns the
/// p-value of the null hypothesis "positive and negative differences are
/// equally likely".
///
/// Computed exactly from the binomial distribution `B(n, 1/2)` in log
/// space, so it stays accurate for large `n`.
pub fn sign_test(wins: u64, losses: u64) -> f64 {
    let n = wins + losses;
    if n == 0 {
        return 1.0;
    }
    let k = wins.min(losses);
    // P(X <= k) for X ~ B(n, 0.5); two-sided = 2 * tail, capped at 1.
    let mut tail = 0.0f64;
    for i in 0..=k {
        tail += (ln_choose(n, i) - n as f64 * std::f64::consts::LN_2).exp();
    }
    (2.0 * tail).min(1.0)
}

/// Wilcoxon signed-rank test (two-sided, normal approximation with
/// continuity correction). `diffs` are the paired differences; zeros are
/// discarded, ties share average ranks. Returns the p-value, or 1.0 when
/// fewer than 6 non-zero differences remain (the approximation is
/// meaningless below that).
pub fn wilcoxon_signed_rank(diffs: &[f64]) -> f64 {
    let mut nonzero: Vec<f64> = diffs.iter().copied().filter(|&d| d != 0.0).collect();
    let n = nonzero.len();
    if n < 6 {
        return 1.0;
    }
    nonzero.sort_by(|a, b| a.abs().total_cmp(&b.abs()));

    // Average ranks over ties in |d|.
    let mut ranks = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && nonzero[j + 1].abs() == nonzero[i].abs() {
            j += 1;
        }
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = avg_rank;
        }
        i = j + 1;
    }

    let w_plus: f64 = nonzero
        .iter()
        .zip(&ranks)
        .filter(|&(&d, _)| d > 0.0)
        .map(|(_, &r)| r)
        .sum();
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0;
    let z = (w_plus - mean).abs() - 0.5;
    let z = (z / var.sqrt()).max(0.0);
    2.0 * (1.0 - standard_normal_cdf(z))
}

/// `ln(n choose k)` via `ln Γ` (Stirling-series implementation, good to
/// ~1e-10 for the integer arguments used here).
fn ln_choose(n: u64, k: u64) -> f64 {
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0`.
fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Φ(z) via the complementary error function (Abramowitz–Stegun 7.1.26
/// polynomial, |error| < 1.5e-7 — ample for p-values).
fn standard_normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    0.5 * (1.0 + erf(x))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_test_matches_known_values() {
        // 8 wins, 2 losses: two-sided p = 2 * P(X <= 2 | B(10, .5))
        //   = 2 * (1 + 10 + 45) / 1024 = 0.109375.
        assert!((sign_test(8, 2) - 0.109_375).abs() < 1e-9);
        // Balanced outcomes are maximally insignificant.
        assert_eq!(sign_test(5, 5), 1.0);
        assert_eq!(sign_test(0, 0), 1.0);
        // 15 / 0 is decisive.
        assert!(sign_test(15, 0) < 1e-3);
        // Symmetry.
        assert_eq!(sign_test(3, 9), sign_test(9, 3));
    }

    #[test]
    fn sign_test_is_stable_for_large_n() {
        let p = sign_test(560, 440);
        assert!(p > 0.0 && p < 0.001, "p = {p}");
        let p = sign_test(505, 495);
        assert!(p > 0.7, "p = {p}");
    }

    #[test]
    fn wilcoxon_detects_a_clear_shift() {
        let diffs: Vec<f64> = (1..=20).map(|i| i as f64).collect(); // all positive
        let p = wilcoxon_signed_rank(&diffs);
        assert!(p < 1e-3, "p = {p}");
    }

    #[test]
    fn wilcoxon_is_insensitive_to_symmetric_noise() {
        let diffs: Vec<f64> = (1..=20)
            .map(|i| {
                if i % 2 == 0 {
                    i as f64
                } else {
                    -(i as f64 + 1.0)
                }
            })
            .collect();
        let p = wilcoxon_signed_rank(&diffs);
        assert!(p > 0.2, "p = {p}");
    }

    #[test]
    fn wilcoxon_handles_zeros_and_small_samples() {
        assert_eq!(wilcoxon_signed_rank(&[0.0, 0.0, 1.0]), 1.0);
        assert_eq!(wilcoxon_signed_rank(&[]), 1.0);
        // Ties in magnitude get averaged ranks without panicking.
        let p = wilcoxon_signed_rank(&[1.0, 1.0, 1.0, -1.0, 1.0, 1.0, 1.0, 1.0]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1u64..=20 {
            let exact: f64 = (1..=n).map(|i| (i as f64).ln()).sum();
            assert!(
                (ln_factorial(n) - exact).abs() < 1e-8,
                "n = {n}: {} vs {exact}",
                ln_factorial(n)
            );
        }
    }

    #[test]
    fn normal_cdf_sane() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!(standard_normal_cdf(6.0) > 0.999_999);
    }
}
