//! Streaming summary statistics (Welford's algorithm) with parallel merge.

use serde::{Deserialize, Serialize};

/// Count / mean / variance accumulator. `merge` combines two accumulators
/// exactly (Chan et al.), so per-worker accumulators can be reduced.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of the normal-approximation 95% confidence interval of
    /// the mean (`1.96 · s / √n`; 0 with fewer than two observations).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_match_textbook() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4; sample variance 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let seq: OnlineStats = all.iter().copied().collect();
        let mut a: OnlineStats = all[..37].iter().copied().collect();
        let b: OnlineStats = all[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.variance() - seq.variance()).abs() < 1e-10);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn empty_accumulator_is_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let narrow: OnlineStats = (0..1000).map(|i| (i % 10) as f64).collect();
        let wide: OnlineStats = (0..10).map(|i| (i % 10) as f64).collect();
        assert!(narrow.ci95_half_width() < wide.ci95_half_width());
    }
}
