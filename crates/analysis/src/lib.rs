//! Evaluation toolkit: summary statistics, text tables, per-outcome
//! metrics and a parallel Monte-Carlo experiment runner.
//!
//! The paper's evaluation is analytic (proofs + worked examples); the
//! extended experiments of DESIGN.md (X1–X7) quantify the same questions
//! over the Braun-et-al. workload classes. This crate holds the shared
//! machinery: [`stats::OnlineStats`] (Welford accumulation with merging,
//! so trials can run on Rayon workers), [`table::TextTable`] (the aligned
//! plain-text tables the harness prints), [`metrics::OutcomeMetrics`] (the
//! per-run numbers the experiments aggregate),
//! [`experiment::run_trials`] (seeded, embarrassingly parallel trials, with
//! a [`experiment::run_trials_with`] variant threading per-thread scratch
//! state such as a `MapWorkspace`) and
//! [`significance`] (exact sign test and Wilcoxon signed-rank for paired
//! comparisons).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod experiment;
pub mod metrics;
pub mod significance;
pub mod stats;
pub mod table;

pub use experiment::{run_trials, run_trials_seq, run_trials_with};
pub use metrics::OutcomeMetrics;
pub use significance::{sign_test, wilcoxon_signed_rank};
pub use stats::OnlineStats;
pub use table::TextTable;
