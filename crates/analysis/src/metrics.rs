//! Per-run metrics extracted from an [`IterativeOutcome`].

use hcs_core::IterativeOutcome;
use serde::{Deserialize, Serialize};

/// The numbers the extended experiments aggregate per iterative run.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OutcomeMetrics {
    /// Makespan of the original mapping.
    pub original_makespan: f64,
    /// Largest final finishing time after the iterative technique.
    pub final_makespan: f64,
    /// `true` when the technique made the overall makespan worse.
    pub makespan_increased: bool,
    /// Number of machines that finish strictly earlier than in the
    /// original mapping.
    pub machines_improved: usize,
    /// Number of machines that finish strictly later.
    pub machines_worsened: usize,
    /// Total machines in the scenario.
    pub machines_total: usize,
    /// Mean finishing time over all machines, original mapping.
    pub mean_finish_original: f64,
    /// Mean finishing time over all machines, after the technique.
    pub mean_finish_final: f64,
    /// Relative reduction of the mean finishing time
    /// (`(orig − final) / orig`; 0 when the original mean is 0).
    pub mean_finish_reduction: f64,
    /// Whether every iteration reproduced the original mapping (the
    /// theorems' conclusion for Min-Min / MCT / MET with deterministic
    /// ties).
    pub mappings_identical: bool,
    /// Number of rounds executed (= number of machines, except for
    /// degenerate scenarios).
    pub rounds: usize,
}

impl OutcomeMetrics {
    /// Extracts metrics from a completed run.
    pub fn from_outcome(outcome: &IterativeOutcome) -> Self {
        let deltas = outcome.deltas();
        let machines_total = deltas.len();
        let (machines_improved, machines_worsened) = outcome.improvement_counts();

        let mean_orig =
            deltas.iter().map(|&(_, o, _)| o.get()).sum::<f64>() / machines_total.max(1) as f64;
        let mean_final =
            deltas.iter().map(|&(_, _, f)| f.get()).sum::<f64>() / machines_total.max(1) as f64;
        let reduction = if mean_orig > 0.0 {
            (mean_orig - mean_final) / mean_orig
        } else {
            0.0
        };

        OutcomeMetrics {
            original_makespan: outcome.original_makespan().get(),
            final_makespan: outcome.final_makespan().get(),
            makespan_increased: outcome.makespan_increased(),
            machines_improved,
            machines_worsened,
            machines_total,
            mean_finish_original: mean_orig,
            mean_finish_final: mean_final,
            mean_finish_reduction: reduction,
            mappings_identical: outcome.mappings_identical(),
            rounds: outcome.rounds.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::{iterative, select, EtcMatrix, Scenario, TieBreaker};
    use hcs_core::{Heuristic, Instance, Mapping};

    struct MiniMct;
    impl Heuristic for MiniMct {
        fn name(&self) -> &'static str {
            "mini-mct"
        }
        fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
            let mut ready = inst.working_ready();
            let mut map = Mapping::new(inst.etc.n_tasks());
            for &task in inst.tasks {
                let (cands, _) = select::min_candidates(
                    inst.machines.iter().map(|&m| (m, inst.ct(task, m, &ready))),
                );
                let machine = cands[tb.pick(cands.len())];
                ready.advance(machine, inst.etc.get(task, machine));
                map.assign(task, machine).unwrap();
            }
            map
        }
    }

    #[test]
    fn metrics_reflect_an_invariant_run() {
        let s = Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[
                vec![2.0, 5.0, 9.0],
                vec![4.0, 1.0, 2.0],
                vec![3.0, 4.0, 3.0],
                vec![9.0, 2.0, 6.0],
            ])
            .unwrap(),
        );
        let outcome = iterative::IterativeRun::new(&mut MiniMct, &s)
            .execute()
            .unwrap();
        let m = OutcomeMetrics::from_outcome(&outcome);
        assert_eq!(m.machines_total, 3);
        assert_eq!(m.rounds, outcome.rounds.len());
        assert!(m.mappings_identical, "MCT is iteration invariant");
        assert!(!m.makespan_increased);
        assert_eq!(m.machines_worsened, 0);
        assert_eq!(m.original_makespan, m.final_makespan);
        assert_eq!(m.mean_finish_original, m.mean_finish_final);
        assert_eq!(m.mean_finish_reduction, 0.0);
    }

    #[test]
    fn reduction_is_relative() {
        // Synthetic outcome check via a crafted heuristic is heavy; verify
        // the arithmetic through the public helper on the invariant case
        // and the bounds on a random-tie case instead.
        let s = Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[vec![3.0, 3.0], vec![3.0, 3.0], vec![3.0, 3.0]]).unwrap(),
        );
        let outcome = iterative::IterativeRun::new(&mut MiniMct, &s)
            .tie_breaker(TieBreaker::random(1))
            .execute()
            .unwrap();
        let m = OutcomeMetrics::from_outcome(&outcome);
        assert!(m.mean_finish_reduction <= 1.0);
        assert_eq!(m.machines_total, 2);
    }
}
