//! Aligned plain-text tables, in the visual style of the paper's tables.

use std::fmt;

/// Column alignment.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right.
    Left,
    /// Pad on the left (numbers).
    Right,
}

/// A simple text table builder.
#[derive(Clone, Debug)]
pub struct TextTable {
    title: Option<String>,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers; the first column is
    /// left-aligned, the rest right-aligned (the common shape for
    /// label-then-numbers tables).
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        TextTable {
            title: None,
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Sets a title printed above the table.
    pub fn with_title<S: Into<String>>(mut self, title: S) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Overrides all column alignments.
    ///
    /// # Panics
    ///
    /// Panics when the length differs from the header count.
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.headers.len(), "one alignment per column");
        self.aligns = aligns;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count differs from the header count.
    pub fn push_row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let n_cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }

        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..n_cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                match self.aligns[i] {
                    Align::Left => {
                        line.push_str(cell);
                        line.push_str(&" ".repeat(widths[i] - cell.len()));
                    }
                    Align::Right => {
                        line.push_str(&" ".repeat(widths[i] - cell.len()));
                        line.push_str(cell);
                    }
                }
            }
            line.trim_end().to_string()
        };

        let mut out = String::new();
        if let Some(title) = &self.title {
            out.push_str(title);
            out.push('\n');
        }
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let rule_len = widths.iter().sum::<usize>() + 2 * (n_cols - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["task", "m0", "m1"]);
        t.push_row(vec!["t0", "2", "10"]);
        t.push_row(vec!["t10", "100", "3"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("task"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numeric columns right-aligned: "2" under the right edge of "m0"
        // column given "100" sets the width.
        assert!(lines[2].contains("  2"), "{s}");
        assert!(lines[3].contains("100"), "{s}");
    }

    #[test]
    fn title_precedes_headers() {
        let mut t = TextTable::new(vec!["a"]).with_title("Table 1. Demo");
        t.push_row(vec!["x"]);
        assert!(t.render().starts_with("Table 1. Demo\n"));
        assert_eq!(t.n_rows(), 1);
    }

    #[test]
    fn custom_alignment() {
        let mut t = TextTable::new(vec!["a", "b"]).with_aligns(vec![Align::Right, Align::Left]);
        t.push_row(vec!["1", "xy"]);
        t.push_row(vec!["10", "z"]);
        let s = t.render();
        assert!(s.contains(" 1  xy"), "{s}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }

    #[test]
    fn display_matches_render() {
        let mut t = TextTable::new(vec!["h"]);
        t.push_row(vec!["v"]);
        assert_eq!(format!("{t}"), t.render());
    }
}
