//! Seeded, embarrassingly parallel Monte-Carlo trials.
//!
//! Every extended experiment is "run this closure for seeds
//! `base..base+n` and aggregate": workloads are generated from the seed,
//! heuristics run deterministically given the seed, so the whole experiment
//! is reproducible and order-independent. Trials fan out over Rayon's
//! global thread pool (justified in DESIGN.md §5).
//!
//! Seeds advance with wrapping arithmetic, so a `base_seed` near `u64::MAX`
//! wraps around to small seeds instead of panicking in debug builds —
//! identically in the parallel and sequential twins.

use rayon::prelude::*;

/// Runs `trial(seed)` for `n_trials` consecutive (wrapping) seeds starting
/// at `base_seed`, in parallel, returning the results in seed order.
pub fn run_trials<T, F>(base_seed: u64, n_trials: usize, trial: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    (0..n_trials as u64)
        .into_par_iter()
        .map(|i| trial(base_seed.wrapping_add(i)))
        .collect()
}

/// Like [`run_trials`], but each worker thread gets its own scratch state
/// from `init` (e.g. a `MapWorkspace`), passed to every trial it executes
/// by `&mut` — the per-thread-workspace hook for the `hcs-bench` studies.
///
/// `init` may run more than once per thread (Rayon splits work
/// adaptively); the scratch state must therefore not affect results, only
/// speed.
pub fn run_trials_with<S, T, F, I>(base_seed: u64, n_trials: usize, init: I, trial: F) -> Vec<T>
where
    S: Send,
    T: Send,
    F: Fn(&mut S, u64) -> T + Sync,
    I: Fn() -> S + Sync,
{
    (0..n_trials as u64)
        .into_par_iter()
        .map_init(&init, |scratch, i| {
            trial(scratch, base_seed.wrapping_add(i))
        })
        .collect()
}

/// Sequential twin of [`run_trials`], for tests and debugging.
pub fn run_trials_seq<T, F>(base_seed: u64, n_trials: usize, mut trial: F) -> Vec<T>
where
    F: FnMut(u64) -> T,
{
    (0..n_trials as u64)
        .map(|i| trial(base_seed.wrapping_add(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OnlineStats;

    #[test]
    fn parallel_matches_sequential() {
        let f = |seed: u64| ((seed * 2654435761) % 1000) as f64;
        let par = run_trials(100, 500, f);
        let seq = run_trials_seq(100, 500, f);
        assert_eq!(par, seq);
    }

    #[test]
    fn results_in_seed_order() {
        let out = run_trials(7, 5, |seed| seed);
        assert_eq!(out, vec![7, 8, 9, 10, 11]);
    }

    #[test]
    fn seeds_wrap_instead_of_overflowing() {
        let base = u64::MAX - 1;
        let par = run_trials(base, 4, |seed| seed);
        assert_eq!(par, vec![u64::MAX - 1, u64::MAX, 0, 1]);
        assert_eq!(par, run_trials_seq(base, 4, |seed| seed));
        let with = run_trials_with(base, 4, || (), |(), seed| seed);
        assert_eq!(par, with);
    }

    #[test]
    fn scratch_state_is_threaded_through_trials() {
        // The scratch buffer must arrive mutable and reusable; results must
        // still come back in seed order regardless of how Rayon splits.
        let out = run_trials_with(10, 64, Vec::<u64>::new, |buf, seed| {
            buf.push(seed);
            seed * 2
        });
        assert_eq!(out, (10..74u64).map(|s| s * 2).collect::<Vec<_>>());
    }

    #[test]
    fn aggregates_compose_with_stats() {
        let out = run_trials(0, 100, |seed| seed as f64);
        let stats: OnlineStats = out.into_iter().collect();
        assert_eq!(stats.count(), 100);
        assert!((stats.mean() - 49.5).abs() < 1e-12);
    }

    #[test]
    fn zero_trials_is_empty() {
        let out: Vec<u64> = run_trials(0, 0, |s| s);
        assert!(out.is_empty());
    }
}
