//! Seeded, embarrassingly parallel Monte-Carlo trials.
//!
//! Every extended experiment is "run this closure for seeds
//! `base..base+n` and aggregate": workloads are generated from the seed,
//! heuristics run deterministically given the seed, so the whole experiment
//! is reproducible and order-independent. Trials fan out over Rayon's
//! global thread pool (justified in DESIGN.md §5).

use rayon::prelude::*;

/// Runs `trial(seed)` for `n_trials` consecutive seeds starting at
/// `base_seed`, in parallel, returning the results in seed order.
pub fn run_trials<T, F>(base_seed: u64, n_trials: usize, trial: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    (0..n_trials as u64)
        .into_par_iter()
        .map(|i| trial(base_seed + i))
        .collect()
}

/// Sequential twin of [`run_trials`], for tests and debugging.
pub fn run_trials_seq<T, F>(base_seed: u64, n_trials: usize, mut trial: F) -> Vec<T>
where
    F: FnMut(u64) -> T,
{
    (0..n_trials as u64).map(|i| trial(base_seed + i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OnlineStats;

    #[test]
    fn parallel_matches_sequential() {
        let f = |seed: u64| ((seed * 2654435761) % 1000) as f64;
        let par = run_trials(100, 500, f);
        let seq = run_trials_seq(100, 500, f);
        assert_eq!(par, seq);
    }

    #[test]
    fn results_in_seed_order() {
        let out = run_trials(7, 5, |seed| seed);
        assert_eq!(out, vec![7, 8, 9, 10, 11]);
    }

    #[test]
    fn aggregates_compose_with_stats() {
        let out = run_trials(0, 100, |seed| seed as f64);
        let stats: OnlineStats = out.into_iter().collect();
        assert_eq!(stats.count(), 100);
        assert!((stats.mean() - 49.5).abs() < 1e-12);
    }

    #[test]
    fn zero_trials_is_empty() {
        let out: Vec<u64> = run_trials(0, 0, |s| s);
        assert!(out.is_empty());
    }
}
