//! Genitor — a steady-state genetic algorithm for makespan minimization
//! (paper §3.1, Figure 1; Whitley \[17\]).
//!
//! A chromosome assigns every mappable task a machine. The population is
//! kept **sorted by makespan**; each step performs
//!
//! 1. **crossover** — two parents are selected, a random cut-off point is
//!    generated, and the machine assignments below the cut are exchanged,
//!    producing two offspring that are inserted into the sorted population
//!    (the worst chromosomes are removed, keeping the size fixed);
//! 2. **mutation** — a randomly selected chromosome gets one task's machine
//!    assignment arbitrarily modified; the offspring is inserted and the
//!    worst chromosome removed.
//!
//! The loop stops after [`GenitorConfig::max_steps`] steps or
//! [`GenitorConfig::stall_steps`] steps without improving the best
//! makespan, whichever comes first. Because insertion is elitist (worst
//! out, sorted in), the best chromosome can never get worse.
//!
//! # Seeding and the iterative technique
//!
//! "For each iteration (of the iterative approach), the mapping found by
//! Genitor in the previous iteration, excluding the makespan machine and
//! the tasks assigned to it, is seeded into the population of the current
//! iteration. The ranking in Genitor guarantees that the final mapping is
//! either the seeded mapping or a mapping with a smaller makespan" — §3.1.
//!
//! [`Genitor`] is therefore *stateful*: it remembers the mapping it
//! produced last and, when asked to map a sub-instance whose tasks are all
//! covered by that remembered mapping on still-active machines, inserts the
//! restriction as a seed chromosome. This makes the iterative technique
//! monotone for Genitor (integration test `theorems.rs`).
//!
//! # Parent selection
//!
//! Figure 1 selects parents uniformly at random; Whitley's original Genitor
//! uses linear-bias rank selection ("selective pressure"). Both are
//! available: [`GenitorConfig::selection_bias`] of `1.0` is uniform (the
//! paper's Figure 1), values up to `2.0` increasingly favour high-ranked
//! (low-makespan) chromosomes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hcs_core::{Heuristic, Instance, Mapping, TieBreaker, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Tuning parameters for [`Genitor`].
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GenitorConfig {
    /// Population size (chromosome count, kept fixed).
    pub pop_size: usize,
    /// Hard cap on steps (one step = one crossover + one mutation).
    pub max_steps: usize,
    /// Stop after this many consecutive steps without a new best makespan.
    pub stall_steps: usize,
    /// Linear-bias rank selection pressure in `[1.0, 2.0]`; `1.0` is the
    /// uniform selection of the paper's Figure 1.
    pub selection_bias: f64,
    /// Also seed the initial population with a Min-Min mapping (a common
    /// practice since Braun et al.; off by default for Figure-1 fidelity).
    pub seed_minmin: bool,
}

impl Default for GenitorConfig {
    fn default() -> Self {
        GenitorConfig {
            pop_size: 100,
            max_steps: 10_000,
            stall_steps: 1_500,
            selection_bias: 1.0,
            seed_minmin: false,
        }
    }
}

/// The Genitor heuristic. Construct once per experiment; it is stateful
/// (see module docs on seeding) and owns its RNG, so results are
/// reproducible from the construction seed and the sequence of `map`
/// calls.
#[derive(Clone, Debug)]
pub struct Genitor {
    config: GenitorConfig,
    rng: StdRng,
    last_mapping: Option<Mapping>,
}

impl Genitor {
    /// A Genitor instance with default configuration.
    pub fn new(seed: u64) -> Self {
        Genitor::with_config(seed, GenitorConfig::default())
    }

    /// A Genitor instance with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics when `pop_size < 2` or `selection_bias` is outside
    /// `[1.0, 2.0]`.
    pub fn with_config(seed: u64, config: GenitorConfig) -> Self {
        assert!(config.pop_size >= 2, "population needs at least 2 members");
        assert!(
            (1.0..=2.0).contains(&config.selection_bias),
            "selection bias must be in [1.0, 2.0]"
        );
        Genitor {
            config,
            rng: StdRng::seed_from_u64(seed),
            last_mapping: None,
        }
    }

    /// Clears the remembered mapping (fresh start for a new scenario).
    pub fn reset(&mut self) {
        self.last_mapping = None;
    }

    /// The active configuration.
    pub fn config(&self) -> &GenitorConfig {
        &self.config
    }

    /// Whether a previous mapping is remembered for seeding.
    pub fn has_seed(&self) -> bool {
        self.last_mapping.is_some()
    }

    /// Linear-bias rank selection: returns a population index in
    /// `0..pop_size` favouring low indices (better makespans) with
    /// pressure `selection_bias`.
    fn select_index(&mut self, pop_size: usize) -> usize {
        let b = self.config.selection_bias;
        if b <= 1.0 + f64::EPSILON {
            return self.rng.gen_range(0..pop_size);
        }
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let idx = pop_size as f64 * (b - (b * b - 4.0 * (b - 1.0) * u).sqrt()) / (2.0 * (b - 1.0));
        (idx as usize).min(pop_size - 1)
    }
}

/// A chromosome: position `i` holds the index (into the instance's machine
/// list) of the machine assigned to the instance's `i`-th task.
type Chromosome = Vec<u16>;

/// Makespan of a chromosome under the instance.
fn fitness(inst: &Instance<'_>, chrom: &Chromosome) -> Time {
    let mut finish: Vec<Time> = inst.machines.iter().map(|&m| inst.ready.get(m)).collect();
    for (pos, &mi) in chrom.iter().enumerate() {
        let task = inst.tasks[pos];
        let machine = inst.machines[mi as usize];
        finish[mi as usize] += inst.etc.get(task, machine);
    }
    finish.into_iter().max().expect("instance has machines")
}

/// Inserts `chrom` into the population, keeping it sorted ascending by
/// fitness, then truncates to `cap` (dropping the worst).
fn insert_sorted(pop: &mut Vec<(Time, Chromosome)>, fit: Time, chrom: Chromosome, cap: usize) {
    let at = pop.partition_point(|(f, _)| *f <= fit);
    pop.insert(at, (fit, chrom));
    pop.truncate(cap);
}

impl Heuristic for Genitor {
    fn name(&self) -> &'static str {
        "Genitor"
    }

    /// Runs the GA. The [`TieBreaker`] is unused: Genitor's stochasticity
    /// is its own (population initialization, parent selection, cut
    /// points, mutation), not tie-breaking between equally good greedy
    /// choices.
    fn map(&mut self, inst: &Instance<'_>, _tb: &mut TieBreaker) -> Mapping {
        let n_tasks = inst.tasks.len();
        let n_machines = inst.machines.len();
        let cap = self.config.pop_size;

        if n_tasks == 0 {
            let mapping = Mapping::new(inst.etc.n_tasks());
            self.last_mapping = Some(mapping.clone());
            return mapping;
        }

        // --- Initial population ------------------------------------------
        let mut pop: Vec<(Time, Chromosome)> = Vec::with_capacity(cap + 2);

        // Seed: the previous round's mapping restricted to this instance,
        // when it covers it (the iterative driver removes exactly the
        // frozen machine's tasks, so coverage holds across rounds).
        let seed_chrom: Option<Chromosome> = self.last_mapping.as_ref().and_then(|prev| {
            inst.tasks
                .iter()
                .map(|&task| {
                    prev.machine_of(task).and_then(|m| {
                        inst.machines
                            .iter()
                            .position(|&mm| mm == m)
                            .map(|i| i as u16)
                    })
                })
                .collect()
        });
        if let Some(chrom) = seed_chrom {
            let fit = fitness(inst, &chrom);
            insert_sorted(&mut pop, fit, chrom, cap);
        }
        if self.config.seed_minmin {
            let chrom = minmin_chromosome(inst);
            let fit = fitness(inst, &chrom);
            insert_sorted(&mut pop, fit, chrom, cap);
        }
        while pop.len() < cap {
            let chrom: Chromosome = (0..n_tasks)
                .map(|_| self.rng.gen_range(0..n_machines) as u16)
                .collect();
            let fit = fitness(inst, &chrom);
            insert_sorted(&mut pop, fit, chrom, cap);
        }

        // --- Steady-state loop -------------------------------------------
        let mut best = pop[0].0;
        let mut stall = 0usize;
        for _ in 0..self.config.max_steps {
            // (a) Crossover.
            let pa = self.select_index(cap);
            let pb = self.select_index(cap);
            let cut = self.rng.gen_range(0..=n_tasks);
            let (mut child_a, mut child_b) = (pop[pa].1.clone(), pop[pb].1.clone());
            for pos in 0..cut {
                std::mem::swap(&mut child_a[pos], &mut child_b[pos]);
            }
            let fa = fitness(inst, &child_a);
            insert_sorted(&mut pop, fa, child_a, cap);
            let fb = fitness(inst, &child_b);
            insert_sorted(&mut pop, fb, child_b, cap);

            // (b) Mutation.
            let pm = self.rng.gen_range(0..cap);
            let mut mutant = pop[pm].1.clone();
            let pos = self.rng.gen_range(0..n_tasks);
            mutant[pos] = self.rng.gen_range(0..n_machines) as u16;
            let fm = fitness(inst, &mutant);
            insert_sorted(&mut pop, fm, mutant, cap);

            // Stopping criterion.
            if pop[0].0 < best {
                best = pop[0].0;
                stall = 0;
            } else {
                stall += 1;
                if stall >= self.config.stall_steps {
                    break;
                }
            }
        }

        // --- Output the best solution ------------------------------------
        let best_chrom = &pop[0].1;
        let mut mapping = Mapping::new(inst.etc.n_tasks());
        for (pos, &mi) in best_chrom.iter().enumerate() {
            mapping
                .assign(inst.tasks[pos], inst.machines[mi as usize])
                .expect("chromosome covers each task once");
        }
        self.last_mapping = Some(mapping.clone());
        mapping
    }
}

/// Min-Min as a chromosome (for the optional seed). Re-implemented locally
/// (a dozen lines) rather than depending on `hcs-heuristics`, keeping the
/// crate graph a clean DAG and the GA crate self-contained.
fn minmin_chromosome(inst: &Instance<'_>) -> Chromosome {
    let mut ready: Vec<Time> = inst.machines.iter().map(|&m| inst.ready.get(m)).collect();
    let mut chrom: Chromosome = vec![0; inst.tasks.len()];
    let mut unmapped: Vec<usize> = (0..inst.tasks.len()).collect();
    while !unmapped.is_empty() {
        let mut best: Option<(usize, usize, Time)> = None; // (pos, machine idx, ct)
        for &pos in &unmapped {
            let task = inst.tasks[pos];
            for (mi, &machine) in inst.machines.iter().enumerate() {
                let ct = ready[mi] + inst.etc.get(task, machine);
                if best.is_none_or(|(_, _, b)| ct < b) {
                    best = Some((pos, mi, ct));
                }
            }
        }
        let (pos, mi, _) = best.expect("unmapped set non-empty");
        ready[mi] += inst.etc.get(inst.tasks[pos], inst.machines[mi]);
        chrom[pos] = mi as u16;
        unmapped.retain(|&p| p != pos);
    }
    chrom
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::{EtcMatrix, MachineId, Scenario, TaskId};

    fn small_scenario() -> Scenario {
        Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[
                vec![4.0, 7.0, 2.0],
                vec![3.0, 1.0, 9.0],
                vec![5.0, 5.0, 5.0],
                vec![2.0, 8.0, 6.0],
                vec![7.0, 3.0, 4.0],
            ])
            .unwrap(),
        )
    }

    fn quick_config() -> GenitorConfig {
        GenitorConfig {
            pop_size: 40,
            max_steps: 2_000,
            stall_steps: 400,
            ..GenitorConfig::default()
        }
    }

    /// Brute-force optimal makespan for small instances.
    fn brute_force_optimum(s: &Scenario) -> Time {
        let n_t = s.etc.n_tasks();
        let n_m = s.etc.n_machines();
        let mut best: Option<Time> = None;
        let total = n_m.pow(n_t as u32);
        for code in 0..total {
            let mut finish: Vec<Time> = (0..n_m)
                .map(|i| s.initial_ready.get(MachineId(i as u32)))
                .collect();
            let mut c = code;
            for task in 0..n_t {
                let mi = c % n_m;
                c /= n_m;
                finish[mi] += s.etc.get(TaskId(task as u32), MachineId(mi as u32));
            }
            let ms = finish.into_iter().max().unwrap();
            if best.is_none_or(|b| ms < b) {
                best = Some(ms);
            }
        }
        best.unwrap()
    }

    #[test]
    fn finds_the_optimum_on_a_small_instance() {
        let s = small_scenario();
        let optimum = brute_force_optimum(&s);
        let mut ga = Genitor::with_config(42, quick_config());
        let owned = s.full_instance();
        let map = ga.map(&owned.as_instance(&s), &mut TieBreaker::Deterministic);
        let ms = map.makespan(&s.etc, &s.initial_ready, &owned.machines);
        assert_eq!(ms, optimum, "GA should solve a 5x3 instance exactly");
    }

    #[test]
    fn reproducible_from_seed() {
        let s = small_scenario();
        let owned = s.full_instance();
        let run = |seed| {
            let mut ga = Genitor::with_config(seed, quick_config());
            ga.map(&owned.as_instance(&s), &mut TieBreaker::Deterministic)
        };
        assert_eq!(run(7).order(), run(7).order());
    }

    #[test]
    fn seeding_never_regresses() {
        // Map once, then map a sub-instance (the makespan machine and its
        // tasks removed). The result must be at least as good as the seed.
        let s = small_scenario();
        let owned = s.full_instance();
        let mut ga = Genitor::with_config(3, quick_config());
        let first = ga.map(&owned.as_instance(&s), &mut TieBreaker::Deterministic);
        let ct = first.completion_times(&s.etc, &s.initial_ready, &owned.machines);
        let (mk, _) = ct.makespan_machine();

        let rem_tasks: Vec<_> = owned
            .tasks
            .iter()
            .copied()
            .filter(|&task| first.machine_of(task) != Some(mk))
            .collect();
        let rem_machines: Vec<_> = owned
            .machines
            .iter()
            .copied()
            .filter(|&mm| mm != mk)
            .collect();
        let inst = Instance {
            etc: &s.etc,
            tasks: &rem_tasks,
            machines: &rem_machines,
            ready: &s.initial_ready,
        };
        let seed_ms =
            first
                .restricted_to(&rem_tasks)
                .makespan(&s.etc, &s.initial_ready, &rem_machines);
        let second = ga.map(&inst, &mut TieBreaker::Deterministic);
        let second_ms = second.makespan(&s.etc, &s.initial_ready, &rem_machines);
        assert!(
            second_ms <= seed_ms,
            "seeded GA regressed: {second_ms} > {seed_ms}"
        );
    }

    #[test]
    fn empty_task_set_yields_empty_mapping() {
        let s = small_scenario();
        let machines = s.etc.machine_vec();
        let inst = Instance {
            etc: &s.etc,
            tasks: &[],
            machines: &machines,
            ready: &s.initial_ready,
        };
        let mut ga = Genitor::new(0);
        let map = ga.map(&inst, &mut TieBreaker::Deterministic);
        assert!(map.is_empty());
    }

    #[test]
    fn minmin_seed_option_accepted() {
        let s = small_scenario();
        let owned = s.full_instance();
        let mut ga = Genitor::with_config(
            5,
            GenitorConfig {
                seed_minmin: true,
                ..quick_config()
            },
        );
        let map = ga.map(&owned.as_instance(&s), &mut TieBreaker::Deterministic);
        map.validate(&owned.tasks, &owned.machines).unwrap();
    }

    #[test]
    fn selection_bias_favours_better_ranks() {
        let mut ga = Genitor::with_config(
            11,
            GenitorConfig {
                selection_bias: 1.8,
                ..quick_config()
            },
        );
        let n = 100;
        let draws: Vec<usize> = (0..4000).map(|_| ga.select_index(n)).collect();
        let top_half = draws.iter().filter(|&&i| i < n / 2).count();
        assert!(
            top_half > draws.len() * 6 / 10,
            "bias 1.8 should pick the top half well over 60% of the time, got {top_half}/4000"
        );
        assert!(draws.iter().all(|&i| i < n));
    }

    #[test]
    fn uniform_selection_is_roughly_flat() {
        let mut ga = Genitor::with_config(13, quick_config()); // bias 1.0
        let n = 10;
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[ga.select_index(n)] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "uniform draw count skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn reset_clears_seed_state() {
        let s = small_scenario();
        let owned = s.full_instance();
        let mut ga = Genitor::with_config(9, quick_config());
        let _ = ga.map(&owned.as_instance(&s), &mut TieBreaker::Deterministic);
        assert!(ga.has_seed());
        ga.reset();
        assert!(!ga.has_seed());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_population_rejected() {
        let _ = Genitor::with_config(
            0,
            GenitorConfig {
                pop_size: 1,
                ..GenitorConfig::default()
            },
        );
    }

    #[test]
    fn minmin_chromosome_matches_hand_computation() {
        // Same instance as hcs-heuristics' classic_minmin_schedule test:
        // t0 -> m0, t2 -> m1, t1 -> m0 (order differs; assignments match).
        let s = Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[vec![2.0, 6.0], vec![3.0, 4.0], vec![8.0, 3.0]]).unwrap(),
        );
        let owned = s.full_instance();
        let chrom = minmin_chromosome(&owned.as_instance(&s));
        assert_eq!(chrom, vec![0, 0, 1]);
    }
}
