//! Genitor — a steady-state genetic algorithm for makespan minimization
//! (paper §3.1, Figure 1; Whitley \[17\]).
//!
//! A chromosome assigns every mappable task a machine. The population is
//! kept **sorted by fitness** — the instance's [`hcs_core::Objective`]
//! value, the makespan in the paper's setting; each step performs
//!
//! 1. **crossover** — two parents are selected, a random cut-off point is
//!    generated, and the machine assignments below the cut are exchanged,
//!    producing two offspring that are inserted into the sorted population
//!    (the worst chromosomes are removed, keeping the size fixed);
//! 2. **mutation** — a randomly selected chromosome gets one task's machine
//!    assignment arbitrarily modified; the offspring is inserted and the
//!    worst chromosome removed.
//!
//! The loop stops after [`GenitorConfig::max_steps`] steps or
//! [`GenitorConfig::stall_steps`] steps without improving the best
//! makespan, whichever comes first. Because insertion is elitist (worst
//! out, sorted in), the best chromosome can never get worse.
//!
//! # Delta evaluation
//!
//! An offspring differs from one of its parents in few genes: a crossover
//! child differs from one parent only inside the swapped prefix (or,
//! equivalently, from the other parent only in the suffix), a mutant in at
//! most one. The population therefore caches each chromosome's per-machine
//! load vector, and offspring are *gated* by a delta fitness — copy the
//! nearer parent's loads, shift the few differing genes' ETCs, take the
//! max — in O(m + Δ) instead of the O(n + m) from-scratch walk. Offspring
//! that cannot enter the population (fitness at or above the current
//! worst, the common case once the search converges) are rejected without
//! ever materializing a chromosome; retained offspring are re-evaluated
//! from scratch so every stored fitness is bit-identical to what the
//! pre-delta implementation stored. That implementation is preserved in
//! [`reference::NaiveGenitor`] as the executable specification, and the
//! golden-equivalence suite in `tests/delta_equivalence.rs` pins final
//! mappings and makespan trajectories to it; DESIGN.md §11 gives the
//! argument for why the gate agrees with the spec. Initial-population
//! evaluation fans out over `std::thread::scope` (the `run_trials_with`
//! pattern) — evaluation is pure, so the thread count cannot change any
//! result.
//!
//! # Seeding and the iterative technique
//!
//! "For each iteration (of the iterative approach), the mapping found by
//! Genitor in the previous iteration, excluding the makespan machine and
//! the tasks assigned to it, is seeded into the population of the current
//! iteration. The ranking in Genitor guarantees that the final mapping is
//! either the seeded mapping or a mapping with a smaller makespan" — §3.1.
//!
//! [`Genitor`] is therefore *stateful*: it remembers the mapping it
//! produced last and, when asked to map a sub-instance whose tasks are all
//! covered by that remembered mapping on still-active machines, inserts the
//! restriction as a seed chromosome. This makes the iterative technique
//! monotone for Genitor (integration test `theorems.rs`).
//!
//! # Parent selection
//!
//! Figure 1 selects parents uniformly at random; Whitley's original Genitor
//! uses linear-bias rank selection ("selective pressure"). Both are
//! available: [`GenitorConfig::selection_bias`] of `1.0` is uniform (the
//! paper's Figure 1), values up to `2.0` increasingly favour high-ranked
//! (low-makespan) chromosomes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod island;
pub mod reference;

pub use island::{IslandConfig, IslandGenitor};

use hcs_core::{Heuristic, Instance, Mapping, TieBreaker, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Tuning parameters for [`Genitor`].
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GenitorConfig {
    /// Population size (chromosome count, kept fixed).
    pub pop_size: usize,
    /// Hard cap on steps (one step = one crossover + one mutation).
    pub max_steps: usize,
    /// Stop after this many consecutive steps without a new best makespan.
    pub stall_steps: usize,
    /// Linear-bias rank selection pressure in `[1.0, 2.0]`; `1.0` is the
    /// uniform selection of the paper's Figure 1.
    pub selection_bias: f64,
    /// Also seed the initial population with a Min-Min mapping (a common
    /// practice since Braun et al.; off by default for Figure-1 fidelity).
    pub seed_minmin: bool,
    /// Worker threads for initial-population evaluation; `0` (the default)
    /// picks the machine's available parallelism, capped at 8. Evaluation
    /// is pure and results are merged in generation order, so this setting
    /// cannot change any mapping — only how fast the population fills.
    pub eval_threads: usize,
}

impl Default for GenitorConfig {
    fn default() -> Self {
        GenitorConfig {
            pop_size: 100,
            max_steps: 10_000,
            stall_steps: 1_500,
            selection_bias: 1.0,
            seed_minmin: false,
            eval_threads: 0,
        }
    }
}

/// The Genitor heuristic. Construct once per experiment; it is stateful
/// (see module docs on seeding) and owns its RNG, so results are
/// reproducible from the construction seed and the sequence of `map`
/// calls.
#[derive(Clone, Debug)]
pub struct Genitor {
    config: GenitorConfig,
    rng: StdRng,
    last_mapping: Option<Mapping>,
}

impl Genitor {
    /// A Genitor instance with default configuration.
    pub fn new(seed: u64) -> Self {
        Genitor::with_config(seed, GenitorConfig::default())
    }

    /// A Genitor instance with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics when `pop_size < 2` or `selection_bias` is outside
    /// `[1.0, 2.0]`.
    pub fn with_config(seed: u64, config: GenitorConfig) -> Self {
        assert!(config.pop_size >= 2, "population needs at least 2 members");
        assert!(
            (1.0..=2.0).contains(&config.selection_bias),
            "selection bias must be in [1.0, 2.0]"
        );
        Genitor {
            config,
            rng: StdRng::seed_from_u64(seed),
            last_mapping: None,
        }
    }

    /// Clears the remembered mapping (fresh start for a new scenario).
    pub fn reset(&mut self) {
        self.last_mapping = None;
    }

    /// The active configuration.
    pub fn config(&self) -> &GenitorConfig {
        &self.config
    }

    /// Whether a previous mapping is remembered for seeding.
    pub fn has_seed(&self) -> bool {
        self.last_mapping.is_some()
    }

    /// Linear-bias rank selection: returns a population index in
    /// `0..pop_size` favouring low indices (better makespans) with
    /// pressure `selection_bias`.
    fn select_index(&mut self, pop_size: usize) -> usize {
        let b = self.config.selection_bias;
        if b <= 1.0 + f64::EPSILON {
            return self.rng.gen_range(0..pop_size);
        }
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let idx = pop_size as f64 * (b - (b * b - 4.0 * (b - 1.0) * u).sqrt()) / (2.0 * (b - 1.0));
        (idx as usize).min(pop_size - 1)
    }
}

/// A chromosome: position `i` holds the index (into the instance's machine
/// list) of the machine assigned to the instance's `i`-th task.
type Chromosome = Vec<u16>;

/// A population member: chromosome plus its cached fitness and per-machine
/// load vector. The loads are what make delta gating possible — an
/// offspring's candidate fitness is derived from its parent's loads
/// without touching the other `n − Δ` genes.
#[derive(Clone, Debug)]
struct Entry {
    fit: Time,
    chrom: Chromosome,
    loads: Vec<Time>,
    counts: Vec<u32>,
}

/// From-scratch fitness: ready times plus ETCs accumulated in task-position
/// order, exactly as [`reference::NaiveGenitor`] computes it (bit-for-bit
/// under makespan — the golden-equivalence suite depends on this; the
/// makespan arm is the reference's exact max fold). Leaves the load and
/// per-machine task-count vectors in `loads`/`counts` for the entry cache.
fn eval_into(
    inst: &Instance<'_>,
    chrom: &[u16],
    loads: &mut Vec<Time>,
    counts: &mut Vec<u32>,
) -> Time {
    loads.clear();
    loads.extend(inst.machines.iter().map(|&m| inst.ready.get(m)));
    counts.clear();
    counts.resize(inst.machines.len(), 0);
    for (pos, &mi) in chrom.iter().enumerate() {
        let task = inst.tasks[pos];
        let machine = inst.machines[mi as usize];
        loads[mi as usize] += inst.etc.get(task, machine);
        counts[mi as usize] += 1;
    }
    match inst.objective {
        hcs_core::Objective::Makespan => {
            loads.iter().copied().max().expect("instance has machines")
        }
        _ => inst.objective.value(loads, counts),
    }
}

/// Candidate fitness by delta: copy the base parent's cached loads, apply
/// each differing gene's ETC shift, and aggregate per the instance's
/// objective (max for makespan, sum for flowtime, count-weighted sum for
/// weighted flowtime) — O(m + Δ) instead of the O(n + m) from-scratch
/// walk. Used only as an acceptance *gate*; retained offspring are
/// re-evaluated from scratch (see module docs / DESIGN.md §11), so
/// rounding drift here can at worst flip a measure-zero borderline
/// accept, never corrupt a stored fitness.
fn gate_fitness(
    inst: &Instance<'_>,
    base_loads: &[Time],
    base_counts: &[u32],
    moves: impl Iterator<Item = (usize, u16, u16)>,
    scratch: &mut Vec<f64>,
    counts_scratch: &mut Vec<u32>,
) -> Time {
    scratch.clear();
    scratch.extend(base_loads.iter().map(|t| t.get()));
    let weighted = inst.objective == hcs_core::Objective::WeightedFlowtime;
    if weighted {
        counts_scratch.clear();
        counts_scratch.extend_from_slice(base_counts);
    }
    for (pos, from, to) in moves {
        let task = inst.tasks[pos];
        scratch[from as usize] -= inst.etc.get(task, inst.machines[from as usize]).get();
        scratch[to as usize] += inst.etc.get(task, inst.machines[to as usize]).get();
        if weighted {
            counts_scratch[from as usize] -= 1;
            counts_scratch[to as usize] += 1;
        }
    }
    match inst.objective {
        hcs_core::Objective::Makespan => {
            let mut mx = f64::NEG_INFINITY;
            for &v in scratch.iter() {
                if mx.total_cmp(&v).is_lt() {
                    mx = v;
                }
            }
            Time::new(mx)
        }
        hcs_core::Objective::Flowtime => Time::new(scratch.iter().sum()),
        hcs_core::Objective::WeightedFlowtime => Time::new(
            scratch
                .iter()
                .zip(counts_scratch.iter())
                .map(|(&v, &c)| c as f64 * v)
                .sum(),
        ),
    }
}

/// Inserts `entry` into the fitness-sorted population (after equals, like
/// the reference `insert_sorted`), evicting the worst member into `pool`
/// for buffer reuse when the population exceeds `cap`. Returns whether the
/// entry itself survived — `false` exactly when the reference would have
/// inserted at the end and truncated.
fn insert_entry(pop: &mut Vec<Entry>, entry: Entry, cap: usize, pool: &mut Vec<Entry>) -> bool {
    let at = pop.partition_point(|e| e.fit <= entry.fit);
    pop.insert(at, entry);
    if pop.len() > cap {
        if let Some(evicted) = pop.pop() {
            pool.push(evicted);
        }
        at < cap
    } else {
        true
    }
}

/// Work threshold (chromosomes × tasks) below which initial-population
/// evaluation stays on the calling thread — thread spawn costs more than
/// the evaluation itself for small instances.
const PAR_EVAL_THRESHOLD: usize = 1 << 14;

/// From-scratch evaluation of a batch of chromosomes, fanned out over
/// `std::thread::scope` when `threads > 1`. Results return in input order
/// and evaluation is pure, so the fan-out is invisible to the search.
fn eval_batch(
    inst: &Instance<'_>,
    chroms: &[Chromosome],
    threads: usize,
) -> Vec<(Time, Vec<Time>, Vec<u32>)> {
    let eval_all = |slice: &[Chromosome]| -> Vec<(Time, Vec<Time>, Vec<u32>)> {
        slice
            .iter()
            .map(|chrom| {
                let mut loads = Vec::new();
                let mut counts = Vec::new();
                let fit = eval_into(inst, chrom, &mut loads, &mut counts);
                (fit, loads, counts)
            })
            .collect()
    };
    let threads = threads.clamp(1, chroms.len().max(1));
    if threads <= 1 {
        return eval_all(chroms);
    }
    let chunk = chroms.len().div_ceil(threads);
    let mut out = Vec::with_capacity(chroms.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = chroms
            .chunks(chunk)
            .map(|slice| s.spawn(move || eval_all(slice)))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("evaluator thread panicked"));
        }
    });
    out
}

impl Genitor {
    /// [`map`](Heuristic::map) with an observer called with
    /// `(inserted fitness, best fitness)` after every insertion that
    /// actually entered the population — initial members and retained
    /// offspring alike. Testing seam for the golden-equivalence suite
    /// ([`reference::NaiveGenitor::map_observed`] fires at the same
    /// points); the observer is outside the RNG stream.
    pub fn map_observed(
        &mut self,
        inst: &Instance<'_>,
        tb: &mut TieBreaker,
        observe: impl FnMut(Time, Time),
    ) -> Mapping {
        self.map_observed_migrating(inst, tb, observe, 0, |_, _, _| None)
    }

    /// [`map_observed`](Genitor::map_observed) with a migration seam for the
    /// island model ([`island::IslandGenitor`]).
    ///
    /// When `interval > 0`, after every `interval`-th step the search calls
    /// `exchange(round, best_chromosome, best_fitness)` — `round` counts
    /// from 1 — and, if the callback returns a migrant chromosome (same
    /// instance, machine indices in range), evaluates it from scratch and
    /// inserts it into the sorted population under the usual elitist rule.
    /// Both the callback and the insertion are **outside the RNG stream**:
    /// an `interval` of `0` never invokes `exchange` and runs the exact
    /// instruction sequence of [`map_observed`] (which delegates here), so
    /// a one-island run is bit-identical to the single-threaded engine.
    /// Migration happens at fixed step counts *before* the stall check, so
    /// which rounds fire is a deterministic function of the trajectory.
    pub fn map_observed_migrating(
        &mut self,
        inst: &Instance<'_>,
        _tb: &mut TieBreaker,
        mut observe: impl FnMut(Time, Time),
        interval: usize,
        mut exchange: impl FnMut(u64, &[u16], Time) -> Option<Vec<u16>>,
    ) -> Mapping {
        let n_tasks = inst.tasks.len();
        let n_machines = inst.machines.len();
        let cap = self.config.pop_size;

        if n_tasks == 0 {
            let mapping = Mapping::new(inst.etc.n_tasks());
            self.last_mapping = Some(mapping.clone());
            return mapping;
        }

        // --- Initial population ------------------------------------------
        let mut pop: Vec<Entry> = Vec::with_capacity(cap + 1);
        let mut pool: Vec<Entry> = Vec::new();

        // Seed: the previous round's mapping restricted to this instance,
        // when it covers it (the iterative driver removes exactly the
        // frozen machine's tasks, so coverage holds across rounds).
        let seed_chrom: Option<Chromosome> = self.last_mapping.as_ref().and_then(|prev| {
            inst.tasks
                .iter()
                .map(|&task| {
                    prev.machine_of(task).and_then(|m| {
                        inst.machines
                            .iter()
                            .position(|&mm| mm == m)
                            .map(|i| i as u16)
                    })
                })
                .collect()
        });
        if let Some(chrom) = seed_chrom {
            let mut loads = Vec::new();
            let mut counts = Vec::new();
            let fit = eval_into(inst, &chrom, &mut loads, &mut counts);
            let entry = Entry {
                fit,
                chrom,
                loads,
                counts,
            };
            if insert_entry(&mut pop, entry, cap, &mut pool) {
                observe(fit, pop[0].fit);
            }
        }
        if self.config.seed_minmin {
            let chrom = minmin_chromosome(inst);
            let mut loads = Vec::new();
            let mut counts = Vec::new();
            let fit = eval_into(inst, &chrom, &mut loads, &mut counts);
            let entry = Entry {
                fit,
                chrom,
                loads,
                counts,
            };
            if insert_entry(&mut pop, entry, cap, &mut pool) {
                observe(fit, pop[0].fit);
            }
        }

        // Random fill: the chromosomes are drawn sequentially (preserving
        // the exact RNG stream of the reference, which interleaved
        // generation and evaluation), evaluated as a batch — in parallel
        // when the workload warrants it — and inserted in generation order.
        let fill = cap - pop.len();
        let mut pending: Vec<Chromosome> = Vec::with_capacity(fill);
        for _ in 0..fill {
            pending.push(
                (0..n_tasks)
                    .map(|_| self.rng.gen_range(0..n_machines) as u16)
                    .collect(),
            );
        }
        let threads = if fill * n_tasks >= PAR_EVAL_THRESHOLD {
            match self.config.eval_threads {
                0 => std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .min(8),
                t => t,
            }
        } else {
            1
        };
        let evaluated = eval_batch(inst, &pending, threads);
        for (chrom, (fit, loads, counts)) in pending.into_iter().zip(evaluated) {
            let entry = Entry {
                fit,
                chrom,
                loads,
                counts,
            };
            if insert_entry(&mut pop, entry, cap, &mut pool) {
                observe(fit, pop[0].fit);
            }
        }

        // --- Steady-state loop -------------------------------------------
        // Offspring are delta-gated against the current worst member; only
        // offspring that will enter the population are materialized and
        // re-evaluated from scratch (see module docs). Chromosome and load
        // buffers cycle through `pool`, so the converged regime — most
        // offspring rejected — runs allocation-free.
        let mut best = pop[0].fit;
        let mut stall = 0usize;
        let mut diffs: Vec<u32> = Vec::new();
        let mut scratch: Vec<f64> = Vec::new();
        let mut counts_scratch: Vec<u32> = Vec::new();

        for step in 0..self.config.max_steps {
            // (a) Crossover: child_a = pb-prefix + pa-suffix, child_b the
            // converse. Scanning the shorter side for differing genes finds
            // every position where a child departs from its nearer parent.
            let pa = self.select_index(cap);
            let pb = self.select_index(cap);
            let cut = self.rng.gen_range(0..=n_tasks);
            let scan_prefix = cut <= n_tasks - cut;
            let (range, base_a, base_b) = if scan_prefix {
                // Children differ from their suffix parent inside the prefix.
                (0..cut, pa, pb)
            } else {
                // ... and from their prefix parent inside the suffix.
                (cut..n_tasks, pb, pa)
            };
            diffs.clear();
            {
                let ca = &pop[pa].chrom[range.clone()];
                let cb = &pop[pb].chrom[range.clone()];
                for (off, (&ga, &gb)) in ca.iter().zip(cb).enumerate() {
                    if ga != gb {
                        diffs.push((range.start + off) as u32);
                    }
                }
            }

            let worst = pop[cap - 1].fit;
            let other = |base: usize| if base == pa { pb } else { pa };

            // Child A: gate, then materialize only on acceptance.
            let gate_a = if diffs.is_empty() {
                pop[base_a].fit
            } else {
                let (bc, oc) = (&pop[base_a].chrom, &pop[other(base_a)].chrom);
                gate_fitness(
                    inst,
                    &pop[base_a].loads,
                    &pop[base_a].counts,
                    diffs.iter().map(|&p| {
                        let pos = p as usize;
                        (pos, bc[pos], oc[pos])
                    }),
                    &mut scratch,
                    &mut counts_scratch,
                )
            };
            let entry_a = if gate_a < worst {
                let mut e = pool.pop().unwrap_or_else(|| Entry {
                    fit: Time::ZERO,
                    chrom: Vec::new(),
                    loads: Vec::new(),
                    counts: Vec::new(),
                });
                e.chrom.clear();
                e.chrom.extend_from_slice(&pop[pb].chrom[..cut]);
                e.chrom.extend_from_slice(&pop[pa].chrom[cut..]);
                e.fit = eval_into(inst, &e.chrom, &mut e.loads, &mut e.counts);
                Some(e)
            } else {
                None
            };

            // The worst member child B must beat is the one *after* child
            // A's insert-and-truncate: the old runner-up or child A itself,
            // whichever is larger (the old worst is evicted).
            let worst_b = match &entry_a {
                Some(e) if e.fit < worst => {
                    let second = pop[cap - 2].fit;
                    if second < e.fit {
                        e.fit
                    } else {
                        second
                    }
                }
                _ => worst,
            };

            // Child B: same gate against the post-A worst.
            let gate_b = if diffs.is_empty() {
                pop[base_b].fit
            } else {
                let (bc, oc) = (&pop[base_b].chrom, &pop[other(base_b)].chrom);
                gate_fitness(
                    inst,
                    &pop[base_b].loads,
                    &pop[base_b].counts,
                    diffs.iter().map(|&p| {
                        let pos = p as usize;
                        (pos, bc[pos], oc[pos])
                    }),
                    &mut scratch,
                    &mut counts_scratch,
                )
            };
            let entry_b = if gate_b < worst_b {
                let mut e = pool.pop().unwrap_or_else(|| Entry {
                    fit: Time::ZERO,
                    chrom: Vec::new(),
                    loads: Vec::new(),
                    counts: Vec::new(),
                });
                e.chrom.clear();
                e.chrom.extend_from_slice(&pop[pa].chrom[..cut]);
                e.chrom.extend_from_slice(&pop[pb].chrom[cut..]);
                e.fit = eval_into(inst, &e.chrom, &mut e.loads, &mut e.counts);
                Some(e)
            } else {
                None
            };

            if let Some(e) = entry_a {
                let fit = e.fit;
                if insert_entry(&mut pop, e, cap, &mut pool) {
                    observe(fit, pop[0].fit);
                }
            }
            if let Some(e) = entry_b {
                let fit = e.fit;
                if insert_entry(&mut pop, e, cap, &mut pool) {
                    observe(fit, pop[0].fit);
                }
            }

            // (b) Mutation: a one-gene delta (or the parent's exact fitness
            // when the drawn gene is unchanged — the reference inserts a
            // duplicate in that case, and so do we).
            let pm = self.rng.gen_range(0..cap);
            let pos = self.rng.gen_range(0..n_tasks);
            let gene = self.rng.gen_range(0..n_machines) as u16;
            let old_gene = pop[pm].chrom[pos];
            let worst_m = pop[cap - 1].fit;
            let gate_m = if gene == old_gene {
                pop[pm].fit
            } else {
                gate_fitness(
                    inst,
                    &pop[pm].loads,
                    &pop[pm].counts,
                    std::iter::once((pos, old_gene, gene)),
                    &mut scratch,
                    &mut counts_scratch,
                )
            };
            if gate_m < worst_m {
                let mut e = pool.pop().unwrap_or_else(|| Entry {
                    fit: Time::ZERO,
                    chrom: Vec::new(),
                    loads: Vec::new(),
                    counts: Vec::new(),
                });
                e.chrom.clear();
                e.chrom.extend_from_slice(&pop[pm].chrom);
                e.chrom[pos] = gene;
                e.fit = eval_into(inst, &e.chrom, &mut e.loads, &mut e.counts);
                let fit = e.fit;
                if insert_entry(&mut pop, e, cap, &mut pool) {
                    observe(fit, pop[0].fit);
                }
            }

            // Migration (island model only): exchange bests at fixed step
            // counts. A migrant enters through the same elitist insert as
            // any offspring; no RNG is drawn on this path.
            if interval > 0 && (step + 1) % interval == 0 {
                let round = ((step + 1) / interval) as u64;
                if let Some(migrant) = exchange(round, &pop[0].chrom, pop[0].fit) {
                    debug_assert_eq!(migrant.len(), n_tasks, "migrant covers the instance");
                    let mut e = pool.pop().unwrap_or_else(|| Entry {
                        fit: Time::ZERO,
                        chrom: Vec::new(),
                        loads: Vec::new(),
                        counts: Vec::new(),
                    });
                    e.chrom.clear();
                    e.chrom.extend_from_slice(&migrant);
                    e.fit = eval_into(inst, &e.chrom, &mut e.loads, &mut e.counts);
                    let fit = e.fit;
                    if insert_entry(&mut pop, e, cap, &mut pool) {
                        observe(fit, pop[0].fit);
                    }
                }
            }

            // Stopping criterion.
            if pop[0].fit < best {
                best = pop[0].fit;
                stall = 0;
            } else {
                stall += 1;
                if stall >= self.config.stall_steps {
                    break;
                }
            }
        }

        // --- Output the best solution ------------------------------------
        let best_chrom = &pop[0].chrom;
        let mut mapping = Mapping::new(inst.etc.n_tasks());
        for (pos, &mi) in best_chrom.iter().enumerate() {
            mapping
                .assign(inst.tasks[pos], inst.machines[mi as usize])
                .expect("chromosome covers each task once");
        }
        self.last_mapping = Some(mapping.clone());
        mapping
    }
}

impl Heuristic for Genitor {
    fn name(&self) -> &'static str {
        "Genitor"
    }

    /// Runs the GA. The [`TieBreaker`] is unused: Genitor's stochasticity
    /// is its own (population initialization, parent selection, cut
    /// points, mutation), not tie-breaking between equally good greedy
    /// choices.
    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        self.map_observed(inst, tb, |_, _| {})
    }
}

/// Min-Min as a chromosome (for the optional seed). Re-implemented locally
/// (a dozen lines) rather than depending on `hcs-heuristics`, keeping the
/// crate graph a clean DAG and the GA crate self-contained. Shared with
/// [`reference::NaiveGenitor`] so both paths seed identically.
pub(crate) fn minmin_chromosome(inst: &Instance<'_>) -> Chromosome {
    let mut ready: Vec<Time> = inst.machines.iter().map(|&m| inst.ready.get(m)).collect();
    let mut chrom: Chromosome = vec![0; inst.tasks.len()];
    let mut unmapped: Vec<usize> = (0..inst.tasks.len()).collect();
    while !unmapped.is_empty() {
        let mut best: Option<(usize, usize, Time)> = None; // (pos, machine idx, ct)
        for &pos in &unmapped {
            let task = inst.tasks[pos];
            for (mi, &machine) in inst.machines.iter().enumerate() {
                let ct = ready[mi] + inst.etc.get(task, machine);
                if best.is_none_or(|(_, _, b)| ct < b) {
                    best = Some((pos, mi, ct));
                }
            }
        }
        let (pos, mi, _) = best.expect("unmapped set non-empty");
        ready[mi] += inst.etc.get(inst.tasks[pos], inst.machines[mi]);
        chrom[pos] = mi as u16;
        unmapped.retain(|&p| p != pos);
    }
    chrom
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::{EtcMatrix, MachineId, Scenario, TaskId};

    fn small_scenario() -> Scenario {
        Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[
                vec![4.0, 7.0, 2.0],
                vec![3.0, 1.0, 9.0],
                vec![5.0, 5.0, 5.0],
                vec![2.0, 8.0, 6.0],
                vec![7.0, 3.0, 4.0],
            ])
            .unwrap(),
        )
    }

    fn quick_config() -> GenitorConfig {
        GenitorConfig {
            pop_size: 40,
            max_steps: 2_000,
            stall_steps: 400,
            ..GenitorConfig::default()
        }
    }

    /// Brute-force optimal makespan for small instances.
    fn brute_force_optimum(s: &Scenario) -> Time {
        let n_t = s.etc.n_tasks();
        let n_m = s.etc.n_machines();
        let mut best: Option<Time> = None;
        let total = n_m.pow(n_t as u32);
        for code in 0..total {
            let mut finish: Vec<Time> = (0..n_m)
                .map(|i| s.initial_ready.get(MachineId(i as u32)))
                .collect();
            let mut c = code;
            for task in 0..n_t {
                let mi = c % n_m;
                c /= n_m;
                finish[mi] += s.etc.get(TaskId(task as u32), MachineId(mi as u32));
            }
            let ms = finish.into_iter().max().unwrap();
            if best.is_none_or(|b| ms < b) {
                best = Some(ms);
            }
        }
        best.unwrap()
    }

    #[test]
    fn finds_the_optimum_on_a_small_instance() {
        let s = small_scenario();
        let optimum = brute_force_optimum(&s);
        let mut ga = Genitor::with_config(42, quick_config());
        let owned = s.full_instance();
        let map = ga.map(&owned.as_instance(&s), &mut TieBreaker::Deterministic);
        let ms = map.makespan(&s.etc, &s.initial_ready, &owned.machines);
        assert_eq!(ms, optimum, "GA should solve a 5x3 instance exactly");
    }

    #[test]
    fn reproducible_from_seed() {
        let s = small_scenario();
        let owned = s.full_instance();
        let run = |seed| {
            let mut ga = Genitor::with_config(seed, quick_config());
            ga.map(&owned.as_instance(&s), &mut TieBreaker::Deterministic)
        };
        assert_eq!(run(7).order(), run(7).order());
    }

    #[test]
    fn parallel_initial_population_matches_sequential() {
        // 512 tasks x 3 machines puts fill × tasks over PAR_EVAL_THRESHOLD,
        // so eval_threads > 1 takes the scoped-thread path end to end.
        let rows: Vec<Vec<f64>> = (0..512)
            .map(|t| {
                (0..3)
                    .map(|m| (((t * 7 + m * 13) % 29) + 1) as f64)
                    .collect()
            })
            .collect();
        let s = Scenario::with_zero_ready(EtcMatrix::from_rows(&rows).unwrap());
        let owned = s.full_instance();
        let run = |threads| {
            let mut ga = Genitor::with_config(
                7,
                GenitorConfig {
                    pop_size: 40,
                    max_steps: 50,
                    stall_steps: 20,
                    eval_threads: threads,
                    ..GenitorConfig::default()
                },
            );
            ga.map(&owned.as_instance(&s), &mut TieBreaker::Deterministic)
        };
        assert_eq!(run(1).order(), run(3).order());
    }

    #[test]
    fn batch_evaluation_is_thread_count_invariant() {
        let s = small_scenario();
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let chroms: Vec<Chromosome> = (0..13)
            .map(|i| (0..5).map(|p| ((i + p) % 3) as u16).collect())
            .collect();
        let seq = eval_batch(&inst, &chroms, 1);
        let par = eval_batch(&inst, &chroms, 4);
        assert_eq!(seq.len(), par.len());
        for ((fs, ls, cs), (fp, lp, cp)) in seq.iter().zip(par.iter()) {
            assert_eq!(fs, fp);
            assert_eq!(ls, lp);
            assert_eq!(cs, cp);
        }
    }

    #[test]
    fn gate_fitness_is_exact_on_integer_workloads() {
        // Integer ETCs make f64 arithmetic exact, so the delta gate must
        // equal the from-scratch fitness bit-for-bit.
        let s = small_scenario();
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let parent: Chromosome = vec![0, 1, 2, 0, 1];
        let mut loads = Vec::new();
        let mut counts = Vec::new();
        let _ = eval_into(&inst, &parent, &mut loads, &mut counts);
        let mut scratch = Vec::new();
        let mut counts_scratch = Vec::new();
        // Mutate position 2 from machine 2 to machine 0.
        let gated = gate_fitness(
            &inst,
            &loads,
            &counts,
            std::iter::once((2usize, 2u16, 0u16)),
            &mut scratch,
            &mut counts_scratch,
        );
        let mut child = parent.clone();
        child[2] = 0;
        let mut child_loads = Vec::new();
        let mut child_counts = Vec::new();
        let scratch_fit = eval_into(&inst, &child, &mut child_loads, &mut child_counts);
        assert_eq!(gated, scratch_fit);
    }

    #[test]
    fn gate_fitness_is_exact_for_every_objective() {
        // Same integer-workload exactness argument as above, but the gate's
        // aggregation now depends on the objective: max, sum, and the
        // count-weighted sum must each match the from-scratch fitness.
        for objective in hcs_core::Objective::ALL {
            let s = small_scenario().with_objective(objective);
            let owned = s.full_instance();
            let inst = owned.as_instance(&s);
            let parent: Chromosome = vec![0, 1, 2, 0, 1];
            let mut loads = Vec::new();
            let mut counts = Vec::new();
            let _ = eval_into(&inst, &parent, &mut loads, &mut counts);
            let mut scratch = Vec::new();
            let mut counts_scratch = Vec::new();
            let gated = gate_fitness(
                &inst,
                &loads,
                &counts,
                std::iter::once((2usize, 2u16, 0u16)),
                &mut scratch,
                &mut counts_scratch,
            );
            let mut child = parent.clone();
            child[2] = 0;
            let mut child_loads = Vec::new();
            let mut child_counts = Vec::new();
            let scratch_fit = eval_into(&inst, &child, &mut child_loads, &mut child_counts);
            assert_eq!(gated, scratch_fit, "objective {objective}");
        }
    }

    #[test]
    fn optimizes_flowtime_when_asked() {
        // Under flowtime the GA must find the brute-force flowtime optimum
        // on the small instance (81..243 assignments is trivially covered
        // by the population).
        let s = small_scenario().with_objective(hcs_core::Objective::Flowtime);
        let n_m = s.etc.n_machines();
        let machines = s.etc.machine_vec();
        let mut best: Option<Time> = None;
        for code in 0..n_m.pow(s.etc.n_tasks() as u32) {
            let mut c = code;
            let mut loads = vec![Time::ZERO; n_m];
            for task in s.etc.tasks() {
                let mi = c % n_m;
                c /= n_m;
                loads[mi] += s.etc.get(task, machines[mi]);
            }
            let ft = loads.iter().copied().fold(Time::ZERO, |a, b| a + b);
            if best.is_none_or(|b| ft < b) {
                best = Some(ft);
            }
        }
        let mut ga = Genitor::with_config(42, quick_config());
        let owned = s.full_instance();
        let map = ga.map(&owned.as_instance(&s), &mut TieBreaker::Deterministic);
        let got = map.objective_value(&s.etc, &s.initial_ready, &machines, s.objective);
        assert_eq!(Some(got), best, "GA should reach the flowtime optimum");
    }

    #[test]
    fn seeding_never_regresses() {
        // Map once, then map a sub-instance (the makespan machine and its
        // tasks removed). The result must be at least as good as the seed.
        let s = small_scenario();
        let owned = s.full_instance();
        let mut ga = Genitor::with_config(3, quick_config());
        let first = ga.map(&owned.as_instance(&s), &mut TieBreaker::Deterministic);
        let ct = first.completion_times(&s.etc, &s.initial_ready, &owned.machines);
        let (mk, _) = ct.makespan_machine();

        let rem_tasks: Vec<_> = owned
            .tasks
            .iter()
            .copied()
            .filter(|&task| first.machine_of(task) != Some(mk))
            .collect();
        let rem_machines: Vec<_> = owned
            .machines
            .iter()
            .copied()
            .filter(|&mm| mm != mk)
            .collect();
        let inst = Instance {
            etc: &s.etc,
            tasks: &rem_tasks,
            machines: &rem_machines,
            ready: &s.initial_ready,
            objective: s.objective,
        };
        let seed_ms =
            first
                .restricted_to(&rem_tasks)
                .makespan(&s.etc, &s.initial_ready, &rem_machines);
        let second = ga.map(&inst, &mut TieBreaker::Deterministic);
        let second_ms = second.makespan(&s.etc, &s.initial_ready, &rem_machines);
        assert!(
            second_ms <= seed_ms,
            "seeded GA regressed: {second_ms} > {seed_ms}"
        );
    }

    #[test]
    fn empty_task_set_yields_empty_mapping() {
        let s = small_scenario();
        let machines = s.etc.machine_vec();
        let inst = Instance {
            etc: &s.etc,
            tasks: &[],
            machines: &machines,
            ready: &s.initial_ready,
            objective: s.objective,
        };
        let mut ga = Genitor::new(0);
        let map = ga.map(&inst, &mut TieBreaker::Deterministic);
        assert!(map.is_empty());
    }

    #[test]
    fn minmin_seed_option_accepted() {
        let s = small_scenario();
        let owned = s.full_instance();
        let mut ga = Genitor::with_config(
            5,
            GenitorConfig {
                seed_minmin: true,
                ..quick_config()
            },
        );
        let map = ga.map(&owned.as_instance(&s), &mut TieBreaker::Deterministic);
        map.validate(&owned.tasks, &owned.machines).unwrap();
    }

    #[test]
    fn selection_bias_favours_better_ranks() {
        let mut ga = Genitor::with_config(
            11,
            GenitorConfig {
                selection_bias: 1.8,
                ..quick_config()
            },
        );
        let n = 100;
        let draws: Vec<usize> = (0..4000).map(|_| ga.select_index(n)).collect();
        let top_half = draws.iter().filter(|&&i| i < n / 2).count();
        assert!(
            top_half > draws.len() * 6 / 10,
            "bias 1.8 should pick the top half well over 60% of the time, got {top_half}/4000"
        );
        assert!(draws.iter().all(|&i| i < n));
    }

    #[test]
    fn uniform_selection_is_roughly_flat() {
        let mut ga = Genitor::with_config(13, quick_config()); // bias 1.0
        let n = 10;
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[ga.select_index(n)] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "uniform draw count skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn reset_clears_seed_state() {
        let s = small_scenario();
        let owned = s.full_instance();
        let mut ga = Genitor::with_config(9, quick_config());
        let _ = ga.map(&owned.as_instance(&s), &mut TieBreaker::Deterministic);
        assert!(ga.has_seed());
        ga.reset();
        assert!(!ga.has_seed());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_population_rejected() {
        let _ = Genitor::with_config(
            0,
            GenitorConfig {
                pop_size: 1,
                ..GenitorConfig::default()
            },
        );
    }

    #[test]
    fn minmin_chromosome_matches_hand_computation() {
        // Same instance as hcs-heuristics' classic_minmin_schedule test:
        // t0 -> m0, t2 -> m1, t1 -> m0 (order differs; assignments match).
        let s = Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[vec![2.0, 6.0], vec![3.0, 4.0], vec![8.0, 3.0]]).unwrap(),
        );
        let owned = s.full_instance();
        let chrom = minmin_chromosome(&owned.as_instance(&s));
        assert_eq!(chrom, vec![0, 0, 1]);
    }
}
