//! Island-model Genitor: N independent populations on scoped threads with
//! periodic best-chromosome migration over a ring (DESIGN.md §16).
//!
//! Each island runs the unmodified delta-evaluation Genitor loop
//! ([`Genitor::map_observed_migrating`]) on its own RNG stream
//! ([`hcs_core::split_stream`]); every `migration_interval` steps island
//! `i` publishes its best chromosome into its exchange slot and receives
//! the best of island `i − 1` (ring topology). Migration happens at fixed
//! step counts and the exchange protocol is *blocking* — island `i`'s
//! round-`r` migrant is exactly island `i − 1`'s round-`r` best (or the
//! final best of an island that stopped before round `r`), never
//! "whatever happened to be there" — so the whole search is a pure
//! function of `(seed, islands)`: the OS scheduler cannot change any
//! mapping.
//!
//! # The exchange slot protocol
//!
//! Slot `i` is written by island `i` and read by island `(i + 1) % N`:
//!
//! ```text
//! struct Slot { published: AtomicU64, consumed: AtomicU64, payload: Mutex<…> }
//! ```
//!
//! Round `r` (counting from 1), island `i`:
//!
//! 1. wait until `slot[i].consumed ≥ r − 1` (the reader has drained the
//!    previous round — the payload may be overwritten),
//! 2. write the best chromosome into `slot[i].payload`, store
//!    `published = r`,
//! 3. wait until `slot[i − 1].published ≥ r`, read the migrant,
//! 4. store `slot[i − 1].consumed = r`.
//!
//! An island that stops early (stall break) exits the ring by **first**
//! storing `consumed = MAX` into the slot it reads (its predecessor can
//! never block on it again), *then* waiting for its own reader to drain
//! every published round, and only then freezing its final best into its
//! slot with `published = MAX`. `MAX` trivially satisfies every later
//! wait, so two adjacent islands exiting simultaneously release each
//! other and a surviving island keeps reading the frozen final best —
//! no deadlock, no lost round, and the hand-off stays deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hcs_core::{split_stream, Heuristic, Instance, Mapping, TieBreaker, Time};
use serde::{Deserialize, Serialize};

use crate::{Genitor, GenitorConfig};

/// Tuning parameters for [`IslandGenitor`].
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IslandConfig {
    /// Number of islands (each one scoped thread running an independent
    /// Genitor population). `1` disables migration entirely and runs the
    /// single-threaded engine bit-identically.
    pub islands: usize,
    /// Steps between best-chromosome exchanges; `0` disables migration
    /// (islands evolve fully independently and only the final winner is
    /// compared).
    pub migration_interval: usize,
    /// The per-island Genitor configuration. `max_steps` is the budget of
    /// **each island**: callers comparing against a single-threaded run at
    /// equal total budget should divide the total by `islands`.
    pub genitor: GenitorConfig,
}

impl Default for IslandConfig {
    fn default() -> Self {
        IslandConfig {
            islands: 4,
            migration_interval: 500,
            genitor: GenitorConfig::default(),
        }
    }
}

/// The island-model parallel Genitor. Owns one persistent [`Genitor`] per
/// island (RNG streams and iterative-technique seeding survive across
/// `map` calls, exactly like the single-threaded engine); after every map
/// the globally best mapping is written back into **every** island's
/// remembered seed, so the iterative driver's monotone-seeding guarantee
/// holds for the ensemble as a whole.
#[derive(Debug)]
pub struct IslandGenitor {
    config: IslandConfig,
    islands: Vec<Genitor>,
}

impl IslandGenitor {
    /// An island Genitor with explicit configuration. Island `k` draws its
    /// RNG seed from [`split_stream`]`(seed, k)` — stream 0 *is* the base
    /// seed, so `islands == 1` reproduces `Genitor::with_config(seed, …)`
    /// bit for bit.
    ///
    /// # Panics
    ///
    /// Panics when `islands == 0` or `islands > genitor.pop_size` (each
    /// island must hold a full population; more islands than chromosomes
    /// per population is a configuration error), or when the inner
    /// [`GenitorConfig`] is itself invalid.
    pub fn with_config(seed: u64, config: IslandConfig) -> Self {
        assert!(config.islands >= 1, "need at least one island");
        assert!(
            config.islands <= config.genitor.pop_size,
            "more islands than chromosomes per population"
        );
        let islands = (0..config.islands)
            .map(|k| Genitor::with_config(split_stream(seed, k), config.genitor))
            .collect();
        IslandGenitor { config, islands }
    }

    /// The active configuration.
    pub fn config(&self) -> &IslandConfig {
        &self.config
    }

    /// Clears every island's remembered mapping (fresh start).
    pub fn reset(&mut self) {
        for island in &mut self.islands {
            island.reset();
        }
    }

    /// Whether a previous mapping is remembered for seeding.
    pub fn has_seed(&self) -> bool {
        self.islands[0].has_seed()
    }
}

/// One ring exchange slot (see the module docs for the protocol).
struct Slot {
    /// Rounds published into `payload`; `u64::MAX` once the writer exited
    /// (the payload then holds the writer's frozen final best).
    published: AtomicU64,
    /// Rounds drained by the reader; `u64::MAX` once the reader exited.
    consumed: AtomicU64,
    /// The published best: chromosome and its fitness.
    payload: Mutex<(Vec<u16>, Time)>,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            published: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
            payload: Mutex::new((Vec::new(), Time::ZERO)),
        }
    }
}

/// Spin-then-yield wait: the migration rendezvous is short relative to an
/// interval's worth of search steps, and yielding keeps oversubscribed
/// hosts (more islands than cores) live.
fn wait_until(cond: impl Fn() -> bool) {
    let mut spins = 0u32;
    while !cond() {
        spins = spins.saturating_add(1);
        if spins < 64 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// One island's run: the migrating Genitor loop plus the ring entry/exit
/// protocol. Returns the island's final mapping and objective value.
fn run_island(
    g: &mut Genitor,
    inst: &Instance<'_>,
    slots: &[Slot],
    me: usize,
    interval: usize,
) -> (Mapping, Time) {
    let n = slots.len();
    let prev = (me + n - 1) % n;
    let mut rounds_done = 0u64;
    let mapping = {
        let rounds_done = &mut rounds_done;
        g.map_observed_migrating(
            inst,
            &mut TieBreaker::Deterministic,
            |_, _| {},
            interval,
            move |round, best, fit| {
                *rounds_done = round;
                wait_until(|| slots[me].consumed.load(Ordering::Acquire) >= round - 1);
                {
                    let mut p = slots[me].payload.lock().expect("slot poisoned");
                    p.0.clear();
                    p.0.extend_from_slice(best);
                    p.1 = fit;
                }
                slots[me].published.store(round, Ordering::Release);
                wait_until(|| slots[prev].published.load(Ordering::Acquire) >= round);
                let migrant = slots[prev].payload.lock().expect("slot poisoned").0.clone();
                slots[prev].consumed.store(round, Ordering::Release);
                Some(migrant)
            },
        )
    };
    let value = mapping.objective_value(inst.etc, inst.ready, inst.machines, inst.objective);

    // Ring exit: release the predecessor FIRST (it must never block on a
    // finished reader), drain our own reader, then freeze the final best.
    slots[prev].consumed.store(u64::MAX, Ordering::Release);
    wait_until(|| slots[me].consumed.load(Ordering::Acquire) >= rounds_done);
    {
        let mut p = slots[me].payload.lock().expect("slot poisoned");
        p.0.clear();
        p.0.extend(inst.tasks.iter().map(|&task| {
            let m = mapping.machine_of(task).expect("mapping covers instance");
            inst.machines
                .iter()
                .position(|&mm| mm == m)
                .expect("machine belongs to instance") as u16
        }));
        p.1 = value;
    }
    slots[me].published.store(u64::MAX, Ordering::Release);

    (mapping, value)
}

impl Heuristic for IslandGenitor {
    fn name(&self) -> &'static str {
        "Genitor-Island"
    }

    /// Runs every island to completion on scoped threads, picks the winner
    /// by `(objective value, island index)` — strictly smaller value wins,
    /// the lowest island breaks ties — and re-seeds every island with it.
    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        let winner = if self.islands.len() == 1 {
            // The single-island fast path: no ring, no threads — the exact
            // code path (and RNG stream) of the single-threaded engine.
            self.islands[0].map(inst, tb)
        } else {
            let interval = self.config.migration_interval;
            let slots: Vec<Slot> = (0..self.islands.len()).map(|_| Slot::new()).collect();
            let slots = &slots;
            let mut results: Vec<Option<(Mapping, Time)>> =
                (0..self.islands.len()).map(|_| None).collect();
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .islands
                    .iter_mut()
                    .enumerate()
                    .map(|(k, island)| {
                        s.spawn(move || run_island(island, inst, slots, k, interval))
                    })
                    .collect();
                for (slot, handle) in results.iter_mut().zip(handles) {
                    *slot = Some(handle.join().expect("island thread panicked"));
                }
            });
            let (mut winner, mut best) = results[0].take().expect("island 0 ran");
            for result in &mut results[1..] {
                let (mapping, value) = result.take().expect("island ran");
                if value < best {
                    winner = mapping;
                    best = value;
                }
            }
            winner
        };
        // Every island restarts the next (iterative-technique) round from
        // the ensemble's best — the monotone-seeding guarantee then holds
        // island-wise, hence for the minimum too.
        for island in &mut self.islands {
            island.last_mapping = Some(winner.clone());
        }
        winner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::{EtcMatrix, Scenario};

    fn scenario(tasks: usize, machines: usize) -> Scenario {
        let rows: Vec<Vec<f64>> = (0..tasks)
            .map(|t| {
                (0..machines)
                    .map(|m| (((t * 31 + m * 17) % 23) + 1) as f64)
                    .collect()
            })
            .collect();
        Scenario::with_zero_ready(EtcMatrix::from_rows(&rows).unwrap())
    }

    fn quick() -> GenitorConfig {
        GenitorConfig {
            pop_size: 24,
            max_steps: 600,
            stall_steps: 600,
            eval_threads: 1,
            ..GenitorConfig::default()
        }
    }

    #[test]
    fn one_island_is_bit_identical_to_the_single_threaded_engine() {
        let s = scenario(24, 5);
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let mut plain = Genitor::with_config(42, quick());
        let mut island = IslandGenitor::with_config(
            42,
            IslandConfig {
                islands: 1,
                migration_interval: 100,
                genitor: quick(),
            },
        );
        // Two successive maps: the second exercises seeding continuity.
        for _ in 0..2 {
            let a = plain.map(&inst, &mut TieBreaker::Deterministic);
            let b = island.map(&inst, &mut TieBreaker::Deterministic);
            assert_eq!(a.order(), b.order());
        }
    }

    #[test]
    fn multi_island_is_deterministic_and_valid() {
        let s = scenario(24, 5);
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let run = || {
            let mut island = IslandGenitor::with_config(
                7,
                IslandConfig {
                    islands: 3,
                    migration_interval: 50,
                    genitor: quick(),
                },
            );
            island.map(&inst, &mut TieBreaker::Deterministic)
        };
        let a = run();
        let b = run();
        assert_eq!(a.order(), b.order(), "same (seed, islands) must agree");
        a.validate(&owned.tasks, &owned.machines).unwrap();
    }

    #[test]
    fn migration_disabled_still_terminates_and_picks_the_best() {
        let s = scenario(16, 4);
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let mut island = IslandGenitor::with_config(
            9,
            IslandConfig {
                islands: 4,
                migration_interval: 0,
                genitor: quick(),
            },
        );
        let ensemble = island.map(&inst, &mut TieBreaker::Deterministic);
        let ensemble_value = ensemble.makespan(&s.etc, &s.initial_ready, &owned.machines);
        // The ensemble winner is no worse than stream-0 alone.
        let mut solo = Genitor::with_config(9, quick());
        let solo_map = solo.map(&inst, &mut TieBreaker::Deterministic);
        let solo_value = solo_map.makespan(&s.etc, &s.initial_ready, &owned.machines);
        assert!(ensemble_value <= solo_value);
    }

    #[test]
    fn islands_with_uneven_stop_steps_do_not_deadlock() {
        // A tiny stall budget makes islands exit the ring at different
        // rounds; the exit protocol must keep the survivors live.
        let s = scenario(20, 4);
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let mut island = IslandGenitor::with_config(
            11,
            IslandConfig {
                islands: 4,
                migration_interval: 10,
                genitor: GenitorConfig {
                    pop_size: 16,
                    max_steps: 2_000,
                    stall_steps: 25,
                    eval_threads: 1,
                    ..GenitorConfig::default()
                },
            },
        );
        let a = island.map(&inst, &mut TieBreaker::Deterministic);
        a.validate(&owned.tasks, &owned.machines).unwrap();
        // And it is still reproducible.
        let mut again = IslandGenitor::with_config(
            11,
            IslandConfig {
                islands: 4,
                migration_interval: 10,
                genitor: GenitorConfig {
                    pop_size: 16,
                    max_steps: 2_000,
                    stall_steps: 25,
                    eval_threads: 1,
                    ..GenitorConfig::default()
                },
            },
        );
        let b = again.map(&inst, &mut TieBreaker::Deterministic);
        assert_eq!(a.order(), b.order());
    }

    #[test]
    #[should_panic(expected = "at least one island")]
    fn zero_islands_rejected() {
        let _ = IslandGenitor::with_config(
            0,
            IslandConfig {
                islands: 0,
                migration_interval: 0,
                genitor: quick(),
            },
        );
    }

    #[test]
    #[should_panic(expected = "more islands than chromosomes")]
    fn more_islands_than_population_rejected() {
        let _ = IslandGenitor::with_config(
            0,
            IslandConfig {
                islands: 25,
                migration_interval: 0,
                genitor: quick(),
            },
        );
    }
}
