//! The pre-delta-kernel Genitor, retained verbatim as the executable
//! specification.
//!
//! [`NaiveGenitor`] is the implementation the crate shipped before the
//! delta-evaluation rewrite: every offspring's chromosome is materialized,
//! its fitness recomputed from scratch with an O(n + m) walk, and the
//! sorted insert-then-truncate decides survival. [`Genitor`](crate::Genitor)
//! must produce bit-identical final mappings and makespan trajectories for
//! identical seeds; the golden-equivalence property suite in
//! `tests/delta_equivalence.rs` enforces that on random scenarios,
//! including when both are driven through the full
//! `IterativeRun` loop (where the stateful seeding carries across rounds).
//!
//! The twin is a **makespan** spec: it predates the pluggable
//! [`hcs_core::Objective`] layer and its fitness is the max machine
//! finishing time regardless of the instance's objective. The golden
//! suites therefore drive both implementations on makespan scenarios
//! only; the generic path's other objectives are covered by their own
//! exactness tests in the parent module.
//!
//! None of this code is on a hot path — clarity over speed.

use hcs_core::{Heuristic, Instance, Mapping, TieBreaker, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{minmin_chromosome, GenitorConfig};

type Chromosome = Vec<u16>;

/// Makespan of a chromosome under the instance — the reference fitness
/// every stored population fitness must agree with bit-for-bit.
fn fitness(inst: &Instance<'_>, chrom: &Chromosome) -> Time {
    let mut finish: Vec<Time> = inst.machines.iter().map(|&m| inst.ready.get(m)).collect();
    for (pos, &mi) in chrom.iter().enumerate() {
        let task = inst.tasks[pos];
        let machine = inst.machines[mi as usize];
        finish[mi as usize] += inst.etc.get(task, machine);
    }
    finish.into_iter().max().expect("instance has machines")
}

/// Inserts `chrom` into the population, keeping it sorted ascending by
/// fitness, then truncates to `cap` (dropping the worst).
fn insert_sorted(pop: &mut Vec<(Time, Chromosome)>, fit: Time, chrom: Chromosome, cap: usize) {
    let at = pop.partition_point(|(f, _)| *f <= fit);
    pop.insert(at, (fit, chrom));
    pop.truncate(cap);
}

/// The pre-delta Genitor. Same configuration, same RNG stream, same
/// stateful seeding as [`Genitor`](crate::Genitor) — only the evaluation
/// strategy differs.
#[derive(Clone, Debug)]
pub struct NaiveGenitor {
    config: GenitorConfig,
    rng: StdRng,
    last_mapping: Option<Mapping>,
}

impl NaiveGenitor {
    /// A naive Genitor with default configuration.
    pub fn new(seed: u64) -> Self {
        NaiveGenitor::with_config(seed, GenitorConfig::default())
    }

    /// A naive Genitor with explicit configuration (same validation as
    /// [`Genitor::with_config`](crate::Genitor::with_config)).
    pub fn with_config(seed: u64, config: GenitorConfig) -> Self {
        assert!(config.pop_size >= 2, "population needs at least 2 members");
        assert!(
            (1.0..=2.0).contains(&config.selection_bias),
            "selection bias must be in [1.0, 2.0]"
        );
        NaiveGenitor {
            config,
            rng: StdRng::seed_from_u64(seed),
            last_mapping: None,
        }
    }

    /// Clears the remembered mapping (fresh start for a new scenario).
    pub fn reset(&mut self) {
        self.last_mapping = None;
    }

    fn select_index(&mut self, pop_size: usize) -> usize {
        let b = self.config.selection_bias;
        if b <= 1.0 + f64::EPSILON {
            return self.rng.gen_range(0..pop_size);
        }
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let idx = pop_size as f64 * (b - (b * b - 4.0 * (b - 1.0) * u).sqrt()) / (2.0 * (b - 1.0));
        (idx as usize).min(pop_size - 1)
    }

    /// Naive twin of [`Genitor::map_observed`](crate::Genitor::map_observed):
    /// the observer fires with `(inserted fitness, best fitness)` after
    /// every insertion that survives the truncation, at the same points.
    pub fn map_observed(
        &mut self,
        inst: &Instance<'_>,
        _tb: &mut TieBreaker,
        mut observe: impl FnMut(Time, Time),
    ) -> Mapping {
        let n_tasks = inst.tasks.len();
        let n_machines = inst.machines.len();
        let cap = self.config.pop_size;

        if n_tasks == 0 {
            let mapping = Mapping::new(inst.etc.n_tasks());
            self.last_mapping = Some(mapping.clone());
            return mapping;
        }

        // An insert-then-truncate discards the newcomer exactly when its
        // fitness is at or above the current worst of a full population.
        let survives =
            |pop: &Vec<(Time, Chromosome)>, fit: Time| pop.len() < cap || fit < pop[cap - 1].0;

        // --- Initial population ------------------------------------------
        let mut pop: Vec<(Time, Chromosome)> = Vec::with_capacity(cap + 2);

        let seed_chrom: Option<Chromosome> = self.last_mapping.as_ref().and_then(|prev| {
            inst.tasks
                .iter()
                .map(|&task| {
                    prev.machine_of(task).and_then(|m| {
                        inst.machines
                            .iter()
                            .position(|&mm| mm == m)
                            .map(|i| i as u16)
                    })
                })
                .collect()
        });
        if let Some(chrom) = seed_chrom {
            let fit = fitness(inst, &chrom);
            let kept = survives(&pop, fit);
            insert_sorted(&mut pop, fit, chrom, cap);
            if kept {
                observe(fit, pop[0].0);
            }
        }
        if self.config.seed_minmin {
            let chrom = minmin_chromosome(inst);
            let fit = fitness(inst, &chrom);
            let kept = survives(&pop, fit);
            insert_sorted(&mut pop, fit, chrom, cap);
            if kept {
                observe(fit, pop[0].0);
            }
        }
        while pop.len() < cap {
            let chrom: Chromosome = (0..n_tasks)
                .map(|_| self.rng.gen_range(0..n_machines) as u16)
                .collect();
            let fit = fitness(inst, &chrom);
            let kept = survives(&pop, fit);
            insert_sorted(&mut pop, fit, chrom, cap);
            if kept {
                observe(fit, pop[0].0);
            }
        }

        // --- Steady-state loop -------------------------------------------
        let mut best = pop[0].0;
        let mut stall = 0usize;
        for _ in 0..self.config.max_steps {
            // (a) Crossover.
            let pa = self.select_index(cap);
            let pb = self.select_index(cap);
            let cut = self.rng.gen_range(0..=n_tasks);
            let (mut child_a, mut child_b) = (pop[pa].1.clone(), pop[pb].1.clone());
            for pos in 0..cut {
                std::mem::swap(&mut child_a[pos], &mut child_b[pos]);
            }
            let fa = fitness(inst, &child_a);
            let kept = survives(&pop, fa);
            insert_sorted(&mut pop, fa, child_a, cap);
            if kept {
                observe(fa, pop[0].0);
            }
            let fb = fitness(inst, &child_b);
            let kept = survives(&pop, fb);
            insert_sorted(&mut pop, fb, child_b, cap);
            if kept {
                observe(fb, pop[0].0);
            }

            // (b) Mutation.
            let pm = self.rng.gen_range(0..cap);
            let mut mutant = pop[pm].1.clone();
            let pos = self.rng.gen_range(0..n_tasks);
            mutant[pos] = self.rng.gen_range(0..n_machines) as u16;
            let fm = fitness(inst, &mutant);
            let kept = survives(&pop, fm);
            insert_sorted(&mut pop, fm, mutant, cap);
            if kept {
                observe(fm, pop[0].0);
            }

            // Stopping criterion.
            if pop[0].0 < best {
                best = pop[0].0;
                stall = 0;
            } else {
                stall += 1;
                if stall >= self.config.stall_steps {
                    break;
                }
            }
        }

        // --- Output the best solution ------------------------------------
        let best_chrom = &pop[0].1;
        let mut mapping = Mapping::new(inst.etc.n_tasks());
        for (pos, &mi) in best_chrom.iter().enumerate() {
            mapping
                .assign(inst.tasks[pos], inst.machines[mi as usize])
                .expect("chromosome covers each task once");
        }
        self.last_mapping = Some(mapping.clone());
        mapping
    }
}

impl Heuristic for NaiveGenitor {
    fn name(&self) -> &'static str {
        "Genitor"
    }

    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        self.map_observed(inst, tb, |_, _| {})
    }
}
