//! Determinism contract of the island-model parallel Genitor: for a fixed
//! `(seed, islands)` pair the engine must be a pure function of its inputs
//! — repeated runs reproduce the same mapping bit for bit regardless of
//! thread scheduling — and `islands == 1` must replay the single-threaded
//! [`Genitor`] exactly (RNG stream 0 *is* the base seed).

use hcs_core::{EtcMatrix, Heuristic, Scenario, TieBreaker};
use hcs_genitor::{Genitor, GenitorConfig, IslandConfig, IslandGenitor};
use proptest::prelude::*;

/// Random small-integer matrices (tie-rich, exact f64 arithmetic — the
/// regime where any cross-thread nondeterminism in migration timing would
/// surface as a divergent trajectory).
fn integer_etc() -> impl Strategy<Value = EtcMatrix> {
    (2usize..=5, 2usize..=10).prop_flat_map(|(m, t)| {
        proptest::collection::vec(1u32..=6, t * m).prop_map(move |values| {
            let flat: Vec<f64> = values.into_iter().map(f64::from).collect();
            EtcMatrix::new(t, m, &flat).expect("strategy produces valid values")
        })
    })
}

/// A tiny-but-live per-island budget: enough steps for several migration
/// rounds to fire, small population so evictions happen constantly.
fn quick_config() -> GenitorConfig {
    GenitorConfig {
        pop_size: 8,
        max_steps: 90,
        stall_steps: usize::MAX,
        selection_bias: 1.6,
        seed_minmin: false,
        eval_threads: 1,
    }
}

fn tb(seed: Option<u64>) -> TieBreaker {
    match seed {
        None => TieBreaker::Deterministic,
        Some(x) => TieBreaker::random(x),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two fresh island engines with identical `(seed, islands,
    /// migration_interval)` produce bit-identical mappings, run after run,
    /// under both tie policies.
    #[test]
    fn island_runs_are_deterministic_for_fixed_seed_and_island_count(
        etc in integer_etc(),
        seed in 0u64..1_000_000,
        islands in 1usize..=4,
        interval in prop_oneof![Just(0usize), 5usize..=40],
    ) {
        let s = Scenario::with_zero_ready(etc);
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let config = IslandConfig {
            islands,
            migration_interval: interval,
            genitor: quick_config(),
        };
        for tb_seed in [None, Some(seed)] {
            let first = IslandGenitor::with_config(seed, config)
                .map(&inst, &mut tb(tb_seed));
            for _ in 0..2 {
                let again = IslandGenitor::with_config(seed, config)
                    .map(&inst, &mut tb(tb_seed));
                prop_assert_eq!(
                    again.order(),
                    first.order(),
                    "repeated island run diverged (islands={}, interval={})",
                    islands,
                    interval
                );
            }
        }
    }

    /// `islands == 1` is the single-threaded engine: the ensemble with one
    /// island must replay `Genitor::with_config(seed, …)` bit for bit.
    #[test]
    fn one_island_is_bit_identical_to_the_single_threaded_engine(
        etc in integer_etc(),
        seed in 0u64..1_000_000,
        interval in prop_oneof![Just(0usize), 5usize..=40],
    ) {
        let s = Scenario::with_zero_ready(etc);
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let genitor = quick_config();
        for tb_seed in [None, Some(seed)] {
            let ensemble = IslandGenitor::with_config(
                seed,
                IslandConfig { islands: 1, migration_interval: interval, genitor },
            )
            .map(&inst, &mut tb(tb_seed));
            let single = Genitor::with_config(seed, genitor).map(&inst, &mut tb(tb_seed));
            prop_assert_eq!(ensemble.order(), single.order(), "islands=1 diverged");
        }
    }
}
