//! Golden-equivalence suite for Genitor's delta-evaluation rewrite: the
//! gate-then-recompute [`Genitor`] must reproduce the pre-rewrite
//! [`reference::NaiveGenitor`] bit-for-bit — every retained insertion's
//! `(fitness, best)` pair, the final mapping, and whole `IterativeRun`
//! outcomes (where the stateful seeding carries mappings across rounds) —
//! for identical seeds under both tie policies.

use hcs_core::{iterative, EtcMatrix, Scenario, TieBreaker, Time};
use hcs_genitor::{reference, Genitor, GenitorConfig};
use proptest::prelude::*;

/// Random continuous matrices (tie-free in practice, inexact arithmetic).
fn continuous_etc() -> impl Strategy<Value = EtcMatrix> {
    (2usize..=6, 1usize..=14).prop_flat_map(|(m, t)| {
        proptest::collection::vec(0.5f64..100.0, t * m).prop_map(move |values| {
            EtcMatrix::new(t, m, &values).expect("strategy produces valid values")
        })
    })
}

/// Random small-integer matrices (tie-rich, exact f64 arithmetic — the
/// regime where the acceptance gate must agree with the scratch fitness
/// exactly, so any gate bug shows up as a divergent trajectory).
fn integer_etc() -> impl Strategy<Value = EtcMatrix> {
    (2usize..=5, 1usize..=10).prop_flat_map(|(m, t)| {
        proptest::collection::vec(1u32..=5, t * m).prop_map(move |values| {
            let flat: Vec<f64> = values.into_iter().map(f64::from).collect();
            EtcMatrix::new(t, m, &flat).expect("strategy produces valid values")
        })
    })
}

/// A tiny-but-live GA budget: small population so evictions happen
/// constantly (stressing the `worst` bookkeeping), enough steps for
/// crossover, mutation, and stall exit to all fire.
fn quick_config(seed_minmin: bool) -> GenitorConfig {
    GenitorConfig {
        pop_size: 10,
        max_steps: 120,
        stall_steps: 40,
        selection_bias: 1.6,
        seed_minmin,
        eval_threads: 1,
    }
}

/// Every retained insertion, as the observer reports it.
type Trajectory = Vec<(Time, Time)>;

fn assert_genitor_equivalence(
    etc: EtcMatrix,
    seed: u64,
    seed_minmin: bool,
) -> Result<(), TestCaseError> {
    let s = Scenario::with_zero_ready(etc);
    let owned = s.full_instance();
    let inst = owned.as_instance(&s);
    for tb_seed in [None, Some(seed)] {
        let tb = |s: Option<u64>| match s {
            None => TieBreaker::Deterministic,
            Some(x) => TieBreaker::random(x),
        };
        let (mut fast_traj, mut naive_traj) = (Trajectory::new(), Trajectory::new());
        let fast = Genitor::with_config(seed, quick_config(seed_minmin)).map_observed(
            &inst,
            &mut tb(tb_seed),
            |fit, best| fast_traj.push((fit, best)),
        );
        let naive = reference::NaiveGenitor::with_config(seed, quick_config(seed_minmin))
            .map_observed(&inst, &mut tb(tb_seed), |fit, best| {
                naive_traj.push((fit, best))
            });
        prop_assert_eq!(fast.order(), naive.order(), "final mapping");
        prop_assert_eq!(&fast_traj, &naive_traj, "insertion trajectory");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Delta Genitor equals the naive twin on continuous workloads.
    #[test]
    fn genitor_matches_reference_continuous(etc in continuous_etc(), seed in 0u64..1000) {
        assert_genitor_equivalence(etc, seed, false)?;
    }

    /// ... and on tie-rich integer workloads, with the Min-Min seed on.
    #[test]
    fn genitor_matches_reference_integer(etc in integer_etc(), seed in 0u64..1000) {
        assert_genitor_equivalence(etc, seed, true)?;
    }

    /// End to end through the iterative loop: stateful seeding feeds each
    /// round's best mapping into the next, so one divergent step anywhere
    /// cascades into a different outcome — the whole outcome must match.
    #[test]
    fn iterative_driver_matches_naive_genitor(etc in integer_etc(), seed in 0u64..500) {
        let s = Scenario::with_zero_ready(etc);
        for tb_seed in [None, Some(seed)] {
            let tb = |s: Option<u64>| match s {
                None => TieBreaker::Deterministic,
                Some(x) => TieBreaker::random(x),
            };
            let mut fast = Genitor::with_config(seed, quick_config(false));
            let mut naive = reference::NaiveGenitor::with_config(seed, quick_config(false));
            let a = iterative::IterativeRun::new(&mut fast, &s)
                .tie_breaker(tb(tb_seed))
                .execute()
                .unwrap();
            let b = iterative::IterativeRun::new(&mut naive, &s)
                .tie_breaker(tb(tb_seed))
                .execute()
                .unwrap();
            prop_assert_eq!(a, b, "Genitor iterative");
        }
    }

    /// The parallel seeding path is an implementation detail: any thread
    /// count yields the identical trajectory and mapping.
    #[test]
    fn thread_count_cannot_change_the_search(etc in continuous_etc(), seed in 0u64..500) {
        let s = Scenario::with_zero_ready(etc);
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let mut runs = Vec::new();
        for threads in [1usize, 3] {
            let config = GenitorConfig { eval_threads: threads, ..quick_config(false) };
            let mut traj = Trajectory::new();
            let mapping = Genitor::with_config(seed, config).map_observed(
                &inst,
                &mut TieBreaker::Deterministic,
                |fit, best| traj.push((fit, best)),
            );
            runs.push((mapping, traj));
        }
        let (m1, t1) = &runs[0];
        let (m3, t3) = &runs[1];
        prop_assert_eq!(m1.order(), m3.order());
        prop_assert_eq!(t1, t3);
    }
}
