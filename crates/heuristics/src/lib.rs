//! The resource-allocation heuristics studied by the paper, plus the
//! Braun-et-al. baselines.
//!
//! | Heuristic | Mode | Paper section | Module |
//! |---|---|---|---|
//! | Minimum Execution Time (MET) | immediate | §3.4, Fig 8 | [`met`] |
//! | Minimum Completion Time (MCT) | immediate | §3.3, Fig 5 | [`mct`] |
//! | Opportunistic Load Balancing (OLB) | immediate | baseline (ref \[3\]) | [`olb`] |
//! | K-Percent Best (KPB) | immediate | §3.6, Fig 14 | [`kpb`] |
//! | Switching Algorithm (SWA) | immediate | §3.5, Fig 13 | [`swa`] |
//! | Min-Min | batch | §3.2, Fig 2 | [`minmin`] |
//! | Max-Min | batch | baseline (refs \[8, 3\]) | [`maxmin`] |
//! | Duplex | batch | baseline (ref \[3\]) | [`duplex`] |
//! | Sufferage | batch | §3.7, Fig 17 | [`sufferage`] |
//!
//! *Immediate mode* heuristics walk the task list in its given, arbitrary
//! but fixed order and commit each task as they go; *batch mode* heuristics
//! reconsider the whole unmapped set at every step. The Genitor genetic
//! algorithm (§3.1) lives in its own crate, `hcs-genitor`.
//!
//! Extension baselines beyond the paper's study set (all from the
//! surrounding literature):
//!
//! | Heuristic | Source | Module |
//! |---|---|---|
//! | Segmented Min-Min | Wu & Shu, ref \[18\] | [`smm`] |
//! | Simulated Annealing | Braun et al. \[3\] | [`sa`] |
//! | Tabu Search | Braun et al. \[3\] | [`tabu`] |
//! | Beam search (bounded A*-style) | Braun et al. \[3\] | [`beam`] |
//!
//! Every heuristic routes *all* choices between equally good alternatives
//! through the caller's [`TieBreaker`](hcs_core::TieBreaker), enumerating
//! candidates in canonical order (task-list order, then ascending machine
//! index) — see `hcs_core::tiebreak` for why that reproduces the paper's
//! deterministic rules exactly.
//!
//! The greedy heuristics run on a reusable
//! [`MapWorkspace`](hcs_core::MapWorkspace) via `Heuristic::map_with`
//! (plain `map` allocates a throwaway workspace); the pre-refactor naive
//! implementations are retained in [`reference`] as the executable
//! specification of the tie-break contract, enforced by the
//! golden-equivalence property suite in `tests/properties.rs`. The search
//! baselines (SA, Tabu) cost their candidate moves through the
//! delta-evaluation kernel ([`hcs_core::LoadTracker`]); their pre-kernel
//! twins ([`reference::NaiveSa`], [`reference::NaiveTabu`]) pin the
//! trajectories bit-for-bit in `tests/search_equivalence.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod beam;
pub mod duplex;
pub mod kpb;
pub mod maxmin;
pub mod mct;
pub mod met;
pub mod minmin;
pub mod multi;
pub mod olb;
pub mod reference;
pub mod sa;
pub mod smm;
pub mod sufferage;
pub mod swa;
pub mod tabu;
mod two_phase;

pub use beam::{BeamConfig, BeamSearch};
pub use duplex::Duplex;
pub use kpb::Kpb;
pub use maxmin::MaxMin;
pub use mct::Mct;
pub use met::Met;
pub use minmin::MinMin;
pub use multi::{MultiConfig, MultiSa, MultiTabu};
pub use olb::Olb;
pub use sa::{Sa, SaConfig};
pub use smm::{SegmentKey, SegmentedMinMin};
pub use sufferage::{Sufferage, SufferageAction, SufferageEval, SufferagePass};
pub use swa::{Swa, SwaConfig, SwaMode, SwaStep, SwaTrace};
pub use tabu::{Tabu, TabuConfig};

use hcs_core::Heuristic;

/// Fresh boxed instances of all ten stateless greedy heuristics, in the
/// paper's presentation order followed by the baselines. (Genitor and SA
/// are excluded — they need a seed; see `hcs-genitor` and [`Sa`].)
pub fn all_heuristics() -> Vec<Box<dyn Heuristic>> {
    vec![
        Box::new(MinMin),
        Box::new(Mct),
        Box::new(Met),
        Box::new(Swa::default()),
        Box::new(Kpb::default()),
        Box::new(Sufferage),
        Box::new(Olb),
        Box::new(MaxMin),
        Box::new(Duplex),
        Box::new(SegmentedMinMin::default()),
    ]
}

/// Looks a heuristic up by (case-insensitive, hyphen-insensitive) name, for
/// CLI harnesses.
pub fn by_name(name: &str) -> Option<Box<dyn Heuristic>> {
    let wanted = name.to_ascii_lowercase().replace('-', "");
    all_heuristics()
        .into_iter()
        .find(|h| h.name().to_ascii_lowercase().replace('-', "") == wanted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_ten_named_heuristics() {
        let hs = all_heuristics();
        assert_eq!(hs.len(), 10);
        let names: Vec<&str> = hs.iter().map(|h| h.name()).collect();
        assert!(names.contains(&"Min-Min"));
        assert!(names.contains(&"Sufferage"));
        // Names are unique.
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn by_name_is_forgiving() {
        assert!(by_name("min-min").is_some());
        assert!(by_name("MINMIN").is_some());
        assert!(by_name("sufferage").is_some());
        assert!(by_name("nonexistent").is_none());
    }
}
