//! Minimum Completion Time (MCT) — paper §3.3, Figure 5.
//!
//! Walk the task list in its given, arbitrary but fixed order; assign each
//! task to the machine giving it the smallest **completion time**
//! (machine ready time plus the task's ETC on that machine), then advance
//! that machine's ready time.
//!
//! Theorem 3.3.1 of the paper: with deterministic tie-breaking, the MCT
//! mapping is invariant under the iterative technique. The §3.3 example
//! shows a random tie can increase the makespan.

use hcs_core::{Heuristic, Instance, MapWorkspace, Mapping, TieBreaker};

/// The MCT heuristic (stateless).
#[derive(Clone, Copy, Debug, Default)]
pub struct Mct;

impl Heuristic for Mct {
    fn name(&self) -> &'static str {
        "MCT"
    }

    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        self.map_with(inst, tb, &mut MapWorkspace::new())
    }

    fn map_with(
        &mut self,
        inst: &Instance<'_>,
        tb: &mut TieBreaker,
        ws: &mut MapWorkspace,
    ) -> Mapping {
        ws.begin(inst);
        let mut mapping = Mapping::new(inst.etc.n_tasks());
        for &task in inst.tasks {
            let (cands, _) = ws.min_ct_candidates(inst, task);
            let machine = cands[tb.pick(cands.len())];
            ws.advance(machine, inst.etc.get(task, machine));
            ws.trace_commit(task, machine);
            mapping
                .assign(task, machine)
                .expect("task list contains no duplicates");
        }
        mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::id::{m, t};
    use hcs_core::{EtcMatrix, ReadyTimes, Scenario, Time};

    fn run(s: &Scenario, tb: &mut TieBreaker) -> Mapping {
        let owned = s.full_instance();
        Mct.map(&owned.as_instance(s), tb)
    }

    #[test]
    fn balances_load_unlike_met() {
        // Both tasks are fastest on m0, but after t0 lands there m1 offers
        // a better completion time for t1.
        let etc = EtcMatrix::from_rows(&[vec![4.0, 5.0], vec![4.0, 5.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let map = run(&s, &mut TieBreaker::Deterministic);
        assert_eq!(map.machine_of(t(0)), Some(m(0)));
        assert_eq!(map.machine_of(t(1)), Some(m(1))); // CT 5 beats 4+4=8
        assert_eq!(
            map.makespan(&s.etc, &s.initial_ready, &[m(0), m(1)]),
            Time::new(5.0)
        );
    }

    #[test]
    fn accounts_for_initial_ready_times() {
        let etc = EtcMatrix::from_rows(&[vec![1.0, 1.0]]).unwrap();
        let s = Scenario::with_ready(etc, ReadyTimes::from_values(&[10.0, 0.0]));
        let map = run(&s, &mut TieBreaker::Deterministic);
        assert_eq!(map.machine_of(t(0)), Some(m(1)));
    }

    #[test]
    fn deterministic_tie_takes_lowest_machine_index() {
        let etc = EtcMatrix::from_rows(&[vec![3.0, 3.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let map = run(&s, &mut TieBreaker::Deterministic);
        assert_eq!(map.machine_of(t(0)), Some(m(0)));
    }

    #[test]
    fn random_tie_covers_all_candidates() {
        let etc = EtcMatrix::from_rows(&[vec![3.0, 3.0, 3.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let mut seen = std::collections::HashSet::new();
        for seed in 0..48 {
            let map = run(&s, &mut TieBreaker::random(seed));
            seen.insert(map.machine_of(t(0)).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn task_list_order_matters() {
        // MCT is order sensitive: with list (t0, t1) both fit perfectly;
        // the mapping is a chain of greedy choices in list order.
        let etc = EtcMatrix::from_rows(&[vec![2.0, 3.0], vec![2.0, 3.0], vec![6.0, 3.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let map = run(&s, &mut TieBreaker::Deterministic);
        // t0 -> m0 (2), t1 -> m1 (3 < 2+2? no, 3 > 4? 3 < 4 so m1), wait:
        // CT(t1, m0) = 2 + 2 = 4, CT(t1, m1) = 3 -> m1.
        // CT(t2, m0) = 2 + 6 = 8, CT(t2, m1) = 3 + 3 = 6 -> m1.
        assert_eq!(map.machine_of(t(0)), Some(m(0)));
        assert_eq!(map.machine_of(t(1)), Some(m(1)));
        assert_eq!(map.machine_of(t(2)), Some(m(1)));
    }
}
