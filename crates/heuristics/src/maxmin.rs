//! Max-Min — baseline from Ibarra & Kim \[8\] / Braun et al. \[3\].
//!
//! Identical to Min-Min except in phase 2: among the per-task minimum
//! completion times, the task with the **maximum** is committed first. The
//! intuition is to schedule long tasks early so they overlap the many short
//! ones instead of straggling at the end. Included as a baseline for the
//! extended Monte-Carlo studies (the paper's related work compares against
//! it through ref \[3\]).

use hcs_core::{Heuristic, Instance, MapWorkspace, Mapping, TieBreaker};

use crate::two_phase;

/// The Max-Min heuristic (stateless).
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxMin;

impl Heuristic for MaxMin {
    fn name(&self) -> &'static str {
        "Max-Min"
    }

    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        two_phase::map(inst, tb, two_phase::Phase2::Max)
    }

    fn map_with(
        &mut self,
        inst: &Instance<'_>,
        tb: &mut TieBreaker,
        ws: &mut MapWorkspace,
    ) -> Mapping {
        two_phase::map_with(inst, tb, ws, two_phase::Phase2::Max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::id::{m, t};
    use hcs_core::{EtcMatrix, Scenario, Time};

    fn run(s: &Scenario, tb: &mut TieBreaker) -> Mapping {
        let owned = s.full_instance();
        MaxMin.map(&owned.as_instance(s), tb)
    }

    #[test]
    fn longest_best_time_goes_first() {
        let etc = EtcMatrix::from_rows(&[
            vec![5.0, 9.0], // best 5
            vec![1.0, 4.0], // best 1
            vec![3.0, 2.0], // best 2
        ])
        .unwrap();
        let s = Scenario::with_zero_ready(etc);
        let map = run(&s, &mut TieBreaker::Deterministic);
        assert_eq!(map.order()[0], (t(0), m(0)));
    }

    #[test]
    fn beats_minmin_on_one_long_many_short() {
        // One long task and two short ones on two machines: Max-Min puts
        // the long task alone and overlaps the short ones.
        let etc =
            EtcMatrix::from_rows(&[vec![10.0, 10.0], vec![2.0, 2.0], vec![2.0, 2.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let machines = s.etc.machine_vec();

        let maxmin = run(&s, &mut TieBreaker::Deterministic);
        let maxmin_ms = maxmin.makespan(&s.etc, &s.initial_ready, &machines);
        assert_eq!(maxmin_ms, Time::new(10.0)); // t0 alone, t1+t2 share m1

        let owned = s.full_instance();
        let minmin = crate::MinMin.map(&owned.as_instance(&s), &mut TieBreaker::Deterministic);
        let minmin_ms = minmin.makespan(&s.etc, &s.initial_ready, &machines);
        assert_eq!(minmin_ms, Time::new(12.0)); // shorts first, long stacks
        assert!(maxmin_ms < minmin_ms);
    }

    #[test]
    fn deterministic_tie_prefers_oldest_task() {
        let etc = EtcMatrix::from_rows(&[vec![3.0, 3.0], vec![3.0, 3.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let map = run(&s, &mut TieBreaker::Deterministic);
        assert_eq!(map.order()[0], (t(0), m(0)));
    }

    #[test]
    fn maps_every_task_exactly_once() {
        let etc = EtcMatrix::from_rows(&[
            vec![4.0, 2.0, 7.0],
            vec![1.0, 8.0, 8.0],
            vec![6.0, 3.0, 2.0],
            vec![5.0, 5.0, 5.0],
        ])
        .unwrap();
        let s = Scenario::with_zero_ready(etc);
        let map = run(&s, &mut TieBreaker::Deterministic);
        assert_eq!(map.len(), 4);
        map.validate(&s.etc.task_vec(), &s.etc.machine_vec())
            .unwrap();
    }
}
