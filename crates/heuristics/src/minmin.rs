//! Min-Min — paper §3.2, Figure 2; from Ibarra & Kim \[8\].
//!
//! A two-phase greedy batch heuristic. While unmapped tasks remain:
//!
//! 1. **first Min** — for each unmapped task, find the machine giving it
//!    the minimum completion time (ignoring the other unmapped tasks);
//! 2. **second Min** — among those task–machine pairs, pick the pair with
//!    the overall minimum completion time; commit it and advance the
//!    machine's ready time.
//!
//! Theorem 3.2.1 of the paper: with deterministic tie-breaking the Min-Min
//! mapping is invariant under the iterative technique. The §3.2 example
//! shows a randomly broken tie can increase the makespan.
//!
//! # Tie handling
//!
//! Ties can arise in both phases (several machines minimize a task's
//! completion time; several tasks share the global minimum). Candidates
//! are gathered as *pairs*: every `(task, machine)` combination achieving
//! the global minimum completion time, enumerated in (task-list order,
//! ascending machine) order, and a single [`TieBreaker`] choice picks among
//! them — first pair for the deterministic policy (oldest task, lowest
//! machine), uniform for the random policy.

use hcs_core::{Heuristic, Instance, MapWorkspace, Mapping, TieBreaker};

use crate::two_phase;

/// The Min-Min heuristic (stateless).
#[derive(Clone, Copy, Debug, Default)]
pub struct MinMin;

impl Heuristic for MinMin {
    fn name(&self) -> &'static str {
        "Min-Min"
    }

    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        two_phase::map(inst, tb, two_phase::Phase2::Min)
    }

    fn map_with(
        &mut self,
        inst: &Instance<'_>,
        tb: &mut TieBreaker,
        ws: &mut MapWorkspace,
    ) -> Mapping {
        two_phase::map_with(inst, tb, ws, two_phase::Phase2::Min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::id::{m, t};
    use hcs_core::{EtcMatrix, Scenario, Time};

    fn run(s: &Scenario, tb: &mut TieBreaker) -> Mapping {
        let owned = s.full_instance();
        MinMin.map(&owned.as_instance(s), tb)
    }

    #[test]
    fn shortest_pair_goes_first() {
        let etc = EtcMatrix::from_rows(&[
            vec![5.0, 9.0],
            vec![1.0, 4.0], // global minimum pair: (t1, m0)
            vec![3.0, 2.0],
        ])
        .unwrap();
        let s = Scenario::with_zero_ready(etc);
        let map = run(&s, &mut TieBreaker::Deterministic);
        assert_eq!(map.order()[0], (t(1), m(0)));
    }

    #[test]
    fn classic_minmin_schedule() {
        // Worked by hand:
        //   rows: t0 (2, 6), t1 (3, 4), t2 (8, 3)
        //   step 1: minima per task: t0->m0 (2), t1->m0 (3), t2->m1 (3);
        //           global min = 2 -> (t0, m0); ready (2, 0)
        //   step 2: t1: min(2+3, 4) = 4 -> m1? CT(t1,m0)=5, CT(t1,m1)=4 -> m1 (4)
        //           t2: CT(m0)=10, CT(m1)=3 -> m1 (3); global min 3 -> (t2, m1)
        //           ready (2, 3)
        //   step 3: t1: CT(m0)=5, CT(m1)=7 -> (t1, m0); ready (5, 3)
        let etc = EtcMatrix::from_rows(&[vec![2.0, 6.0], vec![3.0, 4.0], vec![8.0, 3.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let map = run(&s, &mut TieBreaker::Deterministic);
        assert_eq!(map.order(), &[(t(0), m(0)), (t(2), m(1)), (t(1), m(0))]);
        assert_eq!(
            map.makespan(&s.etc, &s.initial_ready, &[m(0), m(1)]),
            Time::new(5.0)
        );
    }

    #[test]
    fn deterministic_tie_prefers_oldest_task_then_lowest_machine() {
        // All four pairs tie at CT 3 in the first step.
        let etc = EtcMatrix::from_rows(&[vec![3.0, 3.0], vec![3.0, 3.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let map = run(&s, &mut TieBreaker::Deterministic);
        assert_eq!(map.order()[0], (t(0), m(0)));
    }

    #[test]
    fn random_tie_covers_tied_pairs() {
        let etc = EtcMatrix::from_rows(&[vec![3.0, 3.0], vec![9.0, 9.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let mut firsts = std::collections::HashSet::new();
        for seed in 0..64 {
            let map = run(&s, &mut TieBreaker::random(seed));
            firsts.insert(map.order()[0]);
        }
        assert_eq!(firsts, [(t(0), m(0)), (t(0), m(1))].into_iter().collect());
    }

    #[test]
    fn accounts_for_ready_times_between_steps() {
        // After t0 fills m0, t1's best completion moves to m1 even though
        // its raw ETC is smaller on m0.
        let etc = EtcMatrix::from_rows(&[vec![1.0, 9.0], vec![2.0, 2.5]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let map = run(&s, &mut TieBreaker::Deterministic);
        assert_eq!(map.machine_of(t(0)), Some(m(0)));
        assert_eq!(map.machine_of(t(1)), Some(m(1))); // 2.5 < 1 + 2
    }

    #[test]
    fn maps_every_task_exactly_once() {
        let etc = EtcMatrix::from_rows(&[
            vec![4.0, 2.0, 7.0],
            vec![1.0, 8.0, 8.0],
            vec![6.0, 3.0, 2.0],
            vec![5.0, 5.0, 5.0],
            vec![2.0, 9.0, 4.0],
        ])
        .unwrap();
        let s = Scenario::with_zero_ready(etc);
        let map = run(&s, &mut TieBreaker::Deterministic);
        assert_eq!(map.len(), 5);
        map.validate(&s.etc.task_vec(), &s.etc.machine_vec())
            .unwrap();
    }
}
