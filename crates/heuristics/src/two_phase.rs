//! Shared engine for the two-phase batch heuristics (Min-Min and Max-Min).
//!
//! Both heuristics repeat: compute each unmapped task's best (minimum
//! completion time) machine, then commit the task whose best completion
//! time is extreme — the minimum for Min-Min, the maximum for Max-Min.
//! Only the phase-2 objective differs, so both share this engine.
//!
//! The engine runs on a [`MapWorkspace`]: phase 1 is incremental (only
//! tasks whose cached best machine was advanced by the previous commit are
//! rescanned — `O(n·m + n²)` instead of `O(n²·m)`), and no allocation
//! happens after workspace warm-up. Candidate pairs are flattened in
//! exactly the canonical order of the naive loop retained in
//! [`crate::reference`], so the [`TieBreaker`] stream is bit-identical.

use hcs_core::{Instance, MapWorkspace, Mapping, TaskId, TieBreaker};

/// Phase-2 objective.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum Phase2 {
    /// Commit the globally earliest-finishing pair (Min-Min).
    Min,
    /// Commit the pair of the task whose best finish is latest (Max-Min).
    Max,
}

/// Runs the two-phase greedy loop with a throwaway workspace.
pub(crate) fn map(inst: &Instance<'_>, tb: &mut TieBreaker, phase2: Phase2) -> Mapping {
    let mut ws = MapWorkspace::new();
    map_with(inst, tb, &mut ws, phase2)
}

/// Runs the two-phase greedy loop in the caller's workspace.
pub(crate) fn map_with(
    inst: &Instance<'_>,
    tb: &mut TieBreaker,
    ws: &mut MapWorkspace,
    phase2: Phase2,
) -> Mapping {
    ws.begin(inst);
    ws.activate(inst.tasks);
    let mut mapping = Mapping::new(inst.etc.n_tasks());
    run_segment(inst, tb, ws, phase2, inst.tasks, &mut mapping);
    mapping
}

/// The inner commit loop over the currently activated tasks, enumerating
/// tie candidates in `order` (the canonical task order for this run — the
/// instance task list here, a sorted segment for Segmented Min-Min, whose
/// per-segment loop reuses this). Ready times and activation are the
/// caller's responsibility; they carry over across segments.
pub(crate) fn run_segment(
    inst: &Instance<'_>,
    tb: &mut TieBreaker,
    ws: &mut MapWorkspace,
    phase2: Phase2,
    order: &[TaskId],
    mapping: &mut Mapping,
) {
    while ws.has_unmapped() {
        // Phase 1 (incremental): refresh stale best-machine caches.
        ws.refresh(inst);
        // Phase 2: flatten the extreme tasks' tied machines into
        // (task, machine) pairs; one tie-break picks the committed pair.
        let pairs = ws.extreme_pairs(order, phase2 == Phase2::Max);
        let (task, machine) = pairs[tb.pick(pairs.len())];
        ws.commit(inst, task, machine);
        mapping
            .assign(task, machine)
            .expect("each task committed once");
    }
}
