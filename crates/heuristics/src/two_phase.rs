//! Shared engine for the two-phase batch heuristics (Min-Min and Max-Min).
//!
//! Both heuristics repeat: compute each unmapped task's best (minimum
//! completion time) machine, then commit the task whose best completion
//! time is extreme — the minimum for Min-Min, the maximum for Max-Min.
//! Only the phase-2 objective differs, so both share this engine.

use hcs_core::{select, Instance, MachineId, Mapping, TaskId, TieBreaker};

/// Phase-2 objective.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum Phase2 {
    /// Commit the globally earliest-finishing pair (Min-Min).
    Min,
    /// Commit the pair of the task whose best finish is latest (Max-Min).
    Max,
}

/// Runs the two-phase greedy loop. See module docs.
pub(crate) fn map(inst: &Instance<'_>, tb: &mut TieBreaker, phase2: Phase2) -> Mapping {
    let mut unmapped: Vec<TaskId> = inst.tasks.to_vec();
    let mut ready = inst.working_ready();
    let mut mapping = Mapping::new(inst.etc.n_tasks());

    while !unmapped.is_empty() {
        // Phase 1: each task's minimum completion time and the machines
        // attaining it (ties preserved, ascending machine order).
        let per_task: Vec<(TaskId, Vec<MachineId>, hcs_core::Time)> = unmapped
            .iter()
            .map(|&task| {
                let (machines, best) = select::min_candidates(
                    inst.machines.iter().map(|&m| (m, inst.ct(task, m, &ready))),
                );
                (task, machines, best)
            })
            .collect();

        // Phase 2: tasks whose best completion time is extreme.
        let indexed = per_task
            .iter()
            .enumerate()
            .map(|(i, &(_, _, best))| (i, best));
        let (task_indices, _) = match phase2 {
            Phase2::Min => select::min_candidates(indexed),
            Phase2::Max => select::max_candidates(indexed),
        };

        // Flatten the tied tasks' tied machines into (task, machine) pairs
        // in canonical order; one tie-break picks the committed pair.
        let pairs: Vec<(TaskId, MachineId)> = task_indices
            .iter()
            .flat_map(|&i| {
                let (task, ref machines, _) = per_task[i];
                machines.iter().map(move |&m| (task, m))
            })
            .collect();
        let (task, machine) = pairs[tb.pick(pairs.len())];

        ready.advance(machine, inst.etc.get(task, machine));
        mapping
            .assign(task, machine)
            .expect("each task committed once");
        unmapped.retain(|&t| t != task);
    }
    mapping
}
