//! K-Percent Best (KPB) — paper §3.6, Figure 14.
//!
//! A hybrid of MET and MCT. For each task (in list order):
//!
//! 1. form the subset of the `⌊|M| · k/100⌋` machines with the **best
//!    (smallest) execution times** for the task (at least one machine);
//! 2. assign the task to the machine with the earliest **completion time**
//!    *within that subset*;
//! 3. advance that machine's ready time.
//!
//! With `k = 100/|M|` the subset is a single machine and KPB degenerates to
//! MET; with `k = 100` it is all machines and KPB is exactly MCT.
//!
//! The iterative technique shrinks `|M|` each round, which shrinks the
//! subset size — the paper's §3.6 example (k = 70%, three machines) has a
//! two-machine subset originally but a one-machine subset in the first
//! iterative mapping, forcing MET-like behaviour and an **increased
//! makespan even with deterministic ties**.
//!
//! Subset selection at the boundary: machines are ordered by
//! (execution time, machine index), so equal ETCs at the cut are resolved
//! toward the lower index — deterministic by construction. Completion-time
//! ties within the subset go through the [`TieBreaker`].

use hcs_core::{Heuristic, Instance, MachineId, MapWorkspace, Mapping, TieBreaker};

/// The K-Percent Best heuristic.
#[derive(Clone, Copy, Debug)]
pub struct Kpb {
    /// The percentage `k` in `(0, 100]`.
    pub k_percent: f64,
}

impl Default for Kpb {
    /// The paper's example value, k = 70%.
    fn default() -> Self {
        Kpb { k_percent: 70.0 }
    }
}

impl Kpb {
    /// A KPB instance with the given percentage.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < k_percent <= 100`.
    pub fn new(k_percent: f64) -> Self {
        assert!(
            k_percent > 0.0 && k_percent <= 100.0,
            "k must be in (0, 100], got {k_percent}"
        );
        Kpb { k_percent }
    }

    /// Subset size for `n_machines` active machines: `⌊n · k/100⌋`,
    /// clamped to at least 1.
    pub fn subset_size(&self, n_machines: usize) -> usize {
        ((n_machines as f64 * self.k_percent / 100.0).floor() as usize).max(1)
    }

    /// The k-percent-best machine subset for `task`: the `subset_size`
    /// machines with smallest execution time, ordered by
    /// (ETC, machine index).
    pub fn subset(&self, inst: &Instance<'_>, task: hcs_core::TaskId) -> Vec<MachineId> {
        let mut by_etc: Vec<MachineId> = inst.machines.to_vec();
        by_etc.sort_by_key(|&m| (inst.etc.get(task, m), m));
        by_etc.truncate(self.subset_size(inst.machines.len()));
        by_etc.sort_unstable(); // canonical ascending order for tie-breaking
        by_etc
    }
}

impl Heuristic for Kpb {
    fn name(&self) -> &'static str {
        "KPB"
    }

    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        self.map_with(inst, tb, &mut MapWorkspace::new())
    }

    fn map_with(
        &mut self,
        inst: &Instance<'_>,
        tb: &mut TieBreaker,
        ws: &mut MapWorkspace,
    ) -> Mapping {
        let subset_size = self.subset_size(inst.machines.len());
        ws.begin(inst);
        let mut mapping = Mapping::new(inst.etc.n_tasks());
        for &task in inst.tasks {
            let (cands, _) = ws.min_ct_among_best_etc(inst, task, subset_size);
            let machine = cands[tb.pick(cands.len())];
            ws.advance(machine, inst.etc.get(task, machine));
            ws.trace_commit(task, machine);
            mapping
                .assign(task, machine)
                .expect("task list contains no duplicates");
        }
        mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mct, Met};
    use hcs_core::id::{m, t};
    use hcs_core::{EtcMatrix, Scenario};

    fn scenario() -> Scenario {
        Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[
                vec![2.0, 5.0, 9.0],
                vec![7.0, 1.0, 2.0],
                vec![3.0, 4.0, 8.0],
                vec![9.0, 2.0, 6.0],
            ])
            .unwrap(),
        )
    }

    fn map_with(h: &mut dyn Heuristic, s: &Scenario) -> Mapping {
        let owned = s.full_instance();
        h.map(&owned.as_instance(s), &mut TieBreaker::Deterministic)
    }

    #[test]
    fn subset_size_floors_and_clamps() {
        let kpb = Kpb::new(70.0);
        assert_eq!(kpb.subset_size(3), 2); // 2.1 -> 2 (paper example)
        assert_eq!(kpb.subset_size(2), 1); // 1.4 -> 1 (first iterative mapping)
        assert_eq!(kpb.subset_size(1), 1);
        assert_eq!(Kpb::new(100.0).subset_size(5), 5);
        assert_eq!(Kpb::new(10.0).subset_size(5), 1);
    }

    #[test]
    fn k_100_is_mct() {
        let s = scenario();
        let kpb = map_with(&mut Kpb::new(100.0), &s);
        let mct = map_with(&mut Mct, &s);
        assert_eq!(kpb.order(), mct.order());
    }

    #[test]
    fn k_one_over_m_is_met() {
        let s = scenario();
        let kpb = map_with(&mut Kpb::new(100.0 / 3.0), &s);
        let met = map_with(&mut Met, &s);
        assert_eq!(kpb.order(), met.order());
    }

    #[test]
    fn subset_contains_best_execution_machines() {
        let s = scenario();
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let kpb = Kpb::new(70.0);
        // t0: ETC row (2, 5, 9) -> best two are m0, m1.
        assert_eq!(kpb.subset(&inst, t(0)), vec![m(0), m(1)]);
        // t1: ETC row (7, 1, 2) -> best two are m1, m2.
        assert_eq!(kpb.subset(&inst, t(1)), vec![m(1), m(2)]);
    }

    #[test]
    fn subset_boundary_tie_prefers_lower_index() {
        let etc = EtcMatrix::from_rows(&[vec![5.0, 3.0, 3.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        // Best 2 of (5, 3, 3): the tie between m1 and m2 is immaterial
        // (both enter), but the cut between m0 and the tied pair keeps the
        // two 3s.
        assert_eq!(Kpb::new(70.0).subset(&inst, t(0)), vec![m(1), m(2)]);
        // Best 1 of (3@m0 ... ) with tie at the cut: lowest index wins.
        let etc = EtcMatrix::from_rows(&[vec![3.0, 3.0, 9.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        assert_eq!(Kpb::new(100.0 / 3.0).subset(&inst, t(0)), vec![m(0)]);
    }

    #[test]
    fn assigns_min_completion_within_subset() {
        // t0's two best-execution machines are m0 (ETC 4) and m1 (ETC 5);
        // m2 (ETC 100) is excluded even though it is idle and would give
        // the smallest completion time overall.
        let etc = EtcMatrix::from_rows(&[vec![4.0, 5.0, 100.0]]).unwrap();
        let mut ready = hcs_core::ReadyTimes::zero(3);
        ready.set(m(0), hcs_core::Time::new(50.0));
        let s = Scenario::with_ready(etc, ready);
        let map = map_with(&mut Kpb::new(70.0), &s);
        assert_eq!(map.machine_of(t(0)), Some(m(1)));
    }

    #[test]
    #[should_panic(expected = "k must be in (0, 100]")]
    fn invalid_k_rejected() {
        let _ = Kpb::new(0.0);
    }
}
