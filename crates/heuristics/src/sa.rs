//! Simulated Annealing — the Braun et al. \[3\] baseline configuration.
//!
//! An iterative search over complete mappings: start from a random (or
//! Min-Min-seeded) mapping, repeatedly mutate one task's machine, accept
//! improvements always and regressions with probability
//! `exp(-Δ/T)`, cooling `T` geometrically. Braun et al. initialize the
//! temperature to the initial makespan and multiply by 0.9 each step.
//!
//! Like Genitor, SA owns its RNG (its randomness is search, not
//! tie-breaking), is deterministic per seed, and is far slower than the
//! greedy heuristics — it is an extension baseline for the Monte-Carlo
//! studies, not part of the paper's study set.

use hcs_core::{Heuristic, Instance, LoadTracker, Mapping, TieBreaker, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Tuning parameters for [`Sa`].
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SaConfig {
    /// Geometric cooling factor per step (Braun et al.: 0.9... per sweep;
    /// we cool every `sweep` mutations).
    pub cooling: f64,
    /// Mutations between cooling steps.
    pub sweep: usize,
    /// Stop when the temperature falls below this fraction of the initial
    /// temperature.
    pub t_min_fraction: f64,
    /// Hard cap on mutations.
    pub max_steps: usize,
    /// Start from a Min-Min mapping instead of a random one.
    pub seed_minmin: bool,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            cooling: 0.9,
            sweep: 64,
            t_min_fraction: 1e-4,
            max_steps: 50_000,
            seed_minmin: false,
        }
    }
}

/// The Simulated Annealing mapper.
#[derive(Clone, Debug)]
pub struct Sa {
    config: SaConfig,
    rng: StdRng,
}

impl Sa {
    /// An SA instance with default configuration.
    pub fn new(seed: u64) -> Self {
        Sa::with_config(seed, SaConfig::default())
    }

    /// An SA instance with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < cooling < 1` and `sweep > 0`.
    pub fn with_config(seed: u64, config: SaConfig) -> Self {
        assert!(
            config.cooling > 0.0 && config.cooling < 1.0,
            "cooling factor must be in (0, 1)"
        );
        assert!(config.sweep > 0, "sweep must be positive");
        Sa {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Sa {
    /// [`map`](Heuristic::map) with an observer called on the start state
    /// and after every accepted move, receiving the assignment (machine
    /// index per task position), the tracked loads, and the current
    /// objective value (the makespan under [`hcs_core::Objective::Makespan`],
    /// the scenario's setting in every golden suite). This is the testing seam the golden-equivalence and
    /// load-drift property suites hook into; the observer is outside the
    /// RNG stream, so observing does not perturb the search.
    pub fn map_observed(
        &mut self,
        inst: &Instance<'_>,
        tb: &mut TieBreaker,
        observe: impl FnMut(&[usize], &[Time], Time),
    ) -> Mapping {
        self.map_observed_from(inst, tb, None, observe)
    }

    /// [`map_observed`](Sa::map_observed) with an explicit start state: when
    /// `initial` is `Some`, the anneal starts from that assignment (machine
    /// index per task position, one entry per instance task) instead of
    /// drawing a random one — the adoption seam for the multi-restart
    /// driver, which may hand a late-starting seed the shared incumbent.
    /// `None` runs the exact instruction (and RNG) sequence of
    /// [`map_observed`], which delegates here. Note the start state changes
    /// which RNG draws happen (a random start consumes `n_tasks` draws an
    /// adopted one skips), so adopting is deterministic only when the
    /// *decision* to adopt is — the multi-restart driver's lane schedule
    /// guarantees that.
    pub fn map_observed_from(
        &mut self,
        inst: &Instance<'_>,
        _tb: &mut TieBreaker,
        initial: Option<&[usize]>,
        mut observe: impl FnMut(&[usize], &[Time], Time),
    ) -> Mapping {
        let n_tasks = inst.tasks.len();
        let n_machines = inst.machines.len();
        let mut mapping = Mapping::new(inst.etc.n_tasks());
        if n_tasks == 0 {
            return mapping;
        }

        // State: assignment (machine index per task position) + the
        // delta-evaluation kernel over per-machine finishing times. A
        // candidate move is *probed* read-only — the old code rescanned
        // all m machines and had to restore loads on rejection.
        let mut assign: Vec<usize> = match initial {
            Some(start) => {
                debug_assert_eq!(start.len(), n_tasks, "start state covers the instance");
                start.to_vec()
            }
            None if self.config.seed_minmin => minmin_assignment(inst),
            None => (0..n_tasks)
                .map(|_| self.rng.gen_range(0..n_machines))
                .collect(),
        };
        let mut tracker = LoadTracker::new();
        tracker.rebuild(inst, &assign);

        let mut current = tracker.objective_value();
        let mut best = current;
        let mut best_assign = assign.clone();
        let t0 = current.get().max(1e-9);
        let mut temperature = t0;
        let t_floor = t0 * self.config.t_min_fraction;
        observe(&assign, tracker.loads(), current);

        for step in 0..self.config.max_steps {
            if temperature < t_floor {
                break;
            }
            // Mutate: move one random task to a random machine.
            let pos = self.rng.gen_range(0..n_tasks);
            let old_mi = assign[pos];
            let new_mi = self.rng.gen_range(0..n_machines);
            if new_mi != old_mi {
                let task = inst.tasks[pos];
                let sub = inst.etc.get(task, inst.machines[old_mi]);
                let add = inst.etc.get(task, inst.machines[new_mi]);
                // The hinted probe answers most makespan candidates in
                // O(1) from the carried `current` value (see
                // `LoadTracker::probe_objective_hint`); the rest pay the
                // mode's full probe — an O(m) fold in flat mode (m <=
                // FLAT_MAX, where the old tree climbs ran SA below its
                // naive twin), an O(log m) sibling walk above it.
                let candidate = tracker.probe_objective_hint(old_mi, sub, new_mi, add, current);

                let delta = candidate.get() - current.get();
                let accept =
                    delta <= 0.0 || self.rng.gen_range(0.0..1.0) < (-delta / temperature).exp();
                if accept {
                    tracker.apply(old_mi, sub, new_mi, add);
                    assign[pos] = new_mi;
                    current = candidate;
                    if current < best {
                        best = current;
                        best_assign.clone_from(&assign);
                    }
                    observe(&assign, tracker.loads(), current);
                }
            }
            if (step + 1) % self.config.sweep == 0 {
                temperature *= self.config.cooling;
            }
        }

        for (pos, &mi) in best_assign.iter().enumerate() {
            mapping
                .assign(inst.tasks[pos], inst.machines[mi])
                .expect("each position assigned once");
        }
        mapping
    }
}

impl Heuristic for Sa {
    fn name(&self) -> &'static str {
        "SA"
    }

    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        self.map_observed(inst, tb, |_, _, _| {})
    }
}

/// Min-Min as a machine-index assignment (seed option). Kept local for the
/// same crate-graph reason as in `hcs-genitor`; shared with the naive
/// reference twin so both start from the identical seed.
pub(crate) fn minmin_assignment(inst: &Instance<'_>) -> Vec<usize> {
    let mut ready: Vec<Time> = inst.machines.iter().map(|&m| inst.ready.get(m)).collect();
    let mut assign = vec![0usize; inst.tasks.len()];
    let mut unmapped: Vec<usize> = (0..inst.tasks.len()).collect();
    while !unmapped.is_empty() {
        let mut bestv: Option<(usize, usize, Time)> = None;
        for &pos in &unmapped {
            for (mi, &machine) in inst.machines.iter().enumerate() {
                let ct = ready[mi] + inst.etc.get(inst.tasks[pos], machine);
                if bestv.is_none_or(|(_, _, b)| ct < b) {
                    bestv = Some((pos, mi, ct));
                }
            }
        }
        let (pos, mi, _) = bestv.expect("unmapped non-empty");
        ready[mi] += inst.etc.get(inst.tasks[pos], inst.machines[mi]);
        assign[pos] = mi;
        unmapped.retain(|&p| p != pos);
    }
    assign
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::{EtcMatrix, Scenario};

    fn scenario() -> Scenario {
        Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[
                vec![4.0, 7.0, 2.0],
                vec![3.0, 1.0, 9.0],
                vec![5.0, 5.0, 5.0],
                vec![2.0, 8.0, 6.0],
                vec![7.0, 3.0, 4.0],
                vec![6.0, 2.0, 8.0],
            ])
            .unwrap(),
        )
    }

    fn run(sa: &mut Sa, s: &Scenario) -> Mapping {
        let owned = s.full_instance();
        sa.map(&owned.as_instance(s), &mut TieBreaker::Deterministic)
    }

    #[test]
    fn produces_a_complete_valid_mapping() {
        let s = scenario();
        let map = run(&mut Sa::new(1), &s);
        map.validate(&s.etc.task_vec(), &s.etc.machine_vec())
            .unwrap();
        assert_eq!(map.len(), 6);
    }

    #[test]
    fn deterministic_per_seed() {
        let s = scenario();
        let a = run(&mut Sa::new(5), &s);
        let b = run(&mut Sa::new(5), &s);
        assert_eq!(a.order(), b.order());
    }

    #[test]
    fn improves_over_a_random_start() {
        let s = scenario();
        let machines = s.etc.machine_vec();
        let annealed = run(&mut Sa::new(3), &s).makespan(&s.etc, &s.initial_ready, &machines);
        // A frozen SA (max_steps 0) just returns its random start.
        let mut frozen = Sa::with_config(
            3,
            SaConfig {
                max_steps: 0,
                ..Default::default()
            },
        );
        let start = run(&mut frozen, &s).makespan(&s.etc, &s.initial_ready, &machines);
        assert!(annealed <= start, "annealed {annealed} vs start {start}");
    }

    #[test]
    fn minmin_seed_start_is_respected() {
        let s = scenario();
        let machines = s.etc.machine_vec();
        let mut sa = Sa::with_config(
            7,
            SaConfig {
                seed_minmin: true,
                max_steps: 0,
                ..Default::default()
            },
        );
        let seeded = run(&mut sa, &s).makespan(&s.etc, &s.initial_ready, &machines);
        // Min-Min's makespan on this instance (hand-checkable) is modest;
        // at minimum, the frozen seeded run must beat the worst machine sum.
        let all_on_one: Time = s.etc.tasks().map(|t| s.etc.get(t, machines[0])).sum();
        assert!(seeded < all_on_one);
    }

    #[test]
    fn near_optimal_on_the_small_instance() {
        // Brute force 3^6 = 729 assignments.
        let s = scenario();
        let machines = s.etc.machine_vec();
        let mut best = Time::new(f64::MAX / 2.0);
        for code in 0..3usize.pow(6) {
            let mut c = code;
            let mut loads = [Time::ZERO; 3];
            for task in s.etc.tasks() {
                let mi = c % 3;
                c /= 3;
                loads[mi] += s.etc.get(task, machines[mi]);
            }
            best = best.min(loads.into_iter().max().unwrap());
        }
        let sa = run(&mut Sa::new(11), &s).makespan(&s.etc, &s.initial_ready, &machines);
        assert_eq!(sa, best, "SA should solve a 6x3 instance exactly");
    }

    #[test]
    fn empty_task_set_is_fine() {
        let s = scenario();
        let machines = s.etc.machine_vec();
        let inst = Instance {
            etc: &s.etc,
            tasks: &[],
            machines: &machines,
            ready: &s.initial_ready,
            objective: s.objective,
        };
        let map = Sa::new(0).map(&inst, &mut TieBreaker::Deterministic);
        assert!(map.is_empty());
    }

    #[test]
    #[should_panic(expected = "cooling factor")]
    fn bad_cooling_rejected() {
        let _ = Sa::with_config(
            0,
            SaConfig {
                cooling: 1.5,
                ..Default::default()
            },
        );
    }
}
